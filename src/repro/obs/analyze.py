"""Walk a merged trace: critical path, exposed vs hidden waits, and a
measured-vs-modeled table against the paper's performance model.

Usage::

    python -m repro.obs.analyze trace.json [--model model.json] [--top N]

``--model`` points at a JSON produced by :func:`model_predictions`, which
runs :class:`repro.sim.training_sim.TrainingStepSimulator` (and its
``NetworkCostModel.layer_cost``) for the same network/strategy so the
analyzer can put measured per-layer times and comm bytes next to the §V
model's predictions.  Comm-byte rows come from the ``comm_stats``
annotations each rank embeds in its trace — a verbatim ``CommStats``
snapshot, so those rows agree with the live counters exactly.
"""

from __future__ import annotations

import argparse
import bisect
import json
from collections import defaultdict

#: Slack (µs) when binding flow endpoints / sequencing spans on a track.
_EPS_US = 1.5


def load_trace(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _spans_by_track(doc: dict) -> dict:
    tracks: dict = defaultdict(list)
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") == "X":
            tracks[ev["pid"]].append(ev)
    for spans in tracks.values():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
    return dict(tracks)


def _top_level(spans: list[dict]) -> list[dict]:
    """Spans not contained in any other span on the same track."""
    tops = []
    open_end = -1.0
    for ev in spans:  # sorted by (ts, -dur): parents precede children
        if ev["ts"] >= open_end - _EPS_US:
            tops.append(ev)
            open_end = ev["ts"] + ev["dur"]
    return tops


def _flow_pairs(doc: dict) -> list[tuple]:
    """(src_pid, send_ts, dst_pid, recv_ts) for every resolved flow."""
    sides: dict = defaultdict(dict)
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") in ("s", "f"):
            sides[ev["id"]][ev["ph"]] = ev
    pairs = []
    for ends in sides.values():
        if "s" in ends and "f" in ends:
            pairs.append((ends["s"]["pid"], ends["s"]["ts"], ends["f"]["pid"], ends["f"]["ts"]))
    return pairs


def critical_path(doc: dict, max_hops: int = 100000) -> list[dict]:
    """Backward walk from the latest-ending span, jumping across resolved
    send→recv flows to the sender's track (the op that gated this one) and
    otherwise to the previous span on the same track.  Returns the path in
    time order; ``gap_us`` on an entry is idle time between it and its
    predecessor on the path."""
    tracks = {pid: _top_level(spans) for pid, spans in _spans_by_track(doc).items()}
    if not tracks:
        return []
    starts = {pid: [s["ts"] for s in tops] for pid, tops in tracks.items()}
    incoming: dict = defaultdict(list)
    for src_pid, s_ts, dst_pid, f_ts in _flow_pairs(doc):
        incoming[dst_pid].append((f_ts, src_pid, s_ts))
    for lst in incoming.values():
        lst.sort()

    def span_at(pid, ts):
        tops = tracks.get(pid)
        if not tops:
            return None
        idx = bisect.bisect_right(starts[pid], ts + _EPS_US) - 1
        return tops[idx] if idx >= 0 else None

    cur_pid, cur = max(
        ((pid, tops[-1]) for pid, tops in tracks.items() if tops),
        key=lambda item: item[1]["ts"] + item[1]["dur"],
    )
    path = []
    visited = set()
    for _ in range(max_hops):
        key = (cur_pid, cur["ts"], cur["name"])
        if key in visited:
            break
        visited.add(key)
        entry = {
            "pid": cur_pid,
            "name": cur["name"],
            "cat": cur.get("cat", ""),
            "ts_us": cur["ts"],
            "dur_us": cur["dur"],
            "link": "seq",
            "gap_us": 0.0,
        }
        path.append(entry)
        end = cur["ts"] + cur["dur"]
        # Flows landing inside this span: the latest send gated it.
        cands = [
            (s_ts, src_pid)
            for f_ts, src_pid, s_ts in incoming.get(cur_pid, ())
            if cur["ts"] - _EPS_US <= f_ts <= end + _EPS_US
        ]
        pred = pred_pid = None
        if cands:
            s_ts, src_pid = max(cands)
            hop = span_at(src_pid, s_ts)
            if hop is not None and (src_pid, hop["ts"], hop["name"]) not in visited:
                pred, pred_pid = hop, src_pid
                entry["link"] = "flow"
        if pred is None:
            tops = tracks[cur_pid]
            idx = tops.index(cur)
            if idx > 0:
                pred, pred_pid = tops[idx - 1], cur_pid
                entry["gap_us"] = max(0.0, cur["ts"] - (pred["ts"] + pred["dur"]))
        if pred is None:
            break
        cur, cur_pid = pred, pred_pid
    path.reverse()
    return path


def path_summary(path: list[dict]) -> dict:
    by_name: dict = defaultdict(lambda: {"count": 0, "dur_us": 0.0})
    idle = 0.0
    for entry in path:
        slot = by_name[entry["name"]]
        slot["count"] += 1
        slot["dur_us"] += entry["dur_us"]
        idle += entry["gap_us"]
    return {"by_name": dict(by_name), "idle_us": idle, "hops": len(path)}


def exposed_hidden(doc: dict) -> dict:
    """Per-op exposed wait (``wait:*`` span time) vs hidden latency (the
    overlapped portion recorded by ``CommStats``), in µs."""
    out: dict = defaultdict(lambda: {"count": 0, "exposed_us": 0.0, "hidden_us": 0.0})
    for spans in _spans_by_track(doc).values():
        for ev in spans:
            if ev.get("cat") != "wait":
                continue
            args = ev.get("args", {})
            op = args.get("op") or ev["name"].removeprefix("wait:")
            slot = out[op]
            slot["count"] += 1
            slot["exposed_us"] += ev["dur"]
            slot["hidden_us"] += args.get("hidden_us", 0.0)
    return dict(out)


def layer_times(doc: dict) -> dict:
    """Measured per-layer forward/backward time per step (mean across all
    occurrences on all ranks), from the ``fwd:*``/``bwd:*`` layer spans."""
    sums: dict = defaultdict(lambda: {"fwd_us": 0.0, "fwd_n": 0, "bwd_us": 0.0, "bwd_n": 0})
    for spans in _spans_by_track(doc).values():
        for ev in spans:
            if ev.get("cat") != "layer":
                continue
            kind, _, layer = ev["name"].partition(":")
            if kind == "fwd":
                sums[layer]["fwd_us"] += ev["dur"]
                sums[layer]["fwd_n"] += 1
            elif kind == "bwd":
                sums[layer]["bwd_us"] += ev["dur"]
                sums[layer]["bwd_n"] += 1
    out = {}
    for layer, s in sums.items():
        out[layer] = {
            "fwd_us": s["fwd_us"] / s["fwd_n"] if s["fwd_n"] else 0.0,
            "bwd_us": s["bwd_us"] / s["bwd_n"] if s["bwd_n"] else 0.0,
        }
    return out


def comm_rows(doc: dict) -> dict:
    """Per-op calls/bytes summed over every rank's embedded ``CommStats``
    snapshot — byte-exact with the live counters by construction."""
    rows: dict = defaultdict(lambda: {"calls": 0, "bytes": 0})
    annotations = doc.get("otherData", {}).get("annotations", {})
    for per_rank in annotations.values():
        snap = per_rank.get("comm_stats")
        if not snap:
            continue
        for op, calls in snap.get("collectives", {}).items():
            rows[op]["calls"] += int(calls)
        for op, nbytes in snap.get("collective_bytes", {}).items():
            rows[op]["bytes"] += int(nbytes)
    return dict(rows)


def model_predictions(spec, machine, n_global: int, strategy, **sim_kwargs) -> dict:
    """Run ``TrainingStepSimulator`` for the given net/strategy and distil
    per-layer predictions the analyzer can set against measured spans.

    Per-layer modeled time is the window (last finish − first start) of
    that layer's simulated tasks, matching what the runtime's
    ``fwd:{layer}``/``bwd:{layer}`` spans measure; allreduce bytes come
    from ``NetworkCostModel.layer_cost``.
    """
    from repro.sim.training_sim import TrainingStepSimulator

    sim = TrainingStepSimulator(spec, machine, **sim_kwargs)
    res = sim.simulate(n_global, strategy)
    eng = res.engine

    windows: dict = defaultdict(lambda: {"start": None, "finish": None})
    for task in eng.tasks():
        parts = task.name.split(":")
        if len(parts) < 2 or parts[0] not in ("fwd", "bwd") or parts[1] == "shuf":
            continue
        slot = windows[(parts[0], parts[1])]
        slot["start"] = task.start if slot["start"] is None else min(slot["start"], task.start)
        slot["finish"] = task.finish if slot["finish"] is None else max(slot["finish"], task.finish)

    layers = {}
    ar_bytes_total = 0
    for layer in spec.topo_order():
        name = layer.name
        cost = sim.cost_model.layer_cost(name, n_global, strategy)
        fwd = windows.get(("fwd", name))
        bwd = windows.get(("bwd", name))
        ar_bytes = int(getattr(cost, "allreduce_bytes", 0) or 0) if cost is not None else 0
        ar_bytes_total += ar_bytes
        layers[name] = {
            "fwd_s": (fwd["finish"] - fwd["start"]) if fwd else 0.0,
            "bwd_s": (bwd["finish"] - bwd["start"]) if bwd else 0.0,
            "ar_bytes": ar_bytes,
        }
    return {
        "source": "TrainingStepSimulator",
        "n_global": n_global,
        "minibatch_s": res.minibatch_time,
        "compute_busy_s": res.compute_busy,
        "comm_busy_s": res.comm_busy,
        "allreduce_bytes_per_rank": ar_bytes_total,
        "layers": layers,
    }


# ----------------------------------------------------------------------
# Report rendering


def _fmt_ms(us: float) -> str:
    return f"{us / 1e3:.3f}"


def render_report(doc: dict, model: dict | None = None, top: int = 12) -> str:
    lines = []
    other = doc.get("otherData", {})
    tracks = _spans_by_track(doc)
    nspans = sum(len(s) for s in tracks.values())
    lines.append(
        f"trace: {other.get('nranks', len(tracks))} ranks, {nspans} spans, "
        f"{other.get('flows', 0)} flows"
    )

    path = critical_path(doc)
    summary = path_summary(path)
    if path:
        total = path[-1]["ts_us"] + path[-1]["dur_us"] - path[0]["ts_us"]
        lines.append("")
        lines.append(
            f"critical path: {summary['hops']} hops over {_fmt_ms(total)} ms "
            f"({_fmt_ms(summary['idle_us'])} ms idle)"
        )
        lines.append(f"  {'span':<24} {'hops':>5} {'total ms':>10}")
        ranked = sorted(summary["by_name"].items(), key=lambda kv: -kv[1]["dur_us"])
        for name, slot in ranked[:top]:
            lines.append(f"  {name:<24} {slot['count']:>5} {_fmt_ms(slot['dur_us']):>10}")

    waits = exposed_hidden(doc)
    if waits:
        lines.append("")
        lines.append("exposed vs hidden wait:")
        lines.append(f"  {'op':<18} {'waits':>6} {'exposed ms':>11} {'hidden ms':>10}")
        for op in sorted(waits):
            slot = waits[op]
            lines.append(
                f"  {op:<18} {slot['count']:>6} {_fmt_ms(slot['exposed_us']):>11} "
                f"{_fmt_ms(slot['hidden_us']):>10}"
            )

    comm = comm_rows(doc)
    if comm:
        lines.append("")
        lines.append("comm ops (from CommStats snapshots, all ranks):")
        lines.append(f"  {'op':<18} {'calls':>7} {'bytes':>14}")
        for op in sorted(comm):
            lines.append(f"  {op:<18} {comm[op]['calls']:>7} {comm[op]['bytes']:>14}")

    if model is not None:
        measured = layer_times(doc)
        lines.append("")
        lines.append(f"measured vs modeled (model: {model.get('source', '?')}):")
        lines.append(
            f"  {'layer':<12} {'meas fwd ms':>12} {'model fwd ms':>13} "
            f"{'meas bwd ms':>12} {'model bwd ms':>13} {'model ar B':>11}"
        )
        for layer, pred in model.get("layers", {}).items():
            meas = measured.get(layer, {"fwd_us": 0.0, "bwd_us": 0.0})
            lines.append(
                f"  {layer:<12} {_fmt_ms(meas['fwd_us']):>12} "
                f"{pred['fwd_s'] * 1e3:>13.3f} {_fmt_ms(meas['bwd_us']):>12} "
                f"{pred['bwd_s'] * 1e3:>13.3f} {pred['ar_bytes']:>11}"
            )
        step_spans = [
            ev for spans in tracks.values() for ev in spans if ev["name"] == "step"
        ]
        if step_spans:
            meas_step = sum(ev["dur"] for ev in step_spans) / len(step_spans)
            lines.append(
                f"  step time: measured {_fmt_ms(meas_step)} ms/step vs modeled "
                f"{model.get('minibatch_s', 0.0) * 1e3:.3f} ms"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.analyze",
        description="Analyze a merged repro trace (critical path, waits, model check).",
    )
    parser.add_argument("trace", help="merged Chrome-trace JSON from a traced run")
    parser.add_argument("--model", help="model JSON from repro.obs.analyze.model_predictions")
    parser.add_argument("--top", type=int, default=12, help="rows in the critical-path table")
    parser.add_argument(
        "--salvage",
        action="store_true",
        help="merge leftover {trace}.rank* files from a crashed job first "
        "(missing ranks are annotated), then analyze the salvaged trace",
    )
    parser.add_argument(
        "--nranks",
        type=int,
        default=None,
        help="with --salvage: the world size the job ran at (default: "
        "inferred from the highest surviving rank file)",
    )
    args = parser.parse_args(argv)

    if args.salvage:
        from repro.obs.export import salvage_traces

        _, found, missing = salvage_traces(args.trace, args.nranks)
        print(
            f"salvaged {len(found)} rank file(s) into {args.trace} "
            f"(ranks {', '.join(map(str, found))})"
        )
        if missing:
            print(
                "missing ranks (crashed before writing, or files lost): "
                + ", ".join(map(str, missing))
            )
    doc = load_trace(args.trace)
    model = None
    if args.model:
        with open(args.model) as fh:
            model = json.load(fh)
    print(render_report(doc, model, top=args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
