"""Observability: per-rank span tracing, cross-rank metrics, rank-aware
logging, trace merge/export, and the measured-vs-modeled analyzer.

Heavy pieces (``export``, ``analyze``) are imported lazily by their users
to keep ``repro.comm`` -> ``repro.obs`` import cost near zero.
"""

from repro.obs import tracer
from repro.obs.logging import configure as configure_logging
from repro.obs.logging import get_logger
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, comm_stats_snapshot
from repro.obs.tracer import TRACE_ENV, TraceConfig, span

__all__ = [
    "tracer",
    "span",
    "TraceConfig",
    "TRACE_ENV",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "comm_stats_snapshot",
    "get_logger",
    "configure_logging",
]
