"""Per-rank structured span tracing with near-zero disabled overhead.

Every rank (thread, forked process, or socket child) owns a
:class:`_RankContext` holding an in-memory event buffer.  Spans are
recorded with :func:`span` as a context manager::

    with tracer.span("allreduce", cat="coll", bytes=nbytes, alg="ring"):
        ...

Timestamps come from ``time.perf_counter()`` (monotonic per rank) and are
aligned across ranks via the job's shared wall-clock *epoch* captured once
in the parent before launch: trace time zero is the epoch, and each rank
maps its perf-counter onto that axis at configure time.  Events are
buffered as plain dicts and flushed to ``{path}.rank{R}`` (JSON lines) at
rank teardown; :func:`repro.obs.export.merge_traces` later folds the
per-rank files into one Chrome trace-event JSON.

Cross-rank flows (send→recv arrows) are recorded with
:func:`flow_out` / :func:`flow_in`.  Because mailbox delivery is FIFO per
``(source, tag)``, a per-(peer, tag) sequence counter on each side is a
deterministic matching key — the merge pairs ``(src, dst, tag, seq)``
without any cross-rank coordination at runtime.

When tracing is disabled (the default), :func:`span` returns a cached
null object and every other entry point returns after a single module
flag check — the instrumentation sites stay in the hot paths at a cost of
roughly a dict lookup each.

The rank *identity* (rank, host) is tracked even when tracing is off; the
``repro`` logger uses it for its ``[rank R @ host]`` prefix.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass

#: Environment variable enabling tracing: the merged-trace output path.
TRACE_ENV = "REPRO_TRACE"


@dataclass(frozen=True)
class TraceConfig:
    """Fork-safe carrier for trace settings, shipped inside ``JobConfig``."""

    #: Merged-output path; per-rank files are written to ``{path}.rank{R}``.
    path: str
    #: Shared job epoch: ``time.time()`` in the parent at launch.  Trace
    #: timestamps are microseconds since this instant.
    epoch: float


def rank_file(path: str, rank: int) -> str:
    """Per-rank trace file for a merged-output ``path``."""
    return f"{path}.rank{rank}"


class _RankContext:
    __slots__ = (
        "rank",
        "host",
        "config",
        "base",
        "events",
        "open_spans",
        "send_seq",
        "recv_seq",
        "annotations",
        "tag_repr",
    )

    def __init__(self, rank: int, host: str, config: TraceConfig | None):
        self.rank = rank
        self.host = host
        self.config = config
        # Compact tuple records (expanded to dicts once, at flush):
        #   ("X", name, cat, t0, dur_us, args) | ("s"/"f", peer, tag, seq, t)
        self.events: list[tuple] = []
        self.open_spans = 0
        self.send_seq: dict = {}
        self.recv_seq: dict = {}
        self.annotations: dict = {}
        self.tag_repr: dict = {}
        # Map perf_counter onto the shared epoch axis: at any later moment,
        # trace-time = (wall_now_at_sync - epoch) + (perf_now - perf_at_sync)
        #            = perf_now + base.
        self.base = 0.0
        if config is not None:
            self.base = (time.time() - config.epoch) - time.perf_counter()

    def now_us(self) -> float:
        return (time.perf_counter() + self.base) * 1e6


# Rank context: thread-local for the thread backend (N ranks share one
# process), with a process-global fallback so helper threads in forked
# children (heartbeats, TCP senders) attribute to their rank.
_tls = threading.local()
_global_ctx: _RankContext | None = None
_lock = threading.Lock()
# Fast disabled flag: number of live *traced* contexts in this process.
_tracing = 0


def _current() -> _RankContext | None:
    ctx = getattr(_tls, "ctx", None)
    return ctx if ctx is not None else _global_ctx


def is_on() -> bool:
    """True when at least one traced rank context is live in this process."""
    return _tracing > 0


def identity() -> tuple[int, str] | None:
    """(rank, host) of the calling thread's rank context, or None."""
    ctx = _current()
    return None if ctx is None else (ctx.rank, ctx.host)


def enter_rank(
    rank: int,
    host: str = "node0",
    trace: TraceConfig | None = None,
    thread_scope: bool = False,
) -> None:
    """Install the rank context for this thread (or process).

    ``thread_scope=True`` binds the context to the calling thread only —
    required for the thread backend where every rank shares one process.
    Forked backends use the process-global slot so *all* threads of the
    child attribute to the rank.
    """
    global _global_ctx, _tracing
    ctx = _RankContext(rank, host, trace)
    if thread_scope:
        _tls.ctx = ctx
    else:
        _global_ctx = ctx
    if trace is not None:
        with _lock:
            _tracing += 1


def exit_rank(thread_scope: bool = False) -> None:
    """Tear down the rank context, flushing its trace file if traced."""
    global _global_ctx, _tracing
    ctx = getattr(_tls, "ctx", None) if thread_scope else _global_ctx
    if ctx is None:
        return
    if ctx.config is not None:
        with _lock:
            _tracing -= 1
        _flush(ctx)
    if thread_scope:
        _tls.ctx = None
    else:
        _global_ctx = None


class _NullSpan:
    """Cached no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **kwargs):
        return self


_NULL = _NullSpan()


class _Span:
    __slots__ = ("_ctx", "_name", "_cat", "_args", "_t0")

    def __init__(self, ctx: _RankContext, name: str, cat: str, args: dict):
        self._ctx = ctx
        self._name = name
        self._cat = cat
        self._args = args
        self._t0 = 0.0

    def __enter__(self):
        self._ctx.open_spans += 1
        self._t0 = time.perf_counter()
        return self

    def set(self, **kwargs):
        """Attach args resolved mid-span (e.g. result bytes, chosen alg)."""
        self._args.update(kwargs)
        return self

    def __exit__(self, exc_type, exc, tb):
        ctx = self._ctx
        t1 = time.perf_counter()
        if exc_type is not None:
            self._args["error"] = exc_type.__name__
        ctx.events.append(("X", self._name, self._cat, self._t0, t1, self._args))
        ctx.open_spans -= 1
        return False


def span(name: str, cat: str = "task", **args):
    """Open a span; use as a context manager.  Null object when disabled."""
    if not _tracing:
        return _NULL
    ctx = _current()
    if ctx is None or ctx.config is None:
        return _NULL
    return _Span(ctx, name, cat, args)


def wait_span(op: str, waited: float, hidden: float, nbytes: int = 0) -> None:
    """Record a retroactive ``wait:{op}`` span covering the just-finished
    exposed-wait window of ``waited`` seconds; ``hidden`` is the portion of
    the op's latency that overlapped useful work (from ``CommStats``)."""
    if not _tracing:
        return
    ctx = _current()
    if ctx is None or ctx.config is None:
        return
    now = time.perf_counter()
    ctx.events.append(
        (
            "X",
            f"wait:{op}",
            "wait",
            now - waited,
            now,
            {"op": op, "bytes": nbytes, "hidden_us": hidden * 1e6},
        )
    )


def _tag_repr(ctx: _RankContext, tag) -> str:
    """Memoized ``repr(tag)`` — tags repeat heavily on hot paths."""
    try:
        r = ctx.tag_repr.get(tag)
        if r is None:
            r = repr(tag)
            ctx.tag_repr[tag] = r
        return r
    except TypeError:  # unhashable tag
        return repr(tag)


def flow_out(dest: int, tag) -> None:
    """Record the send side of a message to world rank ``dest``."""
    if not _tracing:
        return
    ctx = _current()
    if ctx is None or ctx.config is None:
        return
    tr = _tag_repr(ctx, tag)
    key = (dest, tr)
    seq = ctx.send_seq.get(key, 0)
    ctx.send_seq[key] = seq + 1
    ctx.events.append(("s", dest, tr, seq, time.perf_counter()))


def flow_in(source: int, tag) -> None:
    """Record the receive side of a message from world rank ``source``."""
    if not _tracing:
        return
    ctx = _current()
    if ctx is None or ctx.config is None:
        return
    tr = _tag_repr(ctx, tag)
    key = (source, tr)
    seq = ctx.recv_seq.get(key, 0)
    ctx.recv_seq[key] = seq + 1
    ctx.events.append(("f", source, tr, seq, time.perf_counter()))


def annotate(name: str, data) -> None:
    """Attach a JSON-serializable blob (e.g. a CommStats snapshot) to this
    rank's trace; surfaced under ``otherData.annotations`` after merge."""
    if not _tracing:
        return
    ctx = _current()
    if ctx is None or ctx.config is None:
        return
    ctx.annotations[name] = data


def _json_default(obj):
    try:
        return float(obj)
    except Exception:
        return str(obj)


def _flush(ctx: _RankContext) -> None:
    path = rank_file(ctx.config.path, ctx.rank)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        meta = {"k": "M", "rank": ctx.rank, "host": ctx.host, "pid": os.getpid()}
        fh.write(json.dumps(meta) + "\n")
        base = ctx.base
        for ev in ctx.events:
            kind = ev[0]
            if kind == "X":
                _, name, cat, t0, t1, args = ev
                rec = {
                    "k": "X",
                    "n": name,
                    "c": cat,
                    "ts": (t0 + base) * 1e6,
                    "d": (t1 - t0) * 1e6,
                    "a": args,
                }
            else:
                _, peer, tr, seq, t = ev
                rec = {"k": kind, "p": peer, "t": tr, "q": seq, "ts": (t + base) * 1e6}
            fh.write(json.dumps(rec, default=_json_default) + "\n")
        for name, data in ctx.annotations.items():
            fh.write(json.dumps({"k": "A", "n": name, "a": data}, default=_json_default) + "\n")
        fh.write(json.dumps({"k": "Z", "open": ctx.open_spans}) + "\n")
    ctx.events = []
    ctx.annotations = {}
