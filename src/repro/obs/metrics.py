"""A cross-rank metrics registry: counters and gauges, reduced at report
time via the existing collectives.

``CommStats``, ``TrainStats``, and the transport counter dicts each track
their own numbers today; :class:`MetricsRegistry` pulls them into one
namespace (``comm.*``, ``train.*``, ``transport.*``) via the ``ingest_*``
adapters, and :meth:`MetricsRegistry.reduce` folds every rank's view into
one table — counters sum via ``allreduce``, gauges report min/mean/max
from an ``allgather`` (name sets may differ per rank, so alignment happens
on the gathered dicts, not positionally).
"""

from __future__ import annotations

import numpy as np


class Counter:
    """A monotonically accumulated value; summed across ranks on reduce."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += float(amount)


class Gauge:
    """A point-in-time value; min/mean/max across ranks on reduce."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


def comm_stats_snapshot(stats) -> dict:
    """A JSON-serializable ``CommStats`` snapshot (embedded verbatim into
    traces, so analyzer comm rows agree with the live counters exactly)."""
    return {
        "collectives": {k: int(v) for k, v in stats.collectives.items()},
        "collective_bytes": {k: int(v) for k, v in stats.collective_bytes.items()},
        "wire_out": {k: int(v) for k, v in stats.collective_wire_sent.items()},
        "wire_in": {k: int(v) for k, v in stats.collective_wire_recv.items()},
        "wire_out_inter": {k: int(v) for k, v in stats.collective_wire_sent_inter.items()},
        "wire_in_inter": {k: int(v) for k, v in stats.collective_wire_recv_inter.items()},
        "segments": {k: int(v) for k, v in stats.collective_segments.items()},
        "wait_s": {k: float(v) for k, v in stats.wait_seconds.items()},
        "overlap_s": {k: float(v) for k, v in stats.overlap_seconds.items()},
        "sends": int(stats.sends),
        "recvs": int(stats.recvs),
    }


class MetricsRegistry:
    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).add(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    # ------------------------------------------------------------------
    # Ingest adapters: unify the existing per-subsystem stat objects.

    def ingest_comm_stats(self, stats, prefix: str = "comm") -> None:
        ops = set(stats.collectives) | set(stats.collective_bytes)
        for op in sorted(ops):
            self.inc(f"{prefix}.{op}.calls", stats.collectives.get(op, 0))
            self.inc(f"{prefix}.{op}.bytes", stats.collective_bytes.get(op, 0))
        self.inc(f"{prefix}.sends", stats.sends)
        self.inc(f"{prefix}.recvs", stats.recvs)
        self.inc(f"{prefix}.wire_out", stats.total_wire_sent())
        self.inc(f"{prefix}.wire_in", stats.total_wire_recv())
        self.inc(f"{prefix}.wire_out_inter", stats.total_wire_sent_inter())
        self.inc(f"{prefix}.wire_in_inter", stats.total_wire_recv_inter())
        self.inc(f"{prefix}.segments", stats.total_segments())
        self.inc(f"{prefix}.wait_ms", stats.total_wait_seconds() * 1e3)
        self.inc(f"{prefix}.overlap_ms", stats.total_overlap_seconds() * 1e3)

    def ingest_train_stats(self, stats, prefix: str = "train") -> None:
        self.inc(f"{prefix}.steps", stats.steps)
        self.inc(f"{prefix}.total_s", stats.total_seconds)
        if stats.steps:
            self.set(f"{prefix}.step_ms", 1e3 * stats.total_seconds / stats.steps)
            self.set(f"{prefix}.last_loss", stats.last_loss)

    def ingest_transport(self, transport, prefix: str = "transport") -> None:
        for key in sorted(transport or {}):
            self.inc(f"{prefix}.{key}", transport[key])

    def ingest_faults(self, failed_ranks, prefix: str = "faults") -> None:
        self.inc(f"{prefix}.failed_ranks", len(failed_ranks or ()))

    # ------------------------------------------------------------------

    def local(self) -> dict:
        """This rank's raw values (no communication)."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
        }

    def reduce(self, comm) -> dict:
        """Fold every rank's registry into one view (collective: every
        member of ``comm`` must call this)."""
        names = comm.allgather(sorted(self._counters))
        union = sorted(set().union(*names)) if names else []
        values = np.array(
            [self._counters[n].value if n in self._counters else 0.0 for n in union],
            dtype=np.float64,
        )
        totals = comm.allreduce(values) if union else values
        counters = {n: float(v) for n, v in zip(union, totals)}

        gathered = comm.allgather({n: g.value for n, g in self._gauges.items()})
        gauges: dict[str, dict] = {}
        for per_rank in gathered:
            for name, value in per_rank.items():
                slot = gauges.setdefault(name, {"min": value, "max": value, "sum": 0.0, "n": 0})
                slot["min"] = min(slot["min"], value)
                slot["max"] = max(slot["max"], value)
                slot["sum"] += value
                slot["n"] += 1
        return {
            "nranks": comm.size,
            "counters": counters,
            "gauges": {
                n: {"min": s["min"], "mean": s["sum"] / s["n"], "max": s["max"]}
                for n, s in sorted(gauges.items())
            },
        }

    @staticmethod
    def render(reduced: dict) -> str:
        lines = [f"metrics over {reduced.get('nranks', '?')} ranks:"]
        counters = reduced.get("counters", {})
        if counters:
            lines.append(f"  {'counter':<32} {'total':>16}")
            for name in sorted(counters):
                lines.append(f"  {name:<32} {counters[name]:>16,.0f}")
        gauges = reduced.get("gauges", {})
        if gauges:
            lines.append(f"  {'gauge':<32} {'min':>12} {'mean':>12} {'max':>12}")
            for name, s in gauges.items():
                lines.append(
                    f"  {name:<32} {s['min']:>12.3f} {s['mean']:>12.3f} {s['max']:>12.3f}"
                )
        return "\n".join(lines)

    def report(self, comm) -> str:
        """Collective: reduce across ``comm`` and render the table."""
        return self.render(self.reduce(comm))
