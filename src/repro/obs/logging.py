"""The standard ``repro`` logger with a ``[rank R @ host]`` prefix.

Every backend installs the rank identity via :mod:`repro.obs.tracer`
(``enter_rank``) whether or not tracing is on; a logging filter reads it
lazily per record, so one logger configuration serves the driver
(``[driver]``), thread-backend ranks (thread-local identity), and forked
children (process-global identity) alike.
"""

from __future__ import annotations

import logging
import sys

from repro.obs import tracer

_LOGGER = "repro"
_configured = False


class _RankPrefixFilter(logging.Filter):
    def filter(self, record: logging.LogRecord) -> bool:
        ident = tracer.identity()
        if ident is None:
            record.rankprefix = "[driver] "
        else:
            record.rankprefix = f"[rank {ident[0]} @ {ident[1]}] "
        return True


def configure(stream=None, level: int = logging.INFO, force: bool = False) -> logging.Logger:
    """Attach the prefixing stream handler to the ``repro`` root logger.

    Idempotent; pass ``force=True`` to rebind (e.g. to a capture stream in
    tests).  Defaults to stdout so ``fit(verbose=True)`` output lands where
    the old ``print`` did.
    """
    global _configured
    logger = logging.getLogger(_LOGGER)
    if _configured and not force:
        return logger
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
    handler.setFormatter(logging.Formatter("%(rankprefix)s%(message)s"))
    handler.addFilter(_RankPrefixFilter())
    logger.addHandler(handler)
    logger.setLevel(level)
    # Propagation stays on: the root logger normally has no handlers, so
    # nothing double-prints, and test harnesses (pytest's caplog) capture
    # ``repro.*`` records through the root as they always did.
    _configured = True
    return logger


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a configured logger under the ``repro`` namespace."""
    configure()
    if not name:
        return logging.getLogger(_LOGGER)
    if name == _LOGGER or name.startswith(_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LOGGER}.{name}")
