"""Merge per-rank trace files into one Chrome trace-event JSON.

The merged document loads directly in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``: one track (pid) per rank, ``X`` complete events
for spans, and ``s``/``f`` flow pairs drawing send→recv arrows.  Flow
sides are matched by ``(source, dest, tag, sequence)`` — deterministic
because mailbox delivery is FIFO per ``(source, tag)``.

:func:`validate` is the schema gate used by CI and the tests: every span
closed with non-negative duration, events time-ordered and properly
nested per track, and every flow resolved to exactly one send and one
receive side.
"""

from __future__ import annotations

import json
import os
import re

from repro.obs import tracer

#: Nesting slack (µs) for float round-off when checking span containment.
_NEST_SLACK_US = 1.5


def _read_rank_file(path: str) -> list[dict]:
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def merge_traces(path: str, nranks: int, *, keep_rank_files: bool = False) -> str:
    """Fold ``{path}.rank{R}`` files for ranks ``0..nranks-1`` into a single
    Chrome-trace JSON at ``path``.  Missing rank files (crashed ranks) are
    tolerated and listed under ``otherData.missing_ranks``."""
    events: list[dict] = []
    sends: dict = {}
    recvs: dict = {}
    annotations: dict = {}
    hosts: dict = {}
    unclosed: dict = {}
    missing: list[int] = []
    seen_files: list[str] = []

    for rank in range(nranks):
        rf = tracer.rank_file(path, rank)
        if not os.path.exists(rf):
            missing.append(rank)
            continue
        seen_files.append(rf)
        records = _read_rank_file(rf)
        host = "?"
        spans = []
        for rec in records:
            kind = rec.get("k")
            if kind == "M":
                host = rec.get("host", "?")
            elif kind == "X":
                spans.append(rec)
            elif kind == "s":
                sends[(rank, rec["p"], rec["t"], rec["q"])] = rec["ts"]
            elif kind == "f":
                recvs[(rec["p"], rank, rec["t"], rec["q"])] = rec["ts"]
            elif kind == "A":
                annotations.setdefault(str(rank), {})[rec["n"]] = rec["a"]
            elif kind == "Z" and rec.get("open"):
                unclosed[str(rank)] = rec["open"]
        hosts[str(rank)] = host
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": rank,
                "tid": 0,
                "args": {"name": f"rank {rank} @ {host}"},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "process_sort_index",
                "pid": rank,
                "tid": 0,
                "args": {"sort_index": rank},
            }
        )
        for rec in sorted(spans, key=lambda r: (r["ts"], -r["d"])):
            events.append(
                {
                    "ph": "X",
                    "name": rec["n"],
                    "cat": rec["c"],
                    "ts": rec["ts"],
                    "dur": rec["d"],
                    "pid": rank,
                    "tid": 0,
                    "args": rec.get("a", {}),
                }
            )

    flow_id = 0
    unresolved = 0
    for key, send_ts in sorted(sends.items(), key=lambda kv: kv[1]):
        recv_ts = recvs.pop(key, None)
        if recv_ts is None:
            unresolved += 1
            continue
        flow_id += 1
        src, dst, _tag, _seq = key
        events.append(
            {
                "ph": "s",
                "id": flow_id,
                "name": "msg",
                "cat": "flow",
                "pid": src,
                "tid": 0,
                "ts": send_ts,
                "bp": "e",
            }
        )
        events.append(
            {
                "ph": "f",
                "id": flow_id,
                "name": "msg",
                "cat": "flow",
                "pid": dst,
                "tid": 0,
                "ts": recv_ts,
                "bp": "e",
            }
        )
    unresolved += len(recvs)  # receive sides whose send record never appeared

    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro.obs",
            "nranks": nranks,
            "hosts": hosts,
            "annotations": annotations,
            "flows": flow_id,
            "unresolved_flows": unresolved,
            "missing_ranks": missing,
            "unclosed_spans": unclosed,
        },
    }
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    if not keep_rank_files:
        for rf in seen_files:
            os.remove(rf)
    return path


def salvage_traces(
    path: str, nranks: int | None = None, *, keep_rank_files: bool = False
) -> tuple[str, list[int], list[int]]:
    """Merge whatever per-rank files a dead job left behind.

    A job that crashes before the launcher's merge step leaves
    ``{path}.rank{R}`` files on disk with no combined trace.  This folds
    every rank file found into a Chrome trace at ``path`` and returns
    ``(path, found_ranks, missing_ranks)``.  When ``nranks`` is ``None``
    the world size is inferred as ``max(found rank) + 1`` — a lower bound,
    since trailing ranks that never opened their file leave no evidence —
    and intermediate gaps still show up as missing.  Raises
    ``FileNotFoundError`` when there is nothing to salvage.
    """
    suffix_re = re.compile(r"\.rank(\d+)$")
    found: list[int] = []
    directory = os.path.dirname(os.path.abspath(path)) or "."
    base = os.path.basename(path)
    if os.path.isdir(directory):
        for name in os.listdir(directory):
            if not name.startswith(base + ".rank"):
                continue
            m = suffix_re.search(name)
            if m:
                found.append(int(m.group(1)))
    if not found:
        raise FileNotFoundError(
            f"no per-rank trace files matching {path}.rank* to salvage"
        )
    found.sort()
    if nranks is None:
        nranks = found[-1] + 1
    merge_traces(path, nranks, keep_rank_files=keep_rank_files)
    missing = sorted(set(range(nranks)) - set(found))
    return path, found, missing


def validate(doc: dict) -> list[str]:
    """Schema-check a merged trace; returns a list of problems (empty when
    the trace is well-formed)."""
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["trace has no traceEvents list"]

    other = doc.get("otherData", {})
    if other.get("missing_ranks"):
        problems.append(f"missing rank files: {other['missing_ranks']}")
    if other.get("unclosed_spans"):
        problems.append(f"unclosed spans at shutdown: {other['unclosed_spans']}")
    if other.get("unresolved_flows"):
        problems.append(f"{other['unresolved_flows']} unresolved flows")

    tracks: dict = {}
    flows: dict = {}
    for ev in events:
        ph = ev.get("ph")
        if ph not in ("X", "M", "s", "f"):
            problems.append(f"unknown event phase {ph!r}")
        elif ph == "X":
            if "pid" not in ev or "ts" not in ev or "dur" not in ev or "name" not in ev:
                problems.append(f"malformed X event: {ev}")
                continue
            if ev["dur"] < 0 or ev["ts"] < 0:
                problems.append(f"negative ts/dur on span {ev['name']!r}")
            tracks.setdefault(ev["pid"], []).append((ev["ts"], ev["dur"], ev["name"]))
        elif ph in ("s", "f"):
            flows.setdefault(ev["id"], []).append(ph)

    for pid, spans in sorted(tracks.items()):
        starts = [s[0] for s in spans]
        if starts != sorted(starts):
            problems.append(f"track pid={pid} events are not time-ordered")
        stack: list[float] = []  # end times of currently open ancestors
        for ts, dur, name in sorted(spans, key=lambda s: (s[0], -s[1])):
            while stack and ts >= stack[-1] - _NEST_SLACK_US:
                stack.pop()
            if stack and ts + dur > stack[-1] + _NEST_SLACK_US:
                problems.append(
                    f"span {name!r} on pid={pid} overlaps its enclosing span "
                    f"(start={ts:.1f}us dur={dur:.1f}us parent_end={stack[-1]:.1f}us)"
                )
            stack.append(ts + dur)

    for fid, sides in sorted(flows.items()):
        if sorted(sides) != ["f", "s"]:
            problems.append(f"flow id={fid} has sides {sides} (want one s + one f)")

    return problems


def validate_file(path: str) -> list[str]:
    with open(path) as fh:
        return validate(json.load(fh))
