"""Cartesian process grids over a communicator.

A CNN tensor has dimensions (N, C, H, W); the paper parallelizes by
partitioning a subset of them.  A :class:`ProcessGrid` arranges the ranks of
a communicator into a dense multi-dimensional grid with one axis per tensor
dimension (axes of extent 1 for unpartitioned dimensions), e.g.:

* pure sample parallelism on 16 GPUs:      grid ``(16, 1, 1, 1)``
* 4-way spatial (2x2) on 4 GPUs:           grid ``(1, 1, 2, 2)``
* hybrid 4 samples x 2x2 spatial, 16 GPUs: grid ``(4, 1, 2, 2)``

Ranks map to coordinates in row-major (C) order, so the *last* axes vary
fastest.  Spatial axes are last, which places the members of one sample's
spatial group on consecutive ranks — i.e. packed onto the same node first,
exactly the placement the paper uses ("a sample is being partitioned across
two or four nodes" only for 8/16-way spatial on 4-GPU nodes).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.comm.communicator import Communicator


class ProcessGrid:
    """A dense Cartesian arrangement of the ranks of a communicator."""

    def __init__(self, comm: Communicator, shape: Sequence[int]) -> None:
        shape = tuple(int(s) for s in shape)
        if any(s < 1 for s in shape):
            raise ValueError(f"grid shape must be positive, got {shape}")
        if math.prod(shape) != comm.size:
            raise ValueError(
                f"grid shape {shape} requires {math.prod(shape)} ranks, "
                f"but communicator has {comm.size}"
            )
        self.comm = comm
        self.shape = shape
        self.ndim = len(shape)
        self.coords: tuple[int, ...] = tuple(
            int(c) for c in np.unravel_index(comm.rank, shape)
        )
        self._axis_comms: dict[tuple[int, ...], Communicator] = {}

    # -- coordinate arithmetic -------------------------------------------------
    def rank_of(self, coords: Sequence[int]) -> int:
        """Comm rank at the given grid coordinates."""
        coords = tuple(coords)
        if len(coords) != self.ndim:
            raise ValueError(f"expected {self.ndim} coords, got {len(coords)}")
        for c, s in zip(coords, self.shape):
            if not 0 <= c < s:
                raise ValueError(f"coords {coords} out of range for grid {self.shape}")
        return int(np.ravel_multi_index(coords, self.shape))

    def coords_of(self, rank: int) -> tuple[int, ...]:
        return tuple(int(c) for c in np.unravel_index(rank, self.shape))

    def neighbor(self, axis: int, displacement: int) -> int | None:
        """Comm rank of the neighbor ``displacement`` steps along ``axis``.

        Returns ``None`` at the grid boundary (no periodic wraparound —
        convolution halos stop at the global tensor edge).
        """
        c = self.coords[axis] + displacement
        if not 0 <= c < self.shape[axis]:
            return None
        coords = list(self.coords)
        coords[axis] = c
        return self.rank_of(coords)

    # -- sub-communicators -------------------------------------------------------
    def axis_comm(self, axis: int) -> Communicator:
        """Communicator over ranks varying along ``axis`` (others fixed).

        E.g. on a hybrid grid ``(4, 1, 2, 2)``, ``axis_comm(0)`` is this
        rank's *sample group* peer set and ``axes_comm((2, 3))`` its
        *spatial group*.

        This is collective over the grid's communicator: all ranks must call
        it, in the same order, the first time (results are cached).
        """
        return self.axes_comm((axis,))

    def axes_comm(self, axes: Sequence[int]) -> Communicator:
        """Communicator over the sub-grid spanned by ``axes``.

        Ranks sharing coordinates on all *other* axes form one group; the
        new comm's ranks are ordered row-major over ``axes``.  Collective on
        first use (cached thereafter).
        """
        axes = tuple(sorted(set(int(a) for a in axes)))
        for a in axes:
            if not 0 <= a < self.ndim:
                raise ValueError(f"axis {a} out of range for grid {self.shape}")
        cached = self._axis_comms.get(axes)
        if cached is not None:
            return cached
        fixed = [c for i, c in enumerate(self.coords) if i not in axes]
        color = 0
        for i, c in enumerate(fixed):
            color = color * 10007 + c + 1  # injective enough for dense grids
        key = 0
        for a in axes:
            key = key * self.shape[a] + self.coords[a]
        sub = self.comm.split(color=color, key=key)
        assert sub is not None
        self._axis_comms[axes] = sub
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessGrid(shape={self.shape}, coords={self.coords})"
