"""Block partition arithmetic and zero-filled region extraction.

Implements the index-set machinery of the paper's §II-C: a *block*
distribution of ``n`` indices over ``nparts`` parts assigns contiguous,
near-equal intervals ("every processor has the same amount of data,
excepting minor imbalances due to divisibility").  The first ``n % nparts``
parts receive one extra index.
"""

from __future__ import annotations

import numpy as np


def ceil_div(a: int, b: int) -> int:
    """Ceiling division, exact for negative numerators (floor-based)."""
    return -(-a // b)


def block_bounds(n: int, nparts: int, part: int) -> tuple[int, int]:
    """Half-open interval ``[lo, hi)`` of indices owned by ``part``.

    >>> [block_bounds(10, 3, p) for p in range(3)]
    [(0, 4), (4, 7), (7, 10)]
    """
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    if not 0 <= part < nparts:
        raise ValueError(f"part={part} out of range for {nparts} parts")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    base, rem = divmod(n, nparts)
    lo = part * base + min(part, rem)
    hi = lo + base + (1 if part < rem else 0)
    return lo, hi


def block_size(n: int, nparts: int, part: int) -> int:
    """Number of indices owned by ``part`` (``|I_p(D(m))|``)."""
    lo, hi = block_bounds(n, nparts, part)
    return hi - lo


def owner_of_index(n: int, nparts: int, index: int) -> int:
    """The part owning global ``index`` under a block distribution."""
    if not 0 <= index < n:
        raise ValueError(f"index={index} out of range [0, {n})")
    base, rem = divmod(n, nparts)
    # The first `rem` parts have size base+1 and cover [0, rem*(base+1)).
    boundary = rem * (base + 1)
    if index < boundary:
        return index // (base + 1)
    if base == 0:
        # All remaining parts are empty; the boundary check above must have hit.
        raise AssertionError("unreachable: index beyond populated parts")
    return rem + (index - boundary) // base


def block_coords_of_interval(
    n: int, nparts: int, lo: int, hi: int
) -> tuple[int, int]:
    """Inclusive range ``(c0, c1)`` of parts overlapping ``[lo, hi)``.

    ``[lo, hi)`` is clipped to ``[0, n)`` first; an empty clipped interval
    returns ``(0, -1)`` (an empty coordinate range).
    """
    lo, hi = max(lo, 0), min(hi, n)
    if lo >= hi:
        return (0, -1)
    return owner_of_index(n, nparts, lo), owner_of_index(n, nparts, hi - 1)


def intersect(a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int]:
    """Intersection of two half-open intervals (may be empty: lo >= hi)."""
    return max(a[0], b[0]), min(a[1], b[1])


def interval_is_empty(iv: tuple[int, int]) -> bool:
    return iv[0] >= iv[1]


def extract_padded(
    arr: np.ndarray,
    lo: tuple[int, ...],
    hi: tuple[int, ...],
    fill: float = 0.0,
) -> np.ndarray:
    """Extract ``arr[lo:hi]`` per dimension, zero-filling out-of-range parts.

    ``lo`` may be negative and ``hi`` may exceed the array extent; the
    out-of-range region is filled with ``fill``.  This is how virtual
    convolution padding is materialized at global tensor boundaries while
    interior boundaries are filled by halo data.
    """
    if len(lo) != arr.ndim or len(hi) != arr.ndim:
        raise ValueError(
            f"lo/hi must have {arr.ndim} entries, got {len(lo)}/{len(hi)}"
        )
    out_shape = tuple(h - b for b, h in zip(lo, hi))
    if any(s < 0 for s in out_shape):
        raise ValueError(f"negative extraction shape {out_shape}")

    in_bounds = all(
        b >= 0 and h <= n for b, h, n in zip(lo, hi, arr.shape)
    )
    if in_bounds:
        sl = tuple(slice(b, h) for b, h in zip(lo, hi))
        return arr[sl].copy()

    out = np.full(out_shape, fill, dtype=arr.dtype)
    src_sl, dst_sl = [], []
    for b, h, n in zip(lo, hi, arr.shape):
        s_lo, s_hi = max(b, 0), min(h, n)
        if s_lo >= s_hi:
            return out  # fully out of range along this dim
        src_sl.append(slice(s_lo, s_hi))
        dst_sl.append(slice(s_lo - b, s_hi - b))
    out[tuple(dst_sl)] = arr[tuple(src_sl)]
    return out


def place_region(
    dest: np.ndarray,
    region: np.ndarray,
    offset: tuple[int, ...],
    accumulate: bool = False,
) -> None:
    """Write (or add) ``region`` into ``dest`` at ``offset`` (clipping).

    Parts of ``region`` falling outside ``dest`` are dropped — the inverse
    of the zero-fill in :func:`extract_padded`, used when accumulating
    reverse-halo contributions whose virtual-padding parts are discarded.
    """
    src_sl, dst_sl = [], []
    for off, rn, dn in zip(offset, region.shape, dest.shape):
        d_lo, d_hi = max(off, 0), min(off + rn, dn)
        if d_lo >= d_hi:
            return
        dst_sl.append(slice(d_lo, d_hi))
        src_sl.append(slice(d_lo - off, d_hi - off))
    if accumulate:
        dest[tuple(dst_sl)] += region[tuple(src_sl)]
    else:
        dest[tuple(dst_sl)] = region[tuple(src_sl)]
