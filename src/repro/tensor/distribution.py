"""Tensor distributions: ``D = (D(0), ..., D(M-1))`` from the paper's §II-C.

Each tensor dimension is either

* **BLOCK** — block-partitioned over the grid axis with the same index
  (spatial dimensions must be blocked: "applying convolution at a point
  requires spatially adjacent data", §III), or
* **REPLICATED** — every rank holds the full extent of the dimension.
  Combined with a grid axis of extent > 1, a replicated dimension means the
  data is duplicated across that axis (e.g. the weights ``w`` are replicated
  on every processor for sample and spatial parallelism, §III-A).

A dimension whose grid axis has extent 1 is trivially both; we normalize it
to BLOCK so equality comparisons are canonical.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from repro.tensor.indexing import block_bounds


class DimKind(str, Enum):
    BLOCK = "block"
    REPLICATED = "replicated"


@dataclass(frozen=True)
class Distribution:
    """How a tensor's dimensions map onto a process grid.

    ``grid_shape[d]`` is the number of grid parts along tensor dimension
    ``d``; ``kinds[d]`` says whether the dimension is block-partitioned over
    that axis or replicated across it.
    """

    grid_shape: tuple[int, ...]
    kinds: tuple[DimKind, ...]

    def __post_init__(self) -> None:
        if len(self.grid_shape) != len(self.kinds):
            raise ValueError(
                f"grid_shape has {len(self.grid_shape)} dims but kinds has "
                f"{len(self.kinds)}"
            )
        if any(g < 1 for g in self.grid_shape):
            raise ValueError(f"grid axes must be positive: {self.grid_shape}")
        # Normalize: an axis of extent 1 is canonically BLOCK.
        object.__setattr__(
            self,
            "kinds",
            tuple(
                DimKind.BLOCK if g == 1 else DimKind(k)
                for g, k in zip(self.grid_shape, self.kinds)
            ),
        )

    # -- constructors ------------------------------------------------------------
    @classmethod
    def make(
        cls,
        grid_shape: Sequence[int],
        replicated_axes: Iterable[int] = (),
    ) -> "Distribution":
        """Block-partition every dimension except ``replicated_axes``."""
        grid_shape = tuple(int(g) for g in grid_shape)
        replicated = set(replicated_axes)
        kinds = tuple(
            DimKind.REPLICATED if d in replicated else DimKind.BLOCK
            for d in range(len(grid_shape))
        )
        return cls(grid_shape, kinds)

    @classmethod
    def fully_replicated(cls, ndim: int, grid_shape: Sequence[int]) -> "Distribution":
        """Every rank holds the whole tensor (how weights are stored)."""
        return cls(
            tuple(int(g) for g in grid_shape),
            tuple(DimKind.REPLICATED for _ in range(ndim)),
        )

    # -- index sets (paper §II-C) ---------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.grid_shape)

    def parts(self, d: int) -> int:
        """Number of distinct index blocks along dimension ``d``."""
        return self.grid_shape[d] if self.kinds[d] is DimKind.BLOCK else 1

    def dim_bounds(self, global_shape: Sequence[int], d: int, coord: int) -> tuple[int, int]:
        """``I_p(D(d))`` as a half-open interval for grid coordinate ``coord``."""
        if self.kinds[d] is DimKind.REPLICATED:
            return 0, int(global_shape[d])
        return block_bounds(int(global_shape[d]), self.grid_shape[d], coord)

    def local_bounds(
        self, global_shape: Sequence[int], coords: Sequence[int]
    ) -> tuple[tuple[int, int], ...]:
        """``I_p(D)``: per-dimension intervals owned at grid ``coords``."""
        if len(coords) != self.ndim or len(global_shape) != self.ndim:
            raise ValueError("coords/global_shape rank mismatch")
        return tuple(
            self.dim_bounds(global_shape, d, coords[d]) for d in range(self.ndim)
        )

    def local_shape(
        self, global_shape: Sequence[int], coords: Sequence[int]
    ) -> tuple[int, ...]:
        return tuple(hi - lo for lo, hi in self.local_bounds(global_shape, coords))

    def is_split(self, d: int) -> bool:
        """True if dimension ``d`` is actually partitioned (>1 block)."""
        return self.kinds[d] is DimKind.BLOCK and self.grid_shape[d] > 1

    def replication_factor(self) -> int:
        """How many ranks hold each element (1 = pure partitioning)."""
        factor = 1
        for g, k in zip(self.grid_shape, self.kinds):
            if k is DimKind.REPLICATED:
                factor *= g
        return factor

    def __str__(self) -> str:
        parts = []
        for g, k in zip(self.grid_shape, self.kinds):
            parts.append(f"{g}" if k is DimKind.BLOCK else f"*{g}")
        return "Dist(" + "x".join(parts) + ")"
