"""Distributed tensor substrate (the paper's C++ tensor library, in Python).

The paper builds a small distributed tensor library presenting "a
partitioned global view of multidimensional tensors" with halo exchange
(Section IV).  This package reproduces it:

* :mod:`repro.tensor.indexing` — block partition arithmetic (the index sets
  ``I_p(D(m))`` of §II-C) and zero-filled region extraction.
* :mod:`repro.tensor.grid` — Cartesian process grids over a communicator
  with per-axis sub-communicators.
* :mod:`repro.tensor.distribution` — per-dimension Block / Replicated
  distributions ``D = (D(0), ..., D(M-1))``.
* :mod:`repro.tensor.dist_tensor` — :class:`DistTensor`: local shards with
  global metadata, collective ``gather_region`` (generalized halo) and
  ``scatter_region_add`` (reverse halo accumulation).
* :mod:`repro.tensor.halo` — the optimized neighbor-to-neighbor halo
  exchange for uniformly partitioned tensors (§III-A) and the overlapped,
  request-driven :class:`~repro.tensor.halo.RegionExchange` that hides
  exchanges behind interior computation (§IV-A).
* :mod:`repro.tensor.shuffle` — redistribution between two distributions
  (§III-C): blocking all-to-all and the overlapped, plan-cached
  :class:`~repro.tensor.shuffle.ShuffleExchange`.
"""

from repro.tensor.indexing import (
    block_bounds,
    block_coords_of_interval,
    block_size,
    extract_padded,
    intersect,
)
from repro.tensor.grid import ProcessGrid
from repro.tensor.distribution import DimKind, Distribution
from repro.tensor.dist_tensor import DistTensor
from repro.tensor.halo import RegionExchange, halo_exchange, start_region_exchange
from repro.tensor.shuffle import (
    ShuffleExchange,
    ShufflePlan,
    plan_shuffle,
    shuffle,
    shuffle_plan_stats,
    start_shuffle,
)

__all__ = [
    "DimKind",
    "DistTensor",
    "Distribution",
    "ProcessGrid",
    "RegionExchange",
    "ShuffleExchange",
    "ShufflePlan",
    "block_bounds",
    "block_coords_of_interval",
    "block_size",
    "extract_padded",
    "halo_exchange",
    "intersect",
    "plan_shuffle",
    "shuffle",
    "shuffle_plan_stats",
    "start_region_exchange",
    "start_shuffle",
]
