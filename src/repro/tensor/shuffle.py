"""Data redistribution between two distributions (the paper's §III-C).

When adjacent layers use different distributions (e.g. a spatially
partitioned convolution feeding a sample-parallel convolution, or a
convolutional layer feeding a model-parallel FC layer), the activations and
error signals must be shuffled: "a processor sends indices it no longer
owns, and receives its new indices" via an all-to-all collective.

Replication is handled on both sides:

* if the *source* replicates a dimension, only the canonical replica (grid
  coordinate 0 along every replicated axis) sends, so each global element is
  shipped exactly once;
* if the *destination* replicates a dimension, every replica receives its
  copy.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.dist_tensor import DistTensor
from repro.tensor.distribution import Distribution
from repro.tensor.grid import ProcessGrid
from repro.tensor.indexing import intersect, interval_is_empty, place_region


def shuffle(
    src: DistTensor,
    dst_grid: ProcessGrid,
    dst_dist: Distribution,
) -> DistTensor:
    """Redistribute ``src`` to ``dst_dist`` over ``dst_grid``.

    Both grids must be built over the same communicator (the same set of
    ranks in the same order); the grid *shapes* may differ arbitrarily.
    Collective: every rank must call.
    """
    comm = src.comm
    if dst_grid.comm.size != comm.size or dst_grid.comm.members != comm.members:
        raise ValueError("shuffle requires src and dst grids over the same ranks")
    if dst_dist.ndim != src.dist.ndim:
        raise ValueError(
            f"distribution rank mismatch: {src.dist.ndim} vs {dst_dist.ndim}"
        )
    global_shape = src.global_shape

    # -- what do I send? ------------------------------------------------------
    i_am_canonical = all(
        src.grid.coords[d] == 0
        for d in range(src.dist.ndim)
        if not src.dist.is_split(d) and src.grid.shape[d] > 1
    )
    my_src_bounds = src.bounds
    sends: list[list[tuple[tuple[tuple[int, int], ...], np.ndarray]]] = [
        [] for _ in range(comm.size)
    ]
    if i_am_canonical:
        for j in range(comm.size):
            dst_bounds = dst_dist.local_bounds(global_shape, dst_grid.coords_of(j))
            overlap = tuple(
                intersect(a, b) for a, b in zip(my_src_bounds, dst_bounds)
            )
            if any(interval_is_empty(iv) for iv in overlap):
                continue
            sl = tuple(
                slice(iv[0] - b[0], iv[1] - b[0])
                for iv, b in zip(overlap, my_src_bounds)
            )
            sends[j].append((overlap, np.ascontiguousarray(src.local[sl])))

    # -- exchange and assemble ---------------------------------------------------
    received = comm.alltoall(sends)
    my_dst_bounds = dst_dist.local_bounds(global_shape, dst_grid.coords)
    new_local = np.zeros(
        tuple(hi - lo for lo, hi in my_dst_bounds), dtype=src.dtype
    )
    filled = 0
    for pieces in received:
        for region, data in pieces:
            offset = tuple(iv[0] - b[0] for iv, b in zip(region, my_dst_bounds))
            place_region(new_local, data, offset)
            filled += data.size
    expected = new_local.size
    if filled != expected:
        raise RuntimeError(
            f"shuffle assembled {filled} elements but local block has "
            f"{expected}; source distribution did not cover the tensor"
        )
    return DistTensor(dst_grid, dst_dist, global_shape, new_local)


def shuffle_cost_bytes(
    src: DistTensor, dst_grid: ProcessGrid, dst_dist: Distribution
) -> int:
    """Bytes this rank ships in :func:`shuffle` (for model validation tests)."""
    comm = src.comm
    i_am_canonical = all(
        src.grid.coords[d] == 0
        for d in range(src.dist.ndim)
        if not src.dist.is_split(d) and src.grid.shape[d] > 1
    )
    if not i_am_canonical:
        return 0
    total = 0
    itemsize = src.dtype.itemsize
    for j in range(comm.size):
        if j == comm.rank:
            continue
        dst_bounds = dst_dist.local_bounds(src.global_shape, dst_grid.coords_of(j))
        overlap = [intersect(a, b) for a, b in zip(src.bounds, dst_bounds)]
        if any(interval_is_empty(iv) for iv in overlap):
            continue
        count = 1
        for iv in overlap:
            count *= iv[1] - iv[0]
        total += count * itemsize
    return total
