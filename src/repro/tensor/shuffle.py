"""Data redistribution between two distributions (the paper's §III-C).

When adjacent layers use different distributions (e.g. a spatially
partitioned convolution feeding a sample-parallel convolution, or a
convolutional layer feeding a model-parallel FC layer), the activations and
error signals must be shuffled: "a processor sends indices it no longer
owns, and receives its new indices" via an all-to-all collective.

Replication is handled on both sides:

* if the *source* replicates a dimension, only the canonical replica (grid
  coordinate 0 along every replicated axis) sends, so each global element is
  shipped exactly once;
* if the *destination* replicates a dimension, every replica receives its
  copy.

The subsystem mirrors the overlapped halo exchange of
:mod:`repro.tensor.halo`:

* :class:`ShufflePlan` — the static send/receive schedule of one
  redistribution.  Which regions of this rank's shard go to which peers,
  and which pieces arrive from which canonical owners, is a pure function
  of (src grid+distribution, dst grid+distribution, global shape), so the
  plan is computed once per communicator (:func:`plan_shuffle`, cached on
  the communicator keyed by exactly that tuple) instead of re-intersecting
  every rank pair on every training step.
* :class:`ShuffleExchange` (via :func:`start_shuffle`) — the *overlapped*
  redistribution: the shuffle is treated as a first-class nonblocking
  collective (:meth:`~repro.comm.communicator.Communicator.ialltoall`, the
  in-process analogue of an Aluminum/NCCL nonblocking all-to-all).
  :meth:`~ShuffleExchange.start` deposits this rank's payloads and returns
  immediately, so the caller can run independent computation (the next
  layer's kernels on another branch, gradient bucketing, ...) before
  :meth:`~ShuffleExchange.finish` drains and assembles.
* :func:`shuffle` — the blocking form: the identical plan driven through
  one ``alltoall`` collective.  Both forms place the same pieces into a
  zero-initialized destination block, so they are bitwise equal; only the
  synchronization discipline differs (the blocking collective costs two
  rendezvous barriers per call that the nonblocking form removes, and a
  fast rank never waits for slow peers to *read*).

Send payloads can be staged through a :class:`~repro.comm.buffers.BufferPool`
(deferred reclamation once the receivers drop the zero-copy views), the same
discipline the halo send strips use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.comm.communicator import Request
from repro.obs import tracer as _trace
from repro.tensor.dist_tensor import DistTensor
from repro.tensor.distribution import Distribution
from repro.tensor.grid import ProcessGrid
from repro.tensor.indexing import intersect, interval_is_empty, place_region

#: CommStats op name under which shuffle traffic and its wait/overlap split
#: are recorded (both the blocking and the overlapped path).
SHUFFLE_OP = "shuffle"

Region = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class ShufflePlan:
    """Static schedule of one redistribution, from this rank's viewpoint.

    Mirrors :class:`repro.tensor.halo.ExchangePlan`: everything here is a
    pure function of (src grid+distribution, dst grid+distribution, global
    shape) — independent of the tensor *values* and of dtype — so one plan
    serves every training step of a layer boundary.
    """

    global_shape: tuple[int, ...]
    #: This rank's destination block (``I_p(D_dst)``) and its shape.
    dst_bounds: Region
    out_shape: tuple[int, ...]
    #: ``(peer comm-rank, region of my src shard to send)`` in peer order.
    sends: tuple[tuple[int, Region], ...] = ()
    #: ``(canonical owner comm-rank, region of my dst block to receive)``.
    recvs: tuple[tuple[int, Region], ...] = ()
    #: Regions of my dst block served from my own (canonical) src shard.
    local: tuple[Region, ...] = ()
    #: Cells shipped off-rank by this rank (bytes = cells * itemsize).
    sent_cells: int = 0


class _PlanCache:
    """Per-communicator plan cache with hit/miss counters."""

    __slots__ = ("plans", "hits", "misses")

    def __init__(self) -> None:
        self.plans: dict = {}
        self.hits = 0
        self.misses = 0


def _plan_cache(comm) -> _PlanCache:
    cache = getattr(comm, "_shuffle_plans", None)
    if cache is None:
        cache = _PlanCache()
        comm._shuffle_plans = cache
    return cache


def shuffle_plan_stats(comm) -> tuple[int, int]:
    """``(hits, misses)`` of the communicator's shuffle-plan cache."""
    cache = _plan_cache(comm)
    return cache.hits, cache.misses


def _validate(src: DistTensor, dst_grid: ProcessGrid, dst_dist: Distribution) -> None:
    comm = src.comm
    if dst_grid.comm.size != comm.size or dst_grid.comm.members != comm.members:
        raise ValueError("shuffle requires src and dst grids over the same ranks")
    if dst_dist.ndim != src.dist.ndim:
        raise ValueError(
            f"distribution rank mismatch: {src.dist.ndim} vs {dst_dist.ndim}"
        )


def _is_canonical(dist: Distribution, grid_shape, coords) -> bool:
    """Is ``coords`` the canonical replica (coordinate 0 on replicated axes)?"""
    return all(
        coords[d] == 0
        for d in range(dist.ndim)
        if not dist.is_split(d) and grid_shape[d] > 1
    )


def _cells(region: Region) -> int:
    return math.prod(hi - lo for lo, hi in region)


def plan_shuffle(
    src: DistTensor, dst_grid: ProcessGrid, dst_dist: Distribution
) -> ShufflePlan:
    """Build (or fetch from the communicator's cache) the redistribution plan.

    The cache key is ``(src grid shape, src dist, dst grid shape, dst dist,
    global shape)`` — every quantity the schedule depends on; coordinates
    derive from the comm rank, so identical keys give identical plans.
    """
    _validate(src, dst_grid, dst_dist)
    comm = src.comm
    cache = _plan_cache(comm)
    key = (src.grid.shape, src.dist, dst_grid.shape, dst_dist, src.global_shape)
    plan = cache.plans.get(key)
    if plan is not None:
        cache.hits += 1
        return plan
    cache.misses += 1

    global_shape = src.global_shape
    my_src_bounds = src.bounds
    sends: list[tuple[int, Region]] = []
    local: list[Region] = []
    sent_cells = 0
    if _is_canonical(src.dist, src.grid.shape, src.grid.coords):
        for j in range(comm.size):
            dst_b = dst_dist.local_bounds(global_shape, dst_grid.coords_of(j))
            overlap = tuple(
                intersect(a, b) for a, b in zip(my_src_bounds, dst_b)
            )
            if any(interval_is_empty(iv) for iv in overlap):
                continue
            if j == comm.rank:
                local.append(overlap)
            else:
                sends.append((j, overlap))
                sent_cells += _cells(overlap)

    my_dst_bounds = dst_dist.local_bounds(global_shape, dst_grid.coords)
    recvs: list[tuple[int, Region]] = []
    for i in range(comm.size):
        if i == comm.rank:
            continue
        if not _is_canonical(src.dist, src.grid.shape, src.grid.coords_of(i)):
            continue
        src_b = src.dist.local_bounds(global_shape, src.grid.coords_of(i))
        overlap = tuple(intersect(a, b) for a, b in zip(src_b, my_dst_bounds))
        if any(interval_is_empty(iv) for iv in overlap):
            continue
        recvs.append((i, overlap))

    plan = ShufflePlan(
        global_shape,
        my_dst_bounds,
        tuple(hi - lo for lo, hi in my_dst_bounds),
        tuple(sends),
        tuple(recvs),
        tuple(local),
        sent_cells,
    )
    cache.plans[key] = plan
    return plan


def _stage_payloads(src: DistTensor, plan: ShufflePlan, pool) -> list:
    """Per-peer payload list for the plan's sends (pooled when possible)."""
    payloads: list[np.ndarray | None] = [None] * src.comm.size
    for peer, region in plan.sends:
        payloads[peer] = DistTensor._stage_payload(
            src._local_slice_of(region), pool
        )
    return payloads


class ShuffleExchange:
    """An in-flight overlapped redistribution.

    Constructed (not yet started) with the source tensor and destination
    placement; :meth:`start` deposits this rank's payloads into a
    nonblocking all-to-all and places the locally served pieces, after
    which the caller is free to run any computation that does not need the
    redistributed tensor.  :meth:`finish` drains the collective, assembles
    the received pieces, verifies the destination block was covered
    exactly, and returns the new
    :class:`~repro.tensor.dist_tensor.DistTensor`.  :func:`start_shuffle`
    is the construct-and-start convenience used on the hot path.
    """

    def __init__(
        self,
        src: DistTensor,
        dst_grid: ProcessGrid,
        dst_dist: Distribution,
        pool=None,
        plan: ShufflePlan | None = None,
    ) -> None:
        _validate(src, dst_grid, dst_dist)
        self.src = src
        self.dst_grid = dst_grid
        self.dst_dist = dst_dist
        self.plan = plan if plan is not None else plan_shuffle(src, dst_grid, dst_dist)
        self._pool = pool
        self._out: np.ndarray | None = None
        self._request: Request | None = None
        self._filled = 0
        self._result: DistTensor | None = None

    @property
    def started(self) -> bool:
        return self._out is not None

    @property
    def remaining(self) -> int:
        """Pieces not yet received and placed."""
        if self._result is not None or self._request is None:
            return 0
        return len(self.plan.recvs)

    def start(self) -> "ShuffleExchange":
        """Deposit payloads into the nonblocking all-to-all and place the
        locally served pieces.

        Collective: every rank must start the same shuffle at the same
        logical point (nonblocking collectives on a communicator are
        sequence-matched in program order).  Depositing never blocks.
        Returns ``self`` for chaining.
        """
        if self._out is not None:
            raise RuntimeError("ShuffleExchange already started")
        with _trace.span(
            "shuffle.start",
            cat="exchange",
            bytes=int(self.plan.sent_cells * self.src.dtype.itemsize),
        ):
            return self._start()

    def _start(self) -> "ShuffleExchange":
        src = self.src
        comm = src.comm
        plan = self.plan

        self._request = comm.ialltoall(
            _stage_payloads(src, plan, self._pool),
            opname=SHUFFLE_OP,
            count_stats=False,
        )
        comm.stats.record_collective(
            SHUFFLE_OP, plan.sent_cells * src.dtype.itemsize
        )

        # Zero-init the new block and place what we already own; remote
        # pieces are assembled when the collective completes.
        self._out = np.zeros(plan.out_shape, dtype=src.dtype)
        for region in plan.local:
            self._place(region, src._local_slice_of(region))
        return self

    def _place(self, region: Region, data: np.ndarray) -> None:
        offset = tuple(
            r[0] - b[0] for r, b in zip(region, self.plan.dst_bounds)
        )
        place_region(self._out, data, offset)
        self._filled += _cells(region)

    def _assemble(self, received: list) -> None:
        for rank, region in self.plan.recvs:
            self._place(region, received[rank])
        self._check_coverage()
        self._result = DistTensor(
            self.dst_grid, self.dst_dist, self.plan.global_shape, self._out
        )

    def poll(self) -> int:
        """Assemble if every peer has deposited; never blocks.

        Returns the number of pieces still outstanding.
        """
        if self._result is None and self._request is not None:
            if self._request.test():
                self._assemble(self._request.wait())
        return self.remaining

    def finish(self) -> DistTensor:
        """Drain the collective and return the redistributed tensor.

        Pieces target disjoint sub-regions of the destination block, so
        assembly order cannot change the result — the overlapped path is
        bitwise equal to the blocking :func:`shuffle`.
        """
        if self._result is not None:
            return self._result
        if self._out is None:
            self.start()
        with _trace.span("shuffle.finish", cat="exchange", pending=self.remaining):
            self._assemble(self._request.wait())
        return self._result

    def _check_coverage(self) -> None:
        expected = self._out.size
        if self._filled != expected:
            raise RuntimeError(
                f"shuffle assembled {self._filled} elements but local block "
                f"has {expected}; source distribution did not cover the tensor"
            )


def start_shuffle(
    src: DistTensor,
    dst_grid: ProcessGrid,
    dst_dist: Distribution,
    pool=None,
    plan: ShufflePlan | None = None,
) -> ShuffleExchange:
    """Begin an overlapped redistribution of ``src`` to ``dst_dist``.

    Returns a started :class:`ShuffleExchange`; call
    :meth:`~ShuffleExchange.finish` where the redistributed tensor is
    consumed.  ``pool`` stages the send payloads through a
    :class:`~repro.comm.buffers.BufferPool` (deferred reclamation).
    """
    return ShuffleExchange(src, dst_grid, dst_dist, pool=pool, plan=plan).start()


def shuffle(
    src: DistTensor,
    dst_grid: ProcessGrid,
    dst_dist: Distribution,
    pool=None,
) -> DistTensor:
    """Redistribute ``src`` to ``dst_dist`` over ``dst_grid``, blocking.

    Both grids must be built over the same communicator (the same set of
    ranks in the same order); the grid *shapes* may differ arbitrarily.
    Collective: every rank must call.  Driven by the same cached
    :class:`ShufflePlan` as the overlapped path and assembles the identical
    pieces, so the two are bitwise equal; this form pays the two rendezvous
    barriers of the ``alltoall`` collective.
    """
    plan = plan_shuffle(src, dst_grid, dst_dist)
    comm = src.comm

    with _trace.span(
        "shuffle", cat="exchange",
        bytes=int(plan.sent_cells * src.dtype.itemsize),
    ):
        return _shuffle_run(src, dst_grid, dst_dist, plan, comm, pool)


def _shuffle_run(src, dst_grid, dst_dist, plan, comm, pool):
    payloads = _stage_payloads(src, plan, pool)
    comm.stats.record_collective(SHUFFLE_OP, plan.sent_cells * src.dtype.itemsize)

    # Traffic is recorded under "shuffle" above (identically to the
    # overlapped path), so the generic alltoall accounting is suppressed.
    received = comm.alltoall(payloads, count_stats=False, opname=SHUFFLE_OP)

    new_local = np.zeros(plan.out_shape, dtype=src.dtype)
    filled = 0
    for region in plan.local:
        offset = tuple(r[0] - b[0] for r, b in zip(region, plan.dst_bounds))
        place_region(new_local, src._local_slice_of(region), offset)
        filled += _cells(region)
    for rank, region in plan.recvs:
        data = received[rank]
        offset = tuple(r[0] - b[0] for r, b in zip(region, plan.dst_bounds))
        place_region(new_local, data, offset)
        filled += data.size
    if filled != new_local.size:
        raise RuntimeError(
            f"shuffle assembled {filled} elements but local block has "
            f"{new_local.size}; source distribution did not cover the tensor"
        )
    return DistTensor(dst_grid, dst_dist, plan.global_shape, new_local)


def shuffle_cost_bytes(
    src: DistTensor, dst_grid: ProcessGrid, dst_dist: Distribution
) -> int:
    """Bytes this rank ships in :func:`shuffle` (for model validation tests)."""
    plan = plan_shuffle(src, dst_grid, dst_dist)
    return plan.sent_cells * src.dtype.itemsize
