"""Neighbor-to-neighbor halo exchange (the paper's §III-A / Fig. 1b).

This is the optimized exchange pattern for the common case: a uniform halo
width per axis and block partitions wide enough that halos only touch
immediate grid neighbors.  Axes are processed in order and each strip
includes the halo regions already received along earlier axes, so corner
regions propagate transitively — two messages per split axis, matching the
east/west + north/south exchanges of the paper (the 4 corner send/recvs of
the paper's cost model are folded into the second-axis strips; the
performance model in :mod:`repro.perfmodel` accounts for the corner bytes
explicitly, as the paper writes them).

For strided or unaligned cases where dependencies exceed immediate
neighbors, use :meth:`repro.tensor.dist_tensor.DistTensor.gather_region`,
the fully general primitive.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.dist_tensor import DistTensor


def halo_exchange(
    dt: DistTensor,
    widths: Sequence[int],
    fill: float = 0.0,
    pool=None,
) -> np.ndarray:
    """Exchange halos of ``widths[d]`` cells on both sides of each split axis.

    Returns the local shard extended by the halo cells: received data at
    interior partition boundaries, ``fill`` (virtual padding) at global
    tensor boundaries.  Collective over the grid communicator.

    ``pool`` (a :class:`~repro.comm.buffers.BufferPool`) supplies the
    extended staging buffer; the caller may ``give`` it back once done.

    Raises ``ValueError`` if a neighbor owns fewer cells than the requested
    width (the exchange would need data from beyond the immediate neighbor).
    """
    if len(widths) != dt.dist.ndim:
        raise ValueError(f"need {dt.dist.ndim} widths, got {len(widths)}")
    widths = [int(w) for w in widths]
    if any(w < 0 for w in widths):
        raise ValueError(f"halo widths must be >= 0: {widths}")

    grid = dt.grid
    comm = dt.comm
    local = dt.local
    # Every axis is extended by its width: split axes receive neighbor data,
    # unsplit axes and global boundaries keep the fill value (virtual padding).
    eff = widths

    ext_shape = tuple(s + 2 * w for s, w in zip(local.shape, eff))
    if pool is not None:
        out = pool.take(ext_shape, dt.dtype)
        out.fill(fill)
    else:
        out = np.full(ext_shape, fill, dtype=dt.dtype)
    out[tuple(slice(w, w + s) for w, s in zip(eff, local.shape))] = local

    for axis in range(dt.dist.ndim):
        w = eff[axis]
        if w == 0 or not dt.dist.is_split(axis):
            continue  # unsplit axes see only global boundaries -> fill
        left = grid.neighbor(axis, -1)
        right = grid.neighbor(axis, +1)
        _check_width(dt, axis, w, left, right)

        # Strip extents: full (incl. halo) along already-exchanged axes,
        # owned-only along later axes.
        def strip(range_on_axis: tuple[int, int]) -> tuple[slice, ...]:
            sl = []
            for d in range(dt.dist.ndim):
                if d == axis:
                    sl.append(slice(*range_on_axis))
                elif d < axis:
                    sl.append(slice(0, ext_shape[d]))
                else:
                    sl.append(slice(eff[d], eff[d] + local.shape[d]))
            return tuple(sl)

        lo_owned = strip((w, 2 * w))                       # first w owned rows
        hi_owned = strip((w + local.shape[axis] - w, w + local.shape[axis]))
        lo_halo = strip((0, w))                            # before-halo slot
        hi_halo = strip((w + local.shape[axis], 2 * w + local.shape[axis]))

        tag = 100 + axis
        # With a pool, `out` may be recycled before a slow peer pops its
        # mailbox, so sent strips must be materialized (never alias `out`);
        # without one, `out` is fresh per call and zero-copy views are safe.
        stage = (lambda a: a.copy()) if pool is not None else np.ascontiguousarray
        if left is not None:
            comm.send(stage(out[lo_owned]), dest=left, tag=tag)
        if right is not None:
            comm.send(stage(out[hi_owned]), dest=right, tag=tag + 1000)
        if right is not None:
            out[hi_halo] = comm.recv(source=right, tag=tag)
        if left is not None:
            out[lo_halo] = comm.recv(source=left, tag=tag + 1000)
    return out


def _check_width(dt: DistTensor, axis: int, w: int, left: int | None, right: int | None) -> None:
    n = dt.global_shape[axis]
    parts = dt.dist.grid_shape[axis]
    coord = dt.grid.coords[axis]
    for nb_rank, nb_coord in ((left, coord - 1), (right, coord + 1)):
        if nb_rank is None:
            continue
        lo, hi = dt.dist.dim_bounds(dt.global_shape, axis, nb_coord)
        if hi - lo < w:
            raise ValueError(
                f"halo width {w} exceeds neighbor block size {hi - lo} on axis "
                f"{axis} ({parts} parts of {n}); use gather_region instead"
            )
    if dt.local.shape[axis] < w:
        raise ValueError(
            f"halo width {w} exceeds own block size {dt.local.shape[axis]} on "
            f"axis {axis}; use gather_region instead"
        )
