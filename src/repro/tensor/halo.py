"""Halo exchange: blocking neighbor pattern and overlapped region gathers.

Two exchange primitives live here:

* :func:`halo_exchange` — the optimized blocking pattern for the common
  case (paper §III-A / Fig. 1b): a uniform halo width per axis and block
  partitions wide enough that halos only touch immediate grid neighbors.
  Axes are processed in order and each strip includes the halo regions
  already received along earlier axes, so corner regions propagate
  transitively — two messages per split axis, matching the east/west +
  north/south exchanges of the paper.
* :class:`RegionExchange` (via :func:`start_region_exchange`) — the
  *overlapped* generalization (paper §IV-A): the same arbitrary
  hyper-rectangular dependency regions as
  :meth:`~repro.tensor.dist_tensor.DistTensor.gather_region`, but driven by
  nonblocking ``isend``/``irecv`` so the caller can run the interior
  convolution while halo strips are in flight, then assemble received
  pieces as each request lands and finish with the boundary kernels.

Because every rank can compute every peer's dependency region from shared
layer geometry, the overlapped exchange needs no request round-trip: each
rank posts receives for the pieces it lacks and eagerly sends the pieces of
its own shard that peers will ask for — mirrored through the same ownership
resolution on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.comm.communicator import Request
from repro.obs import tracer as _trace
from repro.tensor.dist_tensor import DistTensor
from repro.tensor.indexing import place_region

#: Tag namespace for overlapped region exchanges (sequence-offset per call).
_EXCHANGE_TAG_BASE = 1 << 20

#: CommStats op name under which overlapped halo traffic is recorded.
HALO_OP = "halo_exchange"


def halo_exchange(
    dt: DistTensor,
    widths: Sequence[int],
    fill: float = 0.0,
    pool=None,
) -> np.ndarray:
    """Exchange halos of ``widths[d]`` cells on both sides of each split axis.

    Returns the local shard extended by the halo cells: received data at
    interior partition boundaries, ``fill`` (virtual padding) at global
    tensor boundaries.  Collective over the grid communicator.

    ``pool`` (a :class:`~repro.comm.buffers.BufferPool`) supplies the
    extended staging buffer *and* the contiguous send strips; strips are
    handed back to the pool for deferred reuse once their zero-copy views
    have been consumed by the receiving ranks.  The caller may ``give`` the
    returned buffer back once done.

    Raises ``ValueError`` if a neighbor owns fewer cells than the requested
    width (the exchange would need data from beyond the immediate neighbor).
    """
    with _trace.span("halo", cat="exchange", widths=list(map(int, widths))):
        return _halo_exchange(dt, widths, fill, pool)


def _halo_exchange(
    dt: DistTensor,
    widths: Sequence[int],
    fill: float = 0.0,
    pool=None,
) -> np.ndarray:
    if len(widths) != dt.dist.ndim:
        raise ValueError(f"need {dt.dist.ndim} widths, got {len(widths)}")
    widths = [int(w) for w in widths]
    if any(w < 0 for w in widths):
        raise ValueError(f"halo widths must be >= 0: {widths}")

    grid = dt.grid
    comm = dt.comm
    local = dt.local
    # Every axis is extended by its width: split axes receive neighbor data,
    # unsplit axes and global boundaries keep the fill value (virtual padding).
    eff = widths

    ext_shape = tuple(s + 2 * w for s, w in zip(local.shape, eff))
    if pool is not None:
        out = pool.take(ext_shape, dt.dtype)
        out.fill(fill)
    else:
        out = np.full(ext_shape, fill, dtype=dt.dtype)
    out[tuple(slice(w, w + s) for w, s in zip(eff, local.shape))] = local

    for axis in range(dt.dist.ndim):
        w = eff[axis]
        if w == 0 or not dt.dist.is_split(axis):
            continue  # unsplit axes see only global boundaries -> fill
        left = grid.neighbor(axis, -1)
        right = grid.neighbor(axis, +1)
        _check_width(dt, axis, w, left, right)

        # Strip extents: full (incl. halo) along already-exchanged axes,
        # owned-only along later axes.
        def strip(range_on_axis: tuple[int, int]) -> tuple[slice, ...]:
            sl = []
            for d in range(dt.dist.ndim):
                if d == axis:
                    sl.append(slice(*range_on_axis))
                elif d < axis:
                    sl.append(slice(0, ext_shape[d]))
                else:
                    sl.append(slice(eff[d], eff[d] + local.shape[d]))
            return tuple(sl)

        lo_owned = strip((w, 2 * w))                       # first w owned rows
        hi_owned = strip((w + local.shape[axis] - w, w + local.shape[axis]))
        lo_halo = strip((0, w))                            # before-halo slot
        hi_halo = strip((w + local.shape[axis], 2 * w + local.shape[axis]))

        tag = 100 + axis
        # Sent strips must never alias `out` (with a pool, `out` may be
        # recycled before a slow peer pops its mailbox).  Pool-backed strips
        # are staged into recycled contiguous buffers and returned for
        # deferred reuse once the receivers drop the zero-copy views.
        if left is not None:
            _send_strip(comm, out[lo_owned], left, tag, pool)
        if right is not None:
            _send_strip(comm, out[hi_owned], right, tag + 1000, pool)
        if right is not None:
            out[hi_halo] = comm.recv(source=right, tag=tag)
        if left is not None:
            out[lo_halo] = comm.recv(source=left, tag=tag + 1000)
    return out


def _send_strip(comm, strip: np.ndarray, dest: int, tag: int, pool) -> None:
    """Send ``strip`` as a contiguous payload.

    Without a pool the strip is made contiguous and sent under the usual
    zero-copy no-mutate contract.  With a pool, it is staged into a recycled
    contiguous buffer that returns to the pool (deferred) once the receivers
    drop their zero-copy views — so pooled extended buffers can be recycled
    without waiting on slow peers.
    """
    if pool is None:
        comm.send(np.ascontiguousarray(strip), dest=dest, tag=tag)
        return
    buf = pool.take(strip.shape, strip.dtype)
    np.copyto(buf, strip)
    view = buf.view()
    view.flags.writeable = False
    comm.send(view, dest=dest, tag=tag)
    pool.give_deferred(buf, view)


def any_region_remote(dt: DistTensor, regions: Sequence) -> bool:
    """True if any rank's region reaches beyond its own shard, i.e. the
    gather genuinely exchanges data.  ``regions[r]`` is rank ``r``'s
    ``(lo, hi)`` region; the answer is identical on every rank because the
    regions are derived from shared geometry."""
    dist, shape, grid = dt.dist, dt.global_shape, dt.grid
    for r, (lo, hi) in enumerate(regions):
        bounds = dist.local_bounds(shape, grid.coords_of(r))
        clipped = [
            (max(int(b), 0), min(int(h), shape[d]))
            for d, (b, h) in enumerate(zip(lo, hi))
        ]
        if any(c_hi <= c_lo for c_lo, c_hi in clipped):
            continue  # empty region: nothing to fetch
        for (c_lo, c_hi), (b_lo, b_hi) in zip(clipped, bounds):
            if c_lo < b_lo or c_hi > b_hi:
                return True
    return False


def local_region(
    dt: DistTensor,
    lo: Sequence[int],
    hi: Sequence[int],
    fill: float = 0.0,
    pool=None,
) -> np.ndarray:
    """Materialize a region that is fully local (plus virtual padding)
    without any communication — the fast path layers take when
    :func:`any_region_remote` says no rank needs remote data."""
    lo = tuple(int(v) for v in lo)
    hi = tuple(int(v) for v in hi)
    out_shape = tuple(h - b for b, h in zip(lo, hi))
    if pool is not None:
        out = pool.take(out_shape, dt.dtype)
        out.fill(fill)
    else:
        out = np.full(out_shape, fill, dtype=dt.dtype)
    if all(s > 0 for s in out_shape):
        clipped = tuple(
            (max(b, 0), min(h, dt.global_shape[d]))
            for d, (b, h) in enumerate(zip(lo, hi))
        )
        if all(c_hi > c_lo for c_lo, c_hi in clipped):
            sl = tuple(
                slice(c_lo - b, c_hi - b)
                for (c_lo, c_hi), b in zip(clipped, lo)
            )
            out[sl] = dt._local_slice_of(clipped)
    return out


class RegionExchange:
    """An in-flight overlapped gather of a global region (paper §IV-A).

    Created by :func:`start_region_exchange`.  The locally owned part of the
    region (plus virtual padding) is already placed in :attr:`out` when the
    constructor returns, so the caller can immediately run any computation
    that depends only on local data — the *interior* kernels — while the
    halo strips travel.  :meth:`poll` assembles whatever has landed without
    blocking; :meth:`finish` drains the rest and returns the completed
    extended buffer.
    """

    def __init__(
        self,
        out: np.ndarray,
        lo: tuple[int, ...],
        pending: list[tuple[Request, tuple[tuple[int, int], ...]]],
    ) -> None:
        self.out = out
        self._lo = lo
        self._pending = pending

    @property
    def remaining(self) -> int:
        """Pieces not yet received and placed."""
        return len(self._pending)

    def _place(self, region: tuple[tuple[int, int], ...], data: np.ndarray) -> None:
        offset = tuple(r[0] - b for r, b in zip(region, self._lo))
        place_region(self.out, data, offset)

    def poll(self) -> int:
        """Assemble every piece whose receive has completed; never blocks.

        Returns the number of pieces still outstanding.
        """
        still = []
        for request, region in self._pending:
            if request.test():
                self._place(region, request.wait())
            else:
                still.append((request, region))
        self._pending = still
        return len(still)

    def finish(self) -> np.ndarray:
        """Drain all outstanding receives, assemble, return the buffer.

        Pieces are placed in the order their requests complete (each piece
        targets a disjoint sub-region, so assembly order cannot change the
        result).
        """
        with _trace.span("halo.finish", cat="exchange", pending=len(self._pending)):
            return self._finish()

    def _finish(self) -> np.ndarray:
        while self._pending:
            if self.poll() == 0:
                break
            # Block on the first outstanding request, then sweep again for
            # anything else that landed meanwhile (request-driven assembly).
            request, region = self._pending.pop(0)
            self._place(region, request.wait())
        return self.out


@dataclass(frozen=True)
class ExchangePlan:
    """Static send/receive schedule of one overlapped region gather.

    Halo geometry is a function of the layer and distribution alone, so the
    plan — which strips of the local shard to ship to which peers, which
    pieces to expect from whom, and where the locally owned part lands —
    is computed once (:func:`plan_region_exchange`) and reused every step,
    exactly as the paper's implementation sets up its halo exchanges per
    layer rather than per invocation.
    """

    lo: tuple[int, ...]
    hi: tuple[int, ...]
    out_shape: tuple[int, ...]
    #: ``(peer comm-rank, region of my shard to send)`` in peer order.
    sends: tuple[tuple[int, tuple[tuple[int, int], ...]], ...] = ()
    #: ``(owner comm-rank, region to receive)`` pairs.
    recvs: tuple[tuple[int, tuple[tuple[int, int], ...]], ...] = ()
    #: Locally owned sub-regions to place directly (at most one).
    local: tuple[tuple[tuple[int, int], ...], ...] = ()
    sent_bytes: int = field(default=0)


def plan_region_exchange(
    dt: DistTensor,
    lo: Sequence[int],
    hi: Sequence[int],
    peer_regions: Sequence[tuple[Sequence[int], Sequence[int]]],
) -> ExchangePlan:
    """Build the static schedule for an overlapped gather of ``[lo, hi)``.

    ``peer_regions[j]`` must be the ``(lo, hi)`` region comm-rank ``j``
    gathers in the same exchange — identical on every rank (each rank
    derives all regions from shared layer geometry), which is what lets the
    send side be mirrored from the receive side without a request
    round-trip.
    """
    lo = tuple(int(v) for v in lo)
    hi = tuple(int(v) for v in hi)
    out_shape = tuple(h - b for b, h in zip(lo, hi))
    if any(s < 0 for s in out_shape):
        raise ValueError(f"negative region shape {out_shape}")
    comm = dt.comm
    grid = dt.grid
    itemsize = np.dtype(dt.dtype).itemsize

    sends = []
    sent_bytes = 0
    for peer in range(comm.size):
        if peer == comm.rank:
            continue
        peer_lo, peer_hi = peer_regions[peer]
        if any(h - b <= 0 for b, h in zip(peer_lo, peer_hi)):
            continue
        owners = dt._owners_of_region(peer_lo, peer_hi, coords=grid.coords_of(peer))
        for rank, overlap in owners:
            if rank == comm.rank:
                sends.append((peer, overlap))
                cells = 1
                for r_lo, r_hi in overlap:
                    cells *= r_hi - r_lo
                sent_bytes += cells * itemsize

    recvs = []
    local = []
    if all(s > 0 for s in out_shape):
        for rank, overlap in dt._owners_of_region(lo, hi):
            if rank == comm.rank:
                local.append(overlap)
            else:
                recvs.append((rank, overlap))
    return ExchangePlan(
        lo, hi, out_shape, tuple(sends), tuple(recvs), tuple(local), sent_bytes
    )


def start_region_exchange(
    dt: DistTensor,
    lo: Sequence[int],
    hi: Sequence[int],
    peer_regions: Sequence[tuple[Sequence[int], Sequence[int]]] | None = None,
    fill: float = 0.0,
    pool=None,
    plan: ExchangePlan | None = None,
) -> RegionExchange:
    """Begin an overlapped gather of global region ``[lo, hi)``.

    Every rank must call this at the same logical point: the exchange is
    matched by a per-communicator sequence number, and each rank eagerly
    ``send``s the pieces of its own shard that peers need while posting
    ``irecv``s for the pieces it lacks.  Out-of-range parts of the region
    are ``fill``ed immediately (virtual padding is local knowledge).

    Pass either ``peer_regions`` (the schedule is derived on the fly) or a
    cached ``plan`` from :func:`plan_region_exchange` (the hot-path form —
    the schedule is static per layer).  The returned
    :class:`RegionExchange` already contains all locally owned data; only
    remote pieces are outstanding.
    """
    if plan is None:
        if peer_regions is None:
            raise ValueError("need peer_regions or a precomputed plan")
        plan = plan_region_exchange(dt, lo, hi, peer_regions)
    else:
        got = (tuple(int(v) for v in lo), tuple(int(v) for v in hi))
        if got != (plan.lo, plan.hi):
            raise ValueError(
                f"plan was built for region {plan.lo}..{plan.hi}, "
                f"not {got[0]}..{got[1]}"
            )
    comm = dt.comm
    tag = _EXCHANGE_TAG_BASE + comm.next_exchange_seq()

    if pool is not None:
        out = pool.take(plan.out_shape, dt.dtype)
        out.fill(fill)
    else:
        out = np.full(plan.out_shape, fill, dtype=dt.dtype)

    # Send side first (sends are eager and never block).  Off-rank bytes
    # are recorded under the same "region_data" stat as the blocking gather
    # so the §V volume formulas hold on either path.
    for peer, overlap in plan.sends:
        _send_strip(comm, dt._local_slice_of(overlap), peer, tag, pool)
    comm.stats.record_collective("region_data", plan.sent_bytes)

    # Receive side: place what we own, post irecvs for the rest.
    reg_lo = plan.lo
    for overlap in plan.local:
        offset = tuple(r[0] - b for r, b in zip(overlap, reg_lo))
        place_region(out, dt._local_slice_of(overlap), offset)
    pending: list[tuple[Request, tuple[tuple[int, int], ...]]] = [
        (comm.irecv(source=rank, tag=tag, opname=HALO_OP), overlap)
        for rank, overlap in plan.recvs
    ]
    return RegionExchange(out, reg_lo, pending)


def _check_width(dt: DistTensor, axis: int, w: int, left: int | None, right: int | None) -> None:
    n = dt.global_shape[axis]
    parts = dt.dist.grid_shape[axis]
    coord = dt.grid.coords[axis]
    for nb_rank, nb_coord in ((left, coord - 1), (right, coord + 1)):
        if nb_rank is None:
            continue
        lo, hi = dt.dist.dim_bounds(dt.global_shape, axis, nb_coord)
        if hi - lo < w:
            raise ValueError(
                f"halo width {w} exceeds neighbor block size {hi - lo} on axis "
                f"{axis} ({parts} parts of {n}); use gather_region instead"
            )
    if dt.local.shape[axis] < w:
        raise ValueError(
            f"halo width {w} exceeds own block size {dt.local.shape[axis]} on "
            f"axis {axis}; use gather_region instead"
        )
