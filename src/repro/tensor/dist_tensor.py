"""Distributed tensors: local shards with a partitioned global view.

A :class:`DistTensor` is the Python analogue of the paper's C++ distributed
tensor: each rank stores the block of the global tensor selected by its grid
coordinates under a :class:`~repro.tensor.distribution.Distribution`, and
the class provides the collective primitives the distributed convolution
algorithms are built from:

* :meth:`DistTensor.gather_region` — fetch an arbitrary hyper-rectangular
  region of the global tensor (the *generalized halo exchange*: the region
  a convolution's local outputs depend on overlaps only grid neighbors in
  the common case, but the same primitive handles strided and unaligned
  partitions exactly);
* :meth:`DistTensor.scatter_region_add` — the reverse operation, scattering
  and *accumulating* contributions computed for a region back to its owners
  (needed by pooling backpropagation where windows straddle partitions).

Both are collective over the grid's communicator.  Regions may extend past
the global tensor boundary; out-of-range parts are zero-filled on gather
(materializing convolution padding) and dropped on scatter.

Replication is respected: when a dimension is replicated across a grid axis,
gathers are served by the replica in the caller's own replica group, and
scatter-adds stay within the caller's replica group, so replicas remain
bitwise consistent without extra synchronization.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.comm.communicator import Communicator
from repro.tensor.distribution import Distribution
from repro.tensor.grid import ProcessGrid
from repro.tensor.indexing import (
    block_coords_of_interval,
    intersect,
    interval_is_empty,
    place_region,
)


class DistTensor:
    """One rank's view of a globally distributed dense tensor."""

    def __init__(
        self,
        grid: ProcessGrid,
        dist: Distribution,
        global_shape: Sequence[int],
        local: np.ndarray,
    ) -> None:
        global_shape = tuple(int(s) for s in global_shape)
        if dist.ndim != len(global_shape):
            raise ValueError(
                f"distribution has {dist.ndim} dims, tensor has {len(global_shape)}"
            )
        if dist.grid_shape != grid.shape:
            raise ValueError(
                f"distribution grid {dist.grid_shape} != process grid {grid.shape}"
            )
        expected = dist.local_shape(global_shape, grid.coords)
        if tuple(local.shape) != expected:
            raise ValueError(
                f"local shard shape {local.shape} != expected {expected} at "
                f"coords {grid.coords}"
            )
        self.grid = grid
        self.dist = dist
        self.global_shape = global_shape
        self.local = local

    # -- constructors -----------------------------------------------------------
    @classmethod
    def from_global(
        cls,
        grid: ProcessGrid,
        dist: Distribution,
        global_array: np.ndarray,
    ) -> "DistTensor":
        """Shard a replicated global array (no communication: every rank
        holds ``global_array`` and slices its own block)."""
        bounds = dist.local_bounds(global_array.shape, grid.coords)
        sl = tuple(slice(lo, hi) for lo, hi in bounds)
        return cls(grid, dist, global_array.shape, np.ascontiguousarray(global_array[sl]))

    @classmethod
    def zeros(
        cls,
        grid: ProcessGrid,
        dist: Distribution,
        global_shape: Sequence[int],
        dtype=np.float64,
    ) -> "DistTensor":
        shape = dist.local_shape(global_shape, grid.coords)
        return cls(grid, dist, global_shape, np.zeros(shape, dtype=dtype))

    # -- basic properties ---------------------------------------------------------
    @property
    def comm(self) -> Communicator:
        return self.grid.comm

    @property
    def bounds(self) -> tuple[tuple[int, int], ...]:
        """Per-dimension global intervals owned by this rank (``I_p(D)``)."""
        return self.dist.local_bounds(self.global_shape, self.grid.coords)

    @property
    def dtype(self):
        return self.local.dtype

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistTensor(global={self.global_shape}, dist={self.dist}, "
            f"bounds={self.bounds})"
        )

    # -- ownership resolution ----------------------------------------------------
    def _owners_of_region(
        self,
        lo: Sequence[int],
        hi: Sequence[int],
        coords: Sequence[int] | None = None,
    ) -> list[tuple[int, tuple[tuple[int, int], ...]]]:
        """Ranks owning parts of global region ``[lo, hi)`` and their overlaps.

        Replicated dimensions resolve to the replica group of ``coords`` (the
        caller's own coordinates by default) — passing another rank's
        coordinates answers "whom would *that* rank fetch this region from",
        which is what the sender side of the overlapped halo exchange needs
        to mirror the receive side without a request round-trip.
        Returns ``[(comm_rank, per-dim clipped interval), ...]``.
        """
        if coords is None:
            coords = self.grid.coords
        per_dim: list[list[tuple[int, tuple[int, int]]]] = []
        for d in range(self.dist.ndim):
            n = self.global_shape[d]
            clipped = intersect((int(lo[d]), int(hi[d])), (0, n))
            if interval_is_empty(clipped):
                return []
            if self.dist.is_split(d):
                c0, c1 = block_coords_of_interval(
                    n, self.dist.grid_shape[d], clipped[0], clipped[1]
                )
                options = []
                for c in range(c0, c1 + 1):
                    overlap = intersect(
                        clipped, self.dist.dim_bounds(self.global_shape, d, c)
                    )
                    if not interval_is_empty(overlap):
                        options.append((c, overlap))
                per_dim.append(options)
            else:
                # Unsplit: stay within the requester's replica group.
                per_dim.append([(coords[d], clipped)])

        owners = []
        for combo in itertools.product(*per_dim):
            coords = tuple(c for c, _ in combo)
            overlap = tuple(iv for _, iv in combo)
            owners.append((self.grid.rank_of(coords), overlap))
        return owners

    @staticmethod
    def _stage_payload(arr: np.ndarray, pool) -> np.ndarray:
        """Stage an off-rank alltoall payload through ``pool``.

        Without a pool the raw view is returned (the communicator copies or
        freezes it as needed).  With a pool, the data is copied into a
        recycled contiguous buffer whose read-only view crosses the
        boundary; the buffer returns to the pool (deferred) once every
        receiver drops the view — the halo send-strip discipline.
        """
        if pool is None:
            return arr
        buf = pool.take(arr.shape, arr.dtype)
        np.copyto(buf, arr)
        view = buf.view()
        view.flags.writeable = False
        pool.give_deferred(buf, view)
        return view

    def _local_slice_of(self, region: tuple[tuple[int, int], ...]) -> np.ndarray:
        """View of the local shard covering global ``region`` (must be owned)."""
        my = self.bounds
        sl = []
        for (g_lo, g_hi), (m_lo, m_hi) in zip(region, my):
            if g_lo < m_lo or g_hi > m_hi:
                raise ValueError(
                    f"region {region} not owned locally (bounds {my})"
                )
            sl.append(slice(g_lo - m_lo, g_hi - m_lo))
        return self.local[tuple(sl)]

    # -- collective region primitives ------------------------------------------
    def gather_region(
        self,
        lo: Sequence[int],
        hi: Sequence[int],
        fill: float = 0.0,
        pool=None,
    ) -> np.ndarray:
        """Collectively fetch global region ``[lo, hi)`` into a local array.

        All grid ranks must call this together (each with its own region —
        pass an empty region to participate without fetching).  Out-of-range
        parts are filled with ``fill``.  ``pool`` (a
        :class:`~repro.comm.buffers.BufferPool`) supplies the assembly
        buffer *and* stages the off-rank reply payloads (recycled across
        calls via deferred reclamation once the requesters drop the
        zero-copy views); the caller owns the result and may ``give`` it
        back once done reading it.
        """
        lo = tuple(int(v) for v in lo)
        hi = tuple(int(v) for v in hi)
        out_shape = tuple(h - b for b, h in zip(lo, hi))
        if any(s < 0 for s in out_shape):
            raise ValueError(f"negative region shape {out_shape}")

        owners = self._owners_of_region(lo, hi) if all(s > 0 for s in out_shape) else []
        comm = self.comm

        requests: list[list[tuple[tuple[int, int], ...]]] = [
            [] for _ in range(comm.size)
        ]
        for rank, overlap in owners:
            requests[rank].append(overlap)

        incoming = comm.alltoall(requests)
        replies = [
            [
                self._stage_payload(self._local_slice_of(region), pool)
                if j != comm.rank
                else self._local_slice_of(region)
                for region in regions
            ]
            for j, regions in enumerate(incoming)
        ]
        comm.stats.record_collective(
            "region_data",
            sum(
                arr.nbytes
                for j, regions in enumerate(replies)
                for arr in regions
                if j != comm.rank
            ),
        )
        data_back = comm.alltoall(replies)

        if pool is not None:
            out = pool.take(out_shape, self.dtype)
            out.fill(fill)
        else:
            out = np.full(out_shape, fill, dtype=self.dtype)
        for rank in range(comm.size):
            for region, data in zip(requests[rank], data_back[rank]):
                offset = tuple(r[0] - b for r, b in zip(region, lo))
                place_region(out, data, offset)
        return out

    def scatter_add_plan(
        self, lo: Sequence[int], shape: Sequence[int]
    ) -> list[tuple[int, tuple[tuple[int, int], ...], tuple[slice, ...]]]:
        """Precompute the scatter-add routing for region ``[lo, lo+shape)``.

        Returns ``[(comm_rank, owned overlap, slice into the region), ...]``
        — pure layout algebra, no communication.  The plan depends only on
        the grid, distribution, and global shape, so it is reusable across
        steps *and* across :class:`DistTensor` instances with identical
        layout (a layer's freshly-zeroed gradient tensor every backward),
        which is why :class:`~repro.core.dist_layers.DistPool2d` caches it
        alongside its forward geometry.
        """
        lo = tuple(int(v) for v in lo)
        hi = tuple(b + int(s) for b, s in zip(lo, shape))
        plan = []
        for rank, overlap in self._owners_of_region(lo, hi):
            sl = tuple(
                slice(iv[0] - b, iv[1] - b) for iv, b in zip(overlap, lo)
            )
            plan.append((rank, overlap, sl))
        return plan

    def _accumulate_contributions(self, contributions) -> None:
        my = self.bounds
        for overlap, data in contributions:
            offset = tuple(iv[0] - b[0] for iv, b in zip(overlap, my))
            place_region(self.local, data, offset, accumulate=True)

    def start_scatter_region_add(
        self,
        region: np.ndarray,
        lo: Sequence[int],
        pool=None,
        plan=None,
    ) -> "ScatterAddExchange":
        """Nonblocking :meth:`scatter_region_add`: launch the contribution
        all-to-all and accumulate the *own* contribution immediately.

        The returned handle's :meth:`~ScatterAddExchange.finish` waits for
        the peers' deposits and folds in the remote contributions.  The
        accumulation order is fixed and documented — own contribution
        first (it overlaps the in-flight transfer), then remote
        contributions in ascending comm rank — and the blocking
        :meth:`scatter_region_add` applies the identical order, so the two
        paths are bitwise interchangeable.  ``plan`` is an optional
        precomputed :meth:`scatter_add_plan` (it must match ``lo`` and
        ``region.shape``); layers cache it across steps.
        """
        lo = tuple(int(v) for v in lo)
        if plan is None:
            plan = self.scatter_add_plan(lo, region.shape)
        comm = self.comm

        sends: list[list[tuple[tuple[tuple[int, int], ...], np.ndarray]]] = [
            [] for _ in range(comm.size)
        ]
        own: list[tuple[tuple[tuple[int, int], ...], np.ndarray]] = []
        for rank, overlap, sl in plan:
            piece = region[sl]
            if rank != comm.rank:
                sends[rank].append((overlap, self._stage_payload(piece, pool)))
            else:
                own.append((overlap, piece))

        comm.stats.record_collective(
            "region_data",
            sum(
                arr.nbytes
                for j, pieces in enumerate(sends)
                for _, arr in pieces
                if j != comm.rank
            ),
        )
        request = comm.ialltoall(sends)
        # Own contribution accumulates while peers are still depositing.
        self._accumulate_contributions(own)
        return ScatterAddExchange(self, request)

    def scatter_region_add(
        self,
        region: np.ndarray,
        lo: Sequence[int],
        pool=None,
        plan=None,
    ) -> None:
        """Collectively scatter ``region`` (anchored at global ``lo``) to its
        owners, *adding* into their local shards.

        Parts of the region outside the global tensor are dropped (they
        correspond to virtual padding).  All grid ranks must call together.
        ``pool`` stages the off-rank contribution payloads (same deferred
        recycling as :meth:`gather_region`'s replies); ``plan`` is an
        optional cached :meth:`scatter_add_plan`.  Contributions accumulate
        in a fixed documented order — own first, then remote in ascending
        comm rank — identical to the nonblocking
        :meth:`start_scatter_region_add`, so the two are bitwise
        interchangeable.
        """
        lo = tuple(int(v) for v in lo)
        if plan is None:
            plan = self.scatter_add_plan(lo, region.shape)
        comm = self.comm

        sends: list[list[tuple[tuple[tuple[int, int], ...], np.ndarray]]] = [
            [] for _ in range(comm.size)
        ]
        own: list[tuple[tuple[tuple[int, int], ...], np.ndarray]] = []
        for rank, overlap, sl in plan:
            piece = region[sl]
            if rank != comm.rank:
                sends[rank].append((overlap, self._stage_payload(piece, pool)))
            else:
                own.append((overlap, piece))

        comm.stats.record_collective(
            "region_data",
            sum(
                arr.nbytes
                for j, pieces in enumerate(sends)
                for _, arr in pieces
                if j != comm.rank
            ),
        )
        received = comm.alltoall(sends)
        self._accumulate_contributions(own)
        for j, contributions in enumerate(received):
            if j != comm.rank:
                self._accumulate_contributions(contributions)

    # -- whole-tensor collectives (test/debug helpers) -----------------------------
    def to_global(self) -> np.ndarray:
        """Assemble the full global tensor on every rank (allgather)."""
        pieces = self.comm.allgather((self.grid.coords, self.local))
        out = np.zeros(self.global_shape, dtype=self.dtype)
        for coords, local in pieces:
            bounds = self.dist.local_bounds(self.global_shape, coords)
            sl = tuple(slice(lo, hi) for lo, hi in bounds)
            out[sl] = local
        return out

    def allreduce_replicas(self) -> None:
        """Sum-reduce the shard across its replica group, in place.

        No-op for purely partitioned tensors.  Used when replicas hold
        partial contributions that must be combined (e.g. error signals
        produced by layers that reduce over a replicated dimension).
        """
        axes = tuple(
            d
            for d in range(self.dist.ndim)
            if not self.dist.is_split(d) and self.grid.shape[d] > 1
        )
        if not axes:
            return
        sub = self.grid.axes_comm(axes)
        self.local = sub.allreduce(self.local)


class ScatterAddExchange:
    """In-flight nonblocking scatter-add (:meth:`DistTensor.start_scatter_region_add`).

    The owner's own contribution is already accumulated by the time the
    handle exists; :meth:`finish` waits for the peers' deposits and folds
    in the remote contributions in ascending comm rank — completing the
    documented accumulation order the blocking path shares.
    """

    __slots__ = ("_tensor", "_request")

    def __init__(self, tensor: DistTensor, request) -> None:
        self._tensor = tensor
        self._request = request

    def finish(self) -> None:
        received = self._request.wait()
        tensor = self._tensor
        for j, contributions in enumerate(received):
            if j != tensor.comm.rank:
                tensor._accumulate_contributions(contributions)
