"""Task-graph simulation of one distributed training step.

Builds, for the critical-path rank, the §IV schedule:

* forward, per layer: the halo exchange runs on the communication stream
  *concurrently* with the interior convolution; the boundary convolutions
  run after both ("our implementation automatically decomposes an input
  tensor into its interior domain and boundary domains ... so that halo
  exchanges can be run concurrently with the convolution of the interior
  domain").  The interior/boundary split is the per-layer
  ``boundary_fraction`` the cost model derives from the local block
  geometry — the same decomposition the engine's
  :class:`~repro.core.dist_conv.DistConv2d` executes;
* backward, per layer: the error-signal halo exchange is hidden inside the
  filter convolution ("we exploit the task-level parallelism of backward
  data and filter convolutions") *and* the interior data convolution, with
  only the boundary strips of the data convolution waiting on the halo —
  matching the engine's overlapped backward;
* each layer's dL/dw allreduce is queued on the communication stream as
  soon as its filter convolution finishes (one allreduce at a time);
* the optimizer step waits for all compute and all allreduces.

With ``overlap_halo=False`` / ``overlap_allreduce=False`` the dependencies
serialize instead — the ablation benchmark toggles exactly these.

``allreduce_bucket_bytes`` mirrors the engine's bucketed gradient reducer
(:class:`repro.core.grad_reducer.BucketedGradReducer`): consecutive layers'
dL/dw payloads destined for the same gradient group are coalesced into one
comm-stream task that becomes ready when its *last* contributor's filter
convolution finishes, amortizing per-collective latency at the price of a
slightly later start — exactly the trade the real reducer makes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.collective_models import allreduce_time
from repro.nn.graph import NetworkSpec
from repro.perfmodel.layer_cost import ConvLayerCost
from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.network_cost import NetworkCostModel
from repro.core.parallelism import LayerParallelism, ParallelStrategy
from repro.sim.engine import SimEngine


@dataclass
class SimResult:
    minibatch_time: float
    compute_busy: float
    comm_busy: float
    engine: SimEngine

    @property
    def comm_exposed(self) -> float:
        return max(0.0, self.minibatch_time - self.compute_busy)


class TrainingStepSimulator:
    """Simulates one mini-batch step for (spec, strategy, machine)."""

    def __init__(
        self,
        spec: NetworkSpec,
        machine: MachineSpec,
        conv_model=None,
        overlap_halo: bool = True,
        overlap_allreduce: bool = True,
        allreduce_bucket_bytes: int | None = None,
    ) -> None:
        self.spec = spec
        self.machine = machine
        self.overlap_halo = overlap_halo
        self.overlap_allreduce = overlap_allreduce
        self.allreduce_bucket_bytes = allreduce_bucket_bytes
        # Reuse the analytic per-layer component costs; the simulator only
        # re-derives the *schedule*, never the kernel times.
        self.cost_model = NetworkCostModel(
            spec, machine, conv_model=conv_model, overlap=True
        )

    def simulate(
        self, n_global: int, strategy: ParallelStrategy | LayerParallelism
    ) -> SimResult:
        if isinstance(strategy, LayerParallelism):
            strategy = ParallelStrategy.uniform(strategy)
        eng = SimEngine()
        order = [layer for layer in self.spec.topo_order() if layer.kind != "input"]
        costs: dict[str, ConvLayerCost] = {}
        for layer in order:
            c = self.cost_model.layer_cost(layer.name, n_global, strategy)
            if c is not None:
                costs[layer.name] = c

        # -- forward ------------------------------------------------------------
        prev_fwd: str | None = None
        for layer in order:
            c = costs.get(layer.name)
            if c is None:
                continue
            base_deps = (prev_fwd,) if prev_fwd else ()
            name = layer.name
            if c.fp_halo > 0 and self.overlap_halo:
                interior = c.fp_compute * (1 - c.boundary_fraction)
                boundary = c.fp_compute * c.boundary_fraction + c.boundary_launch
                eng.add(f"fwd:{name}:halo", c.fp_halo, "comm", base_deps)
                eng.add(f"fwd:{name}:interior", interior, "compute", base_deps)
                eng.add(
                    f"fwd:{name}",
                    boundary,
                    "compute",
                    (f"fwd:{name}:halo", f"fwd:{name}:interior"),
                )
            else:
                if c.fp_halo > 0:
                    eng.add(f"fwd:{name}:halo", c.fp_halo, "comm", base_deps)
                    base_deps = (f"fwd:{name}:halo",)
                eng.add(f"fwd:{name}", c.fp_compute, "compute", base_deps)
            prev_fwd = f"fwd:{name}"

        # -- backward -------------------------------------------------------------
        prev_bwd = prev_fwd
        allreduces: list[str] = []
        last_ar: str | None = None
        bucketing = bool(self.overlap_allreduce and self.allreduce_bucket_bytes)
        # Keyed by gradient-group identity — (size, grid shape) — mirroring
        # the engine's per-communicator buckets; the value is
        # (pending bytes, contributing filter-conv task names).
        buckets: dict[tuple, tuple[float, list[str]]] = {}

        def flush_bucket(key: tuple) -> None:
            nonlocal last_ar
            nbytes, contributors = buckets.pop(key)
            group = key[0]
            if nbytes <= 0:
                return
            dur = allreduce_time(
                group, nbytes, self.machine.link_for_group(group)
            )
            deps = list(contributors)
            if last_ar is not None:
                deps.append(last_ar)  # one allreduce at a time
            name = f"ar:bucket{len(allreduces)}:g{group}"
            eng.add(name, dur, "comm", tuple(deps))
            allreduces.append(name)
            last_ar = name

        for layer in reversed(order):
            c = costs.get(layer.name)
            if c is None:
                continue
            name = layer.name
            base_deps = (prev_bwd,) if prev_bwd else ()
            if c.bpx_halo > 0 and self.overlap_halo:
                interior = c.bpx_compute * (1 - c.boundary_fraction)
                boundary = c.bpx_compute * c.boundary_fraction + c.boundary_launch
                eng.add(f"bwd:{name}:halo", c.bpx_halo, "comm", base_deps)
                eng.add(f"bwd:{name}:filter", c.bpw_compute, "compute", base_deps)
                eng.add(
                    f"bwd:{name}:data_interior",
                    interior,
                    "compute",
                    (f"bwd:{name}:filter",),
                )
                eng.add(
                    f"bwd:{name}:data",
                    boundary,
                    "compute",
                    (f"bwd:{name}:halo", f"bwd:{name}:data_interior"),
                )
            else:
                deps = base_deps
                if c.bpx_halo > 0:
                    eng.add(f"bwd:{name}:halo", c.bpx_halo, "comm", deps)
                    deps = (f"bwd:{name}:halo",)
                eng.add(f"bwd:{name}:filter", c.bpw_compute, "compute", deps)
                eng.add(
                    f"bwd:{name}:data", c.bpx_compute, "compute",
                    (f"bwd:{name}:filter",),
                )
            prev_bwd = f"bwd:{name}:data"
            if c.allreduce > 0:
                if bucketing and c.allreduce_bytes > 0:
                    key = (
                        c.allreduce_group,
                        strategy.for_layer(name).grid_shape,
                    )
                    nbytes, contributors = buckets.get(key, (0.0, []))
                    contributors.append(f"bwd:{name}:filter")
                    buckets[key] = (nbytes + c.allreduce_bytes, contributors)
                    if buckets[key][0] >= self.allreduce_bucket_bytes:
                        flush_bucket(key)
                    continue
                ar_deps = [f"bwd:{name}:filter"]
                if not self.overlap_allreduce and prev_bwd:
                    ar_deps.append(prev_bwd)
                if last_ar is not None:
                    ar_deps.append(last_ar)  # one allreduce at a time
                ar_name = f"ar:{name}"
                # The non-hideable fraction contends with compute (modeled
                # as an extension of the allreduce on the comm stream).
                eng.add(ar_name, c.allreduce, "comm", tuple(ar_deps))
                allreduces.append(ar_name)
                last_ar = ar_name
                if not self.overlap_allreduce:
                    prev_bwd = ar_name

        for key in list(buckets):
            flush_bucket(key)

        # -- optimizer ------------------------------------------------------------
        params = self.spec.total_params()
        opt_time = self.machine.gpu.elementwise_time(
            3 * params * self.machine.dtype_bytes
        )
        deps = tuple(x for x in ([prev_bwd] + allreduces) if x)
        eng.add("optimizer", opt_time, "compute", deps)

        makespan = eng.run()
        return SimResult(
            minibatch_time=makespan,
            compute_busy=eng.busy_time("compute"),
            comm_busy=eng.busy_time("comm"),
            engine=eng,
        )
