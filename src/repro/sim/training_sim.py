"""Task-graph simulation of one distributed training step.

Builds, for the critical-path rank, the §IV schedule:

* forward, per layer: the halo exchange runs on the communication stream
  *concurrently* with the interior convolution; the boundary convolutions
  run after both ("our implementation automatically decomposes an input
  tensor into its interior domain and boundary domains ... so that halo
  exchanges can be run concurrently with the convolution of the interior
  domain").  The interior/boundary split is the per-layer
  ``boundary_fraction`` the cost model derives from the local block
  geometry — the same decomposition the engine's
  :class:`~repro.core.dist_conv.DistConv2d` executes;
* backward, per layer: the error-signal halo exchange is hidden inside the
  filter convolution ("we exploit the task-level parallelism of backward
  data and filter convolutions") *and* the interior data convolution, with
  only the boundary strips of the data convolution waiting on the halo —
  matching the engine's overlapped backward;
* each layer's dL/dw allreduce is queued on the communication stream as
  soon as its filter convolution finishes (one allreduce at a time);
* inter-layer *shuffles* (§III-C redistributions where adjacent layers'
  grids differ) are communication-stream tasks whose dependencies mirror
  the engine's overlapped :class:`~repro.tensor.shuffle.ShuffleExchange`:
  a forward shuffle becomes ready the moment its *producer* finishes (not
  when the consumer is reached), so it hides behind sibling-branch compute
  in DAGs and contends with allreduces for the communication channel; the
  backward error-signal shuffle likewise becomes ready with the producing
  layer's data convolution;
* the optimizer step waits for all compute and all allreduces.

With ``overlap_halo=False`` / ``overlap_allreduce=False`` /
``overlap_shuffle=False`` the dependencies serialize instead — a blocking
shuffle waits for *all* preceding compute, gates everything after it, and
additionally pays the collective's rendezvous-barrier synchronization
(:meth:`~repro.perfmodel.network_cost.NetworkCostModel.shuffle_sync_overhead`),
which is exactly what the engine's blocking ``alltoall`` pays and the
nonblocking exchange removes.  The ablation benchmarks toggle exactly
these.

``allreduce_bucket_bytes`` mirrors the engine's bucketed gradient reducer
(:class:`repro.core.grad_reducer.BucketedGradReducer`): consecutive layers'
dL/dw payloads destined for the same gradient group are coalesced into one
comm-stream task that becomes ready when its *last* contributor's filter
convolution finishes, amortizing per-collective latency at the price of a
slightly later start — exactly the trade the real reducer makes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.collective_models import allreduce_time
from repro.nn.graph import NetworkSpec
from repro.perfmodel.layer_cost import ConvLayerCost
from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.network_cost import NetworkCostModel
from repro.core.parallelism import LayerParallelism, ParallelStrategy
from repro.sim.engine import SimEngine


@dataclass
class SimResult:
    minibatch_time: float
    compute_busy: float
    comm_busy: float
    engine: SimEngine

    @property
    def comm_exposed(self) -> float:
        return max(0.0, self.minibatch_time - self.compute_busy)


class TrainingStepSimulator:
    """Simulates one mini-batch step for (spec, strategy, machine)."""

    def __init__(
        self,
        spec: NetworkSpec,
        machine: MachineSpec,
        conv_model=None,
        overlap_halo: bool = True,
        overlap_allreduce: bool = True,
        allreduce_bucket_bytes: int | None = None,
        overlap_shuffle: bool = True,
        allreduce_algorithm: str | None = None,
    ) -> None:
        self.spec = spec
        self.machine = machine
        self.overlap_halo = overlap_halo
        self.overlap_allreduce = overlap_allreduce
        self.allreduce_bucket_bytes = allreduce_bucket_bytes
        self.overlap_shuffle = overlap_shuffle
        #: Allreduce wire algorithm (engine's ``algorithm=`` knob): None
        #: keeps the historical fastest-per-(p, n) pricing, "auto" applies
        #: the engine's Thakur-style selection, a concrete name (incl.
        #: "direct") pins one algorithm — modeled and measured traffic
        #: then share one selection rule.
        self.allreduce_algorithm = allreduce_algorithm
        # Reuse the analytic per-layer component costs; the simulator only
        # re-derives the *schedule*, never the kernel times.
        self.cost_model = NetworkCostModel(
            spec, machine, conv_model=conv_model, overlap=True,
            allreduce_algorithm=allreduce_algorithm,
        )

    def simulate(
        self, n_global: int, strategy: ParallelStrategy | LayerParallelism
    ) -> SimResult:
        if isinstance(strategy, LayerParallelism):
            strategy = ParallelStrategy.uniform(strategy)
        eng = SimEngine()
        order = [layer for layer in self.spec.topo_order() if layer.kind != "input"]
        costs: dict[str, ConvLayerCost] = {}
        for layer in order:
            c = self.cost_model.layer_cost(layer.name, n_global, strategy)
            if c is not None:
                costs[layer.name] = c

        # -- shuffle edges (§III-C layer boundaries) ------------------------------
        # child layer -> parents whose activations must be redistributed.
        shuffle_edges: dict[str, list[str]] = {}
        for layer in order:
            for p in self.spec[layer.name].parents:
                if (
                    strategy.for_layer(p).grid_shape
                    != strategy.for_layer(layer.name).grid_shape
                ):
                    shuffle_edges.setdefault(layer.name, []).append(p)
        shuffle_sync = (
            0.0
            if self.overlap_shuffle
            else self.cost_model.shuffle_sync_overhead(strategy.nranks)
        )

        # -- forward ------------------------------------------------------------
        prev_fwd: str | None = None
        fwd_done: dict[str, str] = {}  # layer -> task marking its output ready
        carry: list[str] = []  # shuffle tasks consumed by cost-less layers
        for layer in order:
            c = costs.get(layer.name)
            name = layer.name
            base_deps = (prev_fwd,) if prev_fwd else ()
            shuf_deps: list[str] = []
            for p in shuffle_edges.get(name, ()):
                sname = f"fwd:shuf:{p}->{name}"
                dur = self.cost_model.shuffle_edge_cost(p, n_global, strategy)
                if self.overlap_shuffle:
                    # Ready the moment the producer finishes — the engine
                    # launches the exchange as the activation is produced.
                    dep = fwd_done.get(p)
                    deps = (dep,) if dep else ()
                else:
                    # Blocking collective at consumption time: waits for all
                    # preceding compute and pays the rendezvous barriers.
                    dur += shuffle_sync
                    deps = base_deps
                eng.add(sname, dur, "comm", deps)
                shuf_deps.append(sname)
            if c is None:
                carry.extend(shuf_deps)
                if shuf_deps:
                    fwd_done[name] = shuf_deps[-1]
                elif layer.parents and layer.parents[0] in fwd_done:
                    fwd_done[name] = fwd_done[layer.parents[0]]
                continue
            base_deps = base_deps + tuple(carry) + tuple(shuf_deps)
            carry = []
            if c.fp_halo > 0 and self.overlap_halo:
                interior = c.fp_compute * (1 - c.boundary_fraction)
                boundary = c.fp_compute * c.boundary_fraction + c.boundary_launch
                eng.add(f"fwd:{name}:halo", c.fp_halo, "comm", base_deps)
                eng.add(f"fwd:{name}:interior", interior, "compute", base_deps)
                eng.add(
                    f"fwd:{name}",
                    boundary,
                    "compute",
                    (f"fwd:{name}:halo", f"fwd:{name}:interior"),
                )
            else:
                if c.fp_halo > 0:
                    eng.add(f"fwd:{name}:halo", c.fp_halo, "comm", base_deps)
                    base_deps = (f"fwd:{name}:halo",)
                eng.add(f"fwd:{name}", c.fp_compute, "compute", base_deps)
            prev_fwd = f"fwd:{name}"
            fwd_done[name] = prev_fwd

        # -- backward -------------------------------------------------------------
        prev_bwd = prev_fwd
        allreduces: list[str] = []
        last_ar: str | None = None
        bucketing = bool(self.overlap_allreduce and self.allreduce_bucket_bytes)
        # Keyed by gradient-group identity — (size, grid shape) — mirroring
        # the engine's per-communicator buckets; the value is
        # (pending bytes, contributing filter-conv task names).
        buckets: dict[tuple, tuple[float, list[str]]] = {}

        def flush_bucket(key: tuple) -> None:
            nonlocal last_ar
            nbytes, contributors = buckets.pop(key)
            group = key[0]
            if nbytes <= 0:
                return
            dur = allreduce_time(
                group, nbytes, self.machine.link_for_group(group),
                self.allreduce_algorithm,
            )
            deps = list(contributors)
            if last_ar is not None:
                deps.append(last_ar)  # one allreduce at a time
            name = f"ar:bucket{len(allreduces)}:g{group}"
            eng.add(name, dur, "comm", tuple(deps))
            allreduces.append(name)
            last_ar = name

        # parent layer -> error-signal shuffle tasks it must wait for.
        incoming: dict[str, list[str]] = {}
        carry_b: list[str] = []

        def route_back_shuffles(name: str, producer: str | None) -> None:
            nonlocal prev_bwd
            for p in shuffle_edges.get(name, ()):
                sname = f"bwd:shuf:{name}->{p}"
                dur = self.cost_model.shuffle_edge_cost(p, n_global, strategy)
                if not self.overlap_shuffle:
                    dur += shuffle_sync
                deps = (producer,) if producer else ()
                eng.add(sname, dur, "comm", deps)
                incoming.setdefault(p, []).append(sname)
                if not self.overlap_shuffle:
                    prev_bwd = sname  # blocking: gates everything after it

        for layer in reversed(order):
            c = costs.get(layer.name)
            name = layer.name
            if c is None:
                carry_b.extend(incoming.pop(name, ()))
                route_back_shuffles(name, prev_bwd)
                continue
            base_deps = (prev_bwd,) if prev_bwd else ()
            base_deps = base_deps + tuple(carry_b) + tuple(incoming.pop(name, ()))
            carry_b = []
            if c.bpx_halo > 0 and self.overlap_halo:
                # An undecomposed backward (fraction pinned at 1, no
                # boundary launches) makes this timeline degenerate
                # exactly to the synchronous cost; pooling now carries a
                # real backward fraction (its scatter-add overlaps the own
                # contribution with the in-flight boundary strips).
                interior = c.bpx_compute * (1 - c.bpx_boundary_fraction)
                boundary = (
                    c.bpx_compute * c.bpx_boundary_fraction + c.bpx_boundary_launch
                )
                eng.add(f"bwd:{name}:halo", c.bpx_halo, "comm", base_deps)
                eng.add(f"bwd:{name}:filter", c.bpw_compute, "compute", base_deps)
                eng.add(
                    f"bwd:{name}:data_interior",
                    interior,
                    "compute",
                    (f"bwd:{name}:filter",),
                )
                eng.add(
                    f"bwd:{name}:data",
                    boundary,
                    "compute",
                    (f"bwd:{name}:halo", f"bwd:{name}:data_interior"),
                )
            else:
                deps = base_deps
                if c.bpx_halo > 0:
                    eng.add(f"bwd:{name}:halo", c.bpx_halo, "comm", deps)
                    deps = (f"bwd:{name}:halo",)
                eng.add(f"bwd:{name}:filter", c.bpw_compute, "compute", deps)
                eng.add(
                    f"bwd:{name}:data", c.bpx_compute, "compute",
                    (f"bwd:{name}:filter",),
                )
            prev_bwd = f"bwd:{name}:data"
            route_back_shuffles(name, prev_bwd)
            if c.allreduce > 0:
                if bucketing and c.allreduce_bytes > 0:
                    key = (
                        c.allreduce_group,
                        strategy.for_layer(name).grid_shape,
                    )
                    nbytes, contributors = buckets.get(key, (0.0, []))
                    contributors.append(f"bwd:{name}:filter")
                    buckets[key] = (nbytes + c.allreduce_bytes, contributors)
                    if buckets[key][0] >= self.allreduce_bucket_bytes:
                        flush_bucket(key)
                    continue
                ar_deps = [f"bwd:{name}:filter"]
                if not self.overlap_allreduce and prev_bwd:
                    ar_deps.append(prev_bwd)
                if last_ar is not None:
                    ar_deps.append(last_ar)  # one allreduce at a time
                ar_name = f"ar:{name}"
                # The non-hideable fraction contends with compute (modeled
                # as an extension of the allreduce on the comm stream).
                eng.add(ar_name, c.allreduce, "comm", tuple(ar_deps))
                allreduces.append(ar_name)
                last_ar = ar_name
                if not self.overlap_allreduce:
                    prev_bwd = ar_name

        for key in list(buckets):
            flush_bucket(key)

        # -- optimizer ------------------------------------------------------------
        params = self.spec.total_params()
        opt_time = self.machine.gpu.elementwise_time(
            3 * params * self.machine.dtype_bytes
        )
        deps = tuple(x for x in ([prev_bwd] + allreduces) if x)
        eng.add("optimizer", opt_time, "compute", deps)

        makespan = eng.run()
        return SimResult(
            minibatch_time=makespan,
            compute_busy=eng.busy_time("compute"),
            comm_busy=eng.busy_time("comm"),
            engine=eng,
        )
