"""A minimal dependency-driven discrete-event simulator.

Tasks have a duration, a resource, and dependencies.  Each resource executes
one task at a time, in ready order (FIFO by ready time, ties broken by
submission order — matching a CUDA stream / communication queue).  The
engine computes per-task start/finish times and the overall makespan.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass
class Task:
    """One unit of work bound to a resource."""

    name: str
    duration: float
    resource: str
    deps: tuple[str, ...] = ()
    start: float = field(default=-1.0, init=False)
    finish: float = field(default=-1.0, init=False)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task {self.name!r} has negative duration")


class SimEngine:
    """Schedules a task DAG over exclusive resources."""

    def __init__(self) -> None:
        self._tasks: dict[str, Task] = {}
        self._order: list[str] = []

    def add(self, name: str, duration: float, resource: str, deps=()) -> Task:
        if name in self._tasks:
            raise ValueError(f"duplicate task {name!r}")
        for d in deps:
            if d not in self._tasks:
                raise ValueError(f"task {name!r} depends on unknown {d!r}")
        t = Task(name, float(duration), resource, tuple(deps))
        self._tasks[name] = t
        self._order.append(name)
        return t

    def __getitem__(self, name: str) -> Task:
        return self._tasks[name]

    def tasks(self) -> list[Task]:
        """All tasks in submission order (start/finish valid after run())."""
        return [self._tasks[name] for name in self._order]

    def run(self) -> float:
        """Execute the schedule; returns the makespan (seconds)."""
        indeg = {n: len(t.deps) for n, t in self._tasks.items()}
        children: dict[str, list[str]] = {n: [] for n in self._tasks}
        for n, t in self._tasks.items():
            for d in t.deps:
                children[d].append(n)

        submit_idx = {n: i for i, n in enumerate(self._order)}
        resource_free: dict[str, float] = {}
        ready_at: dict[str, float] = {
            n: 0.0 for n, d in indeg.items() if d == 0
        }
        # Heap of (ready_time, submit_idx, name) — FIFO per ready time.
        heap = [(0.0, submit_idx[n], n) for n in ready_at]
        heapq.heapify(heap)
        done = 0
        makespan = 0.0

        while heap:
            ready, _, name = heapq.heappop(heap)
            t = self._tasks[name]
            free = resource_free.get(t.resource, 0.0)
            t.start = max(ready, free)
            t.finish = t.start + t.duration
            resource_free[t.resource] = t.finish
            makespan = max(makespan, t.finish)
            done += 1
            for child in children[name]:
                indeg[child] -= 1
                prev = ready_at.get(child, 0.0)
                ready_at[child] = max(prev, t.finish)
                if indeg[child] == 0:
                    heapq.heappush(
                        heap, (ready_at[child], submit_idx[child], child)
                    )

        if done != len(self._tasks):
            raise RuntimeError("task graph has a cycle or unreachable tasks")
        return makespan

    def busy_time(self, resource: str) -> float:
        """Total busy time on one resource (for utilization reports)."""
        return sum(
            t.duration for t in self._tasks.values() if t.resource == resource
        )
