"""Discrete-event simulation of distributed training (S12 in DESIGN.md).

The analytic model of :mod:`repro.perfmodel` makes closed-form overlap
assumptions (§V).  This package cross-checks them by actually *scheduling*
one training step as a task graph over two per-rank resources (a compute
stream and a communication stream), which is how the LBANN implementation
overlaps halo exchanges with interior convolutions and allreduces with
backpropagation (§IV-A).

* :mod:`repro.sim.engine` — a minimal dependency-driven event simulator.
* :mod:`repro.sim.training_sim` — builds the per-step task graph for a
  (network, strategy, machine) triple and reports the simulated mini-batch
  time, with overlap independently toggleable for ablations.
"""

from repro.sim.engine import SimEngine, Task
from repro.sim.training_sim import TrainingStepSimulator

__all__ = ["SimEngine", "Task", "TrainingStepSimulator"]
