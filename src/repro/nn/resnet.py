"""Fully-convolutional ResNet-50 (He et al. 2016) for ImageNet-1K.

Layer naming follows the Caffe convention used by the paper's
microbenchmarks: ``conv1``, ``res{stage}{block}_branch2a/2b/2c`` with
``branch1`` projection shortcuts.  The paper benchmarks:

* ``conv1``:            C=3,   H=W=224, F=64,  K=7, P=3, S=2
* ``res3b_branch2a``:   C=512, H=W=28,  F=128, K=1, P=0, S=1

both of which fall out of this builder, and are asserted in the tests.

The classification head is fully convolutional ([29], Long et al.): global
average pooling followed by a 1x1 convolution with 1000 filters.
"""

from __future__ import annotations

import string

from repro.nn.graph import NetworkSpec

#: (blocks, bottleneck width, output channels, first-block stride) per stage.
RESNET50_STAGES = [
    (3, 64, 256, 1),   # res2 (56x56)
    (4, 128, 512, 2),  # res3 (28x28)
    (6, 256, 1024, 2),  # res4 (14x14)
    (3, 512, 2048, 2),  # res5 (7x7)
]


def _conv_bn_relu(
    net: NetworkSpec,
    name: str,
    parent: str,
    filters: int,
    kernel: int,
    stride: int = 1,
    pad: int = 0,
    relu: bool = True,
) -> str:
    net.add(name, "conv", [parent], filters=filters, kernel=kernel, stride=stride, pad=pad)
    net.add(f"bn_{name}", "bn", [name])
    if not relu:
        return f"bn_{name}"
    net.add(f"{name}_relu", "relu", [f"bn_{name}"])
    return f"{name}_relu"


def _bottleneck(
    net: NetworkSpec,
    stage: int,
    block_letter: str,
    parent: str,
    width: int,
    out_channels: int,
    stride: int,
    project: bool,
) -> str:
    base = f"res{stage}{block_letter}"
    # Main branch: 1x1 (stride) -> 3x3 -> 1x1, BN after each, ReLU on first two.
    a = _conv_bn_relu(net, f"{base}_branch2a", parent, width, 1, stride=stride)
    b = _conv_bn_relu(net, f"{base}_branch2b", a, width, 3, pad=1)
    c = _conv_bn_relu(net, f"{base}_branch2c", b, out_channels, 1, relu=False)
    # Shortcut branch.
    if project:
        shortcut = _conv_bn_relu(
            net, f"{base}_branch1", parent, out_channels, 1, stride=stride, relu=False
        )
    else:
        shortcut = parent
    net.add(f"{base}_add", "add", [c, shortcut])
    net.add(f"{base}_relu", "relu", [f"{base}_add"])
    return f"{base}_relu"


def build_resnet50(
    image_size: int = 224,
    num_classes: int = 1000,
    input_channels: int = 3,
    stages=None,
    include_loss: bool = True,
) -> NetworkSpec:
    """Build ResNet-50 (or a reduced variant via ``stages``).

    ``stages`` defaults to :data:`RESNET50_STAGES`; pass a shorter/narrower
    list for scaled-down functional tests.
    """
    stages = stages if stages is not None else RESNET50_STAGES
    net = NetworkSpec("resnet50")
    net.add("input", "input", channels=input_channels, height=image_size, width=image_size)
    tip = _conv_bn_relu(net, "conv1", "input", 64, 7, stride=2, pad=3)
    net.add("pool1", "pool", [tip], mode="max", kernel=3, stride=2, pad=1)
    tip = "pool1"

    for stage_idx, (blocks, width, out_ch, stride) in enumerate(stages, start=2):
        for b in range(blocks):
            letter = string.ascii_lowercase[b]
            tip = _bottleneck(
                net,
                stage_idx,
                letter,
                tip,
                width,
                out_ch,
                stride=stride if b == 0 else 1,
                project=(b == 0),
            )

    net.add("pool5", "gap", [tip])
    net.add("fc1000", "conv", ["pool5"], filters=num_classes, kernel=1, bias=True)
    if include_loss:
        net.add("loss", "softmax_ce", ["fc1000"])
    return net


def build_resnet_tiny(
    image_size: int = 32, num_classes: int = 10, include_loss: bool = True
) -> NetworkSpec:
    """A miniature bottleneck ResNet for fast functional tests: same layer
    structure class as ResNet-50 (projection shortcuts, stride-2 stages)."""
    stages = [(1, 4, 16, 1), (2, 8, 32, 2)]
    net = NetworkSpec("resnet-tiny")
    net.add("input", "input", channels=3, height=image_size, width=image_size)
    tip = _conv_bn_relu(net, "conv1", "input", 8, 3, stride=1, pad=1)
    for stage_idx, (blocks, width, out_ch, stride) in enumerate(stages, start=2):
        for b in range(blocks):
            letter = string.ascii_lowercase[b]
            tip = _bottleneck(
                net, stage_idx, letter, tip, width, out_ch,
                stride=stride if b == 0 else 1, project=(b == 0),
            )
    net.add("pool5", "gap", [tip])
    net.add("fc", "conv", ["pool5"], filters=num_classes, kernel=1, bias=True)
    if include_loss:
        net.add("loss", "softmax_ce", ["fc"])
    return net
