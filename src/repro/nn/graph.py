"""Declarative network specifications shared across executors.

A :class:`NetworkSpec` is the single description of a CNN consumed by three
independent subsystems:

* :class:`repro.nn.network.LocalNetwork` — single-device reference execution;
* :class:`repro.core.dist_network.DistNetwork` — distributed execution under
  a parallel execution strategy (per-layer distributions);
* :mod:`repro.perfmodel` — per-layer cost and memory modeling, and the
  strategy optimizer of the paper's §V.

Networks are DAGs ("we think of a CNN as a directed acyclic graph, where a
layer may have multiple parents or children", §II-C): residual connections
are ``add`` layers with two parents.  Layers must be added parents-first,
which makes insertion order a topological order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

#: Layer kinds understood by all executors.
LAYER_KINDS = frozenset(
    {"input", "conv", "pool", "bn", "relu", "fc", "gap", "add", "softmax_ce", "bce"}
)


@dataclass(frozen=True)
class LayerSpec:
    """One layer: a kind, hyperparameters, and parent layer names."""

    name: str
    kind: str
    params: dict = field(default_factory=dict)
    parents: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in LAYER_KINDS:
            raise ValueError(f"unknown layer kind {self.kind!r} for {self.name!r}")
        object.__setattr__(self, "parents", tuple(self.parents))

    def get(self, key: str, default=None):
        return self.params.get(key, default)


class NetworkSpec:
    """An ordered DAG of :class:`LayerSpec` with shape inference."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._layers: dict[str, LayerSpec] = {}

    # -- construction -----------------------------------------------------------
    def add(self, name: str, kind: str, parents: Iterable[str] = (), **params) -> str:
        """Append a layer (parents must already exist). Returns ``name``."""
        if name in self._layers:
            raise ValueError(f"duplicate layer name {name!r}")
        if kind not in LAYER_KINDS:
            raise ValueError(f"unknown layer kind {kind!r} for {name!r}")
        parents = tuple(parents)
        for p in parents:
            if p not in self._layers:
                raise ValueError(f"layer {name!r} references unknown parent {p!r}")
        if kind == "input" and parents:
            raise ValueError("input layers cannot have parents")
        if kind != "input" and not parents:
            raise ValueError(f"layer {name!r} of kind {kind!r} needs a parent")
        self._layers[name] = LayerSpec(name, kind, dict(params), parents)
        return name

    # -- access -----------------------------------------------------------------
    def __getitem__(self, name: str) -> LayerSpec:
        return self._layers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self._layers.values())

    @property
    def layer_names(self) -> list[str]:
        return list(self._layers)

    def topo_order(self) -> list[LayerSpec]:
        """Topological order (== insertion order by construction)."""
        return list(self._layers.values())

    def children_of(self, name: str) -> list[str]:
        return [layer.name for layer in self._layers.values() if name in layer.parents]

    def inputs(self) -> list[LayerSpec]:
        return [layer for layer in self._layers.values() if layer.kind == "input"]

    def outputs(self) -> list[LayerSpec]:
        """Layers with no children (typically the loss)."""
        with_children = {p for layer in self._layers.values() for p in layer.parents}
        return [layer for layer in self._layers.values() if layer.name not in with_children]

    # -- shape inference --------------------------------------------------------
    def infer_shapes(self) -> dict[str, tuple[int, int, int]]:
        """Per-layer output shapes (C, H, W); the batch dim is implicit.

        Loss layers report the shape of their logits input.
        """
        from repro.nn.functional import conv2d_output_shape

        shapes: dict[str, tuple[int, int, int]] = {}
        for layer in self.topo_order():
            if layer.kind == "input":
                shapes[layer.name] = (
                    int(layer.params["channels"]),
                    int(layer.params["height"]),
                    int(layer.params["width"]),
                )
                continue
            pshape = shapes[layer.parents[0]]
            c, h, w = pshape
            if layer.kind == "conv":
                oh, ow = conv2d_output_shape(
                    (h, w),
                    layer.params["kernel"],
                    layer.params.get("stride", 1),
                    layer.params.get("pad", 0),
                )
                shapes[layer.name] = (int(layer.params["filters"]), oh, ow)
            elif layer.kind == "pool":
                oh, ow = conv2d_output_shape(
                    (h, w),
                    layer.params["kernel"],
                    layer.params.get("stride", layer.params["kernel"]),
                    layer.params.get("pad", 0),
                )
                shapes[layer.name] = (c, oh, ow)
            elif layer.kind in ("bn", "relu"):
                shapes[layer.name] = pshape
            elif layer.kind == "gap":
                shapes[layer.name] = (c, 1, 1)
            elif layer.kind == "fc":
                shapes[layer.name] = (int(layer.params["units"]), 1, 1)
            elif layer.kind == "add":
                for p in layer.parents[1:]:
                    if shapes[p] != pshape:
                        raise ValueError(
                            f"add layer {layer.name!r}: parent shapes differ "
                            f"({shapes[p]} vs {pshape})"
                        )
                shapes[layer.name] = pshape
            elif layer.kind in ("softmax_ce", "bce"):
                shapes[layer.name] = pshape
            else:  # pragma: no cover - guarded by LayerSpec
                raise AssertionError(layer.kind)
        return shapes

    # -- bookkeeping used by the performance/memory models -------------------------
    def param_count(self, name: str, shapes: dict | None = None) -> int:
        """Learnable parameter count of one layer."""
        layer = self._layers[name]
        shapes = shapes or self.infer_shapes()
        if layer.kind == "conv":
            c_in = shapes[layer.parents[0]][0]
            k = layer.params["kernel"]
            kh, kw = (k, k) if isinstance(k, int) else k
            n = int(layer.params["filters"]) * c_in * kh * kw
            if layer.params.get("bias", False):
                n += int(layer.params["filters"])
            return n
        if layer.kind == "bn":
            return 2 * shapes[layer.parents[0]][0]
        if layer.kind == "fc":
            c, h, w = shapes[layer.parents[0]]
            n = int(layer.params["units"]) * c * h * w
            if layer.params.get("bias", True):
                n += int(layer.params["units"])
            return n
        return 0

    def total_params(self) -> int:
        shapes = self.infer_shapes()
        return sum(self.param_count(layer.name, shapes) for layer in self)

    def conv_layers(self) -> list[LayerSpec]:
        return [layer for layer in self if layer.kind == "conv"]

    def summary(self) -> str:
        """Human-readable layer table."""
        shapes = self.infer_shapes()
        lines = [f"Network {self.name!r}: {len(self)} layers, "
                 f"{self.total_params():,} params"]
        for layer in self:
            c, h, w = shapes[layer.name]
            extra = ""
            if layer.kind == "conv":
                extra = (
                    f" K={layer.params['kernel']} S={layer.params.get('stride', 1)} "
                    f"P={layer.params.get('pad', 0)} F={layer.params['filters']}"
                )
            lines.append(
                f"  {layer.name:<28s} {layer.kind:<10s} "
                f"-> ({c:>4d},{h:>5d},{w:>5d}){extra}"
            )
        return "\n".join(lines)
