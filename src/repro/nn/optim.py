"""SGD with momentum and weight decay (LBANN's default training setup)."""

from __future__ import annotations

import numpy as np


class SGD:
    """Stochastic gradient descent over nested ``{layer: {param: array}}``.

    After the gradient allreduce, "SGD can proceed independently on each
    processor" (paper §III-A): every rank holds identical replicated
    parameters and applies identical updates, so no further communication is
    needed.  The update is deterministic for bitwise replica consistency.
    """

    def __init__(
        self,
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[tuple[str, str], np.ndarray] = {}

    def step(
        self,
        params: dict[str, dict[str, np.ndarray]],
        grads: dict[str, dict[str, np.ndarray]],
    ) -> None:
        """Update ``params`` in place from ``grads``."""
        for lname, lgrads in grads.items():
            lparams = params[lname]
            for pname, g in lgrads.items():
                p = lparams[pname]
                if self.weight_decay and pname in ("w",):
                    g = g + self.weight_decay * p
                if self.momentum:
                    key = (lname, pname)
                    v = self._velocity.get(key)
                    v = self.momentum * v + g if v is not None else g.copy()
                    self._velocity[key] = v
                    g = v
                p -= self.lr * g

    def state_size(self) -> int:
        """Number of velocity scalars held (for the memory model)."""
        return sum(v.size for v in self._velocity.values())

    def state_dict(self) -> dict:
        """Persistent optimizer state (momentum velocities), as copies."""
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "velocity": {k: v.copy() for k, v in self._velocity.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output bitwise (velocities rebound —
        ``step`` rebinds them every update anyway)."""
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self._velocity = {
            tuple(k): v.copy() for k, v in state["velocity"].items()
        }
