"""Local (single-device) neural-network substrate.

The paper relies on cuDNN for the on-GPU convolution kernels and LBANN for
the training pipeline; this package is the numpy equivalent:

* :mod:`repro.nn.functional` — stateless forward/backward kernels
  (convolution via im2col-style window views, pooling, batch norm, ReLU,
  linear, losses).  These are the "local compute oracle" the distributed
  algorithms are verified against — the paper's algorithms "exactly
  replicate convolution as if it were performed on a single GPU".
* :mod:`repro.nn.init` — deterministic parameter initialization.
* :mod:`repro.nn.graph` — declarative network specifications
  (:class:`LayerSpec` / :class:`NetworkSpec`) shared by the local executor,
  the distributed executor, and the performance model.
* :mod:`repro.nn.network` — single-device DAG execution (reference
  implementation for exactness tests).
* :mod:`repro.nn.resnet` — fully-convolutional ResNet-50 (He et al.).
* :mod:`repro.nn.meshnet` — the 1K/2K mesh-tangling segmentation models.
* :mod:`repro.nn.optim` — SGD with momentum/weight decay.
"""

from repro.nn.graph import LayerSpec, NetworkSpec
from repro.nn.network import LocalNetwork
from repro.nn.optim import SGD

__all__ = ["LayerSpec", "LocalNetwork", "NetworkSpec", "SGD"]
