"""Single-device reference execution of a :class:`NetworkSpec`.

This is the ground truth the distributed executor is verified against: same
parameter initialization (seeded by layer name), same kernels, run on the
whole mini-batch on one "device".
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init as I
from repro.nn.graph import NetworkSpec


class LocalNetwork:
    """Executable single-device network with parameters and gradients."""

    def __init__(self, spec: NetworkSpec, seed: int = 0, dtype=np.float64) -> None:
        self.spec = spec
        self.seed = seed
        self.dtype = dtype
        self.shapes = spec.infer_shapes()
        self.params: dict[str, dict[str, np.ndarray]] = {}
        self.grads: dict[str, dict[str, np.ndarray]] = {}
        self._build_params()
        self._caches: dict[str, dict] = {}
        self.activations: dict[str, np.ndarray] = {}

    def _build_params(self) -> None:
        for layer in self.spec:
            if layer.kind == "conv":
                c_in = self.shapes[layer.parents[0]][0]
                k = layer.params["kernel"]
                kh, kw = (k, k) if isinstance(k, int) else k
                p = {
                    "w": I.conv_weights(
                        layer.params["filters"], c_in, kh, kw, self.seed, layer.name
                    ).astype(self.dtype)
                }
                if layer.params.get("bias", False):
                    p["b"] = I.zeros(layer.params["filters"]).astype(self.dtype)
                self.params[layer.name] = p
            elif layer.kind == "bn":
                c = self.shapes[layer.parents[0]][0]
                self.params[layer.name] = {
                    "gamma": I.ones(c).astype(self.dtype),
                    "beta": I.zeros(c).astype(self.dtype),
                }
                # Running statistics are state, not learnable parameters.
                self._running = getattr(self, "_running", {})
                self._running[layer.name] = {
                    "mean": I.zeros(c).astype(self.dtype),
                    "var": I.ones(c).astype(self.dtype),
                }
            elif layer.kind == "fc":
                c, h, w = self.shapes[layer.parents[0]]
                p = {
                    "w": I.fc_weights(
                        layer.params["units"], c * h * w, self.seed, layer.name
                    ).astype(self.dtype)
                }
                if layer.params.get("bias", True):
                    p["b"] = I.zeros(layer.params["units"]).astype(self.dtype)
                self.params[layer.name] = p

    # -- execution ---------------------------------------------------------------
    def forward(
        self,
        inputs: dict[str, np.ndarray] | np.ndarray,
        targets: np.ndarray | None = None,
        training: bool = True,
    ) -> float | dict[str, np.ndarray]:
        """Run forward; returns the loss if the network ends in a loss layer
        (and targets are given), otherwise the dict of output activations."""
        if isinstance(inputs, np.ndarray):
            (inp,) = self.spec.inputs()
            inputs = {inp.name: inputs}
        acts: dict[str, np.ndarray] = {}
        self._caches = {}
        loss_value: float | None = None

        for layer in self.spec.topo_order():
            if layer.kind == "input":
                acts[layer.name] = np.asarray(inputs[layer.name], dtype=self.dtype)
                continue
            x = acts[layer.parents[0]]
            cache: dict = {}
            if layer.kind == "conv":
                p = self.params[layer.name]
                y = F.conv2d_forward(
                    x,
                    p["w"],
                    stride=layer.params.get("stride", 1),
                    pad=layer.params.get("pad", 0),
                    bias=p.get("b"),
                )
                cache["x"] = x
            elif layer.kind == "pool":
                mode = layer.params.get("mode", "max")
                kernel = layer.params["kernel"]
                stride = layer.params.get("stride", kernel)
                pad = layer.params.get("pad", 0)
                if mode == "max":
                    y, argmax = F.maxpool2d_forward(x, kernel, stride, pad)
                    cache["argmax"] = argmax
                else:
                    y = F.avgpool2d_forward(x, kernel, stride, pad)
                cache["x_shape"] = x.shape
            elif layer.kind == "bn":
                p = self.params[layer.name]
                if training:
                    y, bn_cache = F.batchnorm_forward(x, p["gamma"], p["beta"])
                    run = self._running[layer.name]
                    mom = layer.params.get("momentum", 0.9)
                    run["mean"] = mom * run["mean"] + (1 - mom) * x.mean(axis=(0, 2, 3))
                    run["var"] = mom * run["var"] + (1 - mom) * x.var(axis=(0, 2, 3))
                else:
                    run = self._running[layer.name]
                    y, bn_cache = F.batchnorm_forward(
                        x, p["gamma"], p["beta"], mean=run["mean"], var=run["var"]
                    )
                cache["bn"] = bn_cache
            elif layer.kind == "relu":
                y, mask = F.relu_forward(x)
                cache["mask"] = mask
            elif layer.kind == "gap":
                y = F.global_avgpool_forward(x)[:, :, None, None]
                cache["x_shape"] = x.shape
            elif layer.kind == "fc":
                p = self.params[layer.name]
                flat = x.reshape(x.shape[0], -1)
                y = F.linear_forward(flat, p["w"], p.get("b"))[:, :, None, None]
                cache["flat"] = flat
                cache["x_shape"] = x.shape
            elif layer.kind == "add":
                y = x.copy()
                for q in layer.parents[1:]:
                    y += acts[q]
            elif layer.kind == "softmax_ce":
                logits = x.reshape(x.shape[0], -1)
                if targets is not None:
                    loss_value, dlogits = F.softmax_cross_entropy(logits, targets)
                    cache["dlogits"] = dlogits.reshape(x.shape)
                y = logits.reshape(x.shape)
            elif layer.kind == "bce":
                if targets is not None:
                    loss_value, dlogits = F.sigmoid_bce_with_logits(x, targets)
                    cache["dlogits"] = dlogits
                y = x
            else:  # pragma: no cover
                raise AssertionError(layer.kind)
            acts[layer.name] = y
            self._caches[layer.name] = cache

        self.activations = acts
        if loss_value is not None:
            return loss_value
        return {out.name: acts[out.name] for out in self.spec.outputs()}

    def backward(self) -> dict[str, dict[str, np.ndarray]]:
        """Backpropagate from the loss layer; returns gradients by layer."""
        grads: dict[str, dict[str, np.ndarray]] = {}
        # dy accumulated per layer from all its children.
        dys: dict[str, np.ndarray] = {}

        def accumulate(name: str, dy: np.ndarray) -> None:
            if name in dys:
                dys[name] = dys[name] + dy
            else:
                dys[name] = dy

        for layer in reversed(self.spec.topo_order()):
            cache = self._caches.get(layer.name, {})
            if layer.kind in ("softmax_ce", "bce"):
                if "dlogits" not in cache:
                    raise RuntimeError(
                        f"backward() before forward() with targets for {layer.name!r}"
                    )
                accumulate(layer.parents[0], cache["dlogits"].astype(self.dtype))
                continue
            if layer.kind == "input":
                continue
            dy = dys.get(layer.name)
            if dy is None:
                continue  # dead branch (no path to the loss)
            x_parent = layer.parents[0]
            if layer.kind == "conv":
                p = self.params[layer.name]
                stride = layer.params.get("stride", 1)
                pad = layer.params.get("pad", 0)
                k = layer.params["kernel"]
                x = cache["x"]
                grads[layer.name] = {
                    "w": F.conv2d_backward_filter(x, dy, kernel=k, stride=stride, pad=pad)
                }
                if "b" in p:
                    grads[layer.name]["b"] = dy.sum(axis=(0, 2, 3))
                accumulate(
                    x_parent,
                    F.conv2d_backward_data(
                        dy, p["w"], stride=stride, pad=pad, x_spatial=x.shape[2:]
                    ),
                )
            elif layer.kind == "pool":
                mode = layer.params.get("mode", "max")
                kernel = layer.params["kernel"]
                stride = layer.params.get("stride", kernel)
                pad = layer.params.get("pad", 0)
                if mode == "max":
                    dx = F.maxpool2d_backward(
                        dy, cache["argmax"], cache["x_shape"], kernel, stride, pad
                    )
                else:
                    dx = F.avgpool2d_backward(dy, cache["x_shape"], kernel, stride, pad)
                accumulate(x_parent, dx)
            elif layer.kind == "bn":
                dx, dgamma, dbeta = F.batchnorm_backward(dy, cache["bn"])
                grads[layer.name] = {"gamma": dgamma, "beta": dbeta}
                accumulate(x_parent, dx)
            elif layer.kind == "relu":
                accumulate(x_parent, F.relu_backward(dy, cache["mask"]))
            elif layer.kind == "gap":
                accumulate(
                    x_parent,
                    F.global_avgpool_backward(dy[:, :, 0, 0], cache["x_shape"]),
                )
            elif layer.kind == "fc":
                p = self.params[layer.name]
                dflat, dw, db = F.linear_backward(
                    cache["flat"], p["w"], dy[:, :, 0, 0]
                )
                grads[layer.name] = {"w": dw}
                if "b" in p:
                    grads[layer.name]["b"] = db
                accumulate(x_parent, dflat.reshape(cache["x_shape"]))
            elif layer.kind == "add":
                for q in layer.parents:
                    accumulate(q, dy)
            else:  # pragma: no cover
                raise AssertionError(layer.kind)

        self.grads = grads
        return grads

    def loss_and_grad(
        self, inputs, targets
    ) -> tuple[float, dict[str, dict[str, np.ndarray]]]:
        loss = self.forward(inputs, targets=targets, training=True)
        assert isinstance(loss, float)
        return loss, self.backward()
