"""Deterministic parameter initialization.

Parameters are seeded per layer *name*, not per creation order, so the
single-device reference network and the distributed network initialize
bitwise-identically — the precondition for the exactness tests ("our
algorithms exactly replicate convolution as if it were performed on a
single GPU", paper §III).
"""

from __future__ import annotations

import zlib

import numpy as np


def _layer_rng(seed: int, name: str) -> np.random.Generator:
    return np.random.default_rng((seed, zlib.crc32(name.encode())))


def he_normal(
    shape: tuple[int, ...], fan_in: int, seed: int, name: str
) -> np.ndarray:
    """He et al. initialization (the ResNet paper's scheme)."""
    std = np.sqrt(2.0 / max(fan_in, 1))
    return _layer_rng(seed, name).standard_normal(shape) * std


def conv_weights(
    filters: int, in_channels: int, kh: int, kw: int, seed: int, name: str
) -> np.ndarray:
    return he_normal(
        (filters, in_channels, kh, kw), in_channels * kh * kw, seed, name
    )


def fc_weights(units: int, in_features: int, seed: int, name: str) -> np.ndarray:
    return he_normal((units, in_features), in_features, seed, name)


def zeros(shape: tuple[int, ...] | int) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...] | int) -> np.ndarray:
    return np.ones(shape)
