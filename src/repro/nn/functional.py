"""Stateless forward/backward kernels (the local compute oracle).

All kernels operate on NCHW tensors and are fully vectorized: convolutions
use strided window views + ``tensordot`` (the numpy analogue of im2col +
GEMM, which is what cuDNN's IMPLICIT_GEMM algorithm computes), and the
backward kernels implement the paper's Eqs. (2) and (3) exactly.

Two kernels take the *effective padding* formulation needed by the
distributed algorithms (paper §III-A): the spatially partitioned layers
materialize halo + virtual padding into an extended local block via
``gather_region`` and then call these kernels with ``pad=0``, while
backward-data is evaluated with a per-rank left-offset padding that aligns
the gathered error-signal region with the local input block (see
:mod:`repro.core.dist_conv` for the offset derivation).
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = [
    "avgpool2d_backward",
    "avgpool2d_forward",
    "batchnorm_backward",
    "batchnorm_forward",
    "conv2d_backward_data",
    "conv2d_backward_filter",
    "conv2d_forward",
    "conv2d_output_shape",
    "global_avgpool_backward",
    "global_avgpool_forward",
    "linear_backward",
    "linear_forward",
    "maxpool2d_backward",
    "maxpool2d_forward",
    "relu_backward",
    "relu_forward",
    "sigmoid_bce_with_logits",
    "softmax_cross_entropy",
]


def _pair(v) -> tuple[int, int]:
    if isinstance(v, (tuple, list)):
        a, b = v
        return int(a), int(b)
    return int(v), int(v)


def conv2d_output_shape(
    spatial: tuple[int, int], kernel, stride, pad
) -> tuple[int, int]:
    """Output spatial extent: ``(n + 2p - k) // s + 1`` per dimension."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    ph, pw = _pair(pad)
    h, w = spatial
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    if oh < 1 or ow < 1:
        raise ValueError(
            f"convolution output would be empty: input {spatial}, kernel "
            f"{(kh, kw)}, stride {(sh, sw)}, pad {(ph, pw)}"
        )
    return oh, ow


def _windows(xp: np.ndarray, kernel: tuple[int, int], stride: tuple[int, int]) -> np.ndarray:
    """(N, C, Ho, Wo, Kh, Kw) sliding windows of a padded NCHW tensor."""
    kh, kw = kernel
    sh, sw = stride
    win = sliding_window_view(xp, (kh, kw), axis=(2, 3))
    return win[:, :, ::sh, ::sw]


def conv2d_forward(
    x: np.ndarray,
    w: np.ndarray,
    stride=1,
    pad=0,
    bias: np.ndarray | None = None,
) -> np.ndarray:
    """Cross-correlation (deep-learning "convolution"), paper Eq. (1).

    ``x``: (N, C, H, W); ``w``: (F, C, Kh, Kw); returns (N, F, Ho, Wo).
    """
    sh, sw = _pair(stride)
    ph, pw = _pair(pad)
    f, cw, kh, kw = w.shape
    n, c, h, wdt = x.shape
    if c != cw:
        raise ValueError(f"channel mismatch: x has {c}, w expects {cw}")
    conv2d_output_shape((h, wdt), (kh, kw), (sh, sw), (ph, pw))
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if ph or pw else x
    win = _windows(xp, (kh, kw), (sh, sw))
    # Contract (C, Kh, Kw): the triple sum of Eq. (1).
    y = np.tensordot(win, w, axes=([1, 4, 5], [1, 2, 3]))  # (N, Ho, Wo, F)
    y = np.ascontiguousarray(y.transpose(0, 3, 1, 2))
    if bias is not None:
        y += bias.reshape(1, -1, 1, 1)
    return y


def conv2d_backward_filter(
    x: np.ndarray, dy: np.ndarray, kernel, stride=1, pad=0
) -> np.ndarray:
    """Weight gradients, paper Eq. (2): ``dw[f,c,a,b] = sum dy[k,f,i,j] x[k,c,i*s+a-p,...]``."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    ph, pw = _pair(pad)
    n, f, oh, ow = dy.shape
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if ph or pw else x
    if xp.shape[2] < (oh - 1) * sh + kh or xp.shape[3] < (ow - 1) * sw + kw:
        raise ValueError("dy spatial extent inconsistent with x/kernel/stride/pad")
    win = _windows(xp, (kh, kw), (sh, sw))  # (N, C, Oh', Ow', Kh, Kw)
    win = win[:, :, :oh, :ow]  # strided view may overshoot by up to s-1 windows
    dw = np.tensordot(dy, win, axes=([0, 2, 3], [0, 2, 3]))  # (F, C, Kh, Kw)
    return np.ascontiguousarray(dw)


def conv2d_backward_data(
    dy: np.ndarray,
    w: np.ndarray,
    stride=1,
    pad=0,
    x_spatial: tuple[int, int] | None = None,
) -> np.ndarray:
    """Data gradients, paper Eq. (3): ``dx[i] = sum_a w[a] dy[(i + p - a)/s]``.

    ``pad`` is the *left offset* relating dy indices to dx indices; it may
    exceed ``k - 1`` (the distributed algorithm passes ``x_lo + P - s*d_lo``
    to align a gathered dy region with the local dx block).  ``x_spatial``
    fixes the output extent; if omitted, the standard inverse of the forward
    shape formula (without output_padding) is used.
    """
    sh, sw = _pair(stride)
    ph, pw = _pair(pad)
    n, f, oh, ow = dy.shape
    fw, c, kh, kw = w.shape
    if f != fw:
        raise ValueError(f"filter mismatch: dy has {f}, w has {fw}")
    if x_spatial is None:
        x_spatial = ((oh - 1) * sh + kh - 2 * ph, (ow - 1) * sw + kw - 2 * pw)
    xh, xw = x_spatial
    if xh < 0 or xw < 0:
        raise ValueError(f"negative x extent {x_spatial}")
    if xh == 0 or xw == 0:
        return np.zeros((n, c, xh, xw), dtype=dy.dtype)

    # Dilate dy by the stride (zero-stuffing): z[m] = dy[m/s] when s | m.
    zh, zw = (oh - 1) * sh + 1, (ow - 1) * sw + 1
    z = np.zeros((n, f, zh, zw), dtype=dy.dtype)
    z[:, :, ::sh, ::sw] = dy

    # dx[i] = sum_{a'} z[i - (k-1-p) + a'] * w_flipped[a'];  slice z into the
    # index window [-off, -off + xh + kh - 1) with zero fill outside.
    offh, offw = kh - 1 - ph, kw - 1 - pw
    lo_h, hi_h = -offh, -offh + xh + kh - 1
    lo_w, hi_w = -offw, -offw + xw + kw - 1
    zwin = np.zeros((n, f, hi_h - lo_h, hi_w - lo_w), dtype=dy.dtype)
    src_h = slice(max(lo_h, 0), min(hi_h, zh))
    src_w = slice(max(lo_w, 0), min(hi_w, zw))
    if src_h.start < src_h.stop and src_w.start < src_w.stop:
        zwin[
            :,
            :,
            src_h.start - lo_h : src_h.stop - lo_h,
            src_w.start - lo_w : src_w.stop - lo_w,
        ] = z[:, :, src_h, src_w]

    wf = w[:, :, ::-1, ::-1]
    win = _windows(zwin, (kh, kw), (1, 1))  # (N, F, xh, xw, Kh, Kw)
    dx = np.tensordot(win, wf, axes=([1, 4, 5], [0, 2, 3]))  # (N, xh, xw, C)
    return np.ascontiguousarray(dx.transpose(0, 3, 1, 2))


# -- pooling ---------------------------------------------------------------------


def maxpool2d_forward(
    x: np.ndarray, kernel, stride=None, pad=0
) -> tuple[np.ndarray, np.ndarray]:
    """Max pooling; returns ``(y, argmax)`` where argmax holds flat in-window
    indices needed by the backward pass."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride if stride is not None else kernel)
    ph, pw = _pair(pad)
    neg = np.finfo(x.dtype).min if np.issubdtype(x.dtype, np.floating) else np.iinfo(x.dtype).min
    xp = (
        np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=neg)
        if ph or pw
        else x
    )
    win = _windows(xp, (kh, kw), (sh, sw))
    flat = win.reshape(*win.shape[:4], kh * kw)
    argmax = flat.argmax(axis=-1)
    y = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
    return np.ascontiguousarray(y), argmax


def maxpool2d_backward(
    dy: np.ndarray,
    argmax: np.ndarray,
    x_shape: tuple[int, ...],
    kernel,
    stride=None,
    pad=0,
) -> np.ndarray:
    """Scatter ``dy`` to the argmax positions (overlaps accumulate)."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride if stride is not None else kernel)
    ph, pw = _pair(pad)
    n, c, h, w = x_shape
    n2, c2, oh, ow = dy.shape

    # Global (unpadded) coordinates of each window's argmax element.
    oi = np.arange(oh).reshape(1, 1, oh, 1)
    oj = np.arange(ow).reshape(1, 1, 1, ow)
    rows = oi * sh + argmax // kw - ph
    cols = oj * sw + argmax % kw - pw
    valid = (rows >= 0) & (rows < h) & (cols >= 0) & (cols < w)

    dx = np.zeros(x_shape, dtype=dy.dtype)
    ni = np.broadcast_to(np.arange(n).reshape(n, 1, 1, 1), argmax.shape)
    ci = np.broadcast_to(np.arange(c).reshape(1, c, 1, 1), argmax.shape)
    np.add.at(
        dx,
        (ni[valid], ci[valid], rows[valid], cols[valid]),
        dy[valid],
    )
    return dx


def avgpool2d_forward(x: np.ndarray, kernel, stride=None, pad=0) -> np.ndarray:
    """Average pooling (divisor is the full window size, zeros included).

    Each window is flattened to a contiguous axis before the reduction so
    the per-element accumulation order depends only on the window size —
    never on the surrounding extents — which keeps piecewise evaluation
    (the overlapped halo path of ``DistPool2d``) bitwise identical to the
    fused kernel.
    """
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride if stride is not None else kernel)
    ph, pw = _pair(pad)
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if ph or pw else x
    win = _windows(xp, (kh, kw), (sh, sw))
    flat = win.reshape(*win.shape[:4], kh * kw)
    return np.ascontiguousarray(flat.mean(axis=-1))


def avgpool2d_backward(
    dy: np.ndarray, x_shape: tuple[int, ...], kernel, stride=None, pad=0
) -> np.ndarray:
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride if stride is not None else kernel)
    ph, pw = _pair(pad)
    n, c, h, w = x_shape
    _, _, oh, ow = dy.shape
    dxp = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=dy.dtype)
    grad = dy / (kh * kw)
    for a in range(kh):
        for b in range(kw):
            dxp[:, :, a : a + (oh - 1) * sh + 1 : sh, b : b + (ow - 1) * sw + 1 : sw] += grad
    return dxp[:, :, ph : ph + h, pw : pw + w] if ph or pw else dxp


def global_avgpool_forward(x: np.ndarray) -> np.ndarray:
    """(N, C, H, W) -> (N, C) mean over the spatial extent."""
    return x.mean(axis=(2, 3))


def global_avgpool_backward(dy: np.ndarray, x_shape: tuple[int, ...]) -> np.ndarray:
    n, c, h, w = x_shape
    return np.broadcast_to(dy[:, :, None, None] / (h * w), x_shape).copy()


# -- batch normalization -----------------------------------------------------------


def batchnorm_forward(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-5,
    mean: np.ndarray | None = None,
    var: np.ndarray | None = None,
) -> tuple[np.ndarray, dict]:
    """Per-channel batch norm over (N, H, W).

    ``mean``/``var`` may be supplied externally (the distributed variants
    aggregate statistics over a process group first); otherwise they are
    computed from ``x`` (mini-batch statistics, biased variance).
    Returns ``(y, cache)`` for the backward pass.
    """
    if mean is None:
        mean = x.mean(axis=(0, 2, 3))
    if var is None:
        var = x.var(axis=(0, 2, 3))
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x - mean.reshape(1, -1, 1, 1)) * inv_std.reshape(1, -1, 1, 1)
    y = gamma.reshape(1, -1, 1, 1) * xhat + beta.reshape(1, -1, 1, 1)
    cache = {"xhat": xhat, "inv_std": inv_std, "gamma": gamma}
    return y, cache


def batchnorm_backward(
    dy: np.ndarray,
    cache: dict,
    stat_sums: tuple[np.ndarray, np.ndarray, float] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns ``(dx, dgamma, dbeta)``.

    ``dgamma = sum dy*xhat`` and ``dbeta = sum dy`` over the normalization
    set of size ``m``; then ``dx = (gamma*inv_std)*(dy - dbeta/m - xhat*dgamma/m)``.
    For distributed batch norm, pass ``stat_sums=(dgamma, dbeta, m)``
    aggregated over the process group; the local per-element formula is then
    applied with the global sums.
    """
    xhat, inv_std, gamma = cache["xhat"], cache["inv_std"], cache["gamma"]
    if stat_sums is None:
        dgamma = (dy * xhat).sum(axis=(0, 2, 3))
        dbeta = dy.sum(axis=(0, 2, 3))
        m = dy.shape[0] * dy.shape[2] * dy.shape[3]
    else:
        dgamma, dbeta, m = stat_sums
    scale = (gamma * inv_std).reshape(1, -1, 1, 1)
    dx = scale * (
        dy
        - dbeta.reshape(1, -1, 1, 1) / m
        - xhat * dgamma.reshape(1, -1, 1, 1) / m
    )
    local_dgamma = (dy * xhat).sum(axis=(0, 2, 3))
    local_dbeta = dy.sum(axis=(0, 2, 3))
    return dx, local_dgamma, local_dbeta


def batchnorm_stats(x: np.ndarray) -> tuple[np.ndarray, np.ndarray, float]:
    """Per-channel ``(sum, sum of squares, count)`` — the quantities the
    distributed variants allreduce before normalizing (paper §III-B)."""
    s = x.sum(axis=(0, 2, 3))
    ss = (x * x).sum(axis=(0, 2, 3))
    count = float(x.shape[0] * x.shape[2] * x.shape[3])
    return s, ss, count


# -- element-wise and dense ----------------------------------------------------------


def relu_forward(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    mask = x > 0
    return x * mask, mask


def relu_backward(dy: np.ndarray, mask: np.ndarray) -> np.ndarray:
    return dy * mask


def linear_forward(
    x: np.ndarray, w: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """``y = x @ w.T + b`` with x: (N, D), w: (out, D)."""
    y = x @ w.T
    if bias is not None:
        y += bias
    return y


def linear_backward(
    x: np.ndarray, w: np.ndarray, dy: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    dx = dy @ w
    dw = dy.T @ x
    db = dy.sum(axis=0)
    return dx, dw, db


# -- losses ------------------------------------------------------------------------


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy over the batch; returns ``(loss, dlogits)``."""
    n = logits.shape[0]
    z = logits - logits.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(z).sum(axis=1, keepdims=True))
    logp = z - logsumexp
    loss = -float(logp[np.arange(n), labels].mean())
    dlogits = np.exp(logp)
    dlogits[np.arange(n), labels] -= 1.0
    return loss, dlogits / n


def sigmoid_bce_with_logits(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean binary cross-entropy with logits (the per-pixel mesh-tangling
    segmentation loss); returns ``(loss, dlogits)``."""
    # Numerically stable: log(1 + e^-|z|) + max(z, 0) - z*t.
    z = logits
    loss_map = np.maximum(z, 0) - z * targets + np.log1p(np.exp(-np.abs(z)))
    count = z.size
    loss = float(loss_map.sum() / count)
    sig = 1.0 / (1.0 + np.exp(-z))
    return loss, (sig - targets) / count
