"""The mesh-tangling segmentation models (paper §VI).

"Our CNN is a very simple fully-convolutional model adapted from VGGNet for
our input sizes and semantic segmentation.  It consists of six blocks of
either three (1K) or five (2K) convolution-batch normalization-ReLU
operations, using 3x3 convolutional filters, and a final convolutional layer
for prediction.  Downsampling is performed via stride-2 convolution at the
first convolutional filter of each block."

The paper publishes two layer shapes of the 2K model, which pin down its
channel progression:

* ``conv1_1``: C=18,  H=W=2048, F=128, K=5, P=2, S=2
* ``conv6_1``: C=384, H=W=64,   F=128, K=3, P=1, S=2

so 2K block output channels are ``(128, ..., 384, 128)``; we use
``(128, 128, 256, 256, 384, 128)``, consistent with both anchors.  The very
first convolution uses a 5x5 kernel (per ``conv1_1``); all others are 3x3.

The 1K model's shapes are *not* published.  Two paper facts constrain it:
(i) "the model can fit only one sample per GPU" (16 GB V100), and (ii) the
measured mini-batch times (1K: 0.4 s/sample on one GPU vs 2K: 0.494
GPU-seconds/sample) put the models within ~25% of each other in per-sample
cost despite the 2K model having 4x the pixels.  A narrow 1K model (2K
channels with 3 convs/block) satisfies neither; a VGG-like wider
progression ``(256, 384, 512, 512, 512, 512)`` satisfies both (about 10.5
GB/sample of activations+error signals; about 1.4 TFLOP/sample forward).
We therefore use the wide progression for the 1K model and document the
inference in DESIGN.md.

Prediction is per-pixel binary ("predict, for each pixel, whether the mesh
cell at that location needs to be relaxed"), trained with BCE-with-logits at
the final feature resolution.
"""

from __future__ import annotations

from repro.nn.graph import NetworkSpec

#: 2K block output channels, pinned by the paper's published layer shapes.
MESH_2K_CHANNELS = (128, 128, 256, 256, 384, 128)

#: 1K block output channels, inferred from the paper's memory and timing
#: constraints (see module docstring).
MESH_1K_CHANNELS = (256, 384, 512, 512, 512, 512)

#: Backwards-compatible alias (the 2K progression).
MESH_BLOCK_CHANNELS = MESH_2K_CHANNELS

#: Input channels: "18 channels consisting of various state variables and
#: mesh quality metrics from a hydrodynamics simulation".
MESH_INPUT_CHANNELS = 18


def build_mesh_model(
    resolution: int = 1024,
    convs_per_block: int = 3,
    block_channels=MESH_BLOCK_CHANNELS,
    input_channels: int = MESH_INPUT_CHANNELS,
    include_loss: bool = True,
    name: str | None = None,
) -> NetworkSpec:
    """Build a mesh-tangling model.

    ``convs_per_block`` is 3 for the 1K model, 5 for the 2K model.  Layer
    names follow the paper: ``conv{block}_{index}`` (1-based).
    """
    if resolution % (2 ** len(block_channels)) != 0:
        raise ValueError(
            f"resolution {resolution} must be divisible by "
            f"2^{len(block_channels)} (one stride-2 conv per block)"
        )
    net = NetworkSpec(name or f"mesh-{resolution}")
    net.add("input", "input", channels=input_channels, height=resolution, width=resolution)
    tip = "input"
    for b, out_ch in enumerate(block_channels, start=1):
        for i in range(1, convs_per_block + 1):
            cname = f"conv{b}_{i}"
            first_conv_of_model = b == 1 and i == 1
            kernel = 5 if first_conv_of_model else 3
            pad = 2 if first_conv_of_model else 1
            stride = 2 if i == 1 else 1
            net.add(
                cname, "conv", [tip],
                filters=out_ch, kernel=kernel, stride=stride, pad=pad,
            )
            net.add(f"bn{b}_{i}", "bn", [cname])
            net.add(f"relu{b}_{i}", "relu", [f"bn{b}_{i}"])
            tip = f"relu{b}_{i}"
    net.add("predict", "conv", [tip], filters=1, kernel=1, bias=True)
    if include_loss:
        net.add("loss", "bce", ["predict"])
    return net


def mesh_model_1k(**kwargs) -> NetworkSpec:
    """The 1024x1024 model: six blocks of three conv-BN-ReLU."""
    kwargs.setdefault("block_channels", MESH_1K_CHANNELS)
    return build_mesh_model(resolution=1024, convs_per_block=3,
                            name="mesh-1k", **kwargs)


def mesh_model_2k(**kwargs) -> NetworkSpec:
    """The 2048x2048 model: six blocks of five conv-BN-ReLU."""
    kwargs.setdefault("block_channels", MESH_2K_CHANNELS)
    return build_mesh_model(resolution=2048, convs_per_block=5,
                            name="mesh-2k", **kwargs)


def mesh_model_tiny(resolution: int = 64, **kwargs) -> NetworkSpec:
    """Scaled-down model with the same structure for functional tests."""
    return build_mesh_model(
        resolution=resolution,
        convs_per_block=2,
        block_channels=(8, 12),
        input_channels=4,
        name="mesh-tiny",
        **kwargs,
    )
