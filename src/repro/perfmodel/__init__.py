"""Performance and memory models for distributed CNN training (paper §V).

* :mod:`repro.perfmodel.machine` — the modeled platform: V100-class GPU
  throughput curves and the Lassen interconnect (NVLink2 intra-node, dual-
  rail IB EDR inter-node, 4 GPUs/node).
* :mod:`repro.perfmodel.conv_model` — C(n, c, h, w, f): convolution kernel
  runtime.  Two implementations, mirroring the paper's methodology: a
  *calibrated* analytic model of cuDNN-on-V100 (used to regenerate the
  paper-scale experiments) and an *empirical* model that times this
  package's own numpy kernels ("we use empirical estimates for convolution,
  as cuDNN may select among many algorithms").
* :mod:`repro.perfmodel.layer_cost` — FP, BPx, BPw, BPa per layer with
  halo-exchange terms and overlap adjustments (§V-A).
* :mod:`repro.perfmodel.network_cost` — whole-CNN mini-batch time: per-layer
  costs, shuffle costs between differing distributions, and greedy
  allreduce/backprop overlap (§V-B).
* :mod:`repro.perfmodel.memory` — per-GPU memory requirements (activations,
  error signals, parameters, workspace), reproducing the paper's
  feasibility boundaries (the 2K model needs >= 2-way spatial parallelism;
  the 1K model fits exactly one sample per GPU).
"""

from repro.perfmodel.machine import GPUSpec, MachineSpec, LASSEN
from repro.perfmodel.conv_model import CalibratedConvModel, EmpiricalConvModel
from repro.perfmodel.layer_cost import ConvLayerCost, conv_layer_cost
from repro.perfmodel.network_cost import NetworkCostModel, NetworkCostBreakdown
from repro.perfmodel.memory import MemoryModel, MemoryBreakdown

__all__ = [
    "CalibratedConvModel",
    "ConvLayerCost",
    "EmpiricalConvModel",
    "GPUSpec",
    "LASSEN",
    "MachineSpec",
    "MemoryBreakdown",
    "MemoryModel",
    "NetworkCostBreakdown",
    "NetworkCostModel",
    "conv_layer_cost",
]
