"""Convolution kernel cost models: C(n, c, h, w, f) of the paper's §V-A.

The paper measures cuDNN kernels empirically ("a simple benchmark that
times the appropriate cuDNN function; we perform several warmup runs, then
take the average of ten runs") and combines them with an analytic
communication model.  We provide both modes:

* :class:`CalibratedConvModel` — an analytic stand-in for the cuDNN
  measurements on V100 (constants in :mod:`repro.perfmodel.machine`),
  used to regenerate the paper-scale experiments;
* :class:`EmpiricalConvModel` — times this package's *own* numpy kernels on
  the host, exactly the paper's methodology applied to our substrate.
  Results are cached per layer geometry, like the paper's measurement
  database.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.perfmodel.machine import GPUSpec


@dataclass(frozen=True)
class ConvGeometry:
    """Local workload of one convolution kernel invocation."""

    n: int
    c: int
    h: int
    w: int
    f: int
    kh: int
    kw: int
    sh: int = 1
    sw: int = 1

    @property
    def out_h(self) -> int:
        # The distributed layers call kernels on pre-padded (halo-extended)
        # regions, so the kernel-local geometry has no padding term.
        return max(0, (self.h - self.kh) // self.sh + 1)

    @property
    def out_w(self) -> int:
        return max(0, (self.w - self.kw) // self.sw + 1)

    def forward_flops(self) -> float:
        """2 * N * F * OH * OW * C * KH * KW (paper Eq. 1)."""
        return (
            2.0 * self.n * self.f * self.out_h * self.out_w
            * self.c * self.kh * self.kw
        )

    def io_bytes(self, dtype_bytes: int = 4) -> float:
        x = self.n * self.c * self.h * self.w
        y = self.n * self.f * self.out_h * self.out_w
        w = self.f * self.c * self.kh * self.kw
        return float(x + y + w) * dtype_bytes


class CalibratedConvModel:
    """Analytic cuDNN-on-V100 stand-in (see machine.py for calibration)."""

    def __init__(self, gpu: GPUSpec, dtype_bytes: int = 4) -> None:
        self.gpu = gpu
        self.dtype_bytes = dtype_bytes

    def fp(self, g: ConvGeometry) -> float:
        """C(n, c, h, w, f): forward propagation time (Eq. 1)."""
        return self.gpu.conv_time(
            g.forward_flops(), g.io_bytes(self.dtype_bytes),
            self.gpu.fwd_tflops_max, tile_pixels=g.n * g.out_h * g.out_w,
        )

    def bp_data(self, g: ConvGeometry) -> float:
        """C_x: error-signal (backward-data) time (Eq. 3)."""
        return self.gpu.conv_time(
            g.forward_flops(), g.io_bytes(self.dtype_bytes),
            self.gpu.bwd_data_tflops_max, tile_pixels=g.n * g.out_h * g.out_w,
        )

    def bp_filter(self, g: ConvGeometry) -> float:
        """C_w: weight-gradient (backward-filter) time (Eq. 2)."""
        return self.gpu.conv_time(
            g.forward_flops(), g.io_bytes(self.dtype_bytes),
            self.gpu.bwd_filter_tflops_max, tile_pixels=g.n * g.out_h * g.out_w,
        )


class EmpiricalConvModel:
    """Times the local numpy kernels (the paper's methodology, our substrate).

    "We perform several warmup runs, then take the average of ten runs."
    """

    def __init__(self, warmup: int = 2, runs: int = 10, dtype=np.float64) -> None:
        self.warmup = warmup
        self.runs = runs
        self.dtype = dtype
        self._cache: dict[tuple, tuple[float, float, float]] = {}

    def _measure(self, g: ConvGeometry) -> tuple[float, float, float]:
        key = (g.n, g.c, g.h, g.w, g.f, g.kh, g.kw, g.sh, g.sw)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        from repro.nn import functional as F

        rng = np.random.default_rng(0)
        x = rng.standard_normal((g.n, g.c, g.h, g.w)).astype(self.dtype)
        w = rng.standard_normal((g.f, g.c, g.kh, g.kw)).astype(self.dtype)
        y = F.conv2d_forward(x, w, stride=(g.sh, g.sw), pad=0)
        dy = rng.standard_normal(y.shape).astype(self.dtype)

        def timed(fn) -> float:
            for _ in range(self.warmup):
                fn()
            t0 = time.perf_counter()
            for _ in range(self.runs):
                fn()
            return (time.perf_counter() - t0) / self.runs

        fp = timed(lambda: F.conv2d_forward(x, w, stride=(g.sh, g.sw), pad=0))
        bpd = timed(
            lambda: F.conv2d_backward_data(
                dy, w, stride=(g.sh, g.sw), pad=0, x_spatial=(g.h, g.w)
            )
        )
        bpf = timed(
            lambda: F.conv2d_backward_filter(
                x, dy, kernel=(g.kh, g.kw), stride=(g.sh, g.sw), pad=0
            )
        )
        result = (fp, bpd, bpf)
        self._cache[key] = result
        return result

    def fp(self, g: ConvGeometry) -> float:
        return self._measure(g)[0]

    def bp_data(self, g: ConvGeometry) -> float:
        return self._measure(g)[1]

    def bp_filter(self, g: ConvGeometry) -> float:
        return self._measure(g)[2]
