"""Whole-CNN cost model (paper §V-B) and mini-batch time prediction.

Extends the per-layer model to a full network:

* layers other than convolution are either "free" (the paper's choice) or
  costed as memory-bound passes (``cheap_layers='memory'``, our default for
  better absolute accuracy — the ranking of strategies is unaffected);
* data redistributions between layers with different distributions are
  charged a Shuffle(D_i, D_j) all-to-all cost (§III-C);
* the dL/dw allreduces are overlapped greedily with backpropagation
  computation: "we estimate allreduce overlap between layers by greedily
  overlapping as much computation as possible with an allreduce.  Only one
  allreduce at a time is considered to run" (§V-B);
* ``allreduce_bucket_bytes`` additionally models the engine's bucketed
  reducer: consecutive gradients of the same group are coalesced until the
  bucket fills, amortizing per-collective latency — the analytic
  counterpart of :class:`repro.core.grad_reducer.BucketedGradReducer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.collective_models import allreduce_time, alltoall_time, barrier_time
from repro.nn.graph import NetworkSpec
from repro.perfmodel.conv_model import CalibratedConvModel
from repro.perfmodel.layer_cost import (
    ConvLayerCost,
    conv_layer_cost,
    elementwise_layer_cost,
    local_extents,
    pool_layer_cost,
)
from repro.perfmodel.machine import MachineSpec
from repro.core.parallelism import ParallelStrategy


@dataclass
class NetworkCostBreakdown:
    """Predicted mini-batch time and its components (seconds)."""

    fp_total: float = 0.0
    bp_compute_total: float = 0.0
    allreduce_total: float = 0.0
    allreduce_exposed: float = 0.0
    #: Payload time of all shuffles (forward + backward, every edge).
    shuffle_total: float = 0.0
    #: What the critical path actually pays for shuffles: the payload time
    #: plus, on the blocking path, the collective's synchronization
    #: overhead (two rendezvous barriers per shuffle).  The overlapped
    #: engine removes the barriers; DAG-level hiding behind sibling-branch
    #: compute is refined by the task-graph simulator, not here.
    shuffle_exposed: float = 0.0
    optimizer_total: float = 0.0
    per_layer: dict[str, ConvLayerCost] = field(default_factory=dict)

    @property
    def minibatch_time(self) -> float:
        return (
            self.fp_total
            + self.bp_compute_total
            + self.allreduce_exposed
            + self.shuffle_exposed
            + self.optimizer_total
        )


class NetworkCostModel:
    """Predicts mini-batch training time for (network, strategy, batch)."""

    def __init__(
        self,
        spec: NetworkSpec,
        machine: MachineSpec,
        conv_model=None,
        overlap: bool = True,
        overlap_allreduce: bool = True,
        cheap_layers: str = "memory",
        allreduce_bucket_bytes: int | None = None,
        overlap_shuffle: bool = True,
        allreduce_algorithm: str | None = None,
    ) -> None:
        if cheap_layers not in ("memory", "free"):
            raise ValueError("cheap_layers must be 'memory' or 'free'")
        self.spec = spec
        self.machine = machine
        self.conv_model = conv_model or CalibratedConvModel(
            machine.gpu, machine.dtype_bytes
        )
        self.overlap = overlap
        self.overlap_allreduce = overlap_allreduce
        self.cheap_layers = cheap_layers
        self.allreduce_bucket_bytes = allreduce_bucket_bytes
        self.overlap_shuffle = overlap_shuffle
        #: Allreduce wire algorithm, matching the engine's ``algorithm=``
        #: knob: None keeps the historical fastest-per-(p, n) pricing,
        #: "auto" applies the *same* Thakur-style selection the
        #: communicator runs on the wire, and a concrete name (incl.
        #: "direct") pins one algorithm — so modeled and measured traffic
        #: use one selection rule.
        self.allreduce_algorithm = allreduce_algorithm
        self.shapes = spec.infer_shapes()

    # -- per-layer costing -------------------------------------------------------
    def layer_cost(
        self, name: str, n_global: int, strategy: ParallelStrategy
    ) -> ConvLayerCost | None:
        layer = self.spec[name]
        par = strategy.for_layer(name)
        total = strategy.nranks
        if layer.kind == "conv":
            c, h, w = self.shapes[layer.parents[0]]
            return conv_layer_cost(
                self.machine,
                self.conv_model,
                n_global=n_global,
                c=c,
                h=h,
                w=w,
                f=layer.params["filters"],
                kernel=layer.params["kernel"],
                stride=layer.params.get("stride", 1),
                pad=layer.params.get("pad", 0),
                parallelism=par,
                total_ranks=total,
                allreduce_algorithm=self.allreduce_algorithm,
            )
        if layer.kind == "pool":
            c, h, w = self.shapes[layer.parents[0]]
            if self.cheap_layers == "free":
                return None
            return pool_layer_cost(
                self.machine,
                n_global=n_global,
                c=c,
                h=h,
                w=w,
                kernel=layer.params["kernel"],
                stride=layer.params.get("stride", layer.params["kernel"]),
                pad=layer.params.get("pad", 0),
                parallelism=par,
            )
        if layer.kind in ("bn", "relu", "add", "gap"):
            if self.cheap_layers == "free" and layer.kind != "bn":
                return None
            c, h, w = self.shapes[layer.parents[0]]
            i_n, i_h, i_w = local_extents(n_global, h, w, par)
            local = float(i_n) * c * i_h * i_w
            if layer.kind == "bn":
                db = self.machine.dtype_bytes
                stats_group = par.height * par.width  # 'spatial' aggregation
                return elementwise_layer_cost(
                    self.machine,
                    local_elems=local,
                    passes_fwd=3,
                    passes_bwd=4,
                    params_bytes=2 * c * db,
                    total_ranks=strategy.nranks,
                    stats_allreduce_bytes=2 * c * db,
                    stats_group=stats_group,
                    allreduce_algorithm=self.allreduce_algorithm,
                )
            if self.cheap_layers == "free":
                return None
            passes = {"relu": (2, 2), "add": (3, 1), "gap": (1, 1)}[layer.kind]
            return elementwise_layer_cost(
                self.machine,
                local_elems=local,
                passes_fwd=passes[0],
                passes_bwd=passes[1],
            )
        if layer.kind == "fc":
            c, h, w = self.shapes[layer.parents[0]]
            units = layer.params["units"]
            i_n = local_extents(n_global, 1, 1, par)[0]
            flops = 2.0 * i_n * c * h * w * units
            db = self.machine.dtype_bytes
            gpu = self.machine.gpu
            fp = gpu.conv_time(flops, (i_n * c * h * w + i_n * units) * db,
                               gpu.fwd_tflops_max)
            bp = 2 * gpu.conv_time(flops, (i_n * c * h * w + i_n * units) * db,
                                   gpu.bwd_data_tflops_max)
            ar_bytes = units * c * h * w * db
            ar = allreduce_time(
                strategy.nranks, ar_bytes,
                self.machine.link_for_group(strategy.nranks),
                self.allreduce_algorithm,
            )
            return ConvLayerCost(
                fp, 0.0, bp, 0.0, 0.0, ar,
                allreduce_bytes=ar_bytes,
                allreduce_group=strategy.nranks,
            )
        return None  # input / loss layers

    def _shuffle_cost(
        self, nbytes_global: float, nranks: int
    ) -> float:
        """Shuffle(D_i, D_j): all-to-all moving ~1/P of the tensor per pair."""
        if nranks <= 1:
            return 0.0
        link = self.machine.link_for_group(nranks)
        per_pair = nbytes_global / (nranks * nranks)
        return alltoall_time(nranks, per_pair, link)

    def shuffle_edge_cost(self, parent: str, n_global: int, strategy) -> float:
        """Payload time of one redistribution of ``parent``'s activation
        (one direction — forward and backward each pay it once).  This is
        the duration the training-step simulator assigns its shuffle tasks,
        guarded by ``tests/test_sim.py`` the same way ``boundary_fraction``
        guards the halo decomposition."""
        c, h, w = self.shapes[parent]
        nbytes = float(n_global) * c * h * w * self.machine.dtype_bytes
        return self._shuffle_cost(nbytes, strategy.nranks)

    def shuffle_sync_overhead(self, nranks: int) -> float:
        """Synchronization a *blocking* shuffle pays beyond its payload:
        the all-to-all collective's two rendezvous barriers, which the
        nonblocking exchange removes."""
        if nranks <= 1:
            return 0.0
        return 2.0 * barrier_time(nranks, self.machine.link_for_group(nranks))

    # -- whole network -------------------------------------------------------------
    def cost(self, n_global: int, strategy: ParallelStrategy) -> NetworkCostBreakdown:
        bd = NetworkCostBreakdown()
        order = self.spec.topo_order()
        db = self.machine.dtype_bytes

        # Forward pass + shuffles where adjacent distributions differ.
        for layer in order:
            cost = self.layer_cost(layer.name, n_global, strategy)
            if cost is not None:
                bd.per_layer[layer.name] = cost
                bd.fp_total += cost.fp_time(self.overlap)
            for p in layer.parents:
                if (
                    strategy.for_layer(p).grid_shape
                    != strategy.for_layer(layer.name).grid_shape
                ):
                    # Forward and backward each shuffle once.
                    edge = 2 * self.shuffle_edge_cost(p, n_global, strategy)
                    bd.shuffle_total += edge
                    bd.shuffle_exposed += edge
                    if not self.overlap_shuffle:
                        bd.shuffle_exposed += 2 * self.shuffle_sync_overhead(
                            strategy.nranks
                        )

        # Backward pass with greedy allreduce overlap: walk layers in
        # reverse; each allreduce starts when its layer's backprop ends and
        # the (single) communication channel is free.  With bucketing,
        # consecutive gradients of the same group are coalesced first.
        t = 0.0
        ar_free_at = 0.0
        ar_end = 0.0
        # Buckets are keyed by gradient-group *identity* — (group size,
        # grid shape) — matching the engine's per-communicator buckets:
        # same-sized groups over different axes must not be coalesced.
        pending: dict[tuple, float] = {}

        def start_allreduce(duration: float) -> None:
            nonlocal ar_free_at, ar_end
            start = max(t, ar_free_at)
            ar_free_at = start + duration
            ar_end = ar_free_at
            bd.allreduce_total += duration

        def flush_bucket(key: tuple) -> None:
            nbytes = pending.pop(key, 0.0)
            group = key[0]
            if nbytes > 0:
                start_allreduce(
                    allreduce_time(
                        group, nbytes, self.machine.link_for_group(group),
                        self.allreduce_algorithm,
                    )
                )

        bucketing = bool(self.overlap_allreduce and self.allreduce_bucket_bytes)
        for layer in reversed(order):
            cost = bd.per_layer.get(layer.name)
            if cost is None:
                continue
            t += cost.bp_time(self.overlap)
            if cost.allreduce > 0:
                if bucketing and cost.allreduce_bytes > 0:
                    key = (
                        cost.allreduce_group,
                        strategy.for_layer(layer.name).grid_shape,
                    )
                    pending[key] = pending.get(key, 0.0) + cost.allreduce_bytes
                    if pending[key] >= self.allreduce_bucket_bytes:
                        flush_bucket(key)
                elif self.overlap_allreduce:
                    start_allreduce(cost.allreduce)
                else:
                    t += cost.allreduce
                    ar_end = t
                    bd.allreduce_total += cost.allreduce
        for key in list(pending):
            flush_bucket(key)
        bd.bp_compute_total = t
        if self.overlap_allreduce:
            # Greedy channel model, floored by the machine's overlap
            # efficiency (rings contend with compute for SMs/bandwidth).
            eta = self.machine.allreduce_overlap_efficiency
            bd.allreduce_exposed = max(
                max(0.0, ar_end - t), (1.0 - eta) * bd.allreduce_total
            )
        else:
            bd.allreduce_exposed = bd.allreduce_total

        # Optimizer: one memory-bound pass over parameters (+momentum).
        params = self.spec.total_params()
        bd.optimizer_total = self.machine.gpu.elementwise_time(3 * params * db)
        return bd

    def minibatch_time(self, n_global: int, strategy: ParallelStrategy) -> float:
        return self.cost(n_global, strategy).minibatch_time
