"""Machine description of the modeled platform (Lassen, paper §VI).

Lassen is a CORAL-class system: each node has two POWER9 CPUs and four
V100 (16 GB) GPUs on NVLink2, with nodes connected by dual-rail InfiniBand
EDR.  All constants below are documented calibration inputs:

* **GPU throughput.**  cuDNN fp32 convolution on V100 achieves an
  *effective* throughput that exceeds the 15.7 TFLOP/s fp32 peak on large
  3x3 layers (Winograd-class algorithmic gains) but is far lower on small
  layers, where kernel launch and tile overheads dominate.  We model
  achieved throughput with a work-saturation curve
  ``T(work) = T_max * work / (work + work_half)`` plus a fixed per-kernel
  latency, with separate ``T_max`` for forward, backward-data, and
  backward-filter kernels (backward kernels are consistently slower; the
  paper's Fig. 3 shows BP ~ 3-4x FP on the same layer).  The constants are
  fitted to the anchor cells of the paper's Tables I-III; everything else
  the model emits is a prediction.
* **Interconnect.**  NVLink2 offers ~50 GB/s per direction between GPU
  pairs on a node; dual-rail EDR gives ~21 GB/s effective per node with
  GPUDirect latencies of a few microseconds.  Collectives spanning nodes
  are bottlenecked by the inter-node links (all four GPUs share the NICs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm.collective_models import (
    DEFAULT_INTER_LINK,
    DEFAULT_INTRA_LINK,
    LinkParameters,
    TwoTierTopology,
    hierarchical_allreduce_time,
)
from repro.comm.timemodel import ClusterTopology


@dataclass(frozen=True)
class GPUSpec:
    """Throughput/latency/capacity model of one GPU."""

    name: str = "V100-16GB"
    #: Effective forward-convolution throughput ceiling (FLOP/s); exceeds
    #: fp32 peak because cuDNN's Winograd/FFT algorithms reduce real work.
    fwd_tflops_max: float = 14.0e12
    #: Backward-data and backward-filter ceilings (slower kernels).
    bwd_data_tflops_max: float = 11.0e12
    bwd_filter_tflops_max: float = 11.0e12
    #: Work (FLOPs) at which half the ceiling is achieved.
    work_half: float = 5.0e8
    #: Output-tile size (pixels) at which half the ceiling is achieved:
    #: cuDNN kernels tile the output spatially, so tiny local domains (the
    #: deep layers under 8/16-way spatial decomposition) run far below
    #: peak — "local convolution kernels not scaling linearly" (§VI-B1).
    tile_half: float = 384.0
    #: Fixed per-kernel-launch latency (seconds).
    kernel_latency: float = 10.0e-6
    #: HBM2 bandwidth (bytes/s): the floor for memory-bound layers.
    mem_bandwidth: float = 800.0e9
    #: Device memory (bytes).
    memory_bytes: float = 16.0e9

    def throughput(
        self, work_flops: float, ceiling: float, tile_pixels: float | None = None
    ) -> float:
        """Achieved FLOP/s for a kernel doing ``work_flops`` of work over an
        output tile of ``tile_pixels`` (None = large)."""
        if work_flops <= 0:
            return ceiling
        t = ceiling * work_flops / (work_flops + self.work_half)
        if tile_pixels is not None:
            t *= tile_pixels / (tile_pixels + self.tile_half)
        return t

    def conv_time(
        self,
        work_flops: float,
        bytes_moved: float,
        ceiling: float,
        tile_pixels: float | None = None,
    ) -> float:
        """Kernel time: latency + max(compute-bound, memory-bound)."""
        if work_flops <= 0:
            return 0.0
        compute = work_flops / self.throughput(work_flops, ceiling, tile_pixels)
        memory = bytes_moved / self.mem_bandwidth
        return self.kernel_latency + max(compute, memory)

    def elementwise_time(self, bytes_moved: float) -> float:
        """Memory-bound elementwise pass (ReLU, BN apply, SGD update)."""
        if bytes_moved <= 0:
            return 0.0
        return self.kernel_latency + bytes_moved / self.mem_bandwidth


@dataclass(frozen=True)
class MachineSpec:
    """A GPU cluster: node topology plus link and GPU models."""

    gpu: GPUSpec = field(default_factory=GPUSpec)
    gpus_per_node: int = 4
    #: NVLink2: ~50 GB/s/direction, low launch latency via CUDA IPC.
    #: (Shared with the communicator's topology-aware selection — see
    #: :data:`repro.comm.collective_models.DEFAULT_INTRA_LINK` — so the
    #: engine's ``algorithm="auto"`` prices the same wire this model does.)
    intra_link: LinkParameters = DEFAULT_INTRA_LINK
    #: Dual-rail IB EDR with GPUDirect RDMA: ~21 GB/s per node effective.
    inter_link: LinkParameters = DEFAULT_INTER_LINK
    #: Bytes per element on device (the paper trains in single precision).
    dtype_bytes: int = 4
    #: Fixed per-GPU runtime overhead (CUDA context, NCCL, framework).
    runtime_overhead_bytes: float = 0.75e9
    #: Communication buffer growth with scale ("communication-related data
    #: structures taking increased GPU memory", §VI-B1): NCCL/Aluminum hold
    #: per-peer ring buffers, so the footprint grows with the communicator
    #: size until capped.
    comm_buffer_bytes_per_rank: float = 2.0e6
    comm_buffer_cap_bytes: float = 4.0e9
    #: Fixed per-halo-message overhead (pack/unpack kernels, stream sync,
    #: rendezvous) on top of the α-β transfer: the "increased overheads of
    #: halo communication" the paper observes at 8/16 GPUs/sample.  The
    #: inter-node value reflects 2019-era GPUDirect pipelines.
    halo_msg_overhead_intra: float = 5.0e-6
    halo_msg_overhead_inter: float = 10.0e-6
    #: Fraction of allreduce time hideable behind backprop compute.  "Our
    #: implementation cannot fully overlap global allreduces with
    #: backpropagation computation" (§VI-B1): NCCL rings contend with
    #: compute kernels for SMs and memory bandwidth.
    allreduce_overlap_efficiency: float = 0.15

    def topology(self) -> ClusterTopology:
        return ClusterTopology(
            gpus_per_node=self.gpus_per_node,
            intra_link=self.intra_link,
            inter_link=self.inter_link,
        )

    def link_for_group(self, nranks: int, ranks_per_node: int | None = None) -> LinkParameters:
        """Effective link for a collective over ``nranks`` consecutive ranks."""
        if nranks <= (ranks_per_node or self.gpus_per_node):
            return self.intra_link
        return self.inter_link

    def two_tier(
        self, nnodes: int, ranks_per_node: int | None = None
    ) -> TwoTierTopology:
        """Two-tier (intra/inter) bandwidth-latency topology of this machine.

        The object the communicator's topology-aware ``algorithm="auto"``
        selection consumes (:func:`select_allreduce_algorithm`), built from
        the same link constants this model prices halos and shuffles with.
        """
        return TwoTierTopology(
            nnodes=nnodes,
            ranks_per_node=ranks_per_node or self.gpus_per_node,
            intra=self.intra_link,
            inter=self.inter_link,
        )

    def hierarchical_allreduce_time(
        self,
        nnodes: int,
        nbytes: float,
        ranks_per_node: int | None = None,
        inter_algorithm=None,
    ) -> float:
        """AR time of the two-level schedule on ``nnodes`` nodes of this
        machine (intra ring reduce-scatter → inter allreduce → intra
        allgather); see :func:`hierarchical_allreduce_time`."""
        return hierarchical_allreduce_time(
            nbytes, self.two_tier(nnodes, ranks_per_node), inter_algorithm
        )

    def comm_buffer_bytes(self, total_ranks: int) -> float:
        """Scale-dependent GPU memory held by the communication runtime."""
        return min(
            total_ranks * self.comm_buffer_bytes_per_rank,
            self.comm_buffer_cap_bytes,
        )


#: The default modeled platform.
LASSEN = MachineSpec()
