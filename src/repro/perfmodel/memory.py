"""Per-GPU memory model (the feasibility side of strategy selection).

LBANN statically allocates, for every layer, both its output activations
and its output error signal; training additionally holds the replicated
parameters, their gradients, optimizer state, convolution workspace, and
communication buffers.  This model reproduces the paper's feasibility
boundaries on 16 GB V100s:

* the 2K mesh model cannot train with even one sample per GPU under pure
  sample parallelism — spatial parallelism is *required* (§I, §VI-B1);
* the 1K mesh model fits exactly one sample per GPU;
* ResNet-50 comfortably fits 32 samples per GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nn.graph import NetworkSpec
from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.layer_cost import local_extents
from repro.core.parallelism import LayerParallelism, ParallelStrategy


@dataclass
class MemoryBreakdown:
    """Per-GPU memory requirement (bytes) by category."""

    activations: float = 0.0
    error_signals: float = 0.0
    bn_saved: float = 0.0
    halo_buffers: float = 0.0
    parameters: float = 0.0
    workspace: float = 0.0
    comm_buffers: float = 0.0
    runtime: float = 0.0
    per_layer_activations: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return (
            self.activations
            + self.error_signals
            + self.bn_saved
            + self.halo_buffers
            + self.parameters
            + self.workspace
            + self.comm_buffers
            + self.runtime
        )

    def summary(self) -> str:
        gib = 1024.0**3
        rows = [
            ("activations", self.activations),
            ("error signals", self.error_signals),
            ("BN saved", self.bn_saved),
            ("halo buffers", self.halo_buffers),
            ("parameters+grads+momentum", self.parameters),
            ("conv workspace", self.workspace),
            ("comm buffers", self.comm_buffers),
            ("runtime overhead", self.runtime),
            ("TOTAL", self.total),
        ]
        return "\n".join(f"  {k:<28s} {v / gib:8.2f} GiB" for k, v in rows)


class MemoryModel:
    """Estimates per-GPU memory for (network, strategy, mini-batch size)."""

    def __init__(self, spec: NetworkSpec, machine: MachineSpec) -> None:
        self.spec = spec
        self.machine = machine
        self.shapes = spec.infer_shapes()

    def breakdown(
        self, n_global: int, strategy: ParallelStrategy | LayerParallelism
    ) -> MemoryBreakdown:
        if isinstance(strategy, LayerParallelism):
            strategy = ParallelStrategy.uniform(strategy)
        m = MemoryBreakdown()
        db = self.machine.dtype_bytes
        max_conv_out = 0.0

        for layer in self.spec.topo_order():
            par = strategy.for_layer(layer.name)
            c, h, w = self.shapes[layer.name]
            i_n, i_h, i_w = local_extents(n_global, h, w, par)
            out_bytes = float(i_n) * c * i_h * i_w * db
            m.per_layer_activations[layer.name] = out_bytes
            m.activations += out_bytes
            if layer.kind != "input":
                m.error_signals += out_bytes
            if layer.kind == "bn":
                m.bn_saved += out_bytes  # xhat
            if layer.kind == "conv":
                max_conv_out = max(max_conv_out, out_bytes)
                k = layer.params["kernel"]
                kh = k if isinstance(k, int) else k[0]
                if par.height > 1 or par.width > 1:
                    # Halo-extended input copy held during fwd+bwd.
                    pc, ph_, pw_ = self.shapes[layer.parents[0]]
                    o = kh // 2
                    rows = float(i_n) * pc * db
                    m.halo_buffers += 2 * o * rows * (i_w + i_h)

        # Parameters + gradients + momentum, replicated on every rank.
        m.parameters = 3.0 * self.spec.total_params() * db
        # cuDNN workspace scales with the largest convolution, capped at 1 GiB.
        m.workspace = min(max_conv_out, 1024.0**3)
        m.comm_buffers = self.machine.comm_buffer_bytes(strategy.nranks)
        m.runtime = self.machine.runtime_overhead_bytes
        return m

    def required_bytes(self, n_global: int, strategy) -> float:
        return self.breakdown(n_global, strategy).total

    def fits(self, n_global: int, strategy) -> bool:
        """Does this configuration fit in GPU memory?"""
        return self.required_bytes(n_global, strategy) <= self.machine.gpu.memory_bytes

    def max_samples_per_gpu(
        self, parallelism: LayerParallelism, limit: int = 4096
    ) -> int:
        """Largest per-GPU-group sample count that fits (0 = infeasible).

        For hybrid parallelism, "samples per GPU" means samples per spatial
        group; the mini-batch is ``samples * sample_ways``.
        """
        fit = 0
        n = 1
        while n <= limit:
            if self.fits(n * parallelism.sample, ParallelStrategy.uniform(parallelism)):
                fit = n
                n *= 2
            else:
                break
        if fit == 0:
            return 0
        # Binary refine between fit and 2*fit.
        lo, hi = fit, min(limit, fit * 2)
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.fits(mid * parallelism.sample, ParallelStrategy.uniform(parallelism)):
                lo = mid
            else:
                hi = mid - 1
        return lo
