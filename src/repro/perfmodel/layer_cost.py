"""Per-layer cost model: FP, BPx, BPw, BPa with halo terms (paper §V-A).

For a convolutional layer under distribution D, with O = floor(K/2) and
local extents I_N, I_C, I_H, I_W:

    FP  = C(I_N, I_C, I_H, I_W, I_F)
        + 2 SR(O I_N I_C I_H) + 2 SR(O I_N I_C I_W) + 4 SR(O^2 I_N I_C)
    BPx = C_x(...) + same halo terms (on dL/dy)
    BPw = C_w(...)
    BPa = AR(|P(D(C), D(F))|, I_F I_C K^2)

Halo terms drop out when a spatial dimension is not split (or when K = 1),
and "if the implementation supports it, the halo exchanges can be
overlapped with interior computation" — modeled by ``overlap=True`` with
the engine's actual interior/boundary kernel decomposition: a fraction
``beta`` of the convolution (the boundary strips, derived from the local
block geometry) must wait for the halo, while the interior ``1 - beta``
runs concurrently with the exchange:

    FP(overlap)  = max((1-beta) C, halo) + beta C + launch overhead
    BP(overlap)  = max(C_w + (1-beta) C_x, halo) + beta C_x + launch
                   (the error-signal halo hides inside the filter
                   convolution *and* the interior data convolution, §IV-A)

Pooling layers decompose (and overlap) the forward gather exactly like
convolution, and the backward scatter-add now overlaps too (the own
contribution accumulates while boundary strips travel), so they carry a
real forward ``boundary_fraction`` *and* a real backward
``bp_boundary_fraction`` — the latter measured on the input grid, where
the scatter-add's remote strips live.
Layers the engine does not decompose at all (batch-norm statistics
allreduces) carry ``boundary_fraction=1``, which degenerates both formulas
to the synchronous cost — the model matches what the engine actually
overlaps rather than the best case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.collective_models import allreduce_time, pt2pt_time
from repro.perfmodel.conv_model import ConvGeometry
from repro.perfmodel.machine import MachineSpec
from repro.tensor.indexing import block_size, ceil_div
from repro.core.parallelism import LayerParallelism


@dataclass(frozen=True)
class ConvLayerCost:
    """Cost components (seconds) of one layer on the critical-path rank."""

    fp_compute: float
    fp_halo: float
    bpx_compute: float
    bpx_halo: float
    bpw_compute: float
    allreduce: float
    #: Extra kernel launches when the input is decomposed into interior +
    #: boundary regions for overlap (§IV-A).
    boundary_launch: float = 0.0
    #: Payload and group of the dL/dw allreduce, kept alongside its time so
    #: schedule-level models (bucketing/segmentation) can re-cost it.
    allreduce_bytes: float = 0.0
    allreduce_group: int = 1
    #: Fraction of the layer's compute that belongs to the boundary kernels
    #: (must wait for the halo).  0 = everything overlaps the exchange,
    #: 1 = nothing does (the engine's synchronous layers).
    boundary_fraction: float = 1.0
    #: Backward-specific boundary fraction; ``None`` means "same as
    #: forward".  Pooling layers carry an explicit value: their backward
    #: decomposition lives on the *input* grid (the scatter-add's remote
    #: contribution strips), a different geometry than the forward
    #: output-window split.  A value of 1 means the backward pass is not
    #: decomposed and degenerates exactly to the synchronous cost.
    bp_boundary_fraction: float | None = None

    @property
    def bpx_boundary_fraction(self) -> float:
        """The boundary fraction the backward-data decomposition uses."""
        if self.bp_boundary_fraction is not None:
            return self.bp_boundary_fraction
        return self.boundary_fraction

    @property
    def bpx_boundary_launch(self) -> float:
        """Extra kernel launches of the *backward* decomposition.

        Charged only when the backward pass is actually decomposed
        (fraction < 1); an undecomposed backward (fraction pinned at 1)
        pays none, so the overlap formula degenerates exactly to the
        synchronous cost.
        """
        return 0.0 if self.bpx_boundary_fraction >= 1.0 else self.boundary_launch

    def fp_time(self, overlap: bool = True) -> float:
        if overlap and self.fp_halo > 0:
            interior = self.fp_compute * (1.0 - self.boundary_fraction)
            boundary = self.fp_compute - interior
            return max(interior, self.fp_halo) + boundary + self.boundary_launch
        return self.fp_compute + self.fp_halo

    def bp_time(self, overlap: bool = True, include_allreduce: bool = False) -> float:
        """BPx + BPw; the dL/dw allreduce is overlapped at network level
        unless ``include_allreduce``."""
        if overlap and self.bpx_halo > 0:
            interior = self.bpx_compute * (1.0 - self.bpx_boundary_fraction)
            boundary = self.bpx_compute - interior
            t = max(self.bpw_compute + interior, self.bpx_halo) + boundary
            t += self.bpx_boundary_launch
        else:
            t = self.bpw_compute + self.bpx_halo + self.bpx_compute
        if include_allreduce:
            t += self.allreduce
        return t

    def total(self, overlap: bool = True) -> float:
        return self.fp_time(overlap) + self.bp_time(overlap, include_allreduce=True)


def _pair(v) -> tuple[int, int]:
    if isinstance(v, (tuple, list)):
        return int(v[0]), int(v[1])
    return int(v), int(v)


def local_extents(
    n_global: int, oh: int, ow: int, par: LayerParallelism
) -> tuple[int, int, int]:
    """Largest per-rank (I_N, I_oH, I_oW) output extents (critical path)."""
    i_n = block_size(n_global, par.sample, 0)
    i_h = block_size(oh, par.height, 0) if oh >= par.height else oh
    i_w = block_size(ow, par.width, 0) if ow >= par.width else ow
    return i_n, i_h, i_w


def conv_layer_cost(
    machine: MachineSpec,
    conv_model,
    *,
    n_global: int,
    c: int,
    h: int,
    w: int,
    f: int,
    kernel,
    stride=1,
    pad=0,
    parallelism: LayerParallelism,
    total_ranks: int | None = None,
    allreduce_algorithm=None,
) -> ConvLayerCost:
    """Cost of one convolutional layer under ``parallelism``.

    ``h``/``w`` are the *global input* spatial extents; the local kernel
    geometry (including halo rows) is derived from the output block sizes.
    """
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride)
    ph, pw = _pair(pad)
    par = parallelism
    total_ranks = total_ranks or par.nranks

    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    i_n, i_oh, i_ow = local_extents(n_global, oh, ow, par)
    # Gathered local input region: (out-1)*s + k per split dim.
    i_h_in = (i_oh - 1) * sh + kh if par.height > 1 and oh >= par.height else h + 2 * ph
    i_w_in = (i_ow - 1) * sw + kw if par.width > 1 and ow >= par.width else w + 2 * pw

    geom = ConvGeometry(
        n=i_n, c=c, h=i_h_in, w=i_w_in, f=f, kh=kh, kw=kw, sh=sh, sw=sw
    )
    fp_c = conv_model.fp(geom)
    bpx_c = conv_model.bp_data(geom)
    bpw_c = conv_model.bp_filter(geom)

    # -- halo exchange (paper's SR terms) -----------------------------------------
    o_h, o_w = kh // 2, kw // 2
    db = machine.dtype_bytes
    spatial_ways = par.height * par.width
    link = (
        machine.intra_link
        if spatial_ways <= machine.gpus_per_node
        else machine.inter_link
    )
    msg_overhead = (
        machine.halo_msg_overhead_intra
        if spatial_ways <= machine.gpus_per_node
        else machine.halo_msg_overhead_inter
    )
    halo = 0.0
    nmsgs = 0
    split_h = par.height > 1 and oh >= par.height and o_h > 0
    split_w = par.width > 1 and ow >= par.width and o_w > 0
    if split_h:
        halo += 2 * pt2pt_time(o_h * i_n * c * i_w_in * db, link)
        nmsgs += 2
    if split_w:
        halo += 2 * pt2pt_time(o_w * i_n * c * i_h_in * db, link)
        nmsgs += 2
    if split_h and split_w:
        halo += 4 * pt2pt_time(o_h * o_w * i_n * c * db, link)
        nmsgs += 4
    halo += nmsgs * msg_overhead

    # Boundary-region kernels launched separately for overlap (§IV-A).
    n_boundary = 2 * (int(split_h) + int(split_w))
    boundary_launch = n_boundary * machine.gpu.kernel_latency

    # Interior/boundary split of the local output block, mirroring the
    # engine's decomposition: the boundary strips are the output rows/cols
    # whose windows reach into halo cells — ceil(O/S) rows per split side
    # on the critical-path (interior) rank.
    t_h = ceil_div(o_h, sh) if split_h else 0
    t_w = ceil_div(o_w, sw) if split_w else 0
    out_elems = i_oh * i_ow
    if (split_h or split_w) and out_elems > 0:
        interior_elems = max(0, i_oh - 2 * t_h) * max(0, i_ow - 2 * t_w)
        boundary_fraction = 1.0 - interior_elems / float(out_elems)
    else:
        boundary_fraction = 1.0  # no decomposition: synchronous semantics

    # -- gradient allreduce: AR(|P(D(C), D(F))|, F*C*K^2) --------------------------
    params_bytes = f * c * kh * kw * db
    ar_link = machine.link_for_group(total_ranks)
    ar = allreduce_time(total_ranks, params_bytes, ar_link, allreduce_algorithm)

    return ConvLayerCost(
        fp_compute=fp_c,
        fp_halo=halo,
        bpx_compute=bpx_c,
        bpx_halo=halo,
        bpw_compute=bpw_c,
        allreduce=ar,
        boundary_launch=boundary_launch,
        allreduce_bytes=params_bytes,
        allreduce_group=total_ranks,
        boundary_fraction=boundary_fraction,
    )


def pool_layer_cost(
    machine: MachineSpec,
    *,
    n_global: int,
    c: int,
    h: int,
    w: int,
    kernel,
    stride=None,
    pad=0,
    parallelism: LayerParallelism,
) -> ConvLayerCost:
    """Pooling: memory-bound kernel + the same halo pattern as convolution."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride if stride is not None else kernel)
    ph, pw = _pair(pad)
    par = parallelism
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    i_n, i_oh, i_ow = local_extents(n_global, oh, ow, par)
    i_h_in = (i_oh - 1) * sh + kh if par.height > 1 and oh >= par.height else h + 2 * ph
    i_w_in = (i_ow - 1) * sw + kw if par.width > 1 and ow >= par.width else w + 2 * pw

    db = machine.dtype_bytes
    bytes_fwd = (i_n * c * i_h_in * i_w_in + i_n * c * i_oh * i_ow) * db
    fp_c = machine.gpu.elementwise_time(bytes_fwd)
    bp_c = machine.gpu.elementwise_time(2 * bytes_fwd)  # scatter + zero-init

    # Pooling needs neighbor data only when windows overlap (K > S).
    o_h = max(0, kh - sh)
    o_w = max(0, kw - sw)
    spatial_ways = par.height * par.width
    link = (
        machine.intra_link
        if spatial_ways <= machine.gpus_per_node
        else machine.inter_link
    )
    halo = 0.0
    split_h = par.height > 1 and oh >= par.height and o_h > 0
    split_w = par.width > 1 and ow >= par.width and o_w > 0
    if split_h:
        halo += 2 * pt2pt_time(o_h * i_n * c * i_w_in * db, link)
    if split_w:
        halo += 2 * pt2pt_time(o_w * i_n * c * i_h_in * db, link)

    # The engine overlaps the *forward* pooling gather (interior windows
    # compute while halo strips travel) with the same interior/boundary
    # split as convolution.
    n_boundary = 2 * (int(split_h) + int(split_w))
    boundary_launch = n_boundary * machine.gpu.kernel_latency
    t_h = ceil_div(o_h, sh) if split_h else 0
    t_w = ceil_div(o_w, sw) if split_w else 0
    out_elems = i_oh * i_ow
    if (split_h or split_w) and out_elems > 0:
        interior_elems = max(0, i_oh - 2 * t_h) * max(0, i_ow - 2 * t_w)
        boundary_fraction = 1.0 - interior_elems / float(out_elems)
    else:
        boundary_fraction = 1.0  # no decomposition: synchronous semantics

    # The *backward* scatter-add overlaps too — the own contribution (the
    # interior of the local input shard) accumulates while the remote
    # strips travel — but its decomposition lives on the input grid: the
    # boundary is the band of input cells that receive contributions from
    # (or send them to) a neighbor, ``o = K - S`` rows/cols per split
    # edge.  No split (or non-overlapping windows) pins it at 1: the
    # backward degenerates exactly to the synchronous cost.
    in_elems = i_h_in * i_w_in
    if (split_h or split_w) and in_elems > 0:
        interior_in = max(0, i_h_in - 2 * (o_h if split_h else 0)) * max(
            0, i_w_in - 2 * (o_w if split_w else 0)
        )
        bp_boundary_fraction = 1.0 - interior_in / float(in_elems)
    else:
        bp_boundary_fraction = 1.0

    return ConvLayerCost(
        fp_compute=fp_c,
        fp_halo=halo,
        bpx_compute=bp_c,
        bpx_halo=halo,
        bpw_compute=0.0,
        allreduce=0.0,
        boundary_launch=boundary_launch,
        boundary_fraction=boundary_fraction,
        bp_boundary_fraction=bp_boundary_fraction,
    )


def elementwise_layer_cost(
    machine: MachineSpec,
    *,
    local_elems: float,
    passes_fwd: int = 2,
    passes_bwd: int = 2,
    params_bytes: float = 0.0,
    total_ranks: int = 1,
    stats_allreduce_bytes: float = 0.0,
    stats_group: int = 1,
    allreduce_algorithm=None,
) -> ConvLayerCost:
    """BN / ReLU / add / GAP: memory-bound passes (+BN's statistics
    allreduces over its aggregation group and parameter allreduce)."""
    db = machine.dtype_bytes
    fp = machine.gpu.elementwise_time(passes_fwd * local_elems * db)
    bp = machine.gpu.elementwise_time(passes_bwd * local_elems * db)
    halo = 0.0
    if stats_allreduce_bytes > 0 and stats_group > 1:
        link = machine.link_for_group(stats_group)
        halo = allreduce_time(
            stats_group, stats_allreduce_bytes, link, allreduce_algorithm
        )
    ar = 0.0
    if params_bytes > 0 and total_ranks > 1:
        ar = allreduce_time(
            total_ranks, params_bytes, machine.link_for_group(total_ranks),
            allreduce_algorithm,
        )
    return ConvLayerCost(
        fp_compute=fp,
        fp_halo=halo,
        bpx_compute=bp,
        bpx_halo=halo,
        bpw_compute=0.0,
        allreduce=ar,
        allreduce_bytes=params_bytes if ar > 0 else 0.0,
        allreduce_group=total_ranks if ar > 0 else 1,
    )
