"""Elastic self-healing SPMD supervision: restart, shrink, degrade.

A synchronous data/model-parallel job dies as a unit — any lost rank aborts
the whole world — but the *job* does not have to stay dead.  This module
adds the supervisor layer the paper's runtime lacks: :class:`ElasticRunner`
wraps :func:`repro.comm.run_spmd` in a restart loop that

1. runs the job in chaos mode (``allow_failures=True``) so every rank's
   outcome is observable,
2. **classifies** what killed it — an injected crash, a child process
   exiting abnormally, a TCP peer dying (with host attribution from the
   :class:`~repro.comm.hostmap.HostMap`), a corrupted frame, a timeout —
   using the structured ``kind``/``failed_rank``/``host`` attributes that
   :class:`~repro.comm.backend.CommAborted` carries, with a message-regex
   fallback for errors that crossed a pickling boundary attribute-less,
3. **relaunches** after an exponential backoff: at the *same* world size
   while failures look transient, or at a *shrunk* world — blacklisting
   the repeatedly-failing host (or rank) via
   :meth:`~repro.comm.hostmap.HostMap.excluding` — once the same culprit
   has died :attr:`blacklist_after` times,
4. and **degrades gracefully**: when shrinking would cross ``min_ranks``,
   the runner stops restarting and returns a structured
   :class:`ElasticReport` whose restart log records every failure cause,
   backoff, world size, resume point, and replayed-step count.

Because training state is checkpointed world-stamped
(:mod:`repro.core.checkpoint`), a relaunched world of a *different* size
re-shards the last complete checkpoint set via
:meth:`~repro.core.trainer.DistTrainer.resume_elastic`; the training
function itself stays oblivious — it just calls ``resume_elastic()`` on
entry.  ``REPRO_ELASTIC`` configures the loop from the environment
(``"max_restarts=4;min_ranks=2;backoff=0.5"``).
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Callable, Sequence

from repro.comm.backend import run_spmd
from repro.comm.faults import FaultPlan
from repro.comm.hostmap import HOSTMAP_ENV, HostMap, resolve_hostmap
from repro.core import checkpoint as ckpt
from repro.obs.logging import get_logger

logger = get_logger("elastic")

#: Environment variable configuring :func:`run_elastic`:
#: ``"max_restarts=4;min_ranks=2;backoff=0.5;backoff_factor=2;blacklist_after=2"``.
ELASTIC_ENV = "REPRO_ELASTIC"

#: Failure kinds that do not, by themselves, implicate a specific machine:
#: the same world is retried (until the per-culprit count trips the
#: blacklist).  Everything else — peer death, hangs, integrity errors —
#: counts toward blacklisting immediately but still retries at full size
#: until the threshold is reached.
_TRANSIENT_KINDS = frozenset({"injected-crash", "timeout"})

#: Culprit-extraction patterns, tried in order against survivor/parent
#: messages.  Each names the *failed* rank (never the observer): the diag
#: prefix of a survivor abort also says "world rank <observer>", so these
#: anchor on the verb that only ever follows the culprit.
_CULPRIT_RES = (
    re.compile(r"world rank (\d+)(?: \(host ([^)]+)\))? failed"),
    re.compile(r"world rank (\d+)(?: \(host ([^)]+)\))? lost"),
    re.compile(r"world rank (\d+) exited abnormally"),
    re.compile(r"world rank (\d+) did not report"),
    re.compile(r"fired at world rank (\d+)"),
    re.compile(r"frame from world rank (\d+)(?: \(host ([^)]+)\))?"),
)


@dataclass
class RankFailure:
    """One classified failure: which rank died, where, and how."""

    rank: int | None
    host: str | None
    kind: str
    message: str
    #: True when the culprit rank came from structured attributes or a
    #: culprit pattern; False when it defaulted to the observing rank.
    attributed: bool = True

    def to_dict(self) -> dict:
        return {
            "rank": self.rank,
            "host": self.host,
            "kind": self.kind,
            "message": self.message,
        }


@dataclass
class RestartRecord:
    """One supervisor decision: what failed and what was done about it."""

    attempt: int
    nranks: int
    failures: list[RankFailure]
    #: ``"restart"`` (same world), ``"shrink"`` (blacklisted a culprit),
    #: ``"degraded"`` (would cross ``min_ranks``; stopped restarting), or
    #: ``"gave-up"`` (restart budget exhausted).
    action: str
    backoff_seconds: float = 0.0
    next_nranks: int | None = None
    blacklisted: tuple[str, ...] = ()
    resumed_step: int | None = None
    steps_replayed: int = 0
    detect_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "nranks": self.nranks,
            "failures": [f.to_dict() for f in self.failures],
            "action": self.action,
            "backoff_seconds": self.backoff_seconds,
            "next_nranks": self.next_nranks,
            "blacklisted": list(self.blacklisted),
            "resumed_step": self.resumed_step,
            "steps_replayed": self.steps_replayed,
            "detect_seconds": self.detect_seconds,
        }


@dataclass
class ElasticReport:
    """Outcome of one supervised elastic run."""

    ok: bool
    degraded: bool
    results: list[Any] | None
    final_nranks: int
    restarts: list[RestartRecord] = field(default_factory=list)
    blacklisted_hosts: tuple[str, ...] = ()
    blacklisted_ranks: tuple[int, ...] = ()
    elapsed_seconds: float = 0.0

    @property
    def total_restarts(self) -> int:
        return sum(1 for r in self.restarts if r.action in ("restart", "shrink"))

    @property
    def total_steps_replayed(self) -> int:
        return sum(r.steps_replayed for r in self.restarts)

    def to_dict(self) -> dict:
        """JSON-ready structure (the CI failure artifact format)."""
        return {
            "ok": self.ok,
            "degraded": self.degraded,
            "final_nranks": self.final_nranks,
            "total_restarts": self.total_restarts,
            "total_steps_replayed": self.total_steps_replayed,
            "blacklisted_hosts": list(self.blacklisted_hosts),
            "blacklisted_ranks": list(self.blacklisted_ranks),
            "elapsed_seconds": self.elapsed_seconds,
            "restarts": [r.to_dict() for r in self.restarts],
        }

    def describe(self) -> str:
        lines = [
            f"elastic run: ok={self.ok} degraded={self.degraded} "
            f"final_nranks={self.final_nranks} "
            f"restarts={self.total_restarts} "
            f"steps_replayed={self.total_steps_replayed}"
        ]
        for r in self.restarts:
            culprits = ", ".join(
                f"rank {f.rank}"
                + (f" (host {f.host})" if f.host else "")
                + f": {f.kind}"
                for f in r.failures
            ) or "none classified"
            lines.append(
                f"  attempt {r.attempt} @ {r.nranks} ranks -> {r.action}"
                + (f" to {r.next_nranks}" if r.next_nranks else "")
                + (f" [blacklist {', '.join(r.blacklisted)}]" if r.blacklisted else "")
                + f" after {culprits}"
                + (
                    f"; resume step {r.resumed_step} "
                    f"(~{r.steps_replayed} steps replayed)"
                    if r.resumed_step is not None
                    else ""
                )
            )
        return "\n".join(lines)


def classify_error(err: BaseException, observer_rank: int | None = None) -> RankFailure:
    """Map one rank's exception to a :class:`RankFailure`.

    Prefers the structured ``kind``/``failed_rank``/``host`` attributes of
    :class:`~repro.comm.backend.CommAborted`; falls back to parsing the
    message (errors re-raised across odd boundaries can lose attributes,
    and survivor aborts embed the culprit only in their reason text).
    """
    message = str(err)
    kind = getattr(err, "kind", None)
    rank = getattr(err, "failed_rank", None)
    host = getattr(err, "host", None)
    if type(err).__name__ == "InjectedCrash":
        kind = kind or "injected-crash"
    if kind is None:
        for pattern, name in (
            (r"injected crash|InjectedCrash", "injected-crash"),
            (r"CRC32 integrity", "integrity"),
            (r"exited abnormally", "child-exit"),
            (r"connection closed unexpectedly", "peer-death"),
            (r"did not report a result", "hang"),
            (r"timed out", "timeout"),
        ):
            if re.search(pattern, message):
                kind = name
                break
        else:
            kind = "unknown"
    attributed = rank is not None
    if rank is None:
        for pattern in _CULPRIT_RES:
            m = pattern.search(message)
            if m:
                rank = int(m.group(1))
                if host is None and pattern.groups > 1:
                    host = m.group(2)
                attributed = True
                break
    if rank is None:
        rank = observer_rank
    return RankFailure(
        rank=rank, host=host, kind=kind, message=message, attributed=attributed
    )


def classify_failures(
    results: Sequence[Any], hostmap: HostMap | None = None
) -> list[RankFailure]:
    """Distill a chaos-mode result list down to the *culprit* failures.

    With ``allow_failures=True`` every rank that raised appears in the
    result list — the rank that actually died *and* every survivor whose
    collective aborted naming it.  Survivor echoes are folded into the
    culprit they name: one :class:`RankFailure` per failing rank, with the
    most specific kind seen (anything beats a survivor's generic
    "timeout"/"unknown" echo).  Host attribution comes from the error or,
    failing that, the host map.
    """
    by_rank: dict[int | None, RankFailure] = {}
    for observer, outcome in enumerate(results):
        if not isinstance(outcome, BaseException):
            continue
        f = classify_error(outcome, observer_rank=observer)
        if hostmap is not None and f.host is None and f.rank is not None:
            f.host = hostmap.host_of(f.rank)
        prev = by_rank.get(f.rank)
        if prev is None or (
            prev.kind in ("unknown", "timeout")
            and f.kind not in ("unknown", "timeout")
        ):
            by_rank[f.rank] = f
    failures = list(by_rank.values())
    # Survivor echoes whose culprit could not be determined default to the
    # observer's own rank; once a real culprit is known they are noise
    # (blaming a survivor would poison the blacklist), so keep them only
    # when nothing better was attributed.
    if any(f.attributed for f in failures):
        failures = [f for f in failures if f.attributed]
    return sorted(
        failures, key=lambda f: (f.rank is None, f.rank if f.rank is not None else 0)
    )


def parse_elastic_env(value: str | None) -> dict:
    """Parse ``REPRO_ELASTIC`` (``"key=value;key=value"``) into kwargs."""
    out: dict[str, Any] = {}
    if not value:
        return out
    casts: dict[str, Callable[[str], Any]] = {
        "max_restarts": int,
        "min_ranks": int,
        "backoff": float,
        "backoff_factor": float,
        "blacklist_after": int,
    }
    for item in value.split(";"):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ValueError(
                f"bad {ELASTIC_ENV} entry {item!r}; expected key=value"
            )
        key, _, raw = item.partition("=")
        key = key.strip()
        if key not in casts:
            raise ValueError(
                f"unknown {ELASTIC_ENV} key {key!r}; "
                f"known: {', '.join(sorted(casts))}"
            )
        out[key] = casts[key](raw.strip())
    return out


class ElasticRunner:
    """Supervised restart loop around :func:`repro.comm.run_spmd`.

    Parameters mirror :func:`run_elastic`.  ``faults`` may be a single
    plan/spec (armed on the first attempt only — a deterministic injected
    fault would otherwise re-fire forever) or a list indexed by attempt
    (``None`` entries run clean).  ``sleep`` is injectable so tests can
    assert the exponential backoff schedule without waiting it out.
    ``checkpoint_dir`` (with ``nsteps`` expected total steps) enables
    resume-point and replayed-step accounting in the restart log.
    """

    def __init__(
        self,
        nranks: int,
        *,
        max_restarts: int = 4,
        min_ranks: int = 1,
        backoff: float = 0.5,
        backoff_factor: float = 2.0,
        blacklist_after: int = 2,
        backend: str | None = None,
        hostmap: HostMap | str | None = None,
        faults: Any = None,
        checkpoint_dir: str | None = None,
        sleep: Callable[[float], None] = time.sleep,
        metrics: Any = None,
        **spmd_kwargs: Any,
    ) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if min_ranks < 1:
            raise ValueError(f"min_ranks must be >= 1, got {min_ranks}")
        if min_ranks > nranks:
            raise ValueError(
                f"min_ranks={min_ranks} exceeds initial nranks={nranks}"
            )
        self.nranks = nranks
        self.max_restarts = max_restarts
        self.min_ranks = min_ranks
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self.blacklist_after = blacklist_after
        self.backend = backend
        self.hostmap = resolve_hostmap(hostmap, os.environ.get(HOSTMAP_ENV))
        if isinstance(faults, (str, FaultPlan)):
            faults = [faults]
        self.fault_schedule: list[Any] = list(faults) if faults else []
        self.checkpoint_dir = checkpoint_dir
        self.sleep = sleep
        self.metrics = metrics
        self.spmd_kwargs = spmd_kwargs

    # -- internals ---------------------------------------------------------
    def _faults_for(self, attempt: int) -> Any:
        if attempt < len(self.fault_schedule):
            return self.fault_schedule[attempt]
        return None

    def _launch(self, nranks, hostmap, attempt, fn, args, kwargs):
        """One attempt; returns the chaos-mode result list (never raises
        for rank failures — a raising launcher is folded into a one-entry
        failure list)."""
        try:
            return run_spmd(
                nranks,
                fn,
                *args,
                backend=self.backend,
                hostmap=hostmap,
                faults=self._faults_for(attempt),
                allow_failures=True,
                **self.spmd_kwargs,
                **kwargs,
            )
        except BaseException as err:  # noqa: BLE001 - supervisor boundary
            if isinstance(err, (KeyboardInterrupt, SystemExit)):
                raise
            return [err]

    def _checkpoint_evidence(self, nranks: int) -> tuple[int | None, int]:
        """``(resume_step, steps_replayed)`` evidence from the filesystem.

        ``steps_replayed`` is a provable lower bound: the newest step any
        rank managed to checkpoint minus the step the next attempt can
        actually resume from (work past the last complete cadence is lost
        and must be recomputed).  Without a checkpoint directory both are
        unknown (``None``, 0).
        """
        d = self.checkpoint_dir
        if d is None or not os.path.isdir(d):
            return None, 0
        newest = -1
        for name in os.listdir(d):
            parsed = ckpt.parse_checkpoint_name(name)
            if parsed is not None:
                newest = max(newest, parsed[0])
        common: set[int] | None = None
        for rank in range(nranks):
            steps = set(ckpt.local_steps(d, rank, world=nranks))
            common = steps if common is None else (common & steps)
        resume = max(common) if common else None
        if resume is None:
            found = ckpt.latest_complete_step(d)
            resume = found[0] if found is not None else None
        if newest < 0:
            return resume, 0
        return resume, max(0, newest - (resume or 0))

    # -- the loop ----------------------------------------------------------
    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> ElasticReport:
        """Supervise ``fn`` until it completes, degrades, or exhausts
        restarts; return the :class:`ElasticReport`."""
        t_start = monotonic()
        nranks = self.nranks
        hostmap = self.hostmap
        restarts: list[RestartRecord] = []
        fail_counts: dict[Any, int] = {}
        bad_hosts: list[str] = []
        bad_ranks: list[int] = []
        attempt = 0
        degraded = False
        while True:
            t_launch = monotonic()
            results = self._launch(nranks, hostmap, attempt, fn, args, kwargs)
            failures = classify_failures(results, hostmap)
            if not failures:
                report = ElasticReport(
                    ok=True,
                    degraded=degraded,
                    results=results,
                    final_nranks=nranks,
                    restarts=restarts,
                    blacklisted_hosts=tuple(bad_hosts),
                    blacklisted_ranks=tuple(bad_ranks),
                    elapsed_seconds=monotonic() - t_start,
                )
                self._record_metrics(report)
                return report

            detect_seconds = monotonic() - t_launch
            for f in failures:
                key = ("host", f.host) if f.host is not None else ("rank", f.rank)
                fail_counts[key] = fail_counts.get(key, 0) + 1
                logger.warning(
                    "attempt %d: rank %s (host %s) failed [%s]: %s",
                    attempt, f.rank, f.host or "?", f.kind,
                    f.message.splitlines()[0][:160],
                )
            resume_step, replayed = self._checkpoint_evidence(nranks)
            record = RestartRecord(
                attempt=attempt,
                nranks=nranks,
                failures=failures,
                action="restart",
                resumed_step=resume_step,
                steps_replayed=replayed,
                detect_seconds=detect_seconds,
            )
            restarts.append(record)
            attempt += 1

            if attempt > self.max_restarts:
                record.action = "gave-up"
                report = ElasticReport(
                    ok=False,
                    degraded=degraded,
                    results=results,
                    final_nranks=nranks,
                    restarts=restarts,
                    blacklisted_hosts=tuple(bad_hosts),
                    blacklisted_ranks=tuple(bad_ranks),
                    elapsed_seconds=monotonic() - t_start,
                )
                self._record_metrics(report)
                return report

            # Blacklist any culprit that has now failed often enough —
            # repeated deaths on one host (or rank) stop looking transient.
            to_blacklist = [
                key for key, n in fail_counts.items()
                if n >= self.blacklist_after
                and (
                    key[0] == "host"
                    and key[1] not in bad_hosts
                    or key[0] == "rank"
                    and key[1] not in bad_ranks
                )
            ]
            if to_blacklist:
                new_hosts = [k[1] for k in to_blacklist if k[0] == "host"]
                new_ranks = [k[1] for k in to_blacklist if k[0] == "rank" and k[1] is not None]
                next_nranks, next_hostmap = self._shrink(
                    nranks, hostmap, new_hosts, new_ranks
                )
                if next_nranks < self.min_ranks:
                    record.action = "degraded"
                    record.blacklisted = tuple(
                        str(k[1]) for k in to_blacklist
                    )
                    report = ElasticReport(
                        ok=False,
                        degraded=True,
                        results=results,
                        final_nranks=nranks,
                        restarts=restarts,
                        blacklisted_hosts=tuple(bad_hosts),
                        blacklisted_ranks=tuple(bad_ranks),
                        elapsed_seconds=monotonic() - t_start,
                    )
                    self._record_metrics(report)
                    return report
                record.action = "shrink"
                record.next_nranks = next_nranks
                record.blacklisted = tuple(str(k[1]) for k in to_blacklist)
                bad_hosts.extend(new_hosts)
                bad_ranks.extend(new_ranks)
                nranks, hostmap = next_nranks, next_hostmap
                degraded = degraded or nranks < self.nranks
                logger.warning(
                    "attempt %d: shrinking world to %d ranks "
                    "(blacklisted %s)",
                    attempt, nranks, ", ".join(record.blacklisted),
                )
            pause = self.backoff * (self.backoff_factor ** (attempt - 1))
            record.backoff_seconds = pause
            if pause > 0:
                self.sleep(pause)

    def _shrink(
        self,
        nranks: int,
        hostmap: HostMap | None,
        hosts: list[str],
        ranks: list[int],
    ) -> tuple[int, HostMap | None]:
        """World after blacklisting; ``(0, None)`` when nothing survives."""
        if hostmap is not None:
            try:
                shrunk = hostmap.excluding(hosts=hosts, ranks=ranks)
            except ValueError:
                return 0, None
            return shrunk.size, shrunk
        # No host attribution: drop one rank per blacklisted culprit.
        return max(0, nranks - max(1, len(set(ranks)) + len(hosts))), None

    def _record_metrics(self, report: ElasticReport) -> None:
        if self.metrics is None:
            return
        self.metrics.inc("elastic_restarts", report.total_restarts)
        self.metrics.inc("elastic_steps_replayed", report.total_steps_replayed)
        self.metrics.set("elastic_final_nranks", report.final_nranks)
        self.metrics.set("elastic_degraded", 1.0 if report.degraded else 0.0)


def run_elastic(
    fn: Callable[..., Any],
    nranks: int,
    *args: Any,
    max_restarts: int | None = None,
    min_ranks: int | None = None,
    backoff: float | None = None,
    backoff_factor: float | None = None,
    blacklist_after: int | None = None,
    **kwargs: Any,
) -> ElasticReport:
    """Run ``fn`` under elastic supervision; return the :class:`ElasticReport`.

    Convenience front-end over :class:`ElasticRunner`: supervision knobs
    left ``None`` fall back to ``REPRO_ELASTIC``
    (``"max_restarts=4;min_ranks=2;backoff=0.5"``), then to the class
    defaults.  Remaining keyword arguments split between the runner
    (``backend=``, ``hostmap=``, ``faults=``, ``checkpoint_dir=``, ...)
    and ``run_spmd`` (``timeout=``, ``detect_interval=``, ...); positional
    ``args`` are passed to ``fn``.
    """
    env = parse_elastic_env(os.environ.get(ELASTIC_ENV))
    knobs: dict[str, Any] = {}
    for name, value in (
        ("max_restarts", max_restarts),
        ("min_ranks", min_ranks),
        ("backoff", backoff),
        ("backoff_factor", backoff_factor),
        ("blacklist_after", blacklist_after),
    ):
        if value is not None:
            knobs[name] = value
        elif name in env:
            knobs[name] = env[name]
    runner_keys = (
        "backend", "hostmap", "faults", "checkpoint_dir", "sleep", "metrics",
    )
    runner_kwargs = {k: kwargs.pop(k) for k in runner_keys if k in kwargs}
    runner = ElasticRunner(nranks, **knobs, **runner_kwargs, **kwargs)
    return runner.run(fn, *args)
