"""The paper's primary contribution: finer-grained parallel CNN training.

* :mod:`repro.core.parallelism` — per-layer parallelism descriptors
  (sample x channel x height x width process-grid factorizations) and
  parallel execution strategies (assignments of a descriptor to every
  layer, §V-C).
* :mod:`repro.core.dist_conv` — distributed convolution (§III-A): sample,
  spatial, and hybrid sample/spatial decompositions with halo exchange,
  exactly replicating single-device convolution.
* :mod:`repro.core.dist_layers` — distributed pooling, batch norm (local /
  spatially-aggregated / global variants, §III-B), ReLU, add, global
  pooling, FC, and loss layers.
* :mod:`repro.core.dist_network` — end-to-end distributed execution of a
  :class:`~repro.nn.graph.NetworkSpec` under a strategy, including data
  redistribution between layers (§III-C) and gradient allreduce.
* :mod:`repro.core.trainer` — the distributed training loop, with atomic
  checkpoint/resume (:mod:`repro.core.checkpoint`).
* :mod:`repro.core.strategy` — the performance-model-driven strategy
  optimizer (§V-C): candidate generation + shortest-path assignment.
* :mod:`repro.core.channel_filter` — channel/filter-parallel convolution
  (§III-D; sketched in the paper, implemented here as an extension).
* :mod:`repro.core.elastic` — elastic self-healing supervision: restart
  with backoff, blacklist-and-shrink, cross-world checkpoint re-sharding,
  graceful degradation (:class:`~repro.core.elastic.ElasticRunner`).
"""

from repro.core.parallelism import LayerParallelism, ParallelStrategy
from repro.core.checkpoint import (
    gather_global_state,
    latest_common_step,
    latest_complete_step,
    load_state,
    local_steps,
    parse_checkpoint_name,
    save_state,
)
from repro.core.dist_network import DistNetwork
from repro.core.elastic import (
    ELASTIC_ENV,
    ElasticReport,
    ElasticRunner,
    RankFailure,
    RestartRecord,
    classify_error,
    classify_failures,
    run_elastic,
)
from repro.core.trainer import DistTrainer

__all__ = [
    "DistNetwork",
    "DistTrainer",
    "ELASTIC_ENV",
    "ElasticReport",
    "ElasticRunner",
    "LayerParallelism",
    "ParallelStrategy",
    "RankFailure",
    "RestartRecord",
    "classify_error",
    "classify_failures",
    "gather_global_state",
    "latest_common_step",
    "latest_complete_step",
    "load_state",
    "local_steps",
    "parse_checkpoint_name",
    "run_elastic",
    "save_state",
]
