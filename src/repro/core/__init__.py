"""The paper's primary contribution: finer-grained parallel CNN training.

* :mod:`repro.core.parallelism` — per-layer parallelism descriptors
  (sample x channel x height x width process-grid factorizations) and
  parallel execution strategies (assignments of a descriptor to every
  layer, §V-C).
* :mod:`repro.core.dist_conv` — distributed convolution (§III-A): sample,
  spatial, and hybrid sample/spatial decompositions with halo exchange,
  exactly replicating single-device convolution.
* :mod:`repro.core.dist_layers` — distributed pooling, batch norm (local /
  spatially-aggregated / global variants, §III-B), ReLU, add, global
  pooling, FC, and loss layers.
* :mod:`repro.core.dist_network` — end-to-end distributed execution of a
  :class:`~repro.nn.graph.NetworkSpec` under a strategy, including data
  redistribution between layers (§III-C) and gradient allreduce.
* :mod:`repro.core.trainer` — the distributed training loop, with atomic
  checkpoint/resume (:mod:`repro.core.checkpoint`).
* :mod:`repro.core.strategy` — the performance-model-driven strategy
  optimizer (§V-C): candidate generation + shortest-path assignment.
* :mod:`repro.core.channel_filter` — channel/filter-parallel convolution
  (§III-D; sketched in the paper, implemented here as an extension).
"""

from repro.core.parallelism import LayerParallelism, ParallelStrategy
from repro.core.checkpoint import (
    latest_common_step,
    load_state,
    local_steps,
    save_state,
)
from repro.core.dist_network import DistNetwork
from repro.core.trainer import DistTrainer

__all__ = [
    "DistNetwork",
    "DistTrainer",
    "LayerParallelism",
    "ParallelStrategy",
    "latest_common_step",
    "load_state",
    "local_steps",
    "save_state",
]
