"""The distributed training loop.

After the gradient allreduce every rank holds identical gradients, so "SGD
can proceed independently on each processor" (§III-A): the optimizer step is
purely local and replicas stay bitwise consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.optim import SGD
from repro.core.dist_network import DistNetwork


@dataclass
class TrainStats:
    """Per-step records collected during training."""

    losses: list[float] = field(default_factory=list)
    steps: int = 0

    def record(self, loss: float) -> None:
        self.losses.append(float(loss))
        self.steps += 1

    @property
    def last_loss(self) -> float:
        return self.losses[-1]


class DistTrainer:
    """Couples a :class:`DistNetwork` with an optimizer."""

    def __init__(
        self,
        network: DistNetwork,
        optimizer: SGD | None = None,
    ) -> None:
        self.network = network
        self.optimizer = optimizer or SGD(lr=0.1)
        self.stats = TrainStats()

    def step(self, inputs, targets) -> float:
        """One training step: forward, backward, allreduce, local update."""
        loss, grads = self.network.loss_and_grad(inputs, targets)
        self.optimizer.step(self.network.params, grads)
        self.stats.record(loss)
        return loss

    def fit(self, batches, epochs: int = 1) -> TrainStats:
        """Train over an iterable of ``(inputs, targets)`` mini-batches.

        ``batches`` may be a list or a generator factory (callable returning
        a fresh iterable per epoch).
        """
        for _ in range(epochs):
            iterable = batches() if callable(batches) else batches
            for inputs, targets in iterable:
                self.step(inputs, targets)
        return self.stats

    def evaluate(self, inputs, targets) -> float:
        """Loss without updating parameters (still uses batch statistics in
        BN eval mode semantics handled by the network)."""
        loss = self.network.forward(inputs, targets=targets, training=False)
        if loss is None:
            raise RuntimeError("evaluate requires a loss layer and targets")
        return loss
