"""The distributed training loop.

After the gradient allreduce every rank holds identical gradients, so "SGD
can proceed independently on each processor" (§III-A): the optimizer step is
purely local and replicas stay bitwise consistent.

The trainer also surfaces the communication picture of each run: per-step
wall time plus the communicator's :class:`~repro.comm.stats.CommStats`,
whose wait-vs-overlap split measures how much of the (bucketed, nonblocking)
gradient allreduce was actually hidden behind backpropagation — the
empirical counterpart of the cost model's exposed-allreduce term (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.nn.optim import SGD
from repro.core import checkpoint as ckpt
from repro.core.dist_network import DistNetwork
from repro.obs import tracer as _trace
from repro.obs.logging import get_logger
from repro.obs.metrics import comm_stats_snapshot


@dataclass
class TrainStats:
    """Per-step records collected during training."""

    losses: list[float] = field(default_factory=list)
    step_seconds: list[float] = field(default_factory=list)
    steps: int = 0

    def record(self, loss: float, seconds: float = 0.0) -> None:
        self.losses.append(float(loss))
        self.step_seconds.append(float(seconds))
        self.steps += 1

    @property
    def last_loss(self) -> float:
        return self.losses[-1]

    @property
    def total_seconds(self) -> float:
        return sum(self.step_seconds)


class DistTrainer:
    """Couples a :class:`DistNetwork` with an optimizer.

    Checkpointing (optional): with ``checkpoint_dir`` set, each rank writes
    an atomic checkpoint of the parameters, optimizer momentum, batch-norm
    running statistics, step counter, and the data ``rng``'s bit-generator
    state every ``checkpoint_every`` steps (and on :meth:`save_checkpoint`).
    :meth:`resume` restores the newest step present on *every* rank and is
    bitwise exact: a killed-and-resumed run produces the same parameters
    and losses as an uninterrupted one, on both world backends
    (``tests/test_checkpoint.py``).  Pass the generator that draws your
    mini-batches as ``rng`` so resumed runs replay the same data order.
    """

    def __init__(
        self,
        network: DistNetwork,
        optimizer: SGD | None = None,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 0,
        checkpoint_keep: int = 2,
        rng: np.random.Generator | None = None,
        incremental_update: bool = False,
    ) -> None:
        self.network = network
        self.optimizer = optimizer or SGD(lr=0.1)
        self.stats = TrainStats()
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.checkpoint_keep = checkpoint_keep
        self.rng = rng
        #: Apply each layer's optimizer update as soon as its reduced
        #: gradient completes (mid-backpropagation, via the network's
        #: ``grad_hook``) instead of once after the full drain.  With the
        #: segmented bucketed reducer this starts updating early layers
        #: while later gradients' segments are still on the wire.  SGD
        #: updates are independent per (layer, param), so the resulting
        #: parameters are bitwise identical to the all-at-once step.
        self.incremental_update = incremental_update
        #: Completed optimizer steps (the unit checkpoints are keyed by).
        self.step_index = 0

    def step(self, inputs, targets) -> float:
        """One training step: forward, backward+overlapped allreduce, update."""
        with _trace.span("step", cat="train", index=self.step_index):
            return self._step(inputs, targets)

    def _step(self, inputs, targets) -> float:
        t0 = perf_counter()
        if self.incremental_update:
            applied: set[str] = set()

            def hook(name: str, g) -> None:
                applied.add(name)
                self.optimizer.step(self.network.params, {name: g})

            loss, grads = self.network.loss_and_grad(
                inputs, targets, grad_hook=hook
            )
            # Defensive: the hook covers every layer the backward pass
            # reduced; anything else in grads would be applied twice, so
            # only the never-hooked remainder is applied here.
            leftover = {
                k: v for k, v in grads.items() if k not in applied
            }
            if leftover:
                self.optimizer.step(self.network.params, leftover)
        else:
            loss, grads = self.network.loss_and_grad(inputs, targets)
            with _trace.span("optimizer", cat="train", params=len(grads)):
                self.optimizer.step(self.network.params, grads)
        self.stats.record(loss, perf_counter() - t0)
        self.step_index += 1
        if (
            self.checkpoint_dir is not None
            and self.checkpoint_every > 0
            and self.step_index % self.checkpoint_every == 0
        ):
            self.save_checkpoint()
        return loss

    # -- checkpoint/resume -------------------------------------------------
    def save_checkpoint(self) -> str:
        """Atomically persist this rank's training state; return the path.

        No barrier: ranks save independently (replicated state is identical
        anyway), and :meth:`resume` agrees on the newest step every rank
        holds, so a rank killed mid-save costs one cadence, not the run.
        """
        if self.checkpoint_dir is None:
            raise RuntimeError("DistTrainer has no checkpoint_dir configured")
        with _trace.span("checkpoint", cat="train", step=self.step_index):
            return self._save_checkpoint()

    def _save_checkpoint(self) -> str:
        state = {
            "step": self.step_index,
            "network": self.network.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "rng": self.rng.bit_generator.state if self.rng is not None else None,
        }
        comm = self.network.comm
        path = ckpt.save_state(
            self.checkpoint_dir, self.step_index, comm.rank, state,
            world=comm.size,
        )
        if self.checkpoint_keep > 0:
            ckpt.prune(self.checkpoint_dir, comm.rank, self.checkpoint_keep)
        return path

    def resume(self) -> int | None:
        """Restore the newest checkpoint step all ranks hold; return it.

        Returns ``None`` (leaving state untouched) when no common
        checkpoint exists.  Restoration is bitwise: parameters, momentum,
        BN running stats, the step counter, and the data RNG state all
        match the values at save time exactly.
        """
        comm = self.network.comm
        step = ckpt.latest_common_step(self.checkpoint_dir, comm)
        if step is None:
            return None
        state = ckpt.load_state(
            self.checkpoint_dir, step, comm.rank, world=comm.size
        )
        self._load_state(state)
        return self.step_index

    def resume_elastic(self) -> tuple[int, int] | None:
        """Restore from the newest usable checkpoint, re-sharding if needed.

        Same-world sets resume exactly like :meth:`resume` (bitwise).  When
        none exists — the previous incarnation ran with a different rank
        count — rank 0 scans for the newest *complete* world-stamped set,
        broadcasts the choice, and every rank loads the verified canonical
        global state (:func:`repro.core.checkpoint.gather_global_state`).
        Parameters, momentum, BN statistics, and the data-RNG position are
        replicated, so re-sharding for the new world is loading the
        canonical replica under the freshly-planned strategy; each rank
        then stamps a checkpoint for the *new* world at the resume step so
        the next restart at this size takes the bitwise path.

        Returns ``(step, source_world)``, or ``None`` when the directory
        holds nothing usable.
        """
        comm = self.network.comm
        step = ckpt.latest_common_step(self.checkpoint_dir, comm)
        if step is not None:
            state = ckpt.load_state(
                self.checkpoint_dir, step, comm.rank, world=comm.size
            )
            self._load_state(state)
            return (self.step_index, comm.size)
        found = comm.bcast(
            ckpt.latest_complete_step(self.checkpoint_dir)
            if comm.rank == 0 else None
        )
        if found is None:
            return None
        step, src_world = found
        with _trace.span(
            "resume_reshard", cat="elastic",
            step=step, src_world=src_world, world=comm.size,
        ):
            state = ckpt.gather_global_state(
                self.checkpoint_dir, step, src_world
            )
            self._load_state(state)
            self._save_checkpoint()
        return (self.step_index, src_world)

    def _load_state(self, state) -> None:
        self.network.load_state_dict(state["network"])
        self.optimizer.load_state_dict(state["optimizer"])
        if state["rng"] is not None:
            if self.rng is None:
                raise RuntimeError(
                    "checkpoint carries RNG state but the trainer has no rng; "
                    "pass the data rng to DistTrainer to replay batches"
                )
            self.rng.bit_generator.state = state["rng"]
        self.step_index = int(state["step"])

    def fit(self, batches, epochs: int = 1, verbose: bool = False) -> TrainStats:
        """Train over an iterable of ``(inputs, targets)`` mini-batches.

        ``batches`` may be a list or a generator factory (callable returning
        a fresh iterable per epoch).  With ``verbose`` (rank 0 only), prints
        the communication report — collective counts/bytes and the measured
        wait-vs-overlap time of the nonblocking gradient allreduces.
        """
        for _ in range(epochs):
            iterable = batches() if callable(batches) else batches
            for inputs, targets in iterable:
                self.step(inputs, targets)
        if _trace.is_on():
            _trace.annotate("comm_stats", comm_stats_snapshot(self.network.comm.stats))
            _trace.annotate(
                "train_stats",
                {
                    "steps": self.stats.steps,
                    "total_seconds": self.stats.total_seconds,
                    "last_loss": self.stats.last_loss,
                },
            )
        if verbose and self.network.comm.rank == 0:
            get_logger("train").info("%s", self.comm_report())
        return self.stats

    def comm_report(self) -> str:
        """Training + communication summary for this rank.

        Includes the per-op wait time (caller blocked draining a request)
        and overlap time (request in flight while backprop continued) that
        :class:`~repro.comm.stats.CommStats` accumulates.
        """
        cs = self.network.comm.stats
        lines = [
            f"steps: {self.stats.steps}"
            + (
                f", avg step {np.mean(self.stats.step_seconds) * 1e3:.2f} ms"
                if self.stats.step_seconds
                else ""
            )
            + f" [{self.network.comm.backend} backend]",
            cs.report(),
        ]
        wait = cs.total_wait_seconds()
        hidden = cs.total_overlap_seconds()
        if wait + hidden > 0:
            lines.append(
                f"  nonblocking: {wait * 1e3:.3f} ms exposed (waited), "
                f"{hidden * 1e3:.3f} ms hidden behind compute "
                f"({100.0 * hidden / (wait + hidden):.1f}% overlapped)"
            )
        halo_wait = cs.wait_seconds.get("halo_exchange", 0.0)
        halo_hidden = cs.overlap_seconds.get("halo_exchange", 0.0)
        if halo_wait + halo_hidden > 0:
            lines.append(
                f"  halo exchange: {halo_wait * 1e3:.3f} ms exposed, "
                f"{halo_hidden * 1e3:.3f} ms hidden behind interior conv "
                f"({100.0 * halo_hidden / (halo_wait + halo_hidden):.1f}% overlapped)"
            )
        sh_wait = cs.wait_seconds.get("shuffle", 0.0)
        sh_hidden = cs.overlap_seconds.get("shuffle", 0.0)
        if sh_wait + sh_hidden > 0:
            lines.append(
                f"  shuffle: {sh_wait * 1e3:.3f} ms exposed, "
                f"{sh_hidden * 1e3:.3f} ms hidden behind adjacent compute "
                f"({100.0 * sh_hidden / (sh_wait + sh_hidden):.1f}% overlapped)"
            )
        return "\n".join(lines)

    def evaluate(self, inputs, targets) -> float:
        """Loss without updating parameters (still uses batch statistics in
        BN eval mode semantics handled by the network)."""
        loss = self.network.forward(inputs, targets=targets, training=False)
        if loss is None:
            raise RuntimeError("evaluate requires a loss layer and targets")
        return loss
