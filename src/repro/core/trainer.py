"""The distributed training loop.

After the gradient allreduce every rank holds identical gradients, so "SGD
can proceed independently on each processor" (§III-A): the optimizer step is
purely local and replicas stay bitwise consistent.

The trainer also surfaces the communication picture of each run: per-step
wall time plus the communicator's :class:`~repro.comm.stats.CommStats`,
whose wait-vs-overlap split measures how much of the (bucketed, nonblocking)
gradient allreduce was actually hidden behind backpropagation — the
empirical counterpart of the cost model's exposed-allreduce term (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.nn.optim import SGD
from repro.core.dist_network import DistNetwork


@dataclass
class TrainStats:
    """Per-step records collected during training."""

    losses: list[float] = field(default_factory=list)
    step_seconds: list[float] = field(default_factory=list)
    steps: int = 0

    def record(self, loss: float, seconds: float = 0.0) -> None:
        self.losses.append(float(loss))
        self.step_seconds.append(float(seconds))
        self.steps += 1

    @property
    def last_loss(self) -> float:
        return self.losses[-1]

    @property
    def total_seconds(self) -> float:
        return sum(self.step_seconds)


class DistTrainer:
    """Couples a :class:`DistNetwork` with an optimizer."""

    def __init__(
        self,
        network: DistNetwork,
        optimizer: SGD | None = None,
    ) -> None:
        self.network = network
        self.optimizer = optimizer or SGD(lr=0.1)
        self.stats = TrainStats()

    def step(self, inputs, targets) -> float:
        """One training step: forward, backward+overlapped allreduce, update."""
        t0 = perf_counter()
        loss, grads = self.network.loss_and_grad(inputs, targets)
        self.optimizer.step(self.network.params, grads)
        self.stats.record(loss, perf_counter() - t0)
        return loss

    def fit(self, batches, epochs: int = 1, verbose: bool = False) -> TrainStats:
        """Train over an iterable of ``(inputs, targets)`` mini-batches.

        ``batches`` may be a list or a generator factory (callable returning
        a fresh iterable per epoch).  With ``verbose`` (rank 0 only), prints
        the communication report — collective counts/bytes and the measured
        wait-vs-overlap time of the nonblocking gradient allreduces.
        """
        for _ in range(epochs):
            iterable = batches() if callable(batches) else batches
            for inputs, targets in iterable:
                self.step(inputs, targets)
        if verbose and self.network.comm.rank == 0:
            print(self.comm_report())
        return self.stats

    def comm_report(self) -> str:
        """Training + communication summary for this rank.

        Includes the per-op wait time (caller blocked draining a request)
        and overlap time (request in flight while backprop continued) that
        :class:`~repro.comm.stats.CommStats` accumulates.
        """
        cs = self.network.comm.stats
        lines = [
            f"steps: {self.stats.steps}"
            + (
                f", avg step {np.mean(self.stats.step_seconds) * 1e3:.2f} ms"
                if self.stats.step_seconds
                else ""
            )
            + f" [{self.network.comm.backend} backend]",
            cs.report(),
        ]
        wait = cs.total_wait_seconds()
        hidden = cs.total_overlap_seconds()
        if wait + hidden > 0:
            lines.append(
                f"  nonblocking: {wait * 1e3:.3f} ms exposed (waited), "
                f"{hidden * 1e3:.3f} ms hidden behind compute "
                f"({100.0 * hidden / (wait + hidden):.1f}% overlapped)"
            )
        halo_wait = cs.wait_seconds.get("halo_exchange", 0.0)
        halo_hidden = cs.overlap_seconds.get("halo_exchange", 0.0)
        if halo_wait + halo_hidden > 0:
            lines.append(
                f"  halo exchange: {halo_wait * 1e3:.3f} ms exposed, "
                f"{halo_hidden * 1e3:.3f} ms hidden behind interior conv "
                f"({100.0 * halo_hidden / (halo_wait + halo_hidden):.1f}% overlapped)"
            )
        sh_wait = cs.wait_seconds.get("shuffle", 0.0)
        sh_hidden = cs.overlap_seconds.get("shuffle", 0.0)
        if sh_wait + sh_hidden > 0:
            lines.append(
                f"  shuffle: {sh_wait * 1e3:.3f} ms exposed, "
                f"{sh_hidden * 1e3:.3f} ms hidden behind adjacent compute "
                f"({100.0 * sh_hidden / (sh_wait + sh_hidden):.1f}% overlapped)"
            )
        return "\n".join(lines)

    def evaluate(self, inputs, targets) -> float:
        """Loss without updating parameters (still uses batch statistics in
        BN eval mode semantics handled by the network)."""
        loss = self.network.forward(inputs, targets=targets, training=False)
        if loss is None:
            raise RuntimeError("evaluate requires a loss layer and targets")
        return loss
