"""Distributed convolution: sample, spatial, and hybrid parallelism (§III-A).

The algorithm, exactly as in the paper with the region algebra made
explicit.  Let a rank own output rows ``[q_o, r_o)`` (block distribution of
the output's H dimension; W symmetric).  With kernel K, stride S, padding P:

* **forward** — output row ``j`` reads input rows ``[jS - P, jS - P + K)``,
  so the rank gathers input region ``[q_o S - P, (r_o - 1) S - P + K)``
  (its own block plus halo; out-of-range parts are virtual padding,
  zero-filled by ``gather_region``) and runs a *local* convolution with
  ``pad=0``.  When S=1 the halo is exactly ``O = floor(K/2)`` rows on each
  side — the paper's halo exchange;
* **backward-filter** (Eq. 2) — reuses the forward's gathered input region
  against the local error signal, again with ``pad=0``; the partial ``dw``
  is then summed over the grid by an allreduce;
* **backward-data** (Eq. 3) — input row ``i`` is influenced by output rows
  ``[(i + P - K + 1)/S, (i + P)/S]``; the rank owning input rows
  ``[x_lo, x_hi)`` gathers the error-signal region
  ``[floor((x_lo + P - K + 1)/S), floor((x_hi - 1 + P)/S) + 1)`` and
  evaluates the transposed convolution with effective left padding
  ``p'' = x_lo + P - S*d_lo`` (>= K-1 by construction), which aligns the
  gathered region with the local block exactly.

Because all communication is expressed through ``gather_region``, the same
code handles pure sample parallelism (the gather degenerates to the local
block: zero communication), pure spatial, hybrid, strides, uneven
partitions, and replicated dimensions — and replicates the single-device
result to floating-point accumulation order.
"""

from __future__ import annotations

import numpy as np

from repro.comm.buffers import BufferPool
from repro.nn import functional as F
from repro.tensor.dist_tensor import DistTensor
from repro.tensor.grid import ProcessGrid
from repro.core.parallelism import activation_dist


def _pair(v) -> tuple[int, int]:
    if isinstance(v, (tuple, list)):
        return int(v[0]), int(v[1])
    return int(v), int(v)


class DistConv2d:
    """A distributed 2D convolutional layer.

    Weights (and bias) are replicated on every rank of ``grid``; the
    activation tensors are distributed along (N, H, W) per the grid shape
    (the channel axis is handled by :mod:`repro.core.channel_filter`).
    """

    def __init__(
        self,
        grid: ProcessGrid,
        weights: np.ndarray,
        stride=1,
        pad=0,
        bias: np.ndarray | None = None,
    ) -> None:
        if grid.ndim != 4:
            raise ValueError("DistConv2d expects a 4D (N, C, H, W) grid")
        if grid.shape[1] != 1:
            raise ValueError(
                "channel-parallel convolution lives in repro.core.channel_filter"
            )
        self.grid = grid
        self.w = weights
        self.bias = bias
        self.stride = _pair(stride)
        self.pad = _pair(pad)
        self.kernel = (weights.shape[2], weights.shape[3])
        self._x_ext: np.ndarray | None = None
        self._x_global_shape: tuple[int, ...] | None = None
        self._x_dist = None
        # Recycles the gathered input / error-signal staging buffers across
        # steps (they are assembly-only and never cross the comm boundary,
        # so reuse cannot alias in-flight zero-copy messages).
        self._pool = BufferPool()

    # -- geometry ------------------------------------------------------------------
    def output_global_shape(self, x_shape: tuple[int, ...]) -> tuple[int, ...]:
        n, c, h, w = x_shape
        oh, ow = F.conv2d_output_shape(
            (h, w), self.kernel, self.stride, self.pad
        )
        return (n, self.w.shape[0], oh, ow)

    def _input_region(
        self, x: DistTensor, y_bounds
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Global input region needed for the local output block (fwd dep)."""
        (n_lo, n_hi), _, (oh_lo, oh_hi), (ow_lo, ow_hi) = y_bounds
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.pad
        lo = (n_lo, 0, oh_lo * sh - ph, ow_lo * sw - pw)
        hi = (
            n_hi,
            x.global_shape[1],
            (oh_hi - 1) * sh - ph + kh if oh_hi > oh_lo else oh_lo * sh - ph,
            (ow_hi - 1) * sw - pw + kw if ow_hi > ow_lo else ow_lo * sw - pw,
        )
        return lo, hi

    # -- forward ---------------------------------------------------------------------
    def forward(self, x: DistTensor) -> DistTensor:
        y_shape = self.output_global_shape(x.global_shape)
        y_dist = activation_dist(self.grid.shape, y_shape)
        y_bounds = y_dist.local_bounds(y_shape, self.grid.coords)

        lo, hi = self._input_region(x, y_bounds)
        x_ext = x.gather_region(lo, hi, pool=self._pool)
        self._x_ext = x_ext
        self._x_global_shape = x.global_shape
        self._x_dist = x.dist

        y_local = F.conv2d_forward(
            x_ext, self.w, stride=self.stride, pad=0, bias=self.bias
        )
        return DistTensor(self.grid, y_dist, y_shape, y_local)

    # -- backward --------------------------------------------------------------------
    def backward(
        self, dy: DistTensor
    ) -> tuple[DistTensor, np.ndarray, np.ndarray | None]:
        """Returns ``(dx, dw_partial, db_partial)``.

        The weight-gradient partials still need the allreduce over the
        layer's gradient group (paper Eq. 2's sum over N) — performed by the
        network so it can be overlapped/batched.
        """
        if self._x_ext is None:
            raise RuntimeError("backward() before forward()")
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.pad

        # Eq. 2: local filter gradients from the saved extended input region.
        dw = F.conv2d_backward_filter(
            self._x_ext, dy.local, kernel=self.kernel, stride=self.stride, pad=0
        )
        db = dy.local.sum(axis=(0, 2, 3)) if self.bias is not None else None
        self._pool.give(self._x_ext)
        self._x_ext = None

        # Eq. 3: gather the dy dependency region of our input block.
        x_dist = self._x_dist
        x_shape = self._x_global_shape
        assert x_dist is not None and x_shape is not None
        xb = x_dist.local_bounds(x_shape, self.grid.coords)
        (n_lo, n_hi), (_, c_all), (xh_lo, xh_hi), (xw_lo, xw_hi) = xb

        dh_lo = _floor_div(xh_lo + ph - (kh - 1), sh)
        dh_hi = _floor_div(xh_hi - 1 + ph, sh) + 1 if xh_hi > xh_lo else dh_lo
        dw_lo = _floor_div(xw_lo + pw - (kw - 1), sw)
        dw_hi = _floor_div(xw_hi - 1 + pw, sw) + 1 if xw_hi > xw_lo else dw_lo

        dy_ext = dy.gather_region(
            (n_lo, 0, dh_lo, dw_lo),
            (n_hi, dy.global_shape[1], dh_hi, dw_hi),
            pool=self._pool,
        )
        pad_eff = (xh_lo + ph - sh * dh_lo, xw_lo + pw - sw * dw_lo)
        dx_local = F.conv2d_backward_data(
            dy_ext,
            self.w,
            stride=self.stride,
            pad=pad_eff,
            x_spatial=(xh_hi - xh_lo, xw_hi - xw_lo),
        )
        self._pool.give(dy_ext)
        dx = DistTensor(self.grid, x_dist, x_shape, dx_local)
        return dx, dw, db

    def halo_widths(self) -> tuple[int, int]:
        """Forward halo widths (O = floor(K/2) per spatial dim for S=1) —
        what the paper's cost model charges per exchange."""
        return (self.kernel[0] // 2, self.kernel[1] // 2)


def _floor_div(a: int, b: int) -> int:
    """Floor division that is explicit about negative numerators."""
    return a // b
