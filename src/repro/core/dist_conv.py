"""Distributed convolution: sample, spatial, and hybrid parallelism (§III-A).

The algorithm, exactly as in the paper with the region algebra made
explicit.  Let a rank own output rows ``[q_o, r_o)`` (block distribution of
the output's H dimension; W symmetric).  With kernel K, stride S, padding P:

* **forward** — output row ``j`` reads input rows ``[jS - P, jS - P + K)``,
  so the rank gathers input region ``[q_o S - P, (r_o - 1) S - P + K)``
  (its own block plus halo; out-of-range parts are virtual padding,
  zero-filled by the gather) and runs a *local* convolution with ``pad=0``.
  When S=1 the halo is exactly ``O = floor(K/2)`` rows on each side — the
  paper's halo exchange;
* **backward-filter** (Eq. 2) — reuses the forward's gathered input region
  against the local error signal, again with ``pad=0``; the partial ``dw``
  is then summed over the grid by an allreduce;
* **backward-data** (Eq. 3) — input row ``i`` is influenced by output rows
  ``[(i + P - K + 1)/S, (i + P)/S]``; the rank owning input rows
  ``[x_lo, x_hi)`` gathers the error-signal region
  ``[floor((x_lo + P - K + 1)/S), floor((x_hi - 1 + P)/S) + 1)`` and
  evaluates the transposed convolution with effective left padding
  ``p'' = x_lo + P - S*d_lo`` (>= K-1 by construction), which aligns the
  gathered region with the local block exactly.

**Overlapped halo exchange (§IV-A).**  When the layer is spatially
partitioned, the local output block is decomposed into an *interior* region
— output points whose input windows lie entirely in locally owned data (or
virtual padding) — and up to four *boundary* strips that depend on halo
cells.  With ``overlap_halo`` (the default), the halo strips are posted as
nonblocking ``isend``/``irecv`` up front (:func:`start_region_exchange`),
the interior kernel runs while they travel, received pieces are assembled
as each request lands, and the boundary kernels complete the output; in
backward the error-signal exchange additionally hides inside the filter
convolution (Eq. 2 needs no halo).  With ``overlap_halo=False`` the same
interior + boundary kernels run after a blocking ``gather_region`` — the
two modes perform *identical* floating-point operations on identical data,
so they are bitwise equal over entire training runs (BLAS kernels are not
sub-block invariant, which is why the synchronous mode must decompose too
rather than issue one fused kernel).

Because communication is expressed through the same region algebra as
``gather_region``, the same code handles pure sample parallelism (zero
communication), pure spatial, hybrid, strides, uneven partitions, and
replicated dimensions — and replicates the single-device result to
floating-point accumulation order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.buffers import BufferPool
from repro.nn import functional as F
from repro.tensor.dist_tensor import DistTensor
from repro.tensor.grid import ProcessGrid
from repro.tensor.halo import (
    ExchangePlan,
    any_region_remote,
    local_region,
    plan_region_exchange,
    start_region_exchange,
)
from repro.tensor.indexing import ceil_div
from repro.core.parallelism import activation_dist


def _pair(v) -> tuple[int, int]:
    if isinstance(v, (tuple, list)):
        return int(v[0]), int(v[1])
    return int(v), int(v)


def _frame_pieces(
    outer_h: tuple[int, int],
    outer_w: tuple[int, int],
    inner_h: tuple[int, int],
    inner_w: tuple[int, int],
) -> list[tuple[tuple[int, int], tuple[int, int], bool]]:
    """Decompose rectangle ``outer`` into the ``inner`` core plus a frame.

    Returns ``[(rows, cols, is_interior), ...]`` in a fixed deterministic
    order (interior, top, bottom, left, right; empty pieces dropped).  When
    the interior is empty the whole outer rectangle is one boundary piece.
    """
    (oh_lo, oh_hi), (ow_lo, ow_hi) = outer_h, outer_w
    ih_lo = max(inner_h[0], oh_lo)
    ih_hi = min(inner_h[1], oh_hi)
    iw_lo = max(inner_w[0], ow_lo)
    iw_hi = min(inner_w[1], ow_hi)
    if oh_hi <= oh_lo or ow_hi <= ow_lo:
        return []
    if ih_hi <= ih_lo or iw_hi <= iw_lo:
        return [((oh_lo, oh_hi), (ow_lo, ow_hi), False)]
    pieces = [((ih_lo, ih_hi), (iw_lo, iw_hi), True)]
    if ih_lo > oh_lo:
        pieces.append(((oh_lo, ih_lo), (ow_lo, ow_hi), False))
    if oh_hi > ih_hi:
        pieces.append(((ih_hi, oh_hi), (ow_lo, ow_hi), False))
    if iw_lo > ow_lo:
        pieces.append(((ih_lo, ih_hi), (ow_lo, iw_lo), False))
    if ow_hi > iw_hi:
        pieces.append(((ih_lo, ih_hi), (iw_hi, ow_hi), False))
    return pieces


def _fwd_region_builder(kernel, stride, pad, y_dist, y_shape, chan_of):
    """Any rank's forward input region from its output bounds.

    ``chan_of(coords)`` supplies the dim-1 slot — the rank's own channel
    slice for channel parallelism, the full (replicated) C extent for
    filter parallelism.
    """
    kh, kw = kernel
    sh, sw = stride
    ph, pw = pad

    def region_of(coords):
        (n_lo, n_hi), _, (oh_lo, oh_hi), (ow_lo, ow_hi) = y_dist.local_bounds(
            y_shape, coords
        )
        c_lo, c_hi = chan_of(coords)
        lo = (n_lo, c_lo, oh_lo * sh - ph, ow_lo * sw - pw)
        hi = (
            n_hi,
            c_hi,
            (oh_hi - 1) * sh - ph + kh if oh_hi > oh_lo else oh_lo * sh - ph,
            (ow_hi - 1) * sw - pw + kw if ow_hi > ow_lo else ow_lo * sw - pw,
        )
        return lo, hi

    return region_of


def _bwd_region_builder(kernel, stride, pad, x_dist, x_shape, chan_of):
    """Any rank's backward-data dy region from its input bounds (Eq. 3).

    ``chan_of(coords)`` supplies the dim-1 slot — the full dy channel
    extent for channel parallelism, the rank's own filter slice for
    filter parallelism.
    """
    kh, kw = kernel
    sh, sw = stride
    ph, pw = pad

    def region_of(coords):
        (n_lo, n_hi), _, (xh_lo, xh_hi), (xw_lo, xw_hi) = x_dist.local_bounds(
            x_shape, coords
        )
        f_lo, f_hi = chan_of(coords)
        dh_lo = _floor_div(xh_lo + ph - (kh - 1), sh)
        dh_hi = _floor_div(xh_hi - 1 + ph, sh) + 1 if xh_hi > xh_lo else dh_lo
        dw_lo = _floor_div(xw_lo + pw - (kw - 1), sw)
        dw_hi = _floor_div(xw_hi - 1 + pw, sw) + 1 if xw_hi > xw_lo else dw_lo
        return (n_lo, f_lo, dh_lo, dw_lo), (n_hi, f_hi, dh_hi, dw_hi)

    return region_of


@dataclass(frozen=True)
class _ConvGeometry:
    """Static per-layer execution geometry, cached across steps.

    Everything here is a pure function of (global shape, distribution,
    layer hyper-parameters), so it is computed once per layer and direction
    — including the halo :class:`ExchangePlan` — rather than per step.
    """

    bounds: tuple            # this rank's output (fwd) / input (bwd) bounds
    lo: tuple[int, ...]      # gathered dependency region, inclusive start
    hi: tuple[int, ...]      # gathered dependency region, exclusive end
    exchanged: bool          # does any rank need remote data?
    pieces: tuple            # ((rows, cols, is_interior), ...) decomposition
    plan: ExchangePlan | None
    y_dist: object = None    # forward only: output distribution
    y_shape: tuple[int, ...] | None = None


class DistConv2d:
    """A distributed 2D convolutional layer.

    Weights (and bias) are replicated on every rank of ``grid``; the
    activation tensors are distributed along (N, H, W) per the grid shape
    (the channel axis is handled by :mod:`repro.core.channel_filter`).

    ``overlap_halo`` selects the nonblocking, interior-first execution of
    the halo exchange; the synchronous mode runs the identical kernel
    decomposition after a blocking gather, so both modes are bitwise equal.
    """

    def __init__(
        self,
        grid: ProcessGrid,
        weights: np.ndarray,
        stride=1,
        pad=0,
        bias: np.ndarray | None = None,
        overlap_halo: bool = True,
    ) -> None:
        if grid.ndim != 4:
            raise ValueError("DistConv2d expects a 4D (N, C, H, W) grid")
        if grid.shape[1] != 1:
            raise ValueError(
                "channel-parallel convolution lives in repro.core.channel_filter"
            )
        self.grid = grid
        self.w = weights
        self.bias = bias
        self.stride = _pair(stride)
        self.pad = _pair(pad)
        self.kernel = (weights.shape[2], weights.shape[3])
        self.overlap_halo = bool(overlap_halo)
        self._x_ext: np.ndarray | None = None
        self._x_global_shape: tuple[int, ...] | None = None
        self._x_dist = None
        # Recycles the gathered input / error-signal staging buffers across
        # steps, plus (deferred) the contiguous halo send strips of the
        # overlapped exchange.
        self._pool = BufferPool()
        # Static geometry (regions, decompositions, exchange plans) per
        # (direction, global shape, distribution).
        self._geom: dict = {}

    # -- geometry ------------------------------------------------------------------
    def output_global_shape(self, x_shape: tuple[int, ...]) -> tuple[int, ...]:
        n, c, h, w = x_shape
        oh, ow = F.conv2d_output_shape(
            (h, w), self.kernel, self.stride, self.pad
        )
        return (n, self.w.shape[0], oh, ow)

    def _local_region(self, dt: DistTensor, lo, hi) -> np.ndarray:
        """Materialize a region that is fully local (plus virtual padding)
        without communication — the overlap-mode fast path."""
        return local_region(dt, lo, hi, fill=0.0, pool=self._pool)

    # -- interior/boundary decomposition (§IV-A) -----------------------------------
    def _fwd_interior(self, x: DistTensor, y_bounds) -> tuple:
        """Output rows/cols whose windows need only locally owned input
        (windows reaching past the global edge read virtual padding, which
        is local knowledge, so global-boundary ranks keep a full interior)."""
        xb = x.dist.local_bounds(x.global_shape, self.grid.coords)
        spans = []
        for axis, k, s, p in (
            (2, self.kernel[0], self.stride[0], self.pad[0]),
            (3, self.kernel[1], self.stride[1], self.pad[1]),
        ):
            b_lo, b_hi = xb[axis]
            o_lo, o_hi = y_bounds[axis]
            extent = x.global_shape[axis]
            lo = o_lo if b_lo == 0 else max(o_lo, ceil_div(b_lo + p, s))
            hi = o_hi if b_hi == extent else min(o_hi, (b_hi + p - k) // s + 1)
            spans.append((lo, hi))
        return tuple(spans)

    def _bwd_interior(self, dy: DistTensor, x_bounds) -> tuple:
        """Input rows/cols whose influencing output windows are locally
        owned in dy (Eq. 3's dependency, inverted)."""
        gb = dy.dist.local_bounds(dy.global_shape, self.grid.coords)
        spans = []
        for axis, k, s, p in (
            (2, self.kernel[0], self.stride[0], self.pad[0]),
            (3, self.kernel[1], self.stride[1], self.pad[1]),
        ):
            g_lo, g_hi = gb[axis]
            x_lo, x_hi = x_bounds[axis]
            extent = dy.global_shape[axis]
            lo = x_lo if g_lo == 0 else max(x_lo, s * (g_lo - 1) + k - p)
            hi = x_hi if g_hi == extent else min(x_hi, s * g_hi - p)
            spans.append((lo, hi))
        return tuple(spans)

    def _fwd_piece(self, x_ext, y_bounds, rows, cols, y_local) -> None:
        """Convolve one output sub-rectangle from its slice of ``x_ext``."""
        (a, b), (c, d) = rows, cols
        sh, sw = self.stride
        kh, kw = self.kernel
        _, _, (oh_lo, _), (ow_lo, _) = y_bounds
        hs = (a - oh_lo) * sh
        ws = (c - ow_lo) * sw
        piece = F.conv2d_forward(
            x_ext[:, :, hs : hs + (b - a - 1) * sh + kh, ws : ws + (d - c - 1) * sw + kw],
            self.w,
            stride=self.stride,
            pad=0,
            bias=self.bias,
        )
        y_local[:, :, a - oh_lo : b - oh_lo, c - ow_lo : d - ow_lo] = piece

    def _bwd_piece(self, dy_ext, dy_reg_lo, x_bounds, rows, cols, dx_local) -> None:
        """Transposed-convolve one input sub-rectangle from ``dy_ext``."""
        (a, b), (c, d) = rows, cols
        sh, sw = self.stride
        kh, kw = self.kernel
        ph, pw = self.pad
        _, _, (xh_lo, _), (xw_lo, _) = x_bounds
        dh_a = _floor_div(a + ph - (kh - 1), sh)
        dh_b = _floor_div(b - 1 + ph, sh) + 1
        dw_c = _floor_div(c + pw - (kw - 1), sw)
        dw_d = _floor_div(d - 1 + pw, sw) + 1
        piece = F.conv2d_backward_data(
            dy_ext[
                :, :, dh_a - dy_reg_lo[2] : dh_b - dy_reg_lo[2],
                dw_c - dy_reg_lo[3] : dw_d - dy_reg_lo[3],
            ],
            self.w,
            stride=self.stride,
            pad=(a + ph - sh * dh_a, c + pw - sw * dw_c),
            x_spatial=(b - a, d - c),
        )
        dx_local[:, :, a - xh_lo : b - xh_lo, c - xw_lo : d - xw_lo] = piece

    def _fwd_geom(self, x: DistTensor) -> _ConvGeometry:
        key = ("fwd", x.global_shape, x.dist)
        geom = self._geom.get(key)
        if geom is not None:
            return geom
        y_shape = self.output_global_shape(x.global_shape)
        y_dist = activation_dist(self.grid.shape, y_shape)
        y_bounds = y_dist.local_bounds(y_shape, self.grid.coords)
        c_in = x.global_shape[1]
        region_of = _fwd_region_builder(
            self.kernel, self.stride, self.pad, y_dist, y_shape,
            lambda coords: (0, c_in),
        )
        regions = [
            region_of(self.grid.coords_of(r)) for r in range(self.grid.comm.size)
        ]
        lo, hi = regions[self.grid.comm.rank]
        exchanged = any_region_remote(x, regions)
        pieces: tuple = ()
        plan = None
        if exchanged:
            inner_h, inner_w = self._fwd_interior(x, y_bounds)
            pieces = tuple(_frame_pieces(y_bounds[2], y_bounds[3], inner_h, inner_w))
            plan = plan_region_exchange(x, lo, hi, regions)
        geom = _ConvGeometry(
            y_bounds, lo, hi, exchanged, pieces, plan, y_dist, y_shape
        )
        self._geom[key] = geom
        return geom

    def _bwd_geom(self, dy: DistTensor, x_dist, x_shape) -> _ConvGeometry:
        key = ("bwd", dy.global_shape, dy.dist, x_shape, x_dist)
        geom = self._geom.get(key)
        if geom is not None:
            return geom
        xb = x_dist.local_bounds(x_shape, self.grid.coords)
        dy_channels = dy.global_shape[1]
        region_of = _bwd_region_builder(
            self.kernel, self.stride, self.pad, x_dist, x_shape,
            lambda coords: (0, dy_channels),
        )
        regions = [
            region_of(self.grid.coords_of(r)) for r in range(self.grid.comm.size)
        ]
        lo, hi = regions[self.grid.comm.rank]
        exchanged = any_region_remote(dy, regions)
        pieces: tuple = ()
        plan = None
        if exchanged:
            inner_h, inner_w = self._bwd_interior(dy, xb)
            pieces = tuple(_frame_pieces(xb[2], xb[3], inner_h, inner_w))
            plan = plan_region_exchange(dy, lo, hi, regions)
        geom = _ConvGeometry(xb, lo, hi, exchanged, pieces, plan)
        self._geom[key] = geom
        return geom

    # -- forward ---------------------------------------------------------------------
    def forward(self, x: DistTensor) -> DistTensor:
        g = self._fwd_geom(x)
        y_bounds = g.bounds

        if not g.exchanged:
            # Degenerate gather (pure sample parallelism / replicated
            # spatial dims): a single fused kernel, no decomposition.
            if self.overlap_halo:
                x_ext = self._local_region(x, g.lo, g.hi)
            else:
                x_ext = x.gather_region(g.lo, g.hi, pool=self._pool)
            y_local = F.conv2d_forward(
                x_ext, self.w, stride=self.stride, pad=0, bias=self.bias
            )
        else:
            (n_lo, n_hi), _, (oh_lo, oh_hi), (ow_lo, ow_hi) = y_bounds
            y_local = np.empty(
                (n_hi - n_lo, self.w.shape[0], oh_hi - oh_lo, ow_hi - ow_lo),
                dtype=np.result_type(x.dtype, self.w.dtype),
            )
            if self.overlap_halo:
                ex = start_region_exchange(x, g.lo, g.hi, pool=self._pool, plan=g.plan)
                x_ext = ex.out
                for rows, cols, interior in g.pieces:
                    if interior:
                        self._fwd_piece(x_ext, y_bounds, rows, cols, y_local)
                ex.finish()
                for rows, cols, interior in g.pieces:
                    if not interior:
                        self._fwd_piece(x_ext, y_bounds, rows, cols, y_local)
            else:
                x_ext = x.gather_region(g.lo, g.hi, pool=self._pool)
                for rows, cols, _ in g.pieces:
                    self._fwd_piece(x_ext, y_bounds, rows, cols, y_local)

        self._x_ext = x_ext
        self._x_global_shape = x.global_shape
        self._x_dist = x.dist
        return DistTensor(self.grid, g.y_dist, g.y_shape, y_local)

    # -- backward --------------------------------------------------------------------
    def backward(
        self, dy: DistTensor
    ) -> tuple[DistTensor, np.ndarray, np.ndarray | None]:
        """Returns ``(dx, dw_partial, db_partial)``.

        The weight-gradient partials still need the allreduce over the
        layer's gradient group (paper Eq. 2's sum over N) — performed by the
        network so it can be overlapped/batched.  With ``overlap_halo`` the
        error-signal halo exchange is posted first and hides behind the
        filter convolution and the interior data convolution.
        """
        if self._x_ext is None:
            raise RuntimeError("backward() before forward()")

        x_dist = self._x_dist
        x_shape = self._x_global_shape
        assert x_dist is not None and x_shape is not None
        g = self._bwd_geom(dy, x_dist, x_shape)
        xb = g.bounds
        (n_lo, n_hi), (_, c_all), (xh_lo, xh_hi), (xw_lo, xw_hi) = xb
        lo, hi = g.lo, g.hi

        ex = None
        if g.exchanged and self.overlap_halo:
            # Post the dy halo exchange before Eq. 2: the filter convolution
            # needs no remote data, so the strips travel behind it.
            ex = start_region_exchange(dy, lo, hi, pool=self._pool, plan=g.plan)

        # Eq. 2: local filter gradients from the saved extended input region.
        dw = F.conv2d_backward_filter(
            self._x_ext, dy.local, kernel=self.kernel, stride=self.stride, pad=0
        )
        db = dy.local.sum(axis=(0, 2, 3)) if self.bias is not None else None
        self._pool.give(self._x_ext)
        self._x_ext = None

        # Eq. 3: the dy dependency region of our input block.
        if not g.exchanged:
            if self.overlap_halo:
                dy_ext = self._local_region(dy, lo, hi)
            else:
                dy_ext = dy.gather_region(lo, hi, pool=self._pool)
            pad_eff = (xh_lo + self.pad[0] - self.stride[0] * lo[2],
                       xw_lo + self.pad[1] - self.stride[1] * lo[3])
            dx_local = F.conv2d_backward_data(
                dy_ext,
                self.w,
                stride=self.stride,
                pad=pad_eff,
                x_spatial=(xh_hi - xh_lo, xw_hi - xw_lo),
            )
        else:
            dx_local = np.empty(
                (n_hi - n_lo, c_all, xh_hi - xh_lo, xw_hi - xw_lo),
                dtype=np.result_type(dy.dtype, self.w.dtype),
            )
            if ex is not None:
                dy_ext = ex.out
                ex.poll()
                for rows, cols, interior in g.pieces:
                    if interior:
                        self._bwd_piece(dy_ext, lo, xb, rows, cols, dx_local)
                ex.finish()
                for rows, cols, interior in g.pieces:
                    if not interior:
                        self._bwd_piece(dy_ext, lo, xb, rows, cols, dx_local)
            else:
                dy_ext = dy.gather_region(lo, hi, pool=self._pool)
                for rows, cols, _ in g.pieces:
                    self._bwd_piece(dy_ext, lo, xb, rows, cols, dx_local)

        self._pool.give(dy_ext)
        dx = DistTensor(self.grid, x_dist, x_shape, dx_local)
        return dx, dw, db

    def halo_widths(self) -> tuple[int, int]:
        """Forward halo widths (O = floor(K/2) per spatial dim for S=1) —
        what the paper's cost model charges per exchange."""
        return (self.kernel[0] // 2, self.kernel[1] // 2)


def _floor_div(a: int, b: int) -> int:
    """Floor division that is explicit about negative numerators."""
    return a // b
