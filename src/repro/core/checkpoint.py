"""Atomic per-rank training checkpoints with bitwise-exact restore.

A synchronous data/model-parallel job dies as a unit — one lost rank wipes
the whole run — so checkpoints are the difference between losing a step and
losing a day.  This module stores one file per (step, rank) in a shared
directory and guarantees two properties the fault-tolerance tests lean on:

* **Atomicity** — state is serialized to a temp file in the same directory,
  fsync'd, then ``os.replace``'d into its final name.  A rank killed
  mid-write leaves a stale temp file (cleaned up by the next save), never a
  truncated checkpoint; any file with a final name is complete.
* **Bitwise fidelity** — arrays round-trip through ``np.savez`` untouched
  (dtype, shape, and every bit of every element), and the non-array
  skeleton (step counters, RNG bit-generator state, scalar hyperparams)
  rides along as one pickled blob.  Restoring a checkpoint and continuing
  training reproduces the uninterrupted run exactly — verified by
  ``tests/test_checkpoint.py`` on both world backends.

Because ranks save independently (no barrier in the save path), a crash can
leave the *latest* step present on some ranks only.  :func:`latest_common_step`
agrees on the newest step every rank holds — an allgather of local step
sets, intersected identically everywhere — which is the step ``resume()``
restores from.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any

import numpy as np

#: Checkpoint filename pattern: one file per (step, rank).
_FILE_FMT = "step{step:08d}.rank{rank}.npz"
_META_KEY = "__meta__"


class _ArrRef:
    """Placeholder for an ndarray lifted out of the pickled skeleton."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __reduce__(self):
        return (_ArrRef, (self.index,))


def _flatten(state: Any, arrays: list[np.ndarray]) -> Any:
    """Replace every ndarray in ``state`` with an :class:`_ArrRef`.

    Arrays land in ``arrays`` (stored losslessly via ``np.savez``); the
    returned skeleton is pickled.  Keeping arrays out of the pickle is what
    makes the round-trip bitwise — pickle of an ndarray is also exact, but
    ``savez`` keeps the file inspectable and the arrays lazily loadable.
    """
    if isinstance(state, np.ndarray):
        arrays.append(state)
        return _ArrRef(len(arrays) - 1)
    if isinstance(state, tuple):
        return tuple(_flatten(s, arrays) for s in state)
    if isinstance(state, list):
        return [_flatten(s, arrays) for s in state]
    if isinstance(state, dict):
        return {k: _flatten(v, arrays) for k, v in state.items()}
    return state


def _unflatten(skeleton: Any, arrays: list[np.ndarray]) -> Any:
    if isinstance(skeleton, _ArrRef):
        return arrays[skeleton.index]
    if isinstance(skeleton, tuple):
        return tuple(_unflatten(s, arrays) for s in skeleton)
    if isinstance(skeleton, list):
        return [_unflatten(s, arrays) for s in skeleton]
    if isinstance(skeleton, dict):
        return {k: _unflatten(v, arrays) for k, v in skeleton.items()}
    return skeleton


def checkpoint_path(directory: str, step: int, rank: int) -> str:
    return os.path.join(directory, _FILE_FMT.format(step=step, rank=rank))


def save_state(directory: str, step: int, rank: int, state: Any) -> str:
    """Atomically persist ``state`` for ``(step, rank)``; return the path.

    ``state`` is any pickle-able tree; ndarrays anywhere inside it are
    stored exactly.  The write is temp-file + fsync + ``os.replace``, so a
    concurrent reader (or a crash at any instant) never observes a partial
    checkpoint under the final name.
    """
    os.makedirs(directory, exist_ok=True)
    arrays: list[np.ndarray] = []
    skeleton = _flatten(state, arrays)
    payload = {f"a{i}": arr for i, arr in enumerate(arrays)}
    payload[_META_KEY] = np.frombuffer(
        pickle.dumps(skeleton, protocol=pickle.HIGHEST_PROTOCOL), dtype=np.uint8
    )
    final = checkpoint_path(directory, step, rank)
    fd, tmp = tempfile.mkstemp(
        prefix=f".tmp-step{step:08d}.rank{rank}-", suffix=".npz", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as f:
            np.savez(f, **payload)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, final)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return final


def load_state(directory: str, step: int, rank: int) -> Any:
    """Load the checkpoint saved for ``(step, rank)``."""
    path = checkpoint_path(directory, step, rank)
    with np.load(path, allow_pickle=False) as npz:
        skeleton = pickle.loads(npz[_META_KEY].tobytes())
        arrays = [npz[f"a{i}"] for i in range(len(npz.files) - 1)]
    return _unflatten(skeleton, arrays)


def local_steps(directory: str, rank: int) -> list[int]:
    """Steps for which this rank holds a (complete) checkpoint, sorted."""
    if not os.path.isdir(directory):
        return []
    suffix = f".rank{rank}.npz"
    steps = []
    for name in os.listdir(directory):
        if name.startswith("step") and name.endswith(suffix):
            try:
                steps.append(int(name[len("step"): len("step") + 8]))
            except ValueError:
                continue
    return sorted(steps)


def latest_common_step(directory: str, comm) -> int | None:
    """The newest step checkpointed on *every* rank of ``comm``, or ``None``.

    Ranks save with no barrier, so a crash mid-cadence can leave the newest
    step on a subset of ranks; resuming from it would desynchronize the
    replicas.  Every rank allgathers its local step set and intersects the
    results identically, so all ranks agree without a designated root.
    """
    mine = np.asarray(local_steps(directory, comm.rank), dtype=np.int64)
    all_steps = comm.allgather(mine)
    common = set(all_steps[0].tolist())
    for steps in all_steps[1:]:
        common &= set(steps.tolist())
    return max(common) if common else None


def prune(directory: str, rank: int, keep: int) -> list[int]:
    """Drop this rank's oldest checkpoints, keeping the newest ``keep``.

    ``keep=0`` means "keep none": every checkpoint of this rank is
    removed.  (Historically ``keep=0`` silently kept everything — the
    ``steps[:-0]`` empty-slice trap — and a negative ``keep`` deleted the
    *newest* files; both now behave as documented.)  Negative ``keep``
    raises ``ValueError``.  Returns the steps removed.  Stale temp files
    from interrupted saves are swept too.
    """
    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    steps = local_steps(directory, rank)
    removed: list[int] = []
    for step in (steps if keep == 0 else steps[:-keep]):
        try:
            os.unlink(checkpoint_path(directory, step, rank))
            removed.append(step)
        except OSError:
            pass
    for name in os.listdir(directory):
        if name.startswith(".tmp-") and f".rank{rank}-" in name:
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:
                pass
    return removed
