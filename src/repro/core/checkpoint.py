"""Atomic per-rank training checkpoints with bitwise-exact restore.

A synchronous data/model-parallel job dies as a unit — one lost rank wipes
the whole run — so checkpoints are the difference between losing a step and
losing a day.  This module stores one file per (step, rank) in a shared
directory and guarantees two properties the fault-tolerance tests lean on:

* **Atomicity** — state is serialized to a temp file in the same directory,
  fsync'd, then ``os.replace``'d into its final name.  A rank killed
  mid-write leaves a stale temp file (cleaned up by the next save), never a
  truncated checkpoint; any file with a final name is complete.
* **Bitwise fidelity** — arrays round-trip through ``np.savez`` untouched
  (dtype, shape, and every bit of every element), and the non-array
  skeleton (step counters, RNG bit-generator state, scalar hyperparams)
  rides along as one pickled blob.  Restoring a checkpoint and continuing
  training reproduces the uninterrupted run exactly — verified by
  ``tests/test_checkpoint.py`` on both world backends.

Because ranks save independently (no barrier in the save path), a crash can
leave the *latest* step present on some ranks only.  :func:`latest_common_step`
agrees on the newest step every rank holds — an allgather of local step
sets, intersected identically everywhere — which is the step ``resume()``
restores from.

**World-stamped checkpoints.**  Elastic restarts can resume a run with a
*different* rank count than the one that wrote the checkpoints, so files
written with ``world=p`` carry the writer's world size in their name
(``step00000004.of0003.rank1.npz``).  Unstamped names
(``step00000004.rank1.npz``) remain valid — they are read as "world
unknown" legacy files and still participate in same-world resume.  The
stamp lets :func:`latest_common_step` ignore stale files left behind by a
larger previous world, and lets :func:`latest_complete_step` +
:func:`gather_global_state` reconstruct the canonical global state from a
complete p-rank checkpoint set so a new p′-rank world can re-shard it.
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
from typing import Any

import numpy as np

#: Legacy checkpoint filename pattern: one file per (step, rank).
_FILE_FMT = "step{step:08d}.rank{rank}.npz"
#: World-stamped pattern: one file per (step, world, rank).
_WORLD_FMT = "step{step:08d}.of{world:04d}.rank{rank}.npz"
#: Matches both forms; group "world" is absent on legacy names.
_NAME_RE = re.compile(
    r"^step(?P<step>\d{8})(?:\.of(?P<world>\d{4}))?\.rank(?P<rank>\d+)\.npz$"
)
_META_KEY = "__meta__"


def parse_checkpoint_name(name: str) -> tuple[int, int | None, int] | None:
    """``(step, world_or_None, rank)`` for a checkpoint basename, else None."""
    m = _NAME_RE.match(name)
    if m is None:
        return None
    world = m.group("world")
    return (int(m.group("step")), int(world) if world else None, int(m.group("rank")))


class _ArrRef:
    """Placeholder for an ndarray lifted out of the pickled skeleton."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __reduce__(self):
        return (_ArrRef, (self.index,))


def _flatten(state: Any, arrays: list[np.ndarray]) -> Any:
    """Replace every ndarray in ``state`` with an :class:`_ArrRef`.

    Arrays land in ``arrays`` (stored losslessly via ``np.savez``); the
    returned skeleton is pickled.  Keeping arrays out of the pickle is what
    makes the round-trip bitwise — pickle of an ndarray is also exact, but
    ``savez`` keeps the file inspectable and the arrays lazily loadable.
    """
    if isinstance(state, np.ndarray):
        arrays.append(state)
        return _ArrRef(len(arrays) - 1)
    if isinstance(state, tuple):
        return tuple(_flatten(s, arrays) for s in state)
    if isinstance(state, list):
        return [_flatten(s, arrays) for s in state]
    if isinstance(state, dict):
        return {k: _flatten(v, arrays) for k, v in state.items()}
    return state


def _unflatten(skeleton: Any, arrays: list[np.ndarray]) -> Any:
    if isinstance(skeleton, _ArrRef):
        return arrays[skeleton.index]
    if isinstance(skeleton, tuple):
        return tuple(_unflatten(s, arrays) for s in skeleton)
    if isinstance(skeleton, list):
        return [_unflatten(s, arrays) for s in skeleton]
    if isinstance(skeleton, dict):
        return {k: _unflatten(v, arrays) for k, v in skeleton.items()}
    return skeleton


def checkpoint_path(
    directory: str, step: int, rank: int, world: int | None = None
) -> str:
    """Final filename for ``(step, rank)`` — world-stamped iff ``world`` given."""
    if world is None:
        return os.path.join(directory, _FILE_FMT.format(step=step, rank=rank))
    return os.path.join(
        directory, _WORLD_FMT.format(step=step, world=world, rank=rank)
    )


def save_state(
    directory: str, step: int, rank: int, state: Any, *, world: int | None = None
) -> str:
    """Atomically persist ``state`` for ``(step, rank)``; return the path.

    ``state`` is any pickle-able tree; ndarrays anywhere inside it are
    stored exactly.  The write is temp-file + fsync + ``os.replace``, so a
    concurrent reader (or a crash at any instant) never observes a partial
    checkpoint under the final name.  Pass ``world`` (the writer's rank
    count) to emit a world-stamped name that elastic resume can re-shard.
    """
    os.makedirs(directory, exist_ok=True)
    arrays: list[np.ndarray] = []
    skeleton = _flatten(state, arrays)
    payload = {f"a{i}": arr for i, arr in enumerate(arrays)}
    payload[_META_KEY] = np.frombuffer(
        pickle.dumps(skeleton, protocol=pickle.HIGHEST_PROTOCOL), dtype=np.uint8
    )
    final = checkpoint_path(directory, step, rank, world)
    fd, tmp = tempfile.mkstemp(
        prefix=f".tmp-step{step:08d}.rank{rank}-", suffix=".npz", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as f:
            np.savez(f, **payload)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, final)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return final


def load_state(
    directory: str, step: int, rank: int, world: int | None = None
) -> Any:
    """Load the checkpoint saved for ``(step, rank)``.

    With ``world`` given, the world-stamped file is preferred; a legacy
    unstamped file for the same ``(step, rank)`` is accepted as a fallback
    so runs that upgraded mid-flight still resume.
    """
    path = checkpoint_path(directory, step, rank, world)
    if world is not None and not os.path.exists(path):
        legacy = checkpoint_path(directory, step, rank)
        if os.path.exists(legacy):
            path = legacy
    with np.load(path, allow_pickle=False) as npz:
        skeleton = pickle.loads(npz[_META_KEY].tobytes())
        arrays = [npz[f"a{i}"] for i in range(len(npz.files) - 1)]
    return _unflatten(skeleton, arrays)


def _rank_files(
    directory: str, rank: int, world: int | None
) -> dict[int, list[str]]:
    """Map step -> this rank's checkpoint basenames for that step.

    ``world=None`` accepts every stamp (plus legacy names) — the permissive
    listing used by pruning and forensics.  ``world=p`` accepts only files
    stamped ``of{p}`` and unstamped legacy files, which is what makes
    resume ignore stale leftovers from a differently-sized previous world.
    """
    if not os.path.isdir(directory):
        return {}
    files: dict[int, list[str]] = {}
    for name in os.listdir(directory):
        parsed = parse_checkpoint_name(name)
        if parsed is None:
            continue
        step, file_world, file_rank = parsed
        if file_rank != rank:
            continue
        if world is not None and file_world is not None and file_world != world:
            continue
        files.setdefault(step, []).append(name)
    return files


def local_steps(
    directory: str, rank: int, world: int | None = None
) -> list[int]:
    """Steps for which this rank holds a (complete) checkpoint, sorted.

    ``world`` filters as in :func:`_rank_files`: ``None`` lists every file
    of this rank; an integer restricts to that world's stamp plus legacy
    unstamped names.
    """
    return sorted(_rank_files(directory, rank, world))


def latest_common_step(directory: str, comm) -> int | None:
    """The newest step checkpointed on *every* rank of ``comm``, or ``None``.

    Ranks save with no barrier, so a crash mid-cadence can leave the newest
    step on a subset of ranks; resuming from it would desynchronize the
    replicas.  Every rank allgathers its local step set and intersects the
    results identically, so all ranks agree without a designated root.
    Mismatched per-rank step sets are expected (the intersection handles
    them); files stamped for a world of a different size — stale leftovers
    from before an elastic shrink or grow — are excluded up front, since a
    step that was "common" at world p proves nothing at world p′.
    """
    mine = np.asarray(
        local_steps(directory, comm.rank, world=comm.size), dtype=np.int64
    )
    all_steps = comm.allgather(mine)
    common = set(all_steps[0].tolist())
    for steps in all_steps[1:]:
        common &= set(steps.tolist())
    return max(common) if common else None


def latest_complete_step(directory: str) -> tuple[int, int] | None:
    """Newest ``(step, world)`` for which a *complete* stamped set exists.

    A set is complete when every rank ``0..world-1`` of some stamped world
    has a final-name file for the step.  Only world-stamped files are
    considered: a legacy name does not say how many ranks wrote it, so it
    cannot prove completeness.  Ties on step prefer the larger world (more
    files had to survive, so the evidence is stronger).  This is the scan a
    restarted world of a *different* size uses to pick its resume point.
    """
    if not os.path.isdir(directory):
        return None
    ranks_seen: dict[tuple[int, int], set[int]] = {}
    for name in os.listdir(directory):
        parsed = parse_checkpoint_name(name)
        if parsed is None or parsed[1] is None:
            continue
        step, world, rank = parsed
        ranks_seen.setdefault((step, world), set()).add(rank)
    complete = [
        key for key, ranks in ranks_seen.items()
        if ranks >= set(range(key[1]))
    ]
    return max(complete) if complete else None


def _diverging_path(a: Any, b: Any, path: str) -> str | None:
    """First path where two state trees differ bitwise, or None."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if (
            not isinstance(a, np.ndarray)
            or not isinstance(b, np.ndarray)
            or a.dtype != b.dtype
            or a.shape != b.shape
            or a.tobytes() != b.tobytes()
        ):
            return path
        return None
    if type(a) is not type(b):
        return path
    if isinstance(a, dict):
        if set(a) != set(b):
            return path
        for k in a:
            hit = _diverging_path(a[k], b[k], f"{path}.{k}")
            if hit:
                return hit
        return None
    if isinstance(a, (list, tuple)):
        if len(a) != len(b):
            return path
        for i, (x, y) in enumerate(zip(a, b)):
            hit = _diverging_path(x, y, f"{path}[{i}]")
            if hit:
                return hit
        return None
    return None if a == b else path


def gather_global_state(directory: str, step: int, world: int) -> Any:
    """Canonical global state at ``step`` from a complete ``world``-rank set.

    Training state here is *replicated*: every rank checkpoints the same
    parameters, optimizer slots, and RNG position (data batches are drawn
    from a shared stream).  Re-sharding for a new world size is therefore
    "load one replica" — but a silent divergence between replicas would
    make the choice of replica load-bearing, so all ``world`` files are
    read and verified bitwise-identical first.  Raises ``ValueError``
    naming the first diverging leaf if the replicas disagree.
    """
    states = [load_state(directory, step, r, world) for r in range(world)]
    canonical = states[0]
    for rank in range(1, world):
        hit = _diverging_path(canonical, states[rank], "state")
        if hit is not None:
            raise ValueError(
                f"checkpoint replicas diverge at step {step} "
                f"(world {world}): rank 0 and rank {rank} disagree at "
                f"{hit}; refusing to re-shard ambiguous state"
            )
    return canonical


def prune(directory: str, rank: int, keep: int) -> list[int]:
    """Drop this rank's oldest checkpoints, keeping the newest ``keep``.

    ``keep=0`` means "keep none": every checkpoint of this rank is
    removed.  (Historically ``keep=0`` silently kept everything — the
    ``steps[:-0]`` empty-slice trap — and a negative ``keep`` deleted the
    *newest* files; both now behave as documented.)  Negative ``keep``
    raises ``ValueError``.  Returns the steps removed.  Stale temp files
    from interrupted saves are swept too.
    """
    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    files = _rank_files(directory, rank, world=None)
    steps = sorted(files)
    removed: list[int] = []
    for step in (steps if keep == 0 else steps[:-keep]):
        dropped = False
        for name in files[step]:
            try:
                os.unlink(os.path.join(directory, name))
                dropped = True
            except OSError:
                pass
        if dropped:
            removed.append(step)
    for name in os.listdir(directory):
        if name.startswith(".tmp-") and f".rank{rank}-" in name:
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:
                pass
    return removed
