"""Parallel execution strategy optimizer (paper §V-C).

Given a platform, a CNN, a total rank count, and a mini-batch size, find a
good assignment of distributions to layers:

1. **Candidates.**  For convolutional (and FC) layers we "heuristically
   select distributions that are load balanced and prefer cheaper
   partitioning methods (i.e. sample over spatial parallelism) when
   possible": all factorizations ``sample x height x width = P`` with
   near-square spatial factors, sample ways dividing the mini-batch, and
   spatial ways no larger than the layer's output extent.  Candidates that
   cannot fit in GPU memory (checked with the memory model, uniformly) are
   dropped.  Other layers inherit their parent's distribution.
2. **Line networks.**  Reduce to single-source shortest path: one vertex
   per (layer, candidate); an edge from ``(l_i, D_i)`` to ``(l_j, D_j)``
   weighted ``Cost_{D_i}(l_i) + Shuffle(D_i, D_j)``; source/sink as in the
   paper.  The graph is a DAG, solved in linear time.
3. **Branchy networks** (ResNets): find the most expensive source-to-sink
   path, optimize it as a line, fix those layers, and repeat with the next
   path that "contains as few of the already-used layers as possible"
   (already-fixed layers contribute zero weight to path selection, and act
   as fixed-constraint vertices during optimization) until every layer has
   a distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.nn.graph import NetworkSpec
from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.memory import MemoryModel
from repro.perfmodel.network_cost import NetworkCostModel
from repro.core.parallelism import LayerParallelism, ParallelStrategy

#: Layer kinds that choose their own distribution; the rest inherit.
DECISION_KINDS = ("conv", "fc")


def factorizations(p: int) -> list[tuple[int, int, int]]:
    """All (sample, height, width) with sample*height*width == p and the
    spatial part as square as possible for each (sample, ways) pair."""
    out = []
    for sample in range(1, p + 1):
        if p % sample:
            continue
        ways = p // sample
        h = w = 1
        best = (ways, 1)
        for cand_w in range(1, int(math.isqrt(ways)) + 1):
            if ways % cand_w == 0:
                best = (ways // cand_w, cand_w)
        h, w = best
        out.append((sample, h, w))
    return out


@dataclass
class OptimizationReport:
    """The chosen strategy plus the evidence behind it."""

    strategy: ParallelStrategy
    predicted_time: float
    candidates_considered: int
    paths_optimized: int

    def describe(self) -> str:
        return (
            f"predicted mini-batch time {self.predicted_time * 1e3:.2f} ms, "
            f"{self.candidates_considered} candidate distributions, "
            f"{self.paths_optimized} path(s) optimized"
        )


class StrategyOptimizer:
    """Performance-model-driven strategy search."""

    def __init__(
        self,
        spec: NetworkSpec,
        machine: MachineSpec,
        total_ranks: int,
        n_global: int,
        conv_model=None,
        check_memory: bool = True,
    ) -> None:
        self.spec = spec
        self.machine = machine
        self.total_ranks = total_ranks
        self.n_global = n_global
        self.cost_model = NetworkCostModel(spec, machine, conv_model=conv_model)
        self.memory = MemoryModel(spec, machine)
        self.check_memory = check_memory
        self.shapes = spec.infer_shapes()

    # -- candidate generation ----------------------------------------------------
    def candidates(self, name: str) -> list[LayerParallelism]:
        """Feasible distributions for one decision layer, cheapest-first."""
        layer = self.spec[name]
        c, h, w = self.shapes[name]
        cands = []
        for sample, gh, gw in factorizations(self.total_ranks):
            if sample > self.n_global:
                continue  # load balance: no empty sample shards
            if layer.kind == "fc" and (gh > 1 or gw > 1):
                continue  # FC layers are sample- or model-parallel only
            if gh > 1 and h < gh:
                continue
            if gw > 1 and w < gw:
                continue
            cands.append(LayerParallelism(sample=sample, height=gh, width=gw))
        # Prefer cheaper partitioning: sample parallelism first.
        cands.sort(key=lambda p: (p.spatial_ways, -p.sample))
        if not cands:
            # Degenerate layer (e.g. FC with batch < ranks): run it with the
            # sample-axis distribution; dimensions too small to split are
            # replicated by activation_dist, so execution stays correct.
            cands = [LayerParallelism(sample=self.total_ranks)]
        if self.check_memory:
            feasible = [
                p
                for p in cands
                if self.memory.fits(self.n_global, ParallelStrategy.uniform(p))
            ]
            if feasible:
                return feasible
        return cands

    # -- cost pieces --------------------------------------------------------------
    def _segment_layers(self, name: str) -> list[str]:
        """A decision layer plus its inherit-children up to the next
        decision layer (these are costed under the same distribution)."""
        out = [name]
        frontier = [name]
        while frontier:
            nxt = []
            for n in frontier:
                for child in self.spec.children_of(n):
                    if self.spec[child].kind not in DECISION_KINDS:
                        if child not in out:
                            out.append(child)
                            nxt.append(child)
            frontier = nxt
        return out

    def _layer_cost(self, name: str, par: LayerParallelism) -> float:
        strategy = ParallelStrategy.uniform(par)
        total = 0.0
        for seg_name in self._segment_layers(name):
            cost = self.cost_model.layer_cost(seg_name, self.n_global, strategy)
            if cost is not None:
                total += cost.fp_time() + cost.bp_time()
        return total

    def _shuffle_cost(self, parent: str, pa: LayerParallelism, pb: LayerParallelism) -> float:
        if pa.grid_shape == pb.grid_shape:
            return 0.0
        c, h, w = self.shapes[parent]
        nbytes = float(self.n_global) * c * h * w * self.machine.dtype_bytes
        return 2 * self.cost_model._shuffle_cost(nbytes, self.total_ranks)

    # -- path optimization ----------------------------------------------------------
    def _decision_graph(self) -> nx.DiGraph:
        """DAG over decision layers (+virtual source/sink)."""
        g = nx.DiGraph()
        decision = [layer.name for layer in self.spec if layer.kind in DECISION_KINDS]
        g.add_nodes_from(decision)

        def decision_ancestors(name: str) -> list[str]:
            seen, out, stack = set(), [], list(self.spec[name].parents)
            while stack:
                p = stack.pop()
                if p in seen:
                    continue
                seen.add(p)
                if self.spec[p].kind in DECISION_KINDS:
                    out.append(p)
                else:
                    stack.extend(self.spec[p].parents)
            return out

        for name in decision:
            for anc in decision_ancestors(name):
                g.add_edge(anc, name)
        heads = [n for n in decision if g.in_degree(n) == 0]
        tails = [n for n in decision if g.out_degree(n) == 0]
        g.add_node("__source__")
        g.add_node("__sink__")
        for name in heads:
            g.add_edge("__source__", name)
        for name in tails:
            g.add_edge(name, "__sink__")
        return g

    def _optimize_path(
        self,
        path: list[str],
        fixed: dict[str, LayerParallelism],
    ) -> dict[str, LayerParallelism]:
        """Shortest-path assignment along one line of decision layers."""
        g = nx.DiGraph()
        g.add_node(("src",))
        prev_nodes = [("src",)]
        cand_sets = []
        for name in path:
            cands = [fixed[name]] if name in fixed else self.candidates(name)
            if not cands:
                raise RuntimeError(
                    f"no feasible distribution for layer {name!r} with "
                    f"{self.total_ranks} ranks and N={self.n_global}"
                )
            cand_sets.append((name, cands))

        for i, (name, cands) in enumerate(cand_sets):
            nodes = []
            for j, par in enumerate(cands):
                node = (name, j)
                g.add_node(node, par=par)
                nodes.append(node)
                for prev in prev_nodes:
                    if prev == ("src",):
                        g.add_edge(prev, node, weight=0.0)
                    else:
                        prev_name = prev[0]
                        prev_par = g.nodes[prev]["par"]
                        w = self._layer_cost(prev_name, prev_par)
                        w += self._shuffle_cost(prev_name, prev_par, par)
                        g.add_edge(prev, node, weight=w)
            prev_nodes = nodes
        g.add_node(("sink",))
        for prev in prev_nodes:
            g.add_edge(
                prev, ("sink",), weight=self._layer_cost(prev[0], g.nodes[prev]["par"])
            )

        sp = nx.shortest_path(g, ("src",), ("sink",), weight="weight")
        return {node[0]: g.nodes[node]["par"] for node in sp[1:-1]}

    def optimize(self) -> OptimizationReport:
        """Run the full §V-C procedure; returns strategy + evidence."""
        dg = self._decision_graph()
        reference = LayerParallelism(sample=math.gcd(self.total_ranks, self.n_global))
        assigned: dict[str, LayerParallelism] = {}
        candidates_considered = 0
        paths = 0

        def edge_weight(u, v, _attrs) -> float:
            # Path "length" = cost of the head layer; already-assigned
            # layers count ~zero so new paths prefer unassigned layers.
            if v in ("__sink__",) or v in assigned:
                return 1e-12
            return max(self._layer_cost(v, reference), 1e-12)

        decision_layers = [layer.name for layer in self.spec if layer.kind in DECISION_KINDS]
        while any(n not in assigned for n in decision_layers):
            paths += 1
            longest = nx.dag_longest_path(
                nx.DiGraph(
                    (u, v, {"weight": edge_weight(u, v, d)})
                    for u, v, d in dg.edges(data=True)
                ),
                weight="weight",
            )
            path = [n for n in longest if n not in ("__source__", "__sink__")]
            new_on_path = [n for n in path if n not in assigned]
            if not new_on_path:
                # Degenerate: remaining layers are off every longest path;
                # assign them greedily with their cheapest candidate.
                for n in decision_layers:
                    if n not in assigned:
                        assigned[n] = self.candidates(n)[0]
                break
            for n in path:
                if n not in assigned:
                    candidates_considered += len(self.candidates(n))
            result = self._optimize_path(path, assigned)
            assigned.update(result)

        # Inherit: non-decision layers take their first parent's assignment;
        # inputs take their first child's (second pass, children come later).
        full: dict[str, LayerParallelism] = {}
        for layer in self.spec.topo_order():
            if layer.name in assigned:
                full[layer.name] = assigned[layer.name]
            elif layer.kind == "input":
                continue
            else:
                full[layer.name] = full[layer.parents[0]]
        for layer in self.spec.inputs():
            children = self.spec.children_of(layer.name)
            full[layer.name] = full[children[0]] if children else reference
        strategy = ParallelStrategy(full)
        predicted = self.cost_model.minibatch_time(self.n_global, strategy)

        # Final guard: the path objective omits network-level effects
        # (allreduce exposure, optimizer pass), so also evaluate the
        # feasible *uniform* strategies under the full model and keep the
        # best — the optimizer must never lose to a uniform choice.
        for sample, gh, gw in factorizations(self.total_ranks):
            if sample > self.n_global:
                continue
            par = LayerParallelism(sample=sample, height=gh, width=gw)
            uniform = ParallelStrategy.uniform(par)
            if self.check_memory and not self.memory.fits(self.n_global, uniform):
                continue
            try:
                t = self.cost_model.minibatch_time(self.n_global, uniform)
            except ValueError:
                continue
            if t < predicted:
                strategy, predicted = uniform, t

        return OptimizationReport(
            strategy=strategy,
            predicted_time=predicted,
            candidates_considered=candidates_considered,
            paths_optimized=paths,
        )


def plan_for_ranks(
    spec: NetworkSpec,
    machine: MachineSpec,
    nranks: int,
    n_global: int,
    **kwargs,
) -> OptimizationReport:
    """Plan a fresh strategy for a (possibly shrunk) world of ``nranks``.

    Elastic restarts may relaunch with fewer ranks than the run was
    originally planned for; the old strategy's factorizations no longer
    apply, so the optimizer is re-run from scratch against the surviving
    rank count.  Thin wrapper over :class:`StrategyOptimizer` so callers
    (the elastic runner, benchmarks) don't repeat the constructor spelling.
    """
    return StrategyOptimizer(spec, machine, nranks, n_global, **kwargs).optimize()
