"""Distributed pooling, batch norm, ReLU, add, GAP, FC, and loss layers.

"The extension to an entire CNN is relatively straightforward.  Each
convolutional layer can be parallelized as above.  Pooling layers are
parallelized similarly.  Element-wise operations such as ReLUs parallelize
trivially regardless of distribution." (§III-B)

Batch normalization offers the paper's design choice explicitly: purely
local statistics, statistics aggregated over the spatial group of each
sample ("a variant that aggregates over the spatial distribution of a
sample"), or fully global statistics (which exactly replicates single-device
training and is what the exactness tests use).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.buffers import BufferPool
from repro.nn import functional as F
from repro.tensor.dist_tensor import DistTensor
from repro.tensor.grid import ProcessGrid
from repro.tensor.halo import (
    ExchangePlan,
    any_region_remote,
    local_region,
    plan_region_exchange,
    start_region_exchange,
)
from repro.tensor.indexing import ceil_div
from repro.core.dist_conv import _frame_pieces, _fwd_region_builder
from repro.core.parallelism import activation_dist


def _pair(v) -> tuple[int, int]:
    if isinstance(v, (tuple, list)):
        return int(v[0]), int(v[1])
    return int(v), int(v)


@dataclass(frozen=True)
class _PoolGeometry:
    """Static forward geometry of one pooling layer, cached across steps
    (same discipline as :class:`~repro.core.dist_conv._ConvGeometry`)."""

    y_dist: object
    y_shape: tuple[int, ...]
    bounds: tuple            # this rank's output bounds
    lo: tuple[int, ...]      # gathered dependency region, inclusive start
    hi: tuple[int, ...]      # gathered dependency region, exclusive end
    exchanged: bool          # does any rank need remote data?
    pieces: tuple            # ((rows, cols, is_interior), ...) decomposition
    plan: ExchangePlan | None


class DistPool2d:
    """Distributed max/average pooling.

    Forward gathers the same dependency region as convolution; backward
    computes gradients on the extended region and *scatter-adds* them back
    to their owners (windows straddling a partition boundary contribute to
    a neighbor's cells — the reverse halo exchange).

    With ``overlap_halo`` (the default), forward drives the gather through
    the nonblocking :class:`~repro.tensor.halo.RegionExchange` (plan cached
    per layer) and decomposes the output into interior windows — those
    reading only locally owned input (or virtual padding) — computed while
    the halo strips travel, plus boundary strips completed after assembly.
    Pooling windows are reduced per output element, so the piecewise
    kernels are bitwise identical to the fused synchronous kernel; only the
    communication discipline differs.  The backward scatter-add is
    nonblocking too (:meth:`~repro.tensor.dist_tensor.DistTensor.
    start_scatter_region_add`, routing plan cached per layer like the
    forward exchange plan): the contribution all-to-all is launched first
    and the rank's own contribution — the bulk of the error signal —
    accumulates while the boundary strips travel; remote contributions
    fold in on finish.  Both scatter paths share one documented
    accumulation order (own first, then ascending comm rank), so
    ``overlap_halo`` on/off stays bitwise identical here as well.
    """

    def __init__(
        self,
        grid: ProcessGrid,
        mode: str,
        kernel,
        stride=None,
        pad=0,
        overlap_halo: bool = True,
    ) -> None:
        if mode not in ("max", "avg"):
            raise ValueError(f"unknown pooling mode {mode!r}")
        self.grid = grid
        self.mode = mode
        self.kernel = _pair(kernel)
        self.stride = _pair(stride if stride is not None else kernel)
        self.pad = _pair(pad)
        self.overlap_halo = bool(overlap_halo)
        self._cache: dict = {}
        # Recycles the gathered extended region and the alltoall payloads
        # (gather replies, scatter-add contributions) across steps.
        self._pool = BufferPool()
        self._geom: dict = {}
        # Backward scatter-add routing plans, cached per input layout (the
        # gradient DistTensor is rebuilt every backward, so the plan lives
        # on the layer, keyed like the forward geometry).
        self._scatter_plans: dict = {}

    def output_global_shape(self, x_shape: tuple[int, ...]) -> tuple[int, ...]:
        n, c, h, w = x_shape
        oh, ow = F.conv2d_output_shape((h, w), self.kernel, self.stride, self.pad)
        return (n, c, oh, ow)

    def _interior(self, x: DistTensor, yb) -> tuple:
        """Output rows/cols whose windows need only locally owned input
        (windows past the global edge read virtual padding — local
        knowledge, so global-boundary ranks keep a full interior)."""
        xb = x.dist.local_bounds(x.global_shape, self.grid.coords)
        spans = []
        for axis, k, s, p in (
            (2, self.kernel[0], self.stride[0], self.pad[0]),
            (3, self.kernel[1], self.stride[1], self.pad[1]),
        ):
            b_lo, b_hi = xb[axis]
            o_lo, o_hi = yb[axis]
            extent = x.global_shape[axis]
            lo = o_lo if b_lo == 0 else max(o_lo, ceil_div(b_lo + p, s))
            hi = o_hi if b_hi == extent else min(o_hi, (b_hi + p - k) // s + 1)
            spans.append((lo, hi))
        return tuple(spans)

    def _fwd_geom(self, x: DistTensor) -> _PoolGeometry:
        key = (x.global_shape, x.dist)
        geom = self._geom.get(key)
        if geom is not None:
            return geom
        y_shape = self.output_global_shape(x.global_shape)
        y_dist = activation_dist(self.grid.shape, y_shape)
        for d in (2, 3):
            if x.dist.is_split(d) and not y_dist.is_split(d):
                raise ValueError(
                    "pooling output too small for the spatial decomposition "
                    f"(axis {d}: {y_shape[d]} rows over {self.grid.shape[d]} "
                    "parts); assign this layer a smaller spatial parallelism"
                )
        yb = y_dist.local_bounds(y_shape, self.grid.coords)
        # Same dependency-region algebra as convolution; pooling keeps its
        # channel block, so the dim-1 slot comes from the output bounds.
        region_of = _fwd_region_builder(
            self.kernel, self.stride, self.pad, y_dist, y_shape,
            lambda coords: y_dist.local_bounds(y_shape, coords)[1],
        )
        regions = [
            region_of(self.grid.coords_of(r)) for r in range(self.grid.comm.size)
        ]
        lo, hi = regions[self.grid.comm.rank]
        exchanged = any_region_remote(x, regions)
        pieces: tuple = ()
        plan = None
        if exchanged and self.overlap_halo:
            # The decomposition and exchange schedule only serve the
            # overlapped path; the synchronous mode runs one fused kernel
            # after a blocking gather and never reads them.
            inner_h, inner_w = self._interior(x, yb)
            pieces = tuple(_frame_pieces(yb[2], yb[3], inner_h, inner_w))
            plan = plan_region_exchange(x, lo, hi, regions)
        geom = _PoolGeometry(y_dist, y_shape, yb, lo, hi, exchanged, pieces, plan)
        self._geom[key] = geom
        return geom

    def _pool_piece(
        self, x_ext, yb, rows, cols, y_local, argmax
    ) -> None:
        """Pool one output sub-rectangle from its slice of ``x_ext``.

        Window reductions are per output element, so piecewise evaluation
        is bitwise identical to the fused kernel."""
        (a, b), (c, d) = rows, cols
        kh, kw = self.kernel
        sh, sw = self.stride
        _, _, (oh_lo, _), (ow_lo, _) = yb
        hs = (a - oh_lo) * sh
        ws = (c - ow_lo) * sw
        xs = x_ext[
            :, :, hs : hs + (b - a - 1) * sh + kh, ws : ws + (d - c - 1) * sw + kw
        ]
        dst = (slice(None), slice(None), slice(a - oh_lo, b - oh_lo), slice(c - ow_lo, d - ow_lo))
        if self.mode == "max":
            y_piece, a_piece = F.maxpool2d_forward(xs, self.kernel, self.stride, 0)
            y_local[dst] = y_piece
            argmax[dst] = a_piece  # in-window flat indices: offset-free
        else:
            y_local[dst] = F.avgpool2d_forward(xs, self.kernel, self.stride, 0)

    def forward(self, x: DistTensor) -> DistTensor:
        g = self._fwd_geom(x)
        yb = g.bounds
        # Max pooling must not let virtual padding win: fill with -inf-like.
        fill = -np.inf if self.mode == "max" else 0.0

        if not g.exchanged:
            # No rank needs remote data: materialize locally (overlap mode,
            # zero communication) or via the historical blocking gather.
            if self.overlap_halo:
                x_ext = local_region(x, g.lo, g.hi, fill=fill, pool=self._pool)
            else:
                x_ext = x.gather_region(g.lo, g.hi, fill=fill, pool=self._pool)
            if self.mode == "max":
                y_local, argmax = F.maxpool2d_forward(x_ext, self.kernel, self.stride, 0)
                self._cache = {"argmax": argmax}
            else:
                y_local = F.avgpool2d_forward(x_ext, self.kernel, self.stride, 0)
                self._cache = {}
        elif self.overlap_halo:
            (n_lo, n_hi), (c_lo, c_hi), (oh_lo, oh_hi), (ow_lo, ow_hi) = yb
            y_local = np.empty(
                (n_hi - n_lo, c_hi - c_lo, oh_hi - oh_lo, ow_hi - ow_lo),
                dtype=x.dtype,
            )
            argmax = (
                np.empty(y_local.shape, dtype=np.int64)
                if self.mode == "max"
                else None
            )
            ex = start_region_exchange(
                x, g.lo, g.hi, fill=fill, pool=self._pool, plan=g.plan
            )
            x_ext = ex.out
            for rows, cols, interior in g.pieces:
                if interior:
                    self._pool_piece(x_ext, yb, rows, cols, y_local, argmax)
            ex.finish()
            for rows, cols, interior in g.pieces:
                if not interior:
                    self._pool_piece(x_ext, yb, rows, cols, y_local, argmax)
            self._cache = {"argmax": argmax} if self.mode == "max" else {}
        else:
            x_ext = x.gather_region(g.lo, g.hi, fill=fill, pool=self._pool)
            if self.mode == "max":
                y_local, argmax = F.maxpool2d_forward(x_ext, self.kernel, self.stride, 0)
                self._cache = {"argmax": argmax}
            else:
                y_local = F.avgpool2d_forward(x_ext, self.kernel, self.stride, 0)
                self._cache = {}
        self._cache.update(
            {"region_lo": g.lo, "x_ext_shape": x_ext.shape, "x": x}
        )
        self._pool.give(x_ext)  # backward needs only its shape (and argmax)
        return DistTensor(self.grid, g.y_dist, g.y_shape, y_local)

    def backward(self, dy: DistTensor) -> DistTensor:
        cache = self._cache
        if not cache:
            raise RuntimeError("backward() before forward()")
        if self.mode == "max":
            dx_ext = F.maxpool2d_backward(
                dy.local, cache["argmax"], cache["x_ext_shape"],
                self.kernel, self.stride, 0,
            )
        else:
            dx_ext = F.avgpool2d_backward(
                dy.local, cache["x_ext_shape"], self.kernel, self.stride, 0
            )
        x: DistTensor = cache["x"]
        dx = DistTensor.zeros(x.grid, x.dist, x.global_shape, dtype=dy.dtype)
        key = (x.global_shape, x.dist)
        plan = self._scatter_plans.get(key)
        if plan is None:
            plan = dx.scatter_add_plan(cache["region_lo"], dx_ext.shape)
            self._scatter_plans[key] = plan
        if self.overlap_halo:
            # Launch the contribution all-to-all, accumulate our own
            # contribution while the boundary strips travel, fold in the
            # remote ones on finish — same documented order as blocking.
            ex = dx.start_scatter_region_add(
                dx_ext, cache["region_lo"], pool=self._pool, plan=plan
            )
            ex.finish()
        else:
            dx.scatter_region_add(
                dx_ext, cache["region_lo"], pool=self._pool, plan=plan
            )
        # Replicated output dims mean every replica scattered identical
        # contributions into disjoint replica groups — already consistent.
        return dx


class DistBatchNorm:
    """Distributed batch normalization with selectable aggregation (§III-B).

    * ``aggregate='local'``  — statistics over the local shard only ("batch
      normalization is typically computed locally on each processor");
    * ``aggregate='spatial'`` — allreduce statistics over the spatial group,
      so each sample group normalizes over complete samples;
    * ``aggregate='global'`` — allreduce over every rank holding distinct
      data: statistics over the full mini-batch, exactly replicating
      single-device batch norm.
    """

    AGGREGATES = ("local", "spatial", "global")

    def __init__(
        self,
        grid: ProcessGrid,
        gamma: np.ndarray,
        beta: np.ndarray,
        aggregate: str = "global",
        eps: float = 1e-5,
        momentum: float = 0.9,
    ) -> None:
        if aggregate not in self.AGGREGATES:
            raise ValueError(
                f"aggregate must be one of {self.AGGREGATES}, got {aggregate!r}"
            )
        self.grid = grid
        self.gamma = gamma
        self.beta = beta
        self.aggregate = aggregate
        self.eps = eps
        self.momentum = momentum
        self.running_mean = np.zeros_like(gamma)
        self.running_var = np.ones_like(gamma)
        self._cache: dict = {}

    def _stats_comm(self, dist):
        """Communicator over which statistics are aggregated."""
        if self.aggregate == "local":
            return None
        if self.aggregate == "spatial":
            axes = [d for d in (2, 3) if dist.is_split(d)]
        else:  # global: every axis along which data is partitioned
            axes = [d for d in (0, 2, 3) if dist.is_split(d)]
        if not axes:
            return None
        return self.grid.axes_comm(axes)

    def forward(self, x: DistTensor, training: bool = True) -> DistTensor:
        if not training:
            y_local, bn_cache = F.batchnorm_forward(
                x.local, self.gamma, self.beta, eps=self.eps,
                mean=self.running_mean, var=self.running_var,
            )
            self._cache = {"bn": bn_cache, "count": 1.0, "dist": x.dist}
            return DistTensor(self.grid, x.dist, x.global_shape, y_local)
        s, ss, count = F.batchnorm_stats(x.local)
        comm = self._stats_comm(x.dist)
        if comm is not None:
            s = comm.allreduce(s)
            ss = comm.allreduce(ss)
            count = comm.allreduce(count)
        mean = s / count
        var = ss / count - mean**2
        mom = self.momentum
        self.running_mean = mom * self.running_mean + (1 - mom) * mean
        self.running_var = mom * self.running_var + (1 - mom) * var
        y_local, bn_cache = F.batchnorm_forward(
            x.local, self.gamma, self.beta, eps=self.eps, mean=mean, var=var
        )
        self._cache = {"bn": bn_cache, "count": count, "dist": x.dist}
        return DistTensor(self.grid, x.dist, x.global_shape, y_local)

    def backward(
        self, dy: DistTensor
    ) -> tuple[DistTensor, np.ndarray, np.ndarray]:
        """Returns ``(dx, dgamma_partial, dbeta_partial)``; the partials
        still need the layer-gradient allreduce (like conv's ``dw``)."""
        cache = self._cache
        if not cache:
            raise RuntimeError("backward() before forward()")
        local_dgamma = (dy.local * cache["bn"]["xhat"]).sum(axis=(0, 2, 3))
        local_dbeta = dy.local.sum(axis=(0, 2, 3))
        dg, db = local_dgamma, local_dbeta
        comm = self._stats_comm(cache["dist"])
        if comm is not None:
            dg = comm.allreduce(dg)
            db = comm.allreduce(db)
        dx_local, _, _ = F.batchnorm_backward(
            dy.local, cache["bn"], stat_sums=(dg, db, cache["count"])
        )
        dx = DistTensor(self.grid, dy.dist, dy.global_shape, dx_local)
        return dx, local_dgamma, local_dbeta


class DistReLU:
    """Element-wise, so 'parallelizes trivially regardless of distribution'."""

    def __init__(self, grid: ProcessGrid) -> None:
        self.grid = grid
        self._mask: np.ndarray | None = None

    def forward(self, x: DistTensor) -> DistTensor:
        y_local, self._mask = F.relu_forward(x.local)
        return DistTensor(self.grid, x.dist, x.global_shape, y_local)

    def backward(self, dy: DistTensor) -> DistTensor:
        if self._mask is None:
            raise RuntimeError("backward() before forward()")
        return DistTensor(
            self.grid, dy.dist, dy.global_shape, F.relu_backward(dy.local, self._mask)
        )


class DistAdd:
    """Element-wise sum of identically distributed parents (residual join)."""

    def __init__(self, grid: ProcessGrid) -> None:
        self.grid = grid

    def forward(self, *xs: DistTensor) -> DistTensor:
        first = xs[0]
        for x in xs[1:]:
            if x.dist != first.dist or x.global_shape != first.global_shape:
                raise ValueError("DistAdd parents must share shape and distribution")
        out = first.local.copy()
        for x in xs[1:]:
            out += x.local
        return DistTensor(self.grid, first.dist, first.global_shape, out)

    def backward(self, dy: DistTensor, nparents: int) -> list[DistTensor]:
        return [dy for _ in range(nparents)]


class DistGlobalAvgPool:
    """Global average pooling: local spatial sums + allreduce over the
    spatial group; the (N, C, 1, 1) output is replicated over the spatial
    axes so no rank holds an empty shard."""

    def __init__(self, grid: ProcessGrid) -> None:
        self.grid = grid
        self._cache: dict = {}

    def forward(self, x: DistTensor) -> DistTensor:
        n, c, h, w = x.global_shape
        local_sum = x.local.sum(axis=(2, 3))
        axes = [d for d in (2, 3) if x.dist.is_split(d)]
        if axes:
            comm = self.grid.axes_comm(axes)
            local_sum = comm.allreduce(local_sum)
        y_local = (local_sum / (h * w))[:, :, None, None]
        y_shape = (n, c, 1, 1)
        y_dist = activation_dist(self.grid.shape, y_shape)
        self._cache = {"x": x}
        return DistTensor(self.grid, y_dist, y_shape, y_local)

    def backward(self, dy: DistTensor) -> DistTensor:
        x: DistTensor = self._cache["x"]
        n, c, h, w = x.global_shape
        # d/dx of the mean spreads dy/(H*W) uniformly; every spatial replica
        # of dy is identical, so each rank fills its own block directly.
        grad = dy.local[:, :, 0, 0][:, :, None, None] / (h * w)
        dx_local = np.broadcast_to(grad, x.local.shape).copy()
        return DistTensor(self.grid, x.dist, x.global_shape, dx_local)


class DistFC:
    """Sample-parallel fully connected layer (weights replicated).

    The paper's *model-parallel* FC (Elemental-style distributed GEMM) is
    equivalent to a filter-parallel 1x1 convolution, provided by
    :mod:`repro.core.channel_filter`; cost-wise it is modeled in
    :mod:`repro.perfmodel`.  Here activations must not be spatially split
    (shuffle to a sample-only distribution first, as LBANN does before FC
    layers).
    """

    def __init__(
        self, grid: ProcessGrid, weights: np.ndarray, bias: np.ndarray | None
    ) -> None:
        self.grid = grid
        self.w = weights
        self.bias = bias
        self._cache: dict = {}

    def forward(self, x: DistTensor) -> DistTensor:
        if any(x.dist.is_split(d) for d in (1, 2, 3)):
            raise ValueError(
                "DistFC requires sample-only input distribution; shuffle first"
            )
        flat = x.local.reshape(x.local.shape[0], -1)
        y_local = F.linear_forward(flat, self.w, self.bias)[:, :, None, None]
        n = x.global_shape[0]
        y_shape = (n, self.w.shape[0], 1, 1)
        y_dist = activation_dist(self.grid.shape, y_shape)
        self._cache = {"flat": flat, "x": x}
        return DistTensor(self.grid, y_dist, y_shape, y_local)

    def backward(
        self, dy: DistTensor
    ) -> tuple[DistTensor, np.ndarray, np.ndarray | None]:
        flat = self._cache["flat"]
        x: DistTensor = self._cache["x"]
        dflat, dw, db = F.linear_backward(flat, self.w, dy.local[:, :, 0, 0])
        dx = DistTensor(
            self.grid, x.dist, x.global_shape, dflat.reshape(x.local.shape)
        )
        return dx, dw, (db if self.bias is not None else None)


class DistSoftmaxCrossEntropy:
    """Mean softmax cross-entropy over the global mini-batch.

    Each rank evaluates its local samples against its slice of the labels;
    the scalar loss is completed with an allreduce over the sample axis.
    """

    def __init__(self, grid: ProcessGrid) -> None:
        self.grid = grid
        self._cache: dict = {}

    def forward_loss(self, logits: DistTensor, labels: np.ndarray) -> float:
        n_global = logits.global_shape[0]
        (n_lo, n_hi) = logits.bounds[0]
        local_labels = labels[n_lo:n_hi]
        flat = logits.local.reshape(logits.local.shape[0], -1)
        if flat.shape[0] > 0:
            local_loss_sum, dlogits = F.softmax_cross_entropy(flat, local_labels)
            local_loss_sum *= flat.shape[0]
            dlogits = dlogits * flat.shape[0] / n_global
        else:  # pragma: no cover - empty shard edge case
            local_loss_sum, dlogits = 0.0, np.zeros_like(flat)
        # Sum each sample's loss exactly once: reduce over the sample axis.
        axes = [d for d in (0,) if logits.dist.is_split(d)]
        total = local_loss_sum
        if axes:
            total = self.grid.axes_comm(axes).allreduce(local_loss_sum)
        self._cache = {
            "dlogits": dlogits.reshape(logits.local.shape),
            "logits": logits,
        }
        return float(total) / n_global

    def backward(self) -> DistTensor:
        logits: DistTensor = self._cache["logits"]
        return DistTensor(
            self.grid, logits.dist, logits.global_shape, self._cache["dlogits"]
        )


class DistBCEWithLogits:
    """Per-pixel binary cross-entropy (the mesh-tangling loss).

    Targets are supplied globally; each rank slices its block.  The mean is
    completed by an allreduce over all split axes.
    """

    def __init__(self, grid: ProcessGrid) -> None:
        self.grid = grid
        self._cache: dict = {}

    def forward_loss(self, logits: DistTensor, targets: np.ndarray) -> float:
        b = logits.bounds
        t_local = targets[
            b[0][0] : b[0][1], b[1][0] : b[1][1], b[2][0] : b[2][1], b[3][0] : b[3][1]
        ]
        count_global = float(np.prod(logits.global_shape))
        if logits.local.size:
            local_loss, dlogits = F.sigmoid_bce_with_logits(logits.local, t_local)
            local_sum = local_loss * logits.local.size
            dlogits = dlogits * logits.local.size / count_global
        else:  # pragma: no cover
            local_sum, dlogits = 0.0, np.zeros_like(logits.local)
        axes = [d for d in range(4) if logits.dist.is_split(d)]
        total = local_sum
        if axes:
            total = self.grid.axes_comm(axes).allreduce(local_sum)
        self._cache = {"dlogits": dlogits, "logits": logits}
        return float(total) / count_global

    def backward(self) -> DistTensor:
        logits: DistTensor = self._cache["logits"]
        return DistTensor(
            self.grid, logits.dist, logits.global_shape, self._cache["dlogits"]
        )
