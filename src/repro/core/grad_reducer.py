"""Overlapped, bucketed dL/dw allreduce (paper §IV's communication hiding).

The paper starts each layer's weight-gradient allreduce "as soon as its
filter convolution finishes" and lets it proceed concurrently with the
remaining backpropagation, draining everything before the optimizer step.
:class:`BucketedGradReducer` implements that discipline over the
nonblocking :meth:`~repro.comm.communicator.Communicator.iallreduce`:

* as each layer's partials become ready, they are appended to the bucket of
  their *gradient group* (the sub-communicator over the grid axes along
  which the layer's output is partitioned — different layers may reduce
  over different groups);
* when a bucket exceeds ``bucket_bytes`` it is flushed: the member arrays
  are flattened into one contiguous buffer and a single ``iallreduce`` is
  launched, amortizing per-collective latency over many small tensors
  (exactly NCCL/Horovod-style gradient bucketing);
* :meth:`drain` flushes the remainders, waits for every in-flight request,
  and scatters the reduced buffers back into per-layer gradient dicts.

``algorithm`` selects how each bucket moves on the wire (the
:meth:`~repro.comm.communicator.Communicator.iallreduce` knob): the
default ``"auto"`` picks the model-driven schedule — ring / Rabenseifner
buckets cost ``2n(p-1)/p`` bytes per rank instead of the deposit-combine
path's ``n(p-1)`` — and ``"direct"`` pins the legacy bitwise-reference
exchange.

Bitwise stability (``algorithm="direct"``): a direct allreduce combines
contributions element-wise in comm-rank order, so concatenating tensors
into one buffer performs the *identical* floating-point additions as
reducing them one by one — the overlapped path reproduces the blocking
path exactly, which ``tests/test_overlap_reducer.py`` verifies on whole
training runs.  Scheduled algorithms chunk the bucket, so their reduction
order (still deterministic across runs and backends) depends on the
bucketing: overlapped-vs-blocking and ``"auto"``-vs-``"direct"`` then
match to floating-point allclose rather than bitwise.

All ranks of a group traverse layers in the same (reverse topological)
order, so buckets fill and flush at identical points everywhere and the
iallreduce sequence numbers line up — the same invariant MPI imposes on
collective call order.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.comm.communicator import Communicator, Request
from repro.obs import tracer as _trace

#: Default bucket size.  Gradients smaller than this are coalesced; a single
#: tensor larger than this still goes out as one (unsplit) allreduce.
DEFAULT_BUCKET_BYTES = 1 << 18


class _Bucket:
    __slots__ = ("comm", "entries", "arrays", "nbytes")

    def __init__(self, comm: Communicator) -> None:
        self.comm = comm
        #: (layer, param, shape, size) in deposit order.
        self.entries: list[tuple[str, str, tuple[int, ...], int]] = []
        self.arrays: list[np.ndarray] = []
        self.nbytes = 0


class BucketedGradReducer:
    """Launches bucketed nonblocking gradient allreduces; drains on demand."""

    def __init__(
        self,
        bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        algorithm: str | None = None,
        segment_bytes: int | str | None = None,
    ) -> None:
        if bucket_bytes < 1:
            raise ValueError(f"bucket_bytes must be >= 1, got {bucket_bytes}")
        self.bucket_bytes = bucket_bytes
        #: Collective algorithm for the bucket allreduces (None == "auto").
        self.algorithm = algorithm
        #: Segment size for the bucket allreduces (the
        #: :meth:`~repro.comm.communicator.Communicator.iallreduce` knob):
        #: segmented buckets progress one pipeline segment per ``poll``
        #: probe instead of one whole schedule chunk, so the optimizer can
        #: start on early-finishing buckets while later segments are still
        #: on the wire.
        self.segment_bytes = segment_bytes
        self._buckets: dict[Any, _Bucket] = {}
        self._inflight: list[tuple[Request, _Bucket]] = []
        self._done: dict[str, dict[str, np.ndarray]] = {}

    # -- producing side ------------------------------------------------------
    def add(
        self,
        layer: str,
        partials: dict[str, np.ndarray],
        comm: Communicator | None,
    ) -> None:
        """Queue a layer's gradient partials for reduction over ``comm``.

        ``comm=None`` (or a singleton group) means the partials are already
        complete — they pass straight through to the output.
        """
        if comm is None or comm.size == 1:
            self._done[layer] = dict(partials)
            return
        bucket = self._buckets.get(comm._key)
        if bucket is None:
            bucket = _Bucket(comm)
            self._buckets[comm._key] = bucket
        for pname, arr in partials.items():
            bucket.entries.append((layer, pname, arr.shape, arr.size))
            bucket.arrays.append(arr)
            bucket.nbytes += arr.nbytes
        if bucket.nbytes >= self.bucket_bytes:
            self._flush(comm._key)

    def _flush(self, key: Any) -> None:
        bucket = self._buckets.pop(key)
        if not bucket.arrays:
            return
        if len(bucket.arrays) == 1:
            flat = bucket.arrays[0].ravel()  # view when contiguous: zero-copy
        else:
            flat = np.concatenate([a.ravel() for a in bucket.arrays])
        bucket.arrays = []
        self._inflight.append(
            (
                bucket.comm.iallreduce(
                    flat,
                    algorithm=self.algorithm,
                    segment_bytes=self.segment_bytes,
                ),
                bucket,
            )
        )

    # -- draining side -------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Number of launched, not-yet-drained allreduces."""
        return len(self._inflight)

    def _scatter(self, bucket: _Bucket, flat: np.ndarray) -> list[str]:
        """Split a reduced bucket back into per-layer grads in ``_done``.

        Returns the layers the bucket contributed to, in deposit order.
        """
        layers: list[str] = []
        offset = 0
        for layer, pname, shape, size in bucket.entries:
            self._done.setdefault(layer, {})[pname] = flat[
                offset : offset + size
            ].reshape(shape)
            offset += size
            if not layers or layers[-1] != layer:
                layers.append(layer)
        return layers

    def poll(self) -> dict[str, dict[str, np.ndarray]]:
        """Probe in-flight buckets; return the layers that just completed.

        Each call ``test()``s every outstanding request (driving one more
        pipeline segment of each segmented schedule), scatters any bucket
        that finished, and returns ``{layer: {param: grad}}`` for the
        layers whose gradients became complete on *this* probe — the hook
        the trainer uses to hand the optimizer partially-drained buckets
        while later segments are still on the wire.  Completed grads also
        stay in :attr:`_done` for the final :meth:`drain`, so a caller may
        ignore ``poll`` results entirely: ``drain`` still returns every
        layer, and applying updates per ``poll`` batch or all at once is
        numerically identical (each layer's gradient is complete when
        returned).  Pending (unflushed) buckets are not launched — only
        already-launched requests make progress.
        """
        fresh: dict[str, dict[str, np.ndarray]] = {}
        still: list[tuple[Request, _Bucket]] = []
        for request, bucket in self._inflight:
            if request.test():
                for layer in self._scatter(bucket, request.wait()):
                    fresh[layer] = self._done[layer]
            else:
                still.append((request, bucket))
        self._inflight = still
        return fresh

    def drain(self) -> dict[str, dict[str, np.ndarray]]:
        """Flush pending buckets, wait for all requests, return the grads.

        Includes every layer already completed by earlier :meth:`poll`
        calls — ``drain`` is always the complete picture.
        """
        with _trace.span(
            "grad.drain", cat="train",
            pending=len(self._buckets), inflight=len(self._inflight),
        ):
            for key in list(self._buckets):
                self._flush(key)
            for request, bucket in self._inflight:
                self._scatter(bucket, request.wait())
        self._inflight.clear()
        out = self._done
        self._done = {}
        return out
