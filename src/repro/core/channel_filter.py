"""Channel- and filter-parallel convolution (paper §III-D).

The paper sketches these decompositions and defers implementation ("we
leave implementation to future work"); this module implements them as an
extension, following the sketch:

* **Channel parallelism** — the input's C dimension is partitioned (grid
  axis 1).  Each rank holds the weight slice ``w[:, c_lo:c_hi]`` and
  computes a *partial* output (the summation over channels in Eq. 1 "may
  involve a global reduce"); an allreduce over the channel group completes
  ``y``, which is then replicated across the group.  Backward-data and
  backward-filter are purely local in the channel dimension.
* **Filter parallelism** — the F dimension is partitioned.  Each rank
  holds ``w[f_lo:f_hi]`` and computes its slice of ``y`` locally; the
  summation over filters in Eq. 3 requires an allreduce over the filter
  group to complete ``dL/dx``.

As the paper notes, the two compose naturally: a filter-parallel layer
produces ``y`` partitioned on F, which is exactly a C-partitioned input for
a channel-parallel successor — no redistribution needed.

Both compose with spatial partitioning: the spatial halo machinery operates
on the channel-sliced tensors unchanged.  With ``overlap_halo`` (the
default) the input/error-signal region gathers are driven through the
nonblocking :class:`~repro.tensor.halo.RegionExchange` — eager ``isend``
strips plus posted ``irecv``s from a plan cached per layer and direction —
instead of the historical blocking ``gather_region`` (two rendezvous
barriers per gather).  The convolution kernels themselves stay fused, so
the nonblocking path is bitwise identical to the blocking one; when no
rank's region reaches off-shard, the exchange degenerates to a purely
local materialization with zero communication.
"""

from __future__ import annotations

import numpy as np

from repro.comm.buffers import BufferPool
from repro.nn import functional as F
from repro.tensor.dist_tensor import DistTensor
from repro.tensor.distribution import DimKind, Distribution
from repro.tensor.grid import ProcessGrid
from repro.tensor.halo import (
    any_region_remote,
    local_region,
    plan_region_exchange,
    start_region_exchange,
)
from repro.tensor.indexing import block_bounds
from repro.core.dist_conv import (
    _bwd_region_builder,
    _floor_div,
    _fwd_region_builder,
    _pair,
)


def _gather_planned(
    dt: DistTensor,
    grid: ProcessGrid,
    cache: dict,
    key,
    region_of_coords,
    pool,
    overlap: bool,
) -> np.ndarray:
    """Gather this rank's dependency region for a conv layer.

    With ``overlap`` (the layers' default) the gather runs through a cached
    nonblocking exchange plan; ``region_of_coords(coords)`` must yield any
    rank's ``(lo, hi)`` region from shared layer geometry — which is what
    lets every rank mirror the send side of the exchange without a request
    round-trip.  The schedule (and the no-communication fast path decision)
    is computed once per ``key`` and reused every step.  With ``overlap``
    off, the historical blocking collective ``gather_region`` runs instead.
    """
    if not overlap:
        lo, hi = region_of_coords(grid.coords)
        return dt.gather_region(lo, hi, pool=pool)
    entry = cache.get(key)
    if entry is None:
        regions = [
            region_of_coords(grid.coords_of(r)) for r in range(grid.comm.size)
        ]
        lo, hi = regions[grid.comm.rank]
        exchanged = any_region_remote(dt, regions)
        plan = plan_region_exchange(dt, lo, hi, regions) if exchanged else None
        entry = cache[key] = (lo, hi, exchanged, plan)
    lo, hi, exchanged, plan = entry
    if not exchanged:
        return local_region(dt, lo, hi, pool=pool)
    return start_region_exchange(dt, lo, hi, pool=pool, plan=plan).finish()


def _channel_replicated_dist(grid_shape, shape) -> Distribution:
    """Activation distribution with dim 1 replicated across grid axis 1."""
    kinds = [
        DimKind.BLOCK if int(n) >= g else DimKind.REPLICATED
        for n, g in zip(shape, grid_shape)
    ]
    kinds[1] = DimKind.REPLICATED
    return Distribution(tuple(int(g) for g in grid_shape), tuple(kinds))


class ChannelParallelConv2d:
    """Convolution with the input-channel dimension partitioned (grid axis 1).

    Expects ``x`` block-distributed on C; produces ``y`` with F *replicated*
    across the channel group (completed by the allreduce).  Weight
    gradients cover only the local channel slice; their reduction group is
    the sample x spatial axes (each channel shard is unique).

    With ``overlap_allreduce`` (the default) the partial-sum completion is
    pipelined: the local convolution runs piecewise over up to
    ``allreduce_blocks`` filter blocks, launching each block's channel
    ``iallreduce`` as soon as its partial sums exist — so block ``k``'s
    reduction travels while block ``k+1``'s convolution computes (filter
    outputs are independent, so the piecewise kernels are bitwise
    identical to the fused one).  Each block's allreduce still combines
    contributions exactly like the blocking call on the same payload;
    only algorithms that chunk by payload size may pick different
    schedule boundaries for the smaller blocks, where results match to
    floating-point allclose instead of bitwise.
    """

    def __init__(
        self,
        grid: ProcessGrid,
        weights: np.ndarray,
        stride=1,
        pad=0,
        overlap_halo: bool = True,
        overlap_allreduce: bool = True,
        allreduce_blocks: int = 4,
    ) -> None:
        if grid.ndim != 4 or grid.shape[1] < 2:
            raise ValueError("ChannelParallelConv2d needs a 4D grid with axis 1 > 1")
        self.grid = grid
        self.stride = _pair(stride)
        self.pad = _pair(pad)
        self.kernel = (weights.shape[2], weights.shape[3])
        c_total = weights.shape[1]
        self.c_lo, self.c_hi = block_bounds(c_total, grid.shape[1], grid.coords[1])
        self.w_full_shape = weights.shape
        self.w_local = np.ascontiguousarray(weights[:, self.c_lo : self.c_hi])
        self.overlap_halo = bool(overlap_halo)
        self.overlap_allreduce = bool(overlap_allreduce)
        if allreduce_blocks < 1:
            raise ValueError(
                f"allreduce_blocks must be >= 1, got {allreduce_blocks}"
            )
        self.allreduce_blocks = int(allreduce_blocks)
        self._x_ext: np.ndarray | None = None
        self._x_meta: tuple | None = None
        # Recycles the gathered input / error-signal regions and the
        # exchange payloads across steps.
        self._pool = BufferPool()
        # Cached (region, exchange plan) per direction and distribution.
        self._geom: dict = {}

    def forward(self, x: DistTensor) -> DistTensor:
        if not x.dist.is_split(1):
            raise ValueError("input must be channel-partitioned (dim 1 split)")
        n, c, h, w = x.global_shape
        oh, ow = F.conv2d_output_shape((h, w), self.kernel, self.stride, self.pad)
        f = self.w_full_shape[0]
        y_shape = (n, f, oh, ow)
        y_dist = _channel_replicated_dist(self.grid.shape, y_shape)
        region_of = _fwd_region_builder(
            self.kernel, self.stride, self.pad, y_dist, y_shape,
            lambda coords: block_bounds(c, self.grid.shape[1], coords[1]),
        )
        x_ext = _gather_planned(
            x, self.grid, self._geom, ("fwd", x.dist, x.global_shape),
            region_of, self._pool, self.overlap_halo,
        )
        self._x_ext = x_ext
        self._x_meta = (x.dist, x.global_shape)

        # Complete the channel summation of Eq. 1 over the channel group.
        group = self.grid.axis_comm(1)
        nblk = min(self.allreduce_blocks, f)
        if not self.overlap_allreduce or group.size == 1 or nblk < 2:
            partial = F.conv2d_forward(
                x_ext, self.w_local, stride=self.stride, pad=0
            )
            y_local = group.allreduce(partial)
            return DistTensor(self.grid, y_dist, y_shape, y_local)
        # Piecewise partial sums, pipelined into the channel allreduce:
        # block k's reduction is in flight while block k+1's convolution
        # computes (filter outputs are independent, so the piecewise
        # kernels are bitwise identical to the fused one).  Every group
        # member sees the same f/nblk, so the iallreduce order lines up.
        pending = []
        for b in range(nblk):
            f0, f1 = block_bounds(f, nblk, b)
            partial = F.conv2d_forward(
                x_ext, self.w_local[f0:f1], stride=self.stride, pad=0
            )
            pending.append((f0, f1, group.iallreduce(partial)))
        y_local: np.ndarray | None = None
        for f0, f1, req in pending:
            reduced = req.wait()
            if y_local is None:
                y_local = np.empty(
                    (reduced.shape[0], f) + reduced.shape[2:],
                    dtype=reduced.dtype,
                )
            y_local[:, f0:f1] = reduced
        return DistTensor(self.grid, y_dist, y_shape, y_local)

    def backward(self, dy: DistTensor) -> tuple[DistTensor, np.ndarray]:
        """Returns (dx, dw_local_slice); dw reduction group excludes axis 1."""
        if self._x_ext is None:
            raise RuntimeError("backward() before forward()")
        x_dist, x_shape = self._x_meta
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.pad

        dw_local = F.conv2d_backward_filter(
            self._x_ext, dy.local, kernel=self.kernel, stride=self.stride, pad=0
        )

        xb = x_dist.local_bounds(x_shape, self.grid.coords)
        (n_lo, n_hi), _, (xh_lo, xh_hi), (xw_lo, xw_hi) = xb
        dh_lo = _floor_div(xh_lo + ph - (kh - 1), sh)
        dw_lo_ = _floor_div(xw_lo + pw - (kw - 1), sw)
        dy_channels = dy.global_shape[1]
        region_of = _bwd_region_builder(
            self.kernel, self.stride, self.pad, x_dist, x_shape,
            lambda coords: (0, dy_channels),
        )
        dy_ext = _gather_planned(
            dy, self.grid, self._geom,
            ("bwd", dy.dist, dy.global_shape, x_dist, x_shape),
            region_of, self._pool, self.overlap_halo,
        )
        pad_eff = (xh_lo + ph - sh * dh_lo, xw_lo + pw - sw * dw_lo_)
        dx_local = F.conv2d_backward_data(
            dy_ext, self.w_local, stride=self.stride, pad=pad_eff,
            x_spatial=(xh_hi - xh_lo, xw_hi - xw_lo),
        )
        self._pool.give(self._x_ext)
        self._x_ext = None
        self._pool.give(dy_ext)
        dx = DistTensor(self.grid, x_dist, x_shape, dx_local)
        return dx, dw_local


class FilterParallelConv2d:
    """Convolution with the filter dimension partitioned (grid axis 1).

    Expects ``x`` with C replicated across the filter group; produces ``y``
    block-distributed on F.  ``dL/dx`` needs the allreduce over the filter
    group (the summation over filters in Eq. 3).  This is also the
    model-parallel FC layer when applied to 1x1 spatial extents.
    """

    def __init__(
        self,
        grid: ProcessGrid,
        weights: np.ndarray,
        stride=1,
        pad=0,
        overlap_halo: bool = True,
    ) -> None:
        if grid.ndim != 4 or grid.shape[1] < 2:
            raise ValueError("FilterParallelConv2d needs a 4D grid with axis 1 > 1")
        self.grid = grid
        self.stride = _pair(stride)
        self.pad = _pair(pad)
        self.kernel = (weights.shape[2], weights.shape[3])
        f_total = weights.shape[0]
        self.f_lo, self.f_hi = block_bounds(f_total, grid.shape[1], grid.coords[1])
        self.w_full_shape = weights.shape
        self.w_local = np.ascontiguousarray(weights[self.f_lo : self.f_hi])
        self.overlap_halo = bool(overlap_halo)
        self._x_ext: np.ndarray | None = None
        self._x_meta: tuple | None = None
        self._pool = BufferPool()
        self._geom: dict = {}

    def forward(self, x: DistTensor) -> DistTensor:
        if x.dist.is_split(1):
            raise ValueError(
                "input must have C replicated across the filter group"
            )
        n, c, h, w = x.global_shape
        oh, ow = F.conv2d_output_shape((h, w), self.kernel, self.stride, self.pad)
        f = self.w_full_shape[0]
        y_shape = (n, f, oh, ow)
        y_dist = Distribution.make(self.grid.shape)  # F block-split on axis 1
        if f < self.grid.shape[1]:
            raise ValueError("fewer filters than filter-group size")
        yb = y_dist.local_bounds(y_shape, self.grid.coords)
        (f_lo, f_hi) = yb[1]
        if (f_lo, f_hi) != (self.f_lo, self.f_hi):
            raise AssertionError("filter slice misaligned with distribution")

        region_of = _fwd_region_builder(
            self.kernel, self.stride, self.pad, y_dist, y_shape,
            lambda coords: (0, c),
        )
        x_ext = _gather_planned(
            x, self.grid, self._geom, ("fwd", x.dist, x.global_shape),
            region_of, self._pool, self.overlap_halo,
        )
        self._x_ext = x_ext
        self._x_meta = (x.dist, x.global_shape)
        y_local = F.conv2d_forward(x_ext, self.w_local, stride=self.stride, pad=0)
        return DistTensor(self.grid, y_dist, y_shape, y_local)

    def backward(self, dy: DistTensor) -> tuple[DistTensor, np.ndarray]:
        """Returns (dx, dw_local_slice)."""
        if self._x_ext is None:
            raise RuntimeError("backward() before forward()")
        x_dist, x_shape = self._x_meta
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.pad

        dw_local = F.conv2d_backward_filter(
            self._x_ext, dy.local, kernel=self.kernel, stride=self.stride, pad=0
        )

        xb = x_dist.local_bounds(x_shape, self.grid.coords)
        (n_lo, n_hi), _, (xh_lo, xh_hi), (xw_lo, xw_hi) = xb
        dh_lo = _floor_div(xh_lo + ph - (kh - 1), sh)
        dw_lo_ = _floor_div(xw_lo + pw - (kw - 1), sw)
        f_total = self.w_full_shape[0]
        region_of = _bwd_region_builder(
            self.kernel, self.stride, self.pad, x_dist, x_shape,
            lambda coords: block_bounds(f_total, self.grid.shape[1], coords[1]),
        )
        dy_ext = _gather_planned(
            dy, self.grid, self._geom,
            ("bwd", dy.dist, dy.global_shape, x_dist, x_shape),
            region_of, self._pool, self.overlap_halo,
        )
        pad_eff = (xh_lo + ph - sh * dh_lo, xw_lo + pw - sw * dw_lo_)
        partial_dx = F.conv2d_backward_data(
            dy_ext, self.w_local, stride=self.stride, pad=pad_eff,
            x_spatial=(xh_hi - xh_lo, xw_hi - xw_lo),
        )
        self._pool.give(self._x_ext)
        self._x_ext = None
        self._pool.give(dy_ext)
        # Complete the filter summation of Eq. 3 over the filter group.
        dx_local = self.grid.axis_comm(1).allreduce(partial_dx)
        dx = DistTensor(self.grid, x_dist, x_shape, dx_local)
        return dx, dw_local
