"""Distributed execution of a :class:`NetworkSpec` under a parallel strategy.

This is the LBANN-analogue training pipeline (paper §IV): every layer runs
under its assigned :class:`~repro.core.parallelism.LayerParallelism`; when
adjacent layers use different distributions, activations and error signals
are redistributed with an all-to-all shuffle (§III-C); weight-gradient
partials are completed with an allreduce over each layer's gradient group
(the sub-communicator spanning the grid axes along which the layer's data is
actually partitioned — the whole grid in the standard replicated-weights
case, exactly the paper's Eq. 2 allreduce).

Gradient reduction is **overlapped and bucketed by default**: as each
layer's backward-filter pass produces its ``dw`` partials, they are handed
to a :class:`~repro.core.grad_reducer.BucketedGradReducer`, which coalesces
them into per-gradient-group buckets and launches nonblocking
``iallreduce``s that proceed concurrently with the remaining
backpropagation; everything is drained before :meth:`backward` returns —
the paper's §IV communication-hiding discipline.  ``overlap_grad_reduce=
False`` restores the serial blocking path (one allreduce per parameter
tensor after the layer's backward).  Both paths perform identical
floating-point additions in identical order, so loss trajectories are
bitwise equal (verified by ``tests/test_overlap_reducer.py``); the measured
wait-vs-overlap split is recorded in ``comm.stats``.

Halo exchanges of spatially partitioned convolutions are likewise
**overlapped by default** (``overlap_halo=True``): each
:class:`~repro.core.dist_conv.DistConv2d` posts its halo strips as
nonblocking sends/receives, convolves the interior of its block while they
travel, and completes the boundary strips as the receives land (paper
§IV-A).  ``overlap_halo=False`` runs the identical interior/boundary
kernels after a blocking gather, so the two modes are bitwise equal
(verified by ``tests/test_halo_overlap.py``).

Inter-layer *shuffles* (§III-C redistributions at layer boundaries whose
distributions differ) are **overlapped by default** too
(``overlap_shuffle=True``): a layer's activation is launched toward each
child's distribution as a nonblocking
:class:`~repro.tensor.shuffle.ShuffleExchange` the moment it is produced
and finished only where the child consumes it, so the pieces travel behind
whatever runs in between (sibling branches of a DAG, the reducer's gradient
bucketing in backward); in backward the error-signal shuffle toward a
parent is started before the layer's weight-gradient allreduce is queued.
Plans (the per-rank send/receive schedules) are cached on the communicator
across steps, and send payloads are staged through a network-level
:class:`~repro.comm.buffers.BufferPool`.  ``overlap_shuffle=False`` runs
the identical plan through a blocking ``alltoall``; both modes assemble the
same pieces into the same zero-initialized blocks and are bitwise equal
(verified by ``tests/test_shuffle_overlap.py`` /
``tests/test_shuffle_property.py``).

Parameters are replicated on every rank and initialized identically to
:class:`repro.nn.network.LocalNetwork` (seeded by layer name), so
distributed runs replicate single-device runs to floating-point
accumulation order — the exactness property claimed in §III and verified by
``tests/test_dist_exactness.py``.
"""

from __future__ import annotations

import numpy as np

from repro.comm.buffers import BufferPool
from repro.comm.communicator import Communicator
from repro.nn import init as I
from repro.nn.graph import NetworkSpec
from repro.obs import tracer as _trace
from repro.tensor.dist_tensor import DistTensor
from repro.tensor.grid import ProcessGrid
from repro.tensor.shuffle import ShuffleExchange, shuffle, start_shuffle
from repro.core.parallelism import LayerParallelism, ParallelStrategy, activation_dist
from repro.core.dist_conv import DistConv2d
from repro.core.grad_reducer import DEFAULT_BUCKET_BYTES, BucketedGradReducer
from repro.core.dist_layers import (
    DistAdd,
    DistBatchNorm,
    DistBCEWithLogits,
    DistFC,
    DistGlobalAvgPool,
    DistPool2d,
    DistReLU,
    DistSoftmaxCrossEntropy,
)


class DistNetwork:
    """One rank's instance of a distributed CNN."""

    def __init__(
        self,
        spec: NetworkSpec,
        comm: Communicator,
        strategy: ParallelStrategy | LayerParallelism,
        seed: int = 0,
        dtype=np.float64,
        bn_aggregate: str = "global",
        overlap_grad_reduce: bool = True,
        grad_bucket_bytes: int = DEFAULT_BUCKET_BYTES,
        overlap_halo: bool = True,
        overlap_shuffle: bool = True,
        collective_algorithm: str | None = None,
        grad_segment_bytes: int | str | None = None,
    ) -> None:
        if isinstance(strategy, LayerParallelism):
            strategy = ParallelStrategy.uniform(strategy)
        if strategy.nranks != comm.size:
            raise ValueError(
                f"strategy uses {strategy.nranks} ranks but communicator has "
                f"{comm.size}"
            )
        self.spec = spec
        self.comm = comm
        self.strategy = strategy
        self.seed = seed
        self.dtype = dtype
        self.bn_aggregate = bn_aggregate
        self.overlap_grad_reduce = overlap_grad_reduce
        self.grad_bucket_bytes = grad_bucket_bytes
        self.overlap_halo = overlap_halo
        self.overlap_shuffle = overlap_shuffle
        #: Wire algorithm for the gradient allreduces (the
        #: :meth:`~repro.comm.communicator.Communicator.allreduce` knob):
        #: None == "auto" (model-driven schedule selection); "direct" pins
        #: the bitwise-reference deposit-combine path, making the
        #: overlapped and blocking reducers bitwise-identical.
        self.collective_algorithm = collective_algorithm
        #: Segment size for the bucketed gradient allreduces (the
        #: ``segment_bytes`` knob of
        #: :meth:`~repro.comm.communicator.Communicator.iallreduce`):
        #: segmented buckets complete one pipeline segment per reducer
        #: poll, so a ``backward(grad_hook=...)`` caller sees early
        #: buckets while later segments are still on the wire.
        self.grad_segment_bytes = grad_segment_bytes
        self.shapes = spec.infer_shapes()
        # Recycles the staged shuffle send payloads across steps (deferred
        # reclamation once the receivers drop their zero-copy views).
        self._shuffle_pool = BufferPool()
        # In-flight forward shuffles keyed by (child layer, parent index).
        self._pending_fwd: dict[tuple[str, int], ShuffleExchange] = {}

        self._grids: dict[tuple[int, ...], ProcessGrid] = {}
        self.params: dict[str, dict[str, np.ndarray]] = {}
        self.grads: dict[str, dict[str, np.ndarray]] = {}
        self._layers: dict[str, object] = {}
        self._build()

        self._acts: dict[str, DistTensor] = {}
        self._fwd_dist: dict[str, tuple[ProcessGrid, object]] = {}
        self.loss: float | None = None
        self.shuffle_count = 0

    # -- construction ---------------------------------------------------------------
    def _grid(self, shape: tuple[int, ...]) -> ProcessGrid:
        grid = self._grids.get(shape)
        if grid is None:
            grid = ProcessGrid(self.comm, shape)
            self._grids[shape] = grid
        return grid

    def _build(self) -> None:
        for layer in self.spec.topo_order():
            name = layer.name
            grid = self._grid(self.strategy.for_layer(name).grid_shape)
            if layer.kind == "input":
                self._layers[name] = None
                continue
            parent_shape = self.shapes[layer.parents[0]]
            if layer.kind == "conv":
                c_in = parent_shape[0]
                k = layer.params["kernel"]
                kh, kw = (k, k) if isinstance(k, int) else k
                w = I.conv_weights(
                    layer.params["filters"], c_in, kh, kw, self.seed, name
                ).astype(self.dtype)
                b = (
                    I.zeros(layer.params["filters"]).astype(self.dtype)
                    if layer.params.get("bias", False)
                    else None
                )
                self.params[name] = {"w": w} | ({"b": b} if b is not None else {})
                self._layers[name] = DistConv2d(
                    grid,
                    w,
                    stride=layer.params.get("stride", 1),
                    pad=layer.params.get("pad", 0),
                    bias=b,
                    overlap_halo=self.overlap_halo,
                )
            elif layer.kind == "pool":
                self._layers[name] = DistPool2d(
                    grid,
                    layer.params.get("mode", "max"),
                    layer.params["kernel"],
                    layer.params.get("stride", layer.params["kernel"]),
                    layer.params.get("pad", 0),
                    overlap_halo=self.overlap_halo,
                )
            elif layer.kind == "bn":
                c = parent_shape[0]
                gamma = I.ones(c).astype(self.dtype)
                beta = I.zeros(c).astype(self.dtype)
                self.params[name] = {"gamma": gamma, "beta": beta}
                self._layers[name] = DistBatchNorm(
                    grid, gamma, beta, aggregate=self.bn_aggregate,
                    momentum=layer.params.get("momentum", 0.9),
                )
            elif layer.kind == "relu":
                self._layers[name] = DistReLU(grid)
            elif layer.kind == "add":
                self._layers[name] = DistAdd(grid)
            elif layer.kind == "gap":
                self._layers[name] = DistGlobalAvgPool(grid)
            elif layer.kind == "fc":
                c, h, w_ = parent_shape
                w = I.fc_weights(
                    layer.params["units"], c * h * w_, self.seed, name
                ).astype(self.dtype)
                b = (
                    I.zeros(layer.params["units"]).astype(self.dtype)
                    if layer.params.get("bias", True)
                    else None
                )
                self.params[name] = {"w": w} | ({"b": b} if b is not None else {})
                self._layers[name] = DistFC(grid, w, b)
            elif layer.kind == "softmax_ce":
                self._layers[name] = DistSoftmaxCrossEntropy(grid)
            elif layer.kind == "bce":
                self._layers[name] = DistBCEWithLogits(grid)
            else:  # pragma: no cover
                raise AssertionError(layer.kind)

    # -- execution ---------------------------------------------------------------------
    def _want_dist(self, act: DistTensor, grid: ProcessGrid):
        """The distribution a layer on ``grid`` expects ``act`` in, or
        ``None`` when no redistribution is needed."""
        want = activation_dist(grid.shape, act.global_shape)
        if act.dist == want and (act.grid is grid or act.grid.shape == grid.shape):
            return None
        return want

    def _to_layer_dist(self, act: DistTensor, grid: ProcessGrid) -> DistTensor:
        """Shuffle an activation to a layer's expected input distribution."""
        want = self._want_dist(act, grid)
        if want is None:
            return act
        self.shuffle_count += 1
        return shuffle(act, grid, want, pool=self._shuffle_pool)

    def _start_child_shuffles(self, name: str) -> None:
        """Launch the redistributions every child of ``name`` will need.

        Called right after a layer's activation is produced (overlap mode):
        the exchanges travel behind whatever computes next — sibling
        branches of the DAG, the remaining forward layers — and are
        finished where each child consumes its input.
        """
        act = self._acts[name]
        for child in self.spec.children_of(name):
            grid = self._grid(self.strategy.for_layer(child).grid_shape)
            want = self._want_dist(act, grid)
            if want is None:
                continue
            for idx, pname in enumerate(self.spec[child].parents):
                if pname == name:
                    self._pending_fwd[(child, idx)] = start_shuffle(
                        act, grid, want, pool=self._shuffle_pool
                    )

    def forward(
        self,
        inputs: dict[str, np.ndarray] | np.ndarray,
        targets: np.ndarray | None = None,
        training: bool = True,
    ) -> float | None:
        """Run forward propagation; returns the loss when the network has a
        loss layer and ``targets`` is given.

        ``inputs``/``targets`` are *global* arrays (every rank passes the
        same ones); each rank slices its own shard.  Loss layers slice the
        targets by their logits' bounds.
        """
        if isinstance(inputs, np.ndarray):
            (inp,) = self.spec.inputs()
            inputs = {inp.name: inputs}
        self._acts = {}
        self._fwd_dist = {}
        self._pending_fwd = {}
        self.loss = None

        for layer in self.spec.topo_order():
            name = layer.name
            grid = self._grid(self.strategy.for_layer(name).grid_shape)
            if layer.kind == "input":
                x_global = np.asarray(inputs[name], dtype=self.dtype)
                dist = activation_dist(grid.shape, x_global.shape)
                self._acts[name] = DistTensor.from_global(grid, dist, x_global)
                if self.overlap_shuffle:
                    self._start_child_shuffles(name)
                continue

            with _trace.span(f"fwd:{name}", cat="layer", kind=layer.kind):
                parents = [self._acts[p] for p in layer.parents]
                # Record the parent's original placement so backward can route
                # the error signal back through the same shuffle.
                self._fwd_dist[name] = [(p.grid, p.dist) for p in parents]
                resolved = []
                for idx, p in enumerate(parents):
                    ex = self._pending_fwd.pop((name, idx), None)
                    if ex is not None:
                        self.shuffle_count += 1
                        resolved.append(ex.finish())
                    else:
                        resolved.append(self._to_layer_dist(p, grid))
                parents = resolved
                impl = self._layers[name]

                if layer.kind == "conv":
                    y = impl.forward(parents[0])
                elif layer.kind == "pool":
                    y = impl.forward(parents[0])
                elif layer.kind == "bn":
                    y = impl.forward(parents[0], training=training)
                elif layer.kind in ("relu", "gap", "fc"):
                    y = impl.forward(parents[0])
                elif layer.kind == "add":
                    y = impl.forward(*parents)
                elif layer.kind == "softmax_ce":
                    if targets is not None:
                        self.loss = impl.forward_loss(parents[0], targets)
                    y = parents[0]
                elif layer.kind == "bce":
                    if targets is not None:
                        self.loss = impl.forward_loss(
                            parents[0], np.asarray(targets, dtype=self.dtype)
                        )
                    y = parents[0]
                else:  # pragma: no cover
                    raise AssertionError(layer.kind)
                self._acts[name] = y
                if self.overlap_shuffle:
                    self._start_child_shuffles(name)
        return self.loss

    def backward(self, grad_hook=None) -> dict[str, dict[str, np.ndarray]]:
        """Backpropagate and complete weight gradients with allreduces.

        With ``overlap_grad_reduce`` (the default), each layer's partials
        are queued on a bucketed nonblocking reducer as soon as its filter
        gradients are computed, so the allreduces run concurrently with the
        rest of backpropagation and are drained just before returning.

        ``grad_hook(layer, grads)``, if given, is invoked once per layer
        as soon as that layer's *reduced* gradients are complete — for the
        overlapped reducer this happens mid-backpropagation as buckets
        finish (each layer's enqueue polls the in-flight requests, landing
        one more pipeline segment of each segmented allreduce), so an
        optimizer can apply early layers' updates while later gradients
        are still on the wire.  Every layer is hooked exactly once; layers
        still pending at the end are hooked after the final drain.  The
        returned dict is unchanged — hooking is observation, not
        consumption.

        With ``overlap_shuffle`` (the default), the error-signal shuffle
        toward a parent with a different distribution is *started* as soon
        as the layer's ``dx`` exists — before the layer's own gradient
        bucketing — and finished only when the parent consumes its error
        signal, so the pieces travel behind the reducer work and any
        sibling branches.  Contributions are accumulated in the same
        arrival order as the blocking path, so both modes perform identical
        floating-point additions.
        """
        grads: dict[str, dict[str, np.ndarray]] = {}
        #: Per-parent error contributions (DistTensor or in-flight
        #: ShuffleExchange), in route_back arrival order.
        pending: dict[str, list] = {}
        reducer = (
            BucketedGradReducer(
                self.grad_bucket_bytes,
                algorithm=self.collective_algorithm,
                segment_bytes=self.grad_segment_bytes,
            )
            if self.overlap_grad_reduce
            else None
        )
        hooked: set[str] = set()

        def hook(name: str, g: dict[str, np.ndarray]) -> None:
            if grad_hook is not None and name not in hooked:
                hooked.add(name)
                grad_hook(name, g)

        def complete_grads(name: str, g: dict[str, np.ndarray]) -> None:
            if reducer is not None:
                reducer.add(name, g, self._grad_comm(self._acts[name]))
                done = reducer._done.get(name)
                if done is not None:
                    # Singleton gradient group: add() passed the partials
                    # straight through — complete now.
                    hook(name, done)
                elif grad_hook is not None:
                    for lname, lg in reducer.poll().items():
                        hook(lname, lg)
            else:
                g = self._reduce_grads(g, self._acts[name])
                grads[name] = g
                hook(name, g)

        def route_back(name: str, idx: int, dx: DistTensor) -> None:
            """Undo the forward shuffle for parent #idx of layer `name`."""
            pgrid, pdist = self._fwd_dist[name][idx]
            pname = self.spec[name].parents[idx]
            if dx.dist != pdist or dx.grid.shape != pgrid.shape:
                self.shuffle_count += 1
                if self.overlap_shuffle:
                    pending.setdefault(pname, []).append(
                        start_shuffle(dx, pgrid, pdist, pool=self._shuffle_pool)
                    )
                    return
                dx = shuffle(dx, pgrid, pdist, pool=self._shuffle_pool)
            pending.setdefault(pname, []).append(dx)

        def consume_dy(name: str) -> DistTensor | None:
            """Materialize a layer's accumulated error signal.

            Entries are folded in arrival order; later contributions with a
            mismatched distribution are shuffled to the first's, exactly as
            the historical eager accumulation did.
            """
            entries = pending.pop(name, None)
            if not entries:
                return None
            out: DistTensor | None = None
            for e in entries:
                dx = e.finish() if isinstance(e, ShuffleExchange) else e
                if out is None:
                    out = DistTensor(
                        dx.grid, dx.dist, dx.global_shape, dx.local.copy()
                    )
                else:
                    if dx.dist != out.dist:
                        dx = shuffle(
                            dx, out.grid, out.dist, pool=self._shuffle_pool
                        )
                    out.local += dx.local
            return out

        for layer in reversed(self.spec.topo_order()):
            name = layer.name
            impl = self._layers[name]
            if layer.kind == "input":
                continue
            with _trace.span(f"bwd:{name}", cat="layer", kind=layer.kind):
                if layer.kind in ("softmax_ce", "bce"):
                    route_back(name, 0, impl.backward())
                    continue
                dy = consume_dy(name)
                if dy is None:
                    continue  # no path to the loss

                if layer.kind == "conv":
                    dx, dw, db = impl.backward(dy)
                    g = {"w": dw}
                    if db is not None:
                        g["b"] = db
                    # The dx shuffle first: it is in flight while the reducer
                    # coalesces and launches this layer's gradient allreduce.
                    route_back(name, 0, dx)
                    complete_grads(name, g)
                elif layer.kind == "pool":
                    route_back(name, 0, impl.backward(dy))
                elif layer.kind == "bn":
                    dx, dgamma, dbeta = impl.backward(dy)
                    route_back(name, 0, dx)
                    complete_grads(name, {"gamma": dgamma, "beta": dbeta})
                elif layer.kind == "relu":
                    route_back(name, 0, impl.backward(dy))
                elif layer.kind == "gap":
                    route_back(name, 0, impl.backward(dy))
                elif layer.kind == "fc":
                    dx, dw, db = impl.backward(dy)
                    g = {"w": dw}
                    if db is not None:
                        g["b"] = db
                    route_back(name, 0, dx)
                    complete_grads(name, g)
                elif layer.kind == "add":
                    for idx in range(len(layer.parents)):
                        route_back(name, idx, dy)
                else:  # pragma: no cover
                    raise AssertionError(layer.kind)

        # Error signals routed to input layers are never consumed; drain
        # their in-flight exchanges so no irecv outlives the step.
        for entries in pending.values():
            for e in entries:
                if isinstance(e, ShuffleExchange):
                    e.finish()

        if reducer is not None:
            grads.update(reducer.drain())
            if grad_hook is not None:
                for name, g in grads.items():
                    hook(name, g)
        self.grads = grads
        return grads

    def _grad_comm(self, y: DistTensor) -> Communicator | None:
        """The gradient group of a layer with output ``y`` (paper Eq. 2).

        Spans the grid axes along which the layer's output data is
        partitioned; ``None`` when the layer's partials are already complete
        (replicas along other axes hold identical partials).
        """
        axes = [d for d in range(y.dist.ndim) if y.dist.is_split(d)]
        if not axes:
            return None
        return y.grid.axes_comm(axes)

    def _reduce_grads(
        self, partials: dict[str, np.ndarray], y: DistTensor
    ) -> dict[str, np.ndarray]:
        """Blocking completion of weight-gradient partials (Eq. 2's allreduce)."""
        comm = self._grad_comm(y)
        if comm is None:
            return partials
        return {
            k: comm.allreduce(v, algorithm=self.collective_algorithm)
            for k, v in partials.items()
        }

    # -- checkpointing ---------------------------------------------------------------
    def state_dict(self) -> dict:
        """All persistent state of this replica, as fresh arrays.

        Parameters plus batch-norm running statistics — everything a layer
        reads across steps.  Activations, caches, and in-flight exchanges
        are per-step and excluded.
        """
        params = {
            lname: {pname: arr.copy() for pname, arr in lparams.items()}
            for lname, lparams in self.params.items()
        }
        bn = {}
        for name, impl in self._layers.items():
            if isinstance(impl, DistBatchNorm):
                bn[name] = {
                    "running_mean": impl.running_mean.copy(),
                    "running_var": impl.running_var.copy(),
                }
        return {"params": params, "bn": bn}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output bitwise.

        Parameter data is copied *into* the existing arrays
        (``np.copyto``), because the layer objects hold references to the
        same buffers the optimizer updates in place — rebinding would
        silently detach them.  BN running stats are rebound instead, since
        ``DistBatchNorm.forward`` rebinds them every training step anyway.
        """
        for lname, lparams in state["params"].items():
            mine = self.params[lname]
            for pname, arr in lparams.items():
                np.copyto(mine[pname], arr)
        for name, stats in state["bn"].items():
            impl = self._layers[name]
            impl.running_mean = stats["running_mean"].copy()
            impl.running_var = stats["running_var"].copy()

    # -- convenience -----------------------------------------------------------------
    def loss_and_grad(
        self, inputs, targets, grad_hook=None
    ) -> tuple[float, dict[str, dict[str, np.ndarray]]]:
        loss = self.forward(inputs, targets=targets, training=True)
        if loss is None:
            raise RuntimeError("network has no loss layer or targets missing")
        return loss, self.backward(grad_hook=grad_hook)

    def local_activation(self, name: str) -> DistTensor:
        return self._acts[name]

    def gather_activation(self, name: str) -> np.ndarray:
        """Assemble a layer's global output on every rank (test helper)."""
        return self._acts[name].to_global()
