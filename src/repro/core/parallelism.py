"""Parallelism descriptors and execution strategies.

A :class:`LayerParallelism` factorizes the available ranks into the paper's
five parallelizable dimensions (we keep channel in the descriptor for the
§III-D extension; height and width are the *spatial* dimensions):

* ``LayerParallelism(sample=16)`` — pure sample (data) parallelism;
* ``LayerParallelism(height=2, width=2)`` — 4-way spatial parallelism;
* ``LayerParallelism(sample=4, height=2, width=2)`` — hybrid
  sample/spatial: samples partitioned onto groups of 4 GPUs, each sample
  spatially partitioned within its group ("our results are primarily
  hybrid sample-spatial parallelism", §VI-B).

A :class:`ParallelStrategy` assigns a descriptor to every layer ("a
parallel execution strategy for a network is an assignment of distributions
to each layer", §V-C).  The common single-descriptor case ("we use the same
data decomposition for every layer in a given configuration") is
:meth:`ParallelStrategy.uniform`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.tensor.distribution import DimKind, Distribution


@dataclass(frozen=True)
class LayerParallelism:
    """How one layer's work is split: (N, C, H, W) process-grid factors."""

    sample: int = 1
    channel: int = 1
    height: int = 1
    width: int = 1

    def __post_init__(self) -> None:
        for f in (self.sample, self.channel, self.height, self.width):
            if f < 1:
                raise ValueError(f"parallelism factors must be >= 1: {self}")

    @property
    def grid_shape(self) -> tuple[int, int, int, int]:
        return (self.sample, self.channel, self.height, self.width)

    @property
    def nranks(self) -> int:
        return self.sample * self.channel * self.height * self.width

    @property
    def spatial_ways(self) -> int:
        """GPUs per sample (the paper's "k GPUs/sample" knob)."""
        return self.channel * self.height * self.width

    def describe(self) -> str:
        if self.spatial_ways == 1:
            return f"sample({self.sample})"
        return (
            f"hybrid(sample={self.sample}, spatial={self.height}x{self.width}"
            + (f", channel={self.channel}" if self.channel > 1 else "")
            + ")"
        )

    @classmethod
    def spatial_square(cls, sample: int, ways: int) -> "LayerParallelism":
        """Hybrid descriptor with a near-square H x W factorization of
        ``ways`` GPUs/sample (2 -> 2x1, 4 -> 2x2, 8 -> 4x2, 16 -> 4x4),
        matching the decompositions the paper evaluates."""
        if ways < 1:
            raise ValueError(f"ways must be >= 1, got {ways}")
        # Factor ways = h*w with h >= w as close to square as possible.
        best = (ways, 1)
        for w in range(1, int(math.isqrt(ways)) + 1):
            if ways % w == 0:
                best = (ways // w, w)
        return cls(sample=sample, height=best[0], width=best[1])


def activation_dist(
    grid_shape: Sequence[int], shape: Sequence[int]
) -> Distribution:
    """Distribution of an activation tensor on a layer grid.

    Dimensions are block-partitioned; a dimension too small to give every
    grid part at least one index (e.g. the 1x1 spatial extent after global
    pooling) is replicated instead, so no rank holds an empty shard.
    """
    kinds = tuple(
        DimKind.BLOCK if int(n) >= g else DimKind.REPLICATED
        for n, g in zip(shape, grid_shape)
    )
    return Distribution(tuple(int(g) for g in grid_shape), kinds)


class ParallelStrategy:
    """Assignment of a :class:`LayerParallelism` to every layer."""

    def __init__(
        self,
        assignments: Mapping[str, LayerParallelism],
        default: LayerParallelism | None = None,
    ) -> None:
        self._assignments = dict(assignments)
        self._default = default
        sizes = {p.nranks for p in self._assignments.values()}
        if default is not None:
            sizes.add(default.nranks)
        if len(sizes) > 1:
            raise ValueError(
                f"all layers must use the same total rank count, got {sizes}"
            )

    @classmethod
    def uniform(cls, parallelism: LayerParallelism) -> "ParallelStrategy":
        """Same decomposition for every layer (the paper's evaluated mode)."""
        return cls({}, default=parallelism)

    def for_layer(self, name: str) -> LayerParallelism:
        p = self._assignments.get(name, self._default)
        if p is None:
            raise KeyError(f"no parallelism assigned for layer {name!r}")
        return p

    @property
    def nranks(self) -> int:
        if self._assignments:
            return next(iter(self._assignments.values())).nranks
        assert self._default is not None
        return self._default.nranks

    def assignments(self) -> dict[str, LayerParallelism]:
        return dict(self._assignments)

    def with_layer(self, name: str, parallelism: LayerParallelism) -> "ParallelStrategy":
        new = dict(self._assignments)
        new[name] = parallelism
        return ParallelStrategy(new, default=self._default)

    def describe(self, layer_names: Sequence[str] | None = None) -> str:
        if not self._assignments and self._default is not None:
            return f"uniform {self._default.describe()}"
        names = layer_names or sorted(self._assignments)
        return "; ".join(f"{n}: {self.for_layer(n).describe()}" for n in names)
