"""repro — reproduction of Dryden et al., IPDPS 2019.

*Improving Strong-Scaling of CNN Training by Exploiting Finer-Grained
Parallelism* introduced spatial and hybrid sample/spatial decompositions of
convolutional layers, a distributed tensor substrate with halo exchange, a
performance model for distributed CNN training, and a shortest-path
optimizer for per-layer parallel execution strategies.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.comm` — MPI-like in-process communicator + α-β cost models.
* :mod:`repro.tensor` — process grids, block distributions, distributed
  tensors, halo exchange, all-to-all redistribution.
* :mod:`repro.nn` — local (single-device) numpy kernels, layers and network
  graphs: conv/pool/BN/ReLU/FC, ResNet-50, the mesh-tangling models.
* :mod:`repro.core` — the paper's contribution: distributed convolution
  (sample/spatial/hybrid, plus channel/filter extensions), distributed
  network execution and training, and the strategy optimizer.
* :mod:`repro.perfmodel` — machine spec, convolution cost model, per-layer
  and whole-network cost models, memory model.
* :mod:`repro.sim` — discrete-event simulator reproducing the paper's
  scale experiments (Tables I–III, Figures 2–4).
* :mod:`repro.data` — synthetic mesh-tangling and ImageNet-like datasets.
"""

__version__ = "1.0.0"
