"""Reusable staging buffers for gather/halo assembly and halo send strips.

``gather_region`` and ``halo_exchange`` allocate a fresh extended array per
call (local shard + halo cells); on the training hot path this means two
large allocations per convolution per step.  A :class:`BufferPool` recycles
those buffers across steps.

The pool is deliberately conservative about aliasing.  Two reuse
disciplines are supported:

* **Immediate** (:meth:`give`): for *receive/assembly* buffers, which never
  cross the communication boundary — safe to recycle as soon as the caller
  is done reading them.
* **Deferred** (:meth:`give_deferred`): for *send* staging buffers.  With
  zero-copy sends, the mailbox (and briefly the receiver) holds a read-only
  view of the staged strip, so the buffer may only be recycled once that
  view is no longer referenced anywhere else.  The pool tracks the sent
  view and reclaims the backing buffer on a later :meth:`take` once its
  refcount shows every other holder has dropped it (on runtimes without
  prompt refcounting this simply degrades to never reusing send strips —
  correct, just less recycling).
"""

from __future__ import annotations

import sys
import threading

import numpy as np


class BufferPool:
    """A small free-list of ndarrays keyed by (shape, dtype).

    ``take`` returns a matching buffer with *unspecified contents* (the
    caller must fill it); ``give`` returns a buffer for reuse.  Thread-safe;
    one pool per layer/rank is typical, but sharing is harmless.
    """

    def __init__(self, max_buffers_per_key: int = 2) -> None:
        self._free: dict[tuple[tuple[int, ...], np.dtype], list[np.ndarray]] = {}
        self._lock = threading.Lock()
        self._max = max_buffers_per_key
        #: (sent read-only view, backing buffer) pairs awaiting reclamation.
        self._sent: list[tuple[np.ndarray, np.ndarray]] = []
        self.hits = 0
        self.misses = 0

    def take(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        key = (tuple(int(s) for s in shape), np.dtype(dtype))
        with self._lock:
            self._reap_sent()
            stack = self._free.get(key)
            if stack:
                self.hits += 1
                return stack.pop()
            self.misses += 1
        return np.empty(key[0], dtype=key[1])

    def give(self, arr: np.ndarray | None) -> None:
        if arr is None or not isinstance(arr, np.ndarray):
            return
        if not (arr.flags.c_contiguous and arr.flags.writeable and arr.base is None):
            return  # only whole, owned, writable buffers are safe to recycle
        with self._lock:
            self._give_locked(arr)

    def give_deferred(self, arr: np.ndarray, sent_view: np.ndarray) -> None:
        """Schedule ``arr`` for reuse once ``sent_view`` (the read-only view
        of it handed to a zero-copy send) is dropped by the communication
        layer and the receiver.  Safe to call right after the send.

        ``sent_view`` must be the *exact* frozen object that crossed the
        communication boundary: read-only (so ``_freeze`` forwards it
        unchanged instead of minting another view the pool cannot see) and
        directly backed by ``arr``.  Violations are rejected, not repaired —
        recycling on a stale refcount would let a later ``take`` overwrite a
        strip a slow peer has not yet read.
        """
        if not (arr.flags.c_contiguous and arr.flags.writeable and arr.base is None):
            return
        if sent_view.flags.writeable or sent_view.base is not arr:
            return
        with self._lock:
            self._sent.append((sent_view, arr))

    def _give_locked(self, arr: np.ndarray) -> None:
        key = (arr.shape, arr.dtype)
        stack = self._free.setdefault(key, [])
        if len(stack) < self._max:
            stack.append(arr)

    def _reap_sent(self) -> None:
        """Reclaim send buffers whose sent views have been fully consumed.

        A view still traveling is referenced by the mailbox queue (or by a
        receiver copying it out); once only the pool's own bookkeeping holds
        it, recycling the backing buffer cannot alias in-flight data.
        Reference counts for the view at check time: the ``entry`` tuple,
        and the ``getrefcount`` argument itself — anything beyond 2 means an
        external holder remains.  Called with the lock held.
        """
        if not self._sent:
            return
        still_out = []
        for entry in self._sent:
            if sys.getrefcount(entry[0]) > 2:
                still_out.append(entry)
            else:
                self._give_locked(entry[1])
        self._sent = still_out

    def clear(self) -> None:
        with self._lock:
            self._free.clear()
            self._sent.clear()

    def stats(self) -> tuple[int, int]:
        """(hits, misses) — how often ``take`` recycled vs allocated."""
        return self.hits, self.misses
