"""Reusable staging buffers for gather/halo assembly.

``gather_region`` and ``halo_exchange`` allocate a fresh extended array per
call (local shard + halo cells); on the training hot path this means two
large allocations per convolution per step.  A :class:`BufferPool` recycles
those buffers across steps.

The pool is deliberately conservative about aliasing: only buffers that the
caller explicitly returns with :meth:`give` are reused, and a buffer must
never be given back while any communication that references it is still in
flight (with zero-copy sends, a mailbox may hold a view of a sent buffer —
*receive/assembly* buffers, which this pool is for, are never sent, so they
are safe to recycle as soon as the caller is done reading them).
"""

from __future__ import annotations

import threading

import numpy as np


class BufferPool:
    """A small free-list of ndarrays keyed by (shape, dtype).

    ``take`` returns a matching buffer with *unspecified contents* (the
    caller must fill it); ``give`` returns a buffer for reuse.  Thread-safe;
    one pool per layer/rank is typical, but sharing is harmless.
    """

    def __init__(self, max_buffers_per_key: int = 2) -> None:
        self._free: dict[tuple[tuple[int, ...], np.dtype], list[np.ndarray]] = {}
        self._lock = threading.Lock()
        self._max = max_buffers_per_key
        self.hits = 0
        self.misses = 0

    def take(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        key = (tuple(int(s) for s in shape), np.dtype(dtype))
        with self._lock:
            stack = self._free.get(key)
            if stack:
                self.hits += 1
                return stack.pop()
            self.misses += 1
        return np.empty(key[0], dtype=key[1])

    def give(self, arr: np.ndarray | None) -> None:
        if arr is None or not isinstance(arr, np.ndarray):
            return
        if not (arr.flags.c_contiguous and arr.flags.writeable and arr.base is None):
            return  # only whole, owned, writable buffers are safe to recycle
        key = (arr.shape, arr.dtype)
        with self._lock:
            stack = self._free.setdefault(key, [])
            if len(stack) < self._max:
                stack.append(arr)

    def clear(self) -> None:
        with self._lock:
            self._free.clear()

    def stats(self) -> tuple[int, int]:
        """(hits, misses) — how often ``take`` recycled vs allocated."""
        return self.hits, self.misses
