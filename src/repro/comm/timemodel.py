"""Cluster topology and link selection for the communication time model.

Lassen (the paper's testbed) has 4 V100 GPUs per node connected by NVLink2,
with nodes connected by dual-rail InfiniBand EDR.  A message between two
ranks therefore traverses either the intra-node (NVLink) link or the
inter-node (IB) link; collectives over groups spanning nodes are dominated
by the inter-node link.  This module captures exactly that 2-level
hierarchy; the concrete α/β values live in
:mod:`repro.perfmodel.machine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.comm.collective_models import LinkParameters


@dataclass(frozen=True)
class ClusterTopology:
    """Two-level (intra-node / inter-node) cluster interconnect model."""

    gpus_per_node: int
    intra_link: LinkParameters
    inter_link: LinkParameters

    def __post_init__(self) -> None:
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank`` (ranks are packed node-by-node)."""
        return rank // self.gpus_per_node

    def link_between(self, rank_a: int, rank_b: int) -> LinkParameters:
        """Link traversed by a point-to-point message between two ranks."""
        if self.node_of(rank_a) == self.node_of(rank_b):
            return self.intra_link
        return self.inter_link

    def spans_nodes(self, ranks: Iterable[int]) -> bool:
        nodes = {self.node_of(r) for r in ranks}
        return len(nodes) > 1

    def collective_link(self, ranks: Sequence[int]) -> LinkParameters:
        """Effective link for a collective over ``ranks``.

        A ring/tree over a multi-node group is bottlenecked by the
        inter-node hops (all 4 GPUs of a node share the NICs), so the
        inter-node parameters govern; a purely intra-node group runs at
        NVLink speed.
        """
        if self.spans_nodes(ranks):
            return self.inter_link
        return self.intra_link

    def nodes_used(self, ranks: Iterable[int]) -> int:
        return len({self.node_of(r) for r in ranks})
