"""Algorithmic collective schedules: ring / Rabenseifner / recursive doubling
(and binomial trees) as real chunked point-to-point exchanges.

The cost model (:mod:`repro.comm.collective_models`) has always priced the
bandwidth-optimal allreduces of Thakur, Rabenseifner & Gropp — each rank
moving ``2n(p-1)/p`` bytes — but the engine historically ran every
collective as "deposit the full payload, everyone combines locally", which
on a message-passing backend costs ``n(p-1)`` per rank.  This module closes
that gap: it *compiles* ``(p, algorithm)`` into a per-rank schedule of
send / recv / recv-reduce steps over chunk ranges of a flat buffer, and a
:class:`ScheduleRunner` executes the schedule over the backends' existing
``(source, tag)``-matched point-to-point primitives, staging each outgoing
segment through a :class:`~repro.comm.buffers.BufferPool`.

Compiled schedules (``compile_allreduce``):

* ``ring`` — reduce-scatter around the ring followed by an allgather; the
  buffer is split into ``p`` near-equal chunks and each rank sends/receives
  one chunk per step, ``2(p-1)`` steps total, ``2n(p-1)/p`` bytes per rank.
* ``rabenseifner`` — recursive *halving* reduce-scatter followed by a
  recursive *doubling* allgather; ``2·lg p`` steps, the same ``2n(p-1)/p``
  bytes, for power-of-two groups (other sizes fall back to ``ring``).
* ``recursive_doubling`` — ``lg p`` whole-buffer exchanges (latency-optimal
  for small messages); non-power-of-two groups use the MPICH fold: the
  first ``2r`` ranks pair up (``r = p - 2^⌊lg p⌋``), the even partner folds
  into the odd one and receives the finished result at the end.

Binomial trees (``compile_tree``) route the rooted collectives —
bcast / reduce / gather / scatter — in ``⌈lg p⌉`` rounds instead of ``p-1``
messages in or out of the root.

Determinism contract
--------------------
Every schedule reduces in a **fixed, documented order** that depends only
on ``(algorithm, p)`` — never on timing or backend — so repeated runs and
both backends produce bitwise-identical results *for a given algorithm*:

* ``ring``: chunk ``c`` is folded in ring order starting at rank ``c``
  (``(((x_c + x_{c+1}) + x_{c+2}) + …)``, indices mod ``p``).
* ``rabenseifner`` / ``recursive_doubling``: each pairwise combine orders
  its two operands by the *minimum comm rank* their partial sums cover, so
  the fold is the balanced binary tree over (masked) rank bits — e.g.
  ``(x_0 + x_1) + (x_2 + x_3)`` for recursive doubling on 4 ranks.
* binomial ``reduce``: a node folds its children in ascending relative
  rank, each child delivering its already-folded subtree.

These orders differ from the legacy ``"direct"`` comm-rank-order fold, so
algorithmic results match it to floating-point *allclose*, not bitwise —
``"direct"`` remains the bitwise-reference mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable

import numpy as np

from repro.obs import tracer as _trace

#: Allreduce-family schedule names (`"direct"` is the legacy non-schedule
#: path and deliberately absent).
REDUCTION_ALGORITHMS = ("ring", "rabenseifner", "recursive_doubling")


@dataclass(frozen=True)
class Step:
    """One schedule entry: a send, a plain receive, or a receive+reduce.

    ``lo``/``hi`` are *chunk indices* into the runner's offset table (for
    whole-buffer algorithms the range spans every chunk).  ``acc_first``
    orders the combine of a ``recv_reduce``: ``fn(acc, recv)`` when True,
    ``fn(recv, acc)`` when False — fixed at compile time so the reduction
    order is a pure function of ``(algorithm, p)``.
    """

    kind: str  # "send" | "recv" | "recv_reduce"
    peer: int  # comm rank of the counterparty
    lo: int
    hi: int
    acc_first: bool = True


def chunk_offsets(n: int, p: int) -> tuple[int, ...]:
    """Element offsets splitting ``n`` elements into ``p`` near-equal chunks.

    The first ``n % p`` chunks carry one extra element, so uneven shapes
    and even ``n < p`` (empty trailing chunks) are handled uniformly; every
    rank derives the identical table.
    """
    base, extra = divmod(int(n), p)
    offs = [0]
    for i in range(p):
        offs.append(offs[-1] + base + (1 if i < extra else 0))
    return tuple(offs)


def is_power_of_two(p: int) -> bool:
    return p >= 1 and (p & (p - 1)) == 0


@lru_cache(maxsize=None)
def compile_allreduce(p: int, algorithm: str) -> tuple[tuple[Step, ...], ...]:
    """Per-rank schedules (indexed by comm rank) for one allreduce.

    ``algorithm`` is one of :data:`REDUCTION_ALGORITHMS`.  Rabenseifner
    requires a power-of-two group and falls back to the ring schedule for
    other sizes (the documented selection/fallback rule, mirrored by
    :func:`repro.comm.collective_models.select_allreduce_algorithm` which
    never picks it for non-power-of-two ``p``).
    """
    if p < 1:
        raise ValueError(f"group size must be >= 1, got {p}")
    if algorithm not in REDUCTION_ALGORITHMS:
        raise ValueError(
            f"unknown schedule algorithm {algorithm!r}; "
            f"expected one of {REDUCTION_ALGORITHMS}"
        )
    if p == 1:
        return (tuple(),)
    if algorithm == "ring":
        return _compile_ring(p)
    if algorithm == "rabenseifner":
        if not is_power_of_two(p):
            return _compile_ring(p)
        return _compile_rabenseifner(p)
    return _compile_recursive_doubling(p)


@lru_cache(maxsize=None)
def segmented_offsets(n: int, p: int, nseg: int) -> tuple[int, ...]:
    """Offset table for a segmented schedule: ``nseg`` outer pipeline
    segments, each split into the usual ``p`` near-equal chunks.

    The outer split reuses :func:`chunk_offsets`, matching the near-equal
    segments ``collective_models.segment_sizes`` prices; chunk ``c`` of
    segment ``g`` lives at table index ``g·p + c`` (table length
    ``nseg·p + 1``), which is exactly where :func:`segment_steps` points
    the expanded schedule.  Every rank derives the identical table.
    """
    outer = chunk_offsets(n, nseg)
    offs = [0]
    for g in range(nseg):
        inner = chunk_offsets(outer[g + 1] - outer[g], p)
        base = outer[g]
        offs.extend(base + o for o in inner[1:])
    return tuple(offs)


@lru_cache(maxsize=None)
def segment_steps(
    steps: tuple[Step, ...], p: int, nseg: int
) -> tuple[Step, ...]:
    """Expand a compiled schedule to move the buffer in ``nseg`` pipeline
    segments (over the :func:`segmented_offsets` table).

    Step-major expansion: each base step over chunks ``[lo, hi)`` of the
    ``p``-chunk table becomes ``nseg`` consecutive per-segment steps over
    the same chunk range of every segment, in ascending segment order.
    Pipelining falls out of the runner's eager sends: all ``nseg``
    per-segment sends of a base send step are staged before the following
    receive blocks, so while this rank reduces segment ``k`` its
    neighbour's segment ``k+1`` is already in flight — without reordering
    any send relative to the base schedule (per-``(peer, tag)`` FIFO
    matching is preserved because expansion keeps program order on both
    sides).

    Reduction order: the base algorithm's documented order is applied to
    every segment independently (segments partition the buffer and steps
    never cross a segment boundary), so the fold remains a pure function
    of ``(algorithm, p, nseg)``.  ``nseg <= 1`` returns the base schedule
    *unchanged* — the unsegmented path is bitwise-identical to the
    pre-segmentation engine by construction.
    """
    if nseg <= 1:
        return steps
    out: list[Step] = []
    for st in steps:
        for g in range(nseg):
            out.append(
                Step(
                    st.kind,
                    st.peer,
                    g * p + st.lo,
                    g * p + st.hi,
                    st.acc_first,
                )
            )
    return tuple(out)


@lru_cache(maxsize=None)
def compile_reduce_scatter(p: int) -> tuple[tuple[Step, ...], ...]:
    """Ring reduce-scatter schedules: rank ``r`` ends owning chunk ``r``.

    Chunk ``c`` circulates the ring starting at rank ``c + 1`` and is
    folded in ring order (``x_{c+1}, x_{c+2}, …, x_c``), completing at its
    destination after ``p - 1`` steps — ``(p-1)/p`` of the total payload
    sent per rank, the same volume as the direct per-destination routing
    but pipelined as a schedule of partial sums.
    """
    if p < 1:
        raise ValueError(f"group size must be >= 1, got {p}")
    if p == 1:
        return (tuple(),)
    scheds: list[list[Step]] = [[] for _ in range(p)]
    for r in range(p):
        right, left = (r + 1) % p, (r - 1) % p
        for s in range(p - 1):
            c_send = (r - 1 - s) % p
            c_recv = (r - 2 - s) % p
            scheds[r].append(Step("send", right, c_send, c_send + 1))
            scheds[r].append(
                Step("recv_reduce", left, c_recv, c_recv + 1, acc_first=False)
            )
    return tuple(tuple(s) for s in scheds)


def _compile_ring(p: int) -> tuple[tuple[Step, ...], ...]:
    scheds: list[list[Step]] = [[] for _ in range(p)]
    for r in range(p):
        right, left = (r + 1) % p, (r - 1) % p
        # Reduce-scatter: after step s every rank holds the running fold of
        # chunk (r - s - 1); chunk c completes at rank (c - 1) having been
        # folded in ring order starting at rank c.
        for s in range(p - 1):
            c_send = (r - s) % p
            c_recv = (r - s - 1) % p
            scheds[r].append(Step("send", right, c_send, c_send + 1))
            scheds[r].append(
                Step("recv_reduce", left, c_recv, c_recv + 1, acc_first=False)
            )
        # Allgather: circulate the finished chunks the rest of the way.
        for s in range(p - 1):
            c_send = (r + 1 - s) % p
            c_recv = (r - s) % p
            scheds[r].append(Step("send", right, c_send, c_send + 1))
            scheds[r].append(Step("recv", left, c_recv, c_recv + 1))
    return tuple(tuple(s) for s in scheds)


def _compile_rabenseifner(p: int) -> tuple[tuple[Step, ...], ...]:
    scheds: list[list[Step]] = [[] for _ in range(p)]
    lo = [0] * p
    hi = [p] * p
    covers_min = list(range(p))
    # Recursive halving reduce-scatter: partners at distance `mask` split
    # their (identical) current chunk range, each keeping the half that
    # contains its own destination chunk.
    mask = p >> 1
    while mask:
        old_min = covers_min[:]
        for r in range(p):
            peer = r ^ mask
            mid = (lo[r] + hi[r]) // 2
            if r & mask == 0:
                keep, send = (lo[r], mid), (mid, hi[r])
            else:
                keep, send = (mid, hi[r]), (lo[r], mid)
            scheds[r].append(Step("send", peer, send[0], send[1]))
            scheds[r].append(
                Step(
                    "recv_reduce",
                    peer,
                    keep[0],
                    keep[1],
                    acc_first=old_min[r] < old_min[peer],
                )
            )
            lo[r], hi[r] = keep
            covers_min[r] = min(old_min[r], old_min[peer])
        mask >>= 1
    # Recursive doubling allgather: owned ranges pair back up and merge.
    mask = 1
    while mask < p:
        old = [(lo[r], hi[r]) for r in range(p)]
        for r in range(p):
            peer = r ^ mask
            scheds[r].append(Step("send", peer, old[r][0], old[r][1]))
            scheds[r].append(Step("recv", peer, old[peer][0], old[peer][1]))
            lo[r] = min(old[r][0], old[peer][0])
            hi[r] = max(old[r][1], old[peer][1])
        mask <<= 1
    return tuple(tuple(s) for s in scheds)


def _compile_recursive_doubling(p: int) -> tuple[tuple[Step, ...], ...]:
    scheds: list[list[Step]] = [[] for _ in range(p)]
    pof2 = 1 << (p.bit_length() - 1)
    rem = p - pof2
    covers_min = list(range(p))
    # MPICH non-power-of-two fold: the first 2*rem ranks pair up, evens
    # fold into their odd neighbour and sit out the doubling.
    newrank: dict[int, int | None] = {}
    for r in range(p):
        if r < 2 * rem:
            if r % 2 == 0:
                scheds[r].append(Step("send", r + 1, 0, p))
                newrank[r] = None
            else:
                scheds[r].append(Step("recv_reduce", r - 1, 0, p, acc_first=False))
                covers_min[r] = r - 1
                newrank[r] = r // 2
        else:
            newrank[r] = r - rem
    inv = {nr: r for r, nr in newrank.items() if nr is not None}
    mask = 1
    while mask < pof2:
        old_min = covers_min[:]
        for nr in range(pof2):
            r, peer = inv[nr], inv[nr ^ mask]
            scheds[r].append(Step("send", peer, 0, p))
            scheds[r].append(
                Step("recv_reduce", peer, 0, p, acc_first=old_min[r] < old_min[peer])
            )
            covers_min[r] = min(old_min[r], old_min[peer])
        mask <<= 1
    for r in range(2 * rem):
        if r % 2 == 0:
            scheds[r].append(Step("recv", r + 1, 0, p))
        else:
            scheds[r].append(Step("send", r - 1, 0, p))
    return tuple(tuple(s) for s in scheds)


@lru_cache(maxsize=None)
def compile_hierarchical_allreduce(
    nodes: tuple[tuple[int, ...], ...], inter_algorithm: str = "ring"
) -> tuple[tuple[Step, ...], ...]:
    """Two-level allreduce schedules for a node-grouped communicator.

    ``nodes`` is the logical-node layout: a tuple of ``m`` node groups of
    ``k`` comm ranks each (uniform; every comm rank ``0..p-1`` appears
    exactly once).  The buffer is split into the usual ``p = k·m`` chunks;
    chunk ``c`` belongs to *window* ``c // m`` — local rank ``i`` of every
    node ends phase 1 owning window ``(i + 1) % k`` (``m`` consecutive
    chunks).  Three phases compose the allreduce:

    1. **intra-node ring reduce-scatter** over the ``k`` node-local ranks,
       moving whole windows (``(k-1)/k · n`` bytes per rank, all intra);
    2. **inter-node allreduce** among the ``m`` same-local-index
       counterparts on the owned window, running the *flat*
       ``inter_algorithm`` schedule (``compile_allreduce(m, ·)``) shifted
       into the window — the only phase that crosses the node boundary,
       ``2(n/k)(m-1)/m`` bytes per rank for the inter ring;
    3. **intra-node ring allgather** of the finished windows.

    The total per-rank volume equals the flat ring's bandwidth-optimal
    ``2n(p-1)/p``; what changes is *where* the bytes flow — inter-node
    traffic drops from the flat ring's ``2n(p-1)/p`` on every
    node-boundary edge to ``2(n/k)(m-1)/m`` uniformly.  The reduction
    order (intra ring fold per window, then the inter algorithm's
    documented order over node partials) is a pure function of
    ``(nodes, inter_algorithm)``, so results are deterministic across
    runs and backends — matching ``"direct"`` to floating-point
    *allclose*, like every other schedule.
    """
    if not nodes:
        raise ValueError("hierarchical allreduce needs at least one node")
    k = len(nodes[0])
    m = len(nodes)
    if any(len(g) != k for g in nodes):
        raise ValueError(
            f"hierarchical allreduce needs a uniform layout; got node sizes "
            f"{[len(g) for g in nodes]}"
        )
    p = k * m
    flat = sorted(r for g in nodes for r in g)
    if flat != list(range(p)):
        raise ValueError(
            f"node groups must cover comm ranks 0..{p - 1} exactly once; "
            f"got {flat}"
        )
    if inter_algorithm not in REDUCTION_ALGORITHMS:
        raise ValueError(
            f"unknown inter-node algorithm {inter_algorithm!r}; "
            f"expected one of {REDUCTION_ALGORITHMS}"
        )
    inter = compile_allreduce(m, inter_algorithm)
    scheds: list[list[Step]] = [[] for _ in range(p)]
    for u, group in enumerate(nodes):
        for i, r in enumerate(group):
            steps = scheds[r]
            right, left = group[(i + 1) % k], group[(i - 1) % k]
            # Phase 1: intra-node ring reduce-scatter over whole windows
            # (window c is folded in node-local ring order starting at
            # local rank c, mirroring _compile_ring's chunk discipline).
            for s in range(k - 1):
                c_send = (i - s) % k
                c_recv = (i - s - 1) % k
                steps.append(Step("send", right, c_send * m, (c_send + 1) * m))
                steps.append(
                    Step(
                        "recv_reduce", left, c_recv * m, (c_recv + 1) * m,
                        acc_first=False,
                    )
                )
            # Phase 2: the owned window's inter-node allreduce — the flat
            # m-rank schedule with chunks shifted into the window and
            # position peers mapped to the same-local-index counterparts.
            w = (i + 1) % k if k > 1 else 0
            base = w * m
            counterparts = tuple(nodes[j][i] for j in range(m))
            for st in inter[u]:
                steps.append(
                    Step(
                        st.kind,
                        counterparts[st.peer],
                        st.lo + base,
                        st.hi + base,
                        st.acc_first,
                    )
                )
            # Phase 3: intra-node ring allgather of the finished windows.
            for s in range(k - 1):
                c_send = (i + 1 - s) % k
                c_recv = (i - s) % k
                steps.append(Step("send", right, c_send * m, (c_send + 1) * m))
                steps.append(Step("recv", left, c_recv * m, (c_recv + 1) * m))
    return tuple(tuple(s) for s in scheds)


# ---------------------------------------------------------------------------
# Binomial trees for the rooted collectives
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TreeNode:
    """One rank's position in a binomial tree rooted at ``root``.

    ``children`` are ``(child comm rank, subtree comm ranks)`` pairs in
    *descending subtree size* (the order a binomial bcast sends); gather
    and reduce walk them in reverse (ascending relative rank), which is
    the documented fold order.
    """

    rank: int
    parent: int | None
    children: tuple[tuple[int, tuple[int, ...]], ...]


@lru_cache(maxsize=None)
def compile_tree(p: int, root: int) -> tuple[TreeNode, ...]:
    """Binomial tree over ``p`` ranks rooted at ``root`` (per-rank nodes)."""
    if not 0 <= root < p:
        raise ValueError(f"root={root} out of range for group of size {p}")
    nodes = []
    for r in range(p):
        rel = (r - root) % p
        parent: int | None = None
        mask = 1
        while mask < p:
            if rel & mask:
                parent = (r - mask) % p
                break
            mask <<= 1
        # For non-roots the loop broke at the lowest set bit of ``rel``;
        # for the root it ran to the first power of two >= p.  Children sit
        # at every smaller power-of-two distance.
        children: list[tuple[int, tuple[int, ...]]] = []
        cmask = mask >> 1
        while cmask > 0:
            if rel + cmask < p:
                subtree = tuple(
                    (root + rel2) % p
                    for rel2 in range(rel + cmask, min(rel + 2 * cmask, p))
                )
                children.append(((r + cmask) % p, subtree))
            cmask >>= 1
        nodes.append(TreeNode(rank=r, parent=parent, children=tuple(children)))
    return tuple(nodes)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _stage_segment(comm, seg: np.ndarray) -> np.ndarray:
    """Copy ``seg`` into a pooled staging buffer; return the frozen view.

    The working buffer keeps being reduced into after a send, so segments
    must never cross the boundary as views of it (a lagging receiver would
    observe the mutation under the thread backend's zero-copy transport).
    The pool reclaims the staging buffer once the receivers drop the view
    (:meth:`~repro.comm.buffers.BufferPool.give_deferred`).
    """
    pool = comm._alg_pool
    buf = pool.take(seg.shape, seg.dtype)
    np.copyto(buf, seg)
    view = buf.view()
    view.flags.writeable = False
    pool.give_deferred(buf, view)
    return view


class ScheduleRunner:
    """Drives one compiled reduction schedule over a communicator.

    Execution is *progressive*: :meth:`launch` performs every step up to
    the first unsatisfied receive (sends are eager and never block),
    :meth:`progress` advances as far as nonblocking probes allow, and
    :meth:`finish` blocks through the remaining steps.  The arithmetic
    order is fixed by the compiled schedule, so *when* progress happens
    never affects the result.
    """

    def __init__(
        self,
        comm,
        opname: str,
        steps: tuple[Step, ...],
        value: np.ndarray,
        fn: Callable[[Any, Any], Any],
        seq: int,
        offsets: tuple[int, ...] | None = None,
        owns_buffer: bool = False,
        inter_peers: tuple[bool, ...] | None = None,
        ufunc: Any = None,
    ) -> None:
        self._comm = comm
        self._opname = opname
        self._steps = steps
        self._shape = value.shape
        # Private working copy: flattened, reduced in place.
        # ``owns_buffer=True`` skips the copy when the caller hands over a
        # freshly built array nothing else references (e.g. the
        # concatenated reduce_scatter parts).
        flat = np.ascontiguousarray(value).reshape(-1)
        self._buf = flat if owns_buffer else flat.copy()
        # ``offsets`` overrides the near-equal chunking for ops whose
        # chunks are semantic units (reduce_scatter's per-destination
        # parts); every rank must derive the identical table.
        self._off = (
            offsets
            if offsets is not None
            else chunk_offsets(self._buf.size, comm.size)
        )
        self._fn = fn
        # Known binary ufunc matching ``fn`` (e.g. ``np.add`` for "sum"):
        # lets ``_apply`` accumulate in place instead of allocating a
        # temporary and writing it back.  Operand order still follows
        # ``acc_first``, so results stay bitwise identical to the
        # ``fn``-based path.
        self._ufunc = ufunc
        # Backends whose ``deliver`` copies the payload out synchronously
        # (process/socket: into the shm arena or a pickle frame) don't need
        # the staging copy that protects zero-copy transports from seeing
        # the working buffer mutate after a send.
        self._stage = not getattr(comm._world, "copies_on_send", False)
        self._tag = comm._tag_key(("#alg", seq))
        self._seq = seq
        self._pos = 0
        # ``inter_peers[c]`` flags comm rank ``c`` as living on a different
        # logical node (per the world's host map): bytes exchanged with such
        # peers are additionally tallied in the ``*_inter`` counters, which
        # the hierarchical benchmark checks against the two-tier cost
        # model's predicted inter-node wire volume.
        self._inter = inter_peers
        self.wire_sent = 0
        self.wire_recv = 0
        self.wire_sent_inter = 0
        self.wire_recv_inter = 0

    # -- step primitives ---------------------------------------------------
    def _range(self, step: Step) -> tuple[int, int]:
        return self._off[step.lo], self._off[step.hi]

    def _send(self, step: Step) -> None:
        a, b = self._range(step)
        if b == a:
            return  # empty segment: skipped symmetrically on the recv side
        comm = self._comm
        dest = comm._members[step.peer]
        if self._stage or dest == comm.world_rank:
            view = _stage_segment(comm, self._buf[a:b])
        else:
            view = self._buf[a:b]
        comm._world.deliver(comm.world_rank, dest, self._tag, view)
        _trace.flow_out(dest, self._tag)
        self.wire_sent += view.nbytes
        if self._inter is not None and self._inter[step.peer]:
            self.wire_sent_inter += view.nbytes

    def _apply(self, step: Step, payload: np.ndarray) -> None:
        a, b = self._range(step)
        if step.kind == "recv":
            self._buf[a:b] = payload
        elif self._ufunc is not None:
            seg = self._buf[a:b]
            if step.acc_first:
                self._ufunc(seg, payload, out=seg)
            else:
                self._ufunc(payload, seg, out=seg)
        else:
            seg = self._buf[a:b]
            self._buf[a:b] = (
                self._fn(seg, payload) if step.acc_first else self._fn(payload, seg)
            )
        _trace.flow_in(self._comm._members[step.peer], self._tag)
        self.wire_recv += payload.nbytes
        if self._inter is not None and self._inter[step.peer]:
            self.wire_recv_inter += payload.nbytes

    def _describe(self) -> str:
        # ``World.collect`` appends "(world rank dest <- source, tag=...)",
        # so a timeout reads e.g. "iallreduce[seq=0, schedule step 3](world
        # rank 1 <- 0, ...) timed out" — naming the op, sequence, schedule
        # position, waiting rank, and stuck peer.
        return f"{self._opname}[seq={self._seq}, schedule step {self._pos}]"

    # -- driving -----------------------------------------------------------
    def launch(self) -> bool:
        """Run eagerly up to the first unsatisfied receive (never blocks)."""
        return self.progress()

    def progress(self) -> bool:
        """Advance as far as nonblocking probes allow; True when complete."""
        comm = self._comm
        while self._pos < len(self._steps):
            step = self._steps[self._pos]
            if step.kind == "send":
                self._send(step)
            else:
                a, b = self._range(step)
                if b > a:
                    got, payload = comm._world.try_collect(
                        comm.world_rank, comm._members[step.peer], self._tag
                    )
                    if not got:
                        return False
                    self._apply(step, payload)
            self._pos += 1
        return True

    def finish(self) -> np.ndarray:
        """Block through the remaining steps; return the reduced array."""
        comm = self._comm
        while self._pos < len(self._steps):
            step = self._steps[self._pos]
            if step.kind == "send":
                self._send(step)
            else:
                a, b = self._range(step)
                if b > a:
                    payload = comm._world.collect(
                        comm.world_rank,
                        comm._members[step.peer],
                        self._tag,
                        opname=self._describe(),
                    )
                    self._apply(step, payload)
            self._pos += 1
        return self._buf.reshape(self._shape)

    @property
    def complete(self) -> bool:
        return self._pos >= len(self._steps)


class _TreeTransport:
    """Minimal pt2pt endpoint the tree collectives run over."""

    def __init__(self, comm, opname: str, seq: int) -> None:
        self._comm = comm
        self._opname = opname
        self._tag = comm._tag_key(("#alg", seq))
        self.wire_sent = 0
        self.wire_recv = 0

    def send(self, peer: int, payload: Any) -> None:
        from repro.comm.communicator import _freeze, payload_nbytes

        comm = self._comm
        frozen = _freeze(payload)
        comm._world.deliver(
            comm.world_rank, comm._members[peer], self._tag, frozen
        )
        _trace.flow_out(comm._members[peer], self._tag)
        self.wire_sent += payload_nbytes(frozen)

    def recv(self, peer: int) -> Any:
        from repro.comm.communicator import payload_nbytes

        comm = self._comm
        payload = comm._world.collect(
            comm.world_rank,
            comm._members[peer],
            self._tag,
            opname=f"{self._opname}[tree] <- comm rank {peer}",
        )
        _trace.flow_in(comm._members[peer], self._tag)
        self.wire_recv += payload_nbytes(payload)
        return payload


def run_tree_bcast(comm, node: TreeNode, payload: Any, opname: str, seq: int):
    """Binomial broadcast: pure routing, bitwise-identical to ``"direct"``."""
    t = _TreeTransport(comm, opname, seq)
    if node.parent is not None:
        payload = t.recv(node.parent)
    for child, _subtree in node.children:  # largest subtree first
        t.send(child, payload)
    return payload, t


def run_tree_reduce(
    comm, node: TreeNode, value: Any, fn: Callable[[Any, Any], Any],
    opname: str, seq: int,
):
    """Binomial reduce toward the root.

    Children are folded in ascending relative rank (each delivering its
    already-folded subtree), so for root 0 on 4 ranks the root computes
    ``(x0 + x1) + (x2 + x3)`` — fixed for a given ``(p, root)``.
    """
    t = _TreeTransport(comm, opname, seq)
    acc = value
    for child, _subtree in reversed(node.children):  # ascending relative rank
        acc = fn(acc, t.recv(child))
    if node.parent is not None:
        t.send(node.parent, acc)
        return None, t
    return acc, t


def run_tree_gather(comm, node: TreeNode, payload: Any, opname: str, seq: int):
    """Binomial gather: subtree bundles of ``(comm rank, payload)`` pairs
    merge on the way up; the root assembles the comm-rank-ordered list.
    Pure routing — bitwise-identical to ``"direct"``."""
    t = _TreeTransport(comm, opname, seq)
    bundle: list[tuple[int, Any]] = [(node.rank, payload)]
    for child, _subtree in reversed(node.children):
        bundle.extend(t.recv(child))
    if node.parent is not None:
        t.send(node.parent, bundle)
        return None, t
    slots: list[Any] = [None] * comm.size
    for rank, item in bundle:
        slots[rank] = item
    return slots, t


def run_ring_allgather(comm, payload: Any, opname: str, seq: int):
    """Ring allgather: ``(source comm rank, payload)`` items circulate the
    ring for ``p - 1`` steps, each rank forwarding the item it just
    received.  Neighbour-only communication; pure routing, so the result
    slots are bitwise-identical to the ``"direct"`` deposit path (payloads
    of any type and heterogeneous sizes route unchanged)."""
    from repro.comm.communicator import _freeze

    t = _TreeTransport(comm, opname, seq)
    p = comm.size
    right, left = (comm.rank + 1) % p, (comm.rank - 1) % p
    slots: list[Any] = [None] * p
    item: tuple[int, Any] = (comm.rank, _freeze(payload))
    slots[comm.rank] = item[1]
    for _ in range(p - 1):
        t.send(right, item)
        item = t.recv(left)
        slots[item[0]] = item[1]
    return slots, t


def run_rd_allgather(comm, payload: Any, opname: str, seq: int):
    """Recursive-doubling allgather: bundles of ``(source comm rank,
    payload)`` pairs double each round, ``lg p`` rounds total.  Requires a
    power-of-two group (the communicator falls back to the ring schedule
    otherwise).  Pure routing — bitwise-identical to ``"direct"``."""
    from repro.comm.communicator import _freeze

    t = _TreeTransport(comm, opname, seq)
    p = comm.size
    bundle: list[tuple[int, Any]] = [(comm.rank, _freeze(payload))]
    mask = 1
    while mask < p:
        peer = comm.rank ^ mask
        t.send(peer, bundle)
        bundle = bundle + t.recv(peer)
        mask <<= 1
    slots: list[Any] = [None] * p
    for rank, item in bundle:
        slots[rank] = item
    return slots, t


def run_tree_scatter(
    comm, node: TreeNode, payloads: Any, root: int, opname: str, seq: int
):
    """Binomial scatter: the root sends each child its subtree's bundle of
    ``(comm rank, payload)`` pairs; interior nodes keep their own piece and
    forward the rest.  Pure routing — bitwise-identical to ``"direct"``."""
    t = _TreeTransport(comm, opname, seq)
    if node.parent is None:
        bundle = [(j, payloads[j]) for j in range(comm.size)]
    else:
        bundle = t.recv(node.parent)
    by_rank = dict(bundle)
    own = by_rank[node.rank]
    for child, subtree in node.children:
        t.send(child, [(r, by_rank[r]) for r in subtree])
    return own, t
