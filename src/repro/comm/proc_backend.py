"""Process-per-rank SPMD backend with shared-memory transport.

The paper's measurements assume one MPI process per accelerator; the thread
backend time-shares one interpreter, so its overlap wins are
synchronization-bound.  This backend runs **one OS process per rank**
(forked, so ``run_spmd``'s closures and captured arrays are inherited
without pickling) and implements the same
:class:`~repro.comm.backend.BaseWorld` contract:

* **Transport** — every rank owns a ``multiprocessing.Queue`` inbox.
  Large C-contiguous ndarray payloads travel through a fixed
  ``multiprocessing.shared_memory.SharedMemory`` **arena** created by the
  parent before the fork: the sender copies the array into a run of
  arena blocks and enqueues only a tiny descriptor; the receiver
  reconstructs the array from the shared mapping, copies it out, and frees
  the blocks.  Small payloads and arbitrary Python objects fall back to
  pickling through the queue (as does any array when the arena is
  momentarily full — the send path never blocks, preserving the eager
  buffered-send contract).  Nested containers are walked recursively, so a
  shuffle's list-of-arrays payload ships its big pieces through the arena
  and its skeleton through the queue.
* **Collectives** — allgather-style message exchange: every member sends
  its (frozen) contribution to every peer under a ``(group key, sequence)``
  tag and combines the received slot list locally with the *same* combine
  callable the thread backend runs, in the same comm-rank order — so
  results are bitwise identical across backends.  Nonblocking collectives
  deposit eagerly and only the ``wait()`` side receives, preserving the
  "a fast rank never waits for readers" discipline.
* **Failure handling** — a shared abort event plus a result queue, with a
  structured abort *reason* (first failure wins) in a shared buffer so
  every survivor's ``CommAborted`` names the failed rank and cause.  A
  rank that raises aborts the job; the parent re-raises the first real
  error by rank (``CommAborted`` from surviving ranks is secondary, as in
  the thread backend).  A **child-exit watcher** in the parent (paced by
  ``JobConfig.detect_interval``) spots a rank that died without reporting
  — segfault, OOM kill, or an injected ``os._exit`` crash — and aborts
  the job naming that rank within about one interval, so survivors fail
  fast instead of waiting out their per-op timeouts; each child also
  stamps a shared **heartbeat** slot from a daemon thread, which the
  parent uses to flag stragglers.  Hangs fail with a diagnostic naming
  the waiting world rank, operation, sequence number, and the pending
  inbox.  On teardown the parent closes and **unlinks** every
  shared-memory segment and closes every queue — with failures logged as
  warnings, never swallowed — so a completed *or aborted* job leaves
  nothing in ``/dev/shm`` (regression-tested by
  ``tests/test_proc_backend.py``).

What this backend does *not* model: NUMA/core pinning, a real NIC, or
network topology — it is "MPI on one host", giving the engine genuinely
parallel rank execution (subject to available cores) so BENCH_* overlap
measurements reflect parallel compute rather than removed GIL contention.
"""

from __future__ import annotations

import logging
import os
import pickle
import queue as queue_mod
import secrets
import select
import threading
import time
import traceback
from collections import deque
from multiprocessing import shared_memory
from time import monotonic
from typing import Any, Callable

import numpy as np

from repro.comm.backend import (
    BaseWorld,
    CommAborted,
    GroupChannel,
    _format_pending,
    _retry_note,
    register_backend,
)
from repro.comm.faults import INJECTED_CRASH_EXIT, FaultInjector, JobConfig
from repro.obs import tracer

logger = logging.getLogger(__name__)

#: Arrays at or above this many bytes are shipped through the shared-memory
#: arena; smaller ones ride the queue pickle (latency-bound anyway).
#: Env override: ``REPRO_SHM_MIN_BYTES`` (read per job).
DEFAULT_SHM_MIN_BYTES = 2048

#: Total arena capacity per SPMD job.  Env override: ``REPRO_SHM_BYTES``.
DEFAULT_ARENA_BYTES = 64 << 20

#: Arena allocation granularity.  Env override: ``REPRO_SHM_BLOCK``.
DEFAULT_ARENA_BLOCK = 32 << 10

#: Largest frame (length prefix + pickled message) eligible for the
#: descriptor-pipe fast lane.  POSIX guarantees writes of at most
#: ``PIPE_BUF`` (>= 4096) bytes to an ``O_NONBLOCK`` pipe are atomic —
#: they either transfer completely or fail with ``EAGAIN`` — so framed
#: messages never interleave or split and the reader needs no partial-
#: frame recovery across sender crashes.
_PIPE_FRAME_MAX = 4096


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))

#: Name prefix of the job arenas (leak checks scan /dev/shm for this).
SHM_PREFIX = "repro-arena-"

#: How long the parent keeps draining results after the job starts dying
#: (abort event set, a child crashed, or all children exited) before
#: declaring unreported ranks hung and tearing everything down.  While the
#: children are alive and healthy the parent waits indefinitely, exactly
#: like the thread backend's joins — per-operation timeouts are enforced
#: *inside* the ranks.
_PARENT_GRACE = 30.0


class _ShmRef:
    """Placeholder for an ndarray shipped out-of-band through the arena."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __reduce__(self):
        return (_ShmRef, (self.index,))


class _Arena:
    """Fixed shared-memory segment with a block-bitmap first-fit allocator.

    Created by the parent before the fork, so every rank inherits the same
    mapping (no per-message attach) and the parent alone owns the unlink.
    Allocation is guarded by one cross-process lock; ``alloc`` returns
    ``None`` when no contiguous run is free — callers must fall back to
    inline pickling rather than block, keeping sends eager.
    """

    def __init__(self, ctx, nbytes: int, block: int) -> None:
        self.block = int(block)
        self.nblocks = max(1, int(nbytes) // self.block)
        self.shm = shared_memory.SharedMemory(
            create=True,
            size=self.nblocks * self.block,
            name=f"{SHM_PREFIX}{os.getpid()}-{secrets.token_hex(4)}",
        )
        self.name = self.shm.name
        self._lock = ctx.Lock()
        # 0 = free, 1 = used; shared (inherited) and lock-protected.
        self._bitmap = ctx.RawArray("b", self.nblocks)
        # Lazy per-process flat view of the segment (see ``flat``).
        self._flat: np.ndarray | None = None

    def flat(self) -> np.ndarray:
        """Flat ``uint8`` view of the whole segment, cached per process.

        Constructing ``np.ndarray(..., buffer=self.shm.buf, offset=...)``
        per message re-exports and validates the buffer every time (~10us);
        slicing one cached view is ~1us, and the send/receive paths do it
        for every arena transfer.  Created lazily so the parent (which
        never moves payloads) holds no export that would block ``destroy``.
        """
        view = self._flat
        if view is None:
            view = self._flat = np.frombuffer(self.shm.buf, dtype=np.uint8)
        return view

    def alloc(self, nbytes: int) -> int | None:
        """Byte offset of a free run covering ``nbytes``, or ``None``.

        The first-fit search runs at C speed: the bitmap is a ctypes
        buffer, so a run of free blocks is a ``bytes.find`` for a run of
        zero bytes — the time under the shared lock is one O(nblocks)
        memchr-style scan plus marking ``need`` blocks, not a Python loop
        over every block.
        """
        need = max(1, -(-int(nbytes) // self.block))
        if need > self.nblocks:
            return None
        bm = self._bitmap
        zeros = b"\x00" * need
        with self._lock:
            start = bytes(bm).find(zeros)
            if start < 0:
                return None
            bm[start : start + need] = b"\x01" * need
            return start * self.block

    def free(self, offset: int, nbytes: int) -> None:
        start = int(offset) // self.block
        count = max(1, -(-int(nbytes) // self.block))
        with self._lock:
            self._bitmap[start : start + count] = b"\x00" * count

    def used_blocks(self) -> int:
        with self._lock:
            return bytes(self._bitmap).count(1)

    def destroy(self) -> None:
        """Parent-side teardown: unmap and unlink the segment."""
        self._flat = None  # release the buffer export before close()
        try:
            self.shm.close()
        finally:
            self.shm.unlink()


#: Capacity of the shared abort-reason buffer (UTF-8 bytes, NUL-padded).
_REASON_BYTES = 1024


class _SharedJobState:
    """Everything the forked ranks share, created pre-fork by the parent."""

    def __init__(self, ctx, nranks: int, config: JobConfig) -> None:
        self.nranks = nranks
        self.config = config
        self.timeout = config.timeout
        self.shm_min = _env_int("REPRO_SHM_MIN_BYTES", DEFAULT_SHM_MIN_BYTES)
        self.queues = [ctx.Queue() for _ in range(nranks)]
        self.results = ctx.Queue()
        self.abort_event = ctx.Event()
        # First failure wins: the reason is written exactly once, under
        # abort_lock, before abort_event is set, so any rank observing the
        # event also observes the reason.
        self.abort_lock = ctx.Lock()
        self.abort_reason_buf = ctx.Array("c", _REASON_BYTES, lock=False)
        #: monotonic() stamp per rank, refreshed by a daemon thread in each
        #: child; the parent flags ranks whose stamp goes stale.
        self.heartbeats = ctx.RawArray("d", nranks)
        self.arena = _Arena(
            ctx,
            _env_int("REPRO_SHM_BYTES", DEFAULT_ARENA_BYTES),
            _env_int("REPRO_SHM_BLOCK", DEFAULT_ARENA_BLOCK),
        )
        # Descriptor-pipe fast lane: one raw ``os.pipe`` per ordered rank
        # pair, created pre-fork so both ends are inherited.  Small framed
        # messages (arena descriptors, mostly) are written *synchronously*
        # by the sender — no ``mp.Queue`` feeder-thread handoff, which on a
        # contended host costs a GIL handoff plus a scheduler round trip
        # per message.  Oversized frames and full pipes fall back to the
        # queue; per-(sender, dest) sequence numbers let the receiver
        # restore exact send order across the two lanes.
        self.pipes: list[list[tuple[int, int] | None]] = [
            [None] * nranks for _ in range(nranks)
        ]
        for s in range(nranks):
            for d in range(nranks):
                if s != d:
                    r, w = os.pipe()
                    os.set_blocking(r, False)
                    os.set_blocking(w, False)
                    self.pipes[s][d] = (r, w)

    def _close_pipes(self) -> None:
        """Close this process's copies of the fast-lane pipe fds (idempotent).

        Run by the *parent* (post-fork and again at teardown): the children
        inherited their own descriptors at fork, so the parent's copies are
        only an fd-hygiene liability.
        """
        for row in getattr(self, "pipes", []):
            for i, pair in enumerate(row):
                if pair is not None:
                    for fd in pair:
                        try:
                            os.close(fd)
                        except OSError:  # pragma: no cover - already closed
                            pass
                    row[i] = None

    def set_abort(self, reason: str | None = None) -> None:
        """Abort the job; the first caller's ``reason`` is the recorded one."""
        with self.abort_lock:
            if self.abort_event.is_set():
                return
            if reason:
                data = reason.encode("utf-8", "replace")[: _REASON_BYTES - 1]
                self.abort_reason_buf[: len(data)] = data
            self.abort_event.set()

    def get_abort_reason(self) -> str | None:
        raw = bytes(self.abort_reason_buf)
        text = raw.split(b"\x00", 1)[0].decode("utf-8", "replace")
        return text or None

    def post_fork_parent(self) -> None:
        """Hook run in the parent once every child has been forked.

        Releases the parent's copies of the fast-lane pipe fds (the
        children own theirs from fork on); the socket backend's subclass
        additionally closes its pre-fork-bound listening sockets.
        """
        self._close_pipes()

    def teardown(self) -> None:
        """Parent-side cleanup: release queues, unlink the arena.

        Failures are logged as warnings, never swallowed silently — a
        cleanup error here is exactly the kind of leak (a stuck feeder
        thread, an orphaned ``/dev/shm`` segment) an operator needs to see.
        """
        self._close_pipes()
        for i, q in enumerate([*self.queues, self.results]):
            try:
                q.close()
                q.cancel_join_thread()
            except Exception as exc:  # pragma: no cover - depends on host
                logger.warning(
                    "proc backend teardown: failed to close queue %d: %s: %s",
                    i, type(exc).__name__, exc,
                )
        try:
            self.arena.destroy()
        except Exception as exc:  # pragma: no cover - depends on host
            logger.warning(
                "proc backend teardown: failed to unlink arena %s: %s: %s "
                "(a stale /dev/shm/%s segment may remain)",
                self.arena.name, type(exc).__name__, exc, self.arena.name,
            )


def _pack(
    payload: Any, arena: _Arena, descs: list, counters: dict, shm_min: int
) -> Any:
    """Replace large arrays in ``payload`` with arena references.

    Returns the queue-safe skeleton; array data lands in the arena with a
    descriptor appended to ``descs``.  Anything that does not fit (or is
    not a plain ndarray) is left in the skeleton for the queue pickle.
    """
    if isinstance(payload, np.ndarray) and payload.dtype != object:
        if payload.nbytes >= shm_min:
            arr = np.ascontiguousarray(payload)
            offset = arena.alloc(arr.nbytes)
            if offset is not None:
                dst = (
                    arena.flat()[offset : offset + arr.nbytes]
                    .view(arr.dtype)
                    .reshape(arr.shape)
                )
                np.copyto(dst, arr)
                descs.append((offset, arr.nbytes, arr.shape, arr.dtype.str))
                counters["shm_messages"] += 1
                counters["shm_bytes"] += arr.nbytes
                return _ShmRef(len(descs) - 1)
            counters["arena_full_fallbacks"] += 1
        counters["inline_messages"] += 1
        if payload.flags.writeable:
            # ``mp.Queue.put`` pickles in the feeder thread *after*
            # returning, so a still-writable array (e.g. a schedule's
            # working buffer, delivered unstaged because this backend
            # advertises ``copies_on_send``) could mutate before it is
            # serialized.  Snapshot it now so the inline path gives the
            # same synchronous-copy guarantee as the arena path.
            return payload.copy()
        return payload
    if isinstance(payload, tuple):
        return tuple(_pack(p, arena, descs, counters, shm_min) for p in payload)
    if isinstance(payload, list):
        return [_pack(p, arena, descs, counters, shm_min) for p in payload]
    if isinstance(payload, dict):
        return {
            k: _pack(v, arena, descs, counters, shm_min)
            for k, v in payload.items()
        }
    return payload


def _unpack(payload: Any, arrays: list) -> Any:
    """Rebuild a payload from its skeleton + out-of-band arrays.

    Received arrays are marked read-only, mirroring the thread backend's
    frozen zero-copy views: received data is immutable by contract.
    """
    if isinstance(payload, _ShmRef):
        return arrays[payload.index]
    if isinstance(payload, np.ndarray):
        if payload.flags.writeable and payload.dtype != object:
            payload.flags.writeable = False
        return payload
    if isinstance(payload, tuple):
        return tuple(_unpack(p, arrays) for p in payload)
    if isinstance(payload, list):
        return [_unpack(p, arrays) for p in payload]
    if isinstance(payload, dict):
        return {k: _unpack(v, arrays) for k, v in payload.items()}
    return payload


class _Inbox:
    """(source, tag)-matched mailbox fed by this rank's message queue.

    The queue is FIFO over all sources; messages that do not match the
    current receive are buffered locally, preserving per-(source, tag)
    FIFO order — the same matching the thread backend's ``_Mailbox`` does.
    """

    def __init__(self, world: "ProcessWorld") -> None:
        self._world = world
        self._queue = world._shared.queues[world.rank]
        self._buffered: dict[tuple[int, Any], deque[Any]] = {}
        # Cross-lane ordering: next expected per-sender sequence number,
        # plus a parking lot for messages that overtook a predecessor
        # still in the other lane (always *future* seqs — each lane is
        # itself FIFO, so a message can only arrive early, never late).
        self._expected = [0] * world.size
        self._parked: dict[tuple[int, int], tuple] = {}
        # Fast-lane read ends: source rank -> fd, with a per-source
        # accumulator for frames split across reads (atomic writes mean a
        # frame is either fully in the pipe or absent, but one ``os.read``
        # may still return several frames plus the head of another).
        self._rpipes: dict[int, int] = {}
        self._rbufs: dict[int, bytearray] = {}
        pipes = getattr(world._shared, "pipes", None)
        if pipes is not None:
            for s in range(world.size):
                pair = pipes[s][world.rank] if s != world.rank else None
                if pair is not None:
                    self._rpipes[s] = pair[0]
                    self._rbufs[s] = bytearray()
        reader = getattr(self._queue, "_reader", None)
        self._qfd = reader.fileno() if reader is not None else None

    def _admit(self, source: int, tag: Any, skeleton: Any, descs: list) -> None:
        arena = self._world._shared.arena
        arrays = []
        for offset, nbytes, shape, dtype in descs:
            src = (
                arena.flat()[offset : offset + nbytes].view(dtype).reshape(shape)
            )
            out = src.copy()
            out.flags.writeable = False
            arrays.append(out)
            arena.free(offset, nbytes)
        self._deposit(source, tag, _unpack(skeleton, arrays))

    def _deposit(self, source: int, tag: Any, payload: Any) -> None:
        # Single-consumer buffer: no locking.  The socket backend's inbox
        # overrides this with its condition-variable ``put`` (its buffer
        # is fed from multiple threads).
        self._buffered.setdefault((source, tag), deque()).append(payload)

    def _store(self, msg: tuple) -> None:
        seq, source, tag, skeleton, descs = msg
        if seq != self._expected[source]:
            self._parked[(source, seq)] = msg
            return
        while True:
            self._admit(source, tag, skeleton, descs)
            self._expected[source] += 1
            nxt = self._parked.pop((source, self._expected[source]), None)
            if nxt is None:
                return
            _, source, tag, skeleton, descs = nxt

    def _drain_pipe(self, source: int) -> bool:
        """Read and store every complete fast-lane frame from ``source``."""
        fd = self._rpipes[source]
        buf = self._rbufs[source]
        while True:
            try:
                chunk = os.read(fd, 1 << 16)
            except BlockingIOError:
                break
            except OSError:  # pragma: no cover - fd torn down mid-drain
                chunk = b""
            if not chunk:
                # EOF: the sender exited and the pipe is drained.  Stop
                # watching the fd (a persistent-EOF fd would spin the
                # select loop); crash detection is the parent watcher's
                # job, not ours.
                del self._rpipes[source]
                break
            buf += chunk
        got = False
        while len(buf) >= 4:
            ln = int.from_bytes(buf[:4], "little")
            if len(buf) < 4 + ln:
                break
            msg = pickle.loads(bytes(buf[4 : 4 + ln]))
            del buf[: 4 + ln]
            self._store(msg)
            got = True
        return got

    def _drain_queue_ready(self) -> bool:
        got = False
        while True:
            try:
                msg = self._queue.get_nowait()
            except queue_mod.Empty:
                return got
            self._store(msg)
            got = True

    def _drain_blocking(self, timeout: float) -> bool:
        if self._qfd is None:  # pragma: no cover - mp.Queue internals changed
            if self._drain_ready():
                return True
            try:
                msg = self._queue.get(timeout=max(0.0, timeout))
            except queue_mod.Empty:
                return False
            self._store(msg)
            return True
        fds = [*self._rpipes.values(), self._qfd]
        ready, _, _ = select.select(fds, [], [], max(0.0, timeout))
        if not ready:
            return False
        return self._drain_ready()

    def _drain_ready(self) -> bool:
        # One zero-timeout ``select`` replaces p-1 EAGAIN reads plus a
        # queue probe (and its ``Empty`` exception) — this runs on every
        # nonblocking ``try_get``, so the constant matters.
        if self._qfd is None:  # pragma: no cover - mp.Queue internals changed
            got = False
            for source in list(self._rpipes):
                got |= self._drain_pipe(source)
            return got | self._drain_queue_ready()
        fds = [*self._rpipes.values(), self._qfd]
        ready, _, _ = select.select(fds, [], [], 0)
        if not ready:
            return False
        got = False
        if self._rpipes:
            rset = set(ready)
            for source, fd in list(self._rpipes.items()):
                if fd in rset:
                    got |= self._drain_pipe(source)
        if self._qfd in ready:
            got |= self._drain_queue_ready()
        return got

    def get(
        self, source: int, tag: Any, timeout: float, describe: Any
    ) -> Any:
        # ``describe`` may be a zero-arg callable: diagnostics are only
        # formatted on the abort/timeout slow paths, so the hot receive
        # loop never pays for an f-string (tag reprs are not free at
        # tens of thousands of messages per second).
        world = self._world
        retries = world.config.retries
        attempt = 0
        deadline = monotonic() + timeout
        poll = min(0.25, max(0.01, world.config.detect_interval))
        while True:
            q = self._buffered.get((source, tag))
            if q:
                return q.popleft()
            if world.aborted:
                raise CommAborted(
                    f"{describe() if callable(describe) else describe} "
                    f"interrupted: world aborted{world.abort_suffix()}"
                )
            remaining = deadline - monotonic()
            if remaining <= 0:
                self._drain_ready()
                if attempt < retries:
                    attempt += 1
                    logger.warning(
                        "%s still waiting after %.1fs; retry %d/%d "
                        "(pending inbox: %s)",
                        describe() if callable(describe) else describe,
                        timeout, attempt, retries,
                        self.pending_keys(),
                    )
                    deadline = monotonic() + timeout
                    continue
                # Abort the whole job: a wedged collective should fail
                # everywhere with this rank's diagnostic, not hang peers.
                reason = (
                    f"{describe() if callable(describe) else describe} "
                    f"timed out after {timeout:.1f}s"
                    f"{_retry_note(attempt)}; "
                    f"pending inbox: {self.pending_keys()}"
                )
                world.abort(reason)
                raise CommAborted(reason, kind="timeout")
            self._drain_blocking(min(remaining, poll))

    def try_get(self, source: int, tag: Any) -> tuple[bool, Any]:
        self._drain_ready()
        q = self._buffered.get((source, tag))
        if q:
            return True, q.popleft()
        if self._world.aborted:
            raise CommAborted(
                f"irecv(source={source}, tag={tag}) interrupted: "
                f"world aborted{self._world.abort_suffix()}"
            )
        return False, None

    def pending_keys(self, limit: int = 8) -> str:
        """Queued-but-unmatched ``(source, tag)`` pairs, for diagnostics."""
        keys = [k for k, q in self._buffered.items() if q]
        return _format_pending(keys, limit)


class _ProcToken:
    """Nonblocking-collective token of the process backend."""

    __slots__ = ("tag", "seq", "opname", "rank", "slots", "outstanding")

    def __init__(self, tag, seq, opname, rank, slots, outstanding):
        self.tag = tag
        self.seq = seq
        self.opname = opname
        self.rank = rank
        self.slots = slots
        self.outstanding = outstanding  # comm-rank -> world rank, not yet received


class ProcessChannel(GroupChannel):
    """Collective channel over pt2pt message exchange.

    Per-group sequence counters are process-local; they match across ranks
    because every member issues a group's collectives in the same program
    order — the discipline MPI itself imposes.
    """

    def __init__(
        self,
        world: "ProcessWorld",
        key: Any,
        members: tuple[int, ...],
        rank: int,
    ) -> None:
        self._world = world
        self._key = key
        self._members = members
        self._rank = rank
        self._coll_seq = 0

    def _diag(self, opname: str, seq: int, waiting_for: int | None = None) -> str:
        tail = (
            f", waiting for the contribution of world rank {waiting_for}"
            if waiting_for is not None
            else ""
        )
        return (
            f"{opname}[seq={seq}] on comm {self._key!r} at world rank "
            f"{self._members[self._rank]} (comm rank {self._rank}){tail}"
        )

    def barrier(self, opname: str = "barrier") -> None:
        self.collective(None, lambda slots: None, opname)

    def collective(
        self,
        contribution: Any,
        combine: Callable[[list[Any]], Any],
        opname: str,
        needs: Callable[[int], Any] | None = None,
        parts: bool = False,
    ) -> Any:
        """Exchange contributions by message, narrowed where possible.

        * default — allgather: every member ships its whole contribution
          to every peer;
        * ``needs`` (rooted collectives) — a member ships only to the
          peers whose combine reads its slot and receives only the slots
          its own combine reads (gather flows everyone→root, bcast
          root→everyone).  A scatter's payload is still the root's full
          per-rank list — the slots model carries rooted contributions
          whole, only the routing narrows;
        * ``parts`` (alltoall-shaped) — the contribution is
          per-destination, so only piece ``j`` travels to rank ``j`` and
          ``combine`` sees the received-pieces list, MPI-alltoall volume.

        Every schedule is derived identically on all members, so message
        matching is preserved.
        """
        rank = self._rank
        seq = self._coll_seq
        self._coll_seq += 1
        tag = (self._key, "#coll", seq)
        world = self._world
        me = self._members[rank]
        needed_of = (
            [set(needs(j)) for j in range(len(self._members))]
            if needs is not None
            else None
        )
        for j, peer in enumerate(self._members):
            if j == rank:
                continue
            if parts:
                world.deliver(me, peer, tag, contribution[j])
            elif needed_of is None or rank in needed_of[j]:
                world.deliver(me, peer, tag, contribution)
        slots: list[Any] = [None] * len(self._members)
        slots[rank] = contribution[rank] if parts else contribution
        bound = world.timeout_for(opname)
        for j, peer in enumerate(self._members):
            if j == rank:
                continue
            if parts or needed_of is None or j in needed_of[rank]:
                slots[j] = world._inbox.get(
                    peer,
                    tag,
                    bound,
                    lambda peer=peer: self._diag(opname, seq, waiting_for=peer),
                )
        return combine(slots)

    def nb_start(
        self, seq: int, contribution: Any, opname: str, parts: bool = False
    ) -> Any:
        rank = self._rank
        tag = (self._key, "#nb", seq)
        world = self._world
        me = self._members[rank]
        for j, peer in enumerate(self._members):
            if j != rank:
                world.deliver(me, peer, tag, contribution[j] if parts else contribution)
        slots: list[Any] = [None] * len(self._members)
        slots[rank] = contribution[rank] if parts else contribution
        outstanding = {
            j: peer for j, peer in enumerate(self._members) if j != rank
        }
        return _ProcToken(tag, seq, opname, rank, slots, outstanding)

    def nb_test(self, token: _ProcToken) -> bool:
        world = self._world
        for j in list(token.outstanding):
            got, payload = world._inbox.try_get(token.outstanding[j], token.tag)
            if got:
                token.slots[j] = payload
                del token.outstanding[j]
        return not token.outstanding

    def nb_wait(self, token: _ProcToken) -> list[Any]:
        world = self._world
        bound = world.timeout_for(token.opname)
        for j in sorted(token.outstanding):
            peer = token.outstanding[j]
            token.slots[j] = world._inbox.get(
                peer,
                token.tag,
                bound,
                lambda peer=peer: self._diag(
                    token.opname, token.seq, waiting_for=peer
                ),
            )
        token.outstanding.clear()
        return token.slots

    def nb_finish(self, token: _ProcToken) -> None:
        token.slots = []


class ProcessWorld(BaseWorld):
    """One rank's view of a process-per-rank SPMD job."""

    backend_name = "process"
    #: ``deliver`` copies every cross-process payload out synchronously
    #: before returning (arena ``np.copyto``, inline snapshot, or TCP
    #: pickle in the socket subclass), so senders — in particular
    #: :class:`~repro.comm.algorithms.ScheduleRunner` — may pass live
    #: views of buffers they keep mutating, skipping the staging copy the
    #: thread backend's zero-copy transport requires.
    copies_on_send = True

    def __init__(self, shared: _SharedJobState, rank: int) -> None:
        self.size = shared.nranks
        self.timeout = shared.timeout
        self.config = shared.config
        self.rank = rank
        self._shared = shared
        self._inbox = _Inbox(self)
        self._channels: dict[Any, ProcessChannel] = {}
        self._stats: dict[int, Any] = {}
        faults = shared.config.faults
        self._injector: FaultInjector | None = (
            faults.injector(rank) if faults is not None else None
        )
        #: Per-process transport counters (this rank's sends only).
        self.transport = {
            "shm_messages": 0,
            "shm_bytes": 0,
            "inline_messages": 0,
            "arena_full_fallbacks": 0,
            "pipe_messages": 0,
            "queue_messages": 0,
        }
        # Fast-lane write ends (dest rank -> fd) and per-dest sequence
        # numbers spanning both lanes (see ``_send_local``).
        self._wpipes: dict[int, int] = {}
        pipes = getattr(shared, "pipes", None)
        if pipes is not None:
            for d in range(self.size):
                pair = pipes[rank][d] if d != rank else None
                if pair is not None:
                    self._wpipes[d] = pair[1]
        self._send_seq = [0] * self.size

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Post-fork setup inside the child, before the rank function runs.

        The process backend's transport (queues + arena) is fully inherited
        from the parent, so there is nothing to do; the socket backend
        overrides this to establish its inter-node TCP mesh.
        """

    def shutdown(self, ok: bool) -> None:
        """Pre-exit teardown inside the child (``ok`` = rank succeeded)."""

    @property
    def aborted(self) -> bool:
        return self._shared.abort_event.is_set()

    @property
    def abort_reason(self) -> str | None:
        return self._shared.get_abort_reason()

    def _fault(self, point: str, peer: int, tag: Any, payload: Any):
        """Run this rank's armed faults at a transport point.

        An injected crash hard-exits the child (``os._exit``) without
        reporting a result — exercising the parent's child-exit watcher
        exactly as a real segfault or OOM kill would.
        """
        inj = self._injector
        if inj is None:
            return "pass", payload
        return inj.on_transport(
            point, peer, tag, payload,
            lambda detail: os._exit(INJECTED_CRASH_EXIT),
        )

    # -- point-to-point ----------------------------------------------------
    def deliver(self, source: int, dest: int, tag: Any, payload: Any) -> None:
        self._check_rank(dest, "dest")
        if source == self.rank:
            action, payload = self._fault("send", dest, tag, payload)
            if action == "drop":
                return
        if dest == self.rank:
            # Self-delivery stays in-process (no copy), matching the thread
            # backend's zero-copy self-sends.
            self._inbox._buffered.setdefault((source, tag), deque()).append(payload)
            return
        self._send_local(source, dest, tag, payload)

    def _send_local(self, source: int, dest: int, tag: Any, payload: Any) -> None:
        """Ship one message to a same-host peer: arena + fast lane / queue.

        Small framed messages go down the raw descriptor pipe with one
        synchronous atomic write; anything oversized — or a momentarily
        full pipe — falls back to the ``mp.Queue``.  Both lanes carry a
        per-(sender, dest) sequence number so the receiver restores exact
        send order, preserving per-(source, tag) FIFO across lanes.
        """
        with tracer.span("xport:send", cat="transport", dest=dest) as sp:
            descs: list = []
            skeleton = _pack(
                payload, self._shared.arena, descs, self.transport, self._shared.shm_min
            )
            seq = self._send_seq[dest]
            self._send_seq[dest] = seq + 1
            msg = (seq, source, tag, skeleton, descs)
            w = self._wpipes.get(dest)
            if w is not None:
                blob = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
                if len(blob) + 4 <= _PIPE_FRAME_MAX:
                    try:
                        os.write(w, len(blob).to_bytes(4, "little") + blob)
                    except OSError:
                        pass  # pipe full or torn down: take the queue lane
                    else:
                        self.transport["pipe_messages"] += 1
                        sp.set(lane="pipe", bytes=len(blob))
                        return
            self.transport["queue_messages"] += 1
            sp.set(lane="queue")
            self._shared.queues[dest].put(msg)

    def collect(self, dest: int, source: int, tag: Any, opname: str = "recv") -> Any:
        self._check_rank(source, "source")
        if dest != self.rank:
            raise ValueError(
                f"process backend can only collect for its own rank "
                f"({self.rank}), not {dest}"
            )
        payload = self._inbox.get(
            source,
            tag,
            self.timeout_for(opname),
            lambda: f"{opname}(world rank {dest} <- {source}, tag={tag!r})",
        )
        # Recv-point faults count successful retrievals only, so ``after``
        # stays deterministic regardless of how often empty polls ran.
        _, payload = self._fault("recv", source, tag, payload)
        return payload

    def try_collect(self, dest: int, source: int, tag: Any) -> tuple[bool, Any]:
        self._check_rank(source, "source")
        ok, payload = self._inbox.try_get(source, tag)
        if ok:
            _, payload = self._fault("recv", source, tag, payload)
        return ok, payload

    # -- collectives --------------------------------------------------------
    def channel(self, key: Any, members: tuple[int, ...], rank: int) -> GroupChannel:
        # Cached per key so communicators recreated with an identical key
        # share sequence counters, mirroring the thread backend's shared
        # rendezvous contexts.
        ch = self._channels.get(key)
        if ch is None:
            ch = ProcessChannel(self, key, members, rank)
            self._channels[key] = ch
        return ch

    def rank_stats(self, world_rank: int):
        from repro.comm.stats import CommStats

        stats = self._stats.get(world_rank)
        if stats is None:
            stats = self._stats[world_rank] = CommStats()
        return stats

    # -- failure handling ---------------------------------------------------
    def abort(self, reason: str | None = None) -> None:
        self._shared.set_abort(reason)

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"{what}={rank} out of range for world of size {self.size}")


def _heartbeat_loop(shared: _SharedJobState, rank: int) -> None:
    """Daemon thread in each child: stamp this rank's liveness slot."""
    interval = max(0.02, shared.config.detect_interval / 2.0)
    while not shared.abort_event.is_set():
        shared.heartbeats[rank] = monotonic()
        time.sleep(interval)


def _child_main(
    shared: _SharedJobState,
    rank: int,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    world_cls: type = None,  # type: ignore[assignment]
) -> None:
    """Rank entry point in the forked child."""
    from repro.comm.communicator import Communicator

    world = (world_cls or ProcessWorld)(shared, rank)
    # Rank identity (and tracing, when enabled) for every thread of this
    # child — heartbeat and transport helpers attribute to the rank too.
    hm = getattr(world, "_hostmap", None) or shared.config.hostmap
    host = hm.host_of(rank) if hm is not None else "node0"
    tracer.enter_rank(rank, host, trace=shared.config.trace)
    threading.Thread(
        target=_heartbeat_loop,
        args=(shared, rank),
        name=f"heartbeat-rank-{rank}",
        daemon=True,
    ).start()
    status = "ok"
    try:
        world.start()
        comm = Communicator._world_comm(world, rank)
        result = fn(comm, *args, **kwargs)
        try:
            blob = pickle.dumps(result)
        except Exception as exc:
            # The job is failing: abort it so peers blocked on anything
            # this rank still owed them fail promptly with CommAborted
            # instead of timing out (the error teardown below drops
            # undelivered messages).
            world.abort(
                f"world rank {rank} produced an unpicklable result "
                f"({type(exc).__name__}: {exc})"
            )
            status = "err"
            blob = pickle.dumps(
                (
                    RuntimeError(
                        f"rank {rank} produced an unpicklable result "
                        f"({type(exc).__name__}: {exc})"
                    ),
                    "",
                )
            )
    except BaseException as exc:  # noqa: BLE001 - must propagate anything
        if isinstance(exc, CommAborted):
            world.abort()
        else:
            world.abort(
                f"world rank {rank} failed: {type(exc).__name__}: {exc}"
            )
        status = "err"
        tb = traceback.format_exc()
        try:
            blob = pickle.dumps((exc, tb))
        except Exception:
            blob = pickle.dumps(
                (CommAborted(f"rank {rank}: {type(exc).__name__}: {exc}"), tb)
            )
    try:
        world.shutdown(status == "ok")
    except Exception as exc:  # pragma: no cover - depends on host
        logger.warning(
            "world rank %d: transport shutdown failed: %s: %s",
            rank, type(exc).__name__, exc,
        )
    try:
        tracer.exit_rank()  # flush this rank's trace file before reporting
    except Exception as exc:  # pragma: no cover - disk-full etc.
        logger.warning(
            "world rank %d: trace flush failed: %s: %s",
            rank, type(exc).__name__, exc,
        )
    if status == "ok":
        # A fast rank may exit while its queue feeder threads still hold
        # undelivered messages (e.g. fire-and-forget nonblocking deposits a
        # slow peer has yet to read).  close() lets each feeder flush and
        # exit; the interpreter then joins them at process exit, so nothing
        # a completing rank sent can be lost.
        for q in shared.queues:
            q.close()
    else:
        # On abort the job is over: losing queued messages is fine, and
        # waiting on feeders is not (a peer may already be gone).
        for q in shared.queues:
            q.cancel_join_thread()
    shared.results.put((rank, status, blob))


def _launch_forked(
    nranks: int,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    config: JobConfig,
    shared_factory: Callable[..., _SharedJobState] = _SharedJobState,
    child_main: Callable[..., None] = _child_main,
) -> list[Any]:
    """Generic forked-children launcher: spawn one child per rank, run the
    failure detector, gather and decode results.

    The process and socket backends share this parent loop; they differ
    only in the shared state they build pre-fork (``shared_factory``) and
    the world the children construct (``child_main``).
    """
    import multiprocessing as mp

    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        raise RuntimeError(
            "the process backend requires the fork start method; "
            "use backend='thread' on this platform"
        ) from None

    shared = shared_factory(ctx, nranks, config)
    detect = max(0.02, config.detect_interval)
    # A heartbeat is "stale" well past its refresh period; generous slack
    # keeps a scheduler hiccup from flagging a healthy rank.
    stale_after = max(10 * detect, 5.0)
    now = monotonic()
    for r in range(nranks):
        shared.heartbeats[r] = now
    procs = []
    outcomes: dict[int, tuple[str, Any]] = {}
    flagged_stale: set[int] = set()
    try:
        for rank in range(nranks):
            p = ctx.Process(
                target=child_main,
                args=(shared, rank, fn, args, kwargs),
                name=f"spmd-rank-{rank}",
            )
            p.start()
            procs.append(p)
        shared.post_fork_parent()

        # `timeout` bounds individual blocked operations (enforced inside
        # the ranks, exactly as on the thread backend) — it is NOT a job
        # deadline, so a healthy long-computing job is never cut short.
        # The parent only starts a drain deadline once the job is known to
        # be dying: the abort event fired, a child crashed, or every child
        # exited without reporting.  The loop doubles as the failure
        # detector, paced by ``config.detect_interval``: a child that died
        # without reporting aborts the job (naming the dead rank) within
        # about one interval, and stale heartbeats are flagged.
        drain_deadline: float | None = None
        while len(outcomes) < nranks:
            try:
                rank, status, blob = shared.results.get(timeout=min(0.25, detect))
                outcomes[rank] = (status, blob)
                continue
            except queue_mod.Empty:
                pass
            for r, p in enumerate(procs):
                if r not in outcomes and p.exitcode not in (None, 0):
                    outcomes[r] = ("crash", p.exitcode)
                    injected = p.exitcode == INJECTED_CRASH_EXIT
                    shared.set_abort(
                        f"world rank {r} died (exit code {p.exitcode}"
                        f"{', injected crash' if injected else ''}) "
                        "before reporting a result"
                    )
            if not shared.abort_event.is_set():
                now = monotonic()
                for r, p in enumerate(procs):
                    if (
                        r not in outcomes
                        and r not in flagged_stale
                        and p.exitcode is None
                        and now - shared.heartbeats[r] > stale_after
                    ):
                        flagged_stale.add(r)
                        logger.warning(
                            "world rank %d heartbeat stale for %.1fs "
                            "(straggler or wedged rank)",
                            r, now - shared.heartbeats[r],
                        )
            dying = shared.abort_event.is_set() or all(
                p.exitcode is not None for p in procs
            )
            if not dying:
                drain_deadline = None
                continue
            if drain_deadline is None:
                drain_deadline = monotonic() + _PARENT_GRACE
            elif monotonic() > drain_deadline:
                shared.set_abort("job torn down: unreported ranks presumed hung")
                for r in range(nranks):
                    outcomes.setdefault(r, ("hang", None))
                break
    finally:
        for p in procs:
            p.join(timeout=5.0)
        for p in procs:
            if p.is_alive():  # pragma: no cover - wedged child
                p.terminate()
                p.join(timeout=5.0)
        abort_reason = shared.get_abort_reason()
        shared.teardown()

    suffix = f" — {abort_reason}" if abort_reason else ""
    results: list[Any] = [None] * nranks
    errors: list[BaseException | None] = [None] * nranks
    for rank in range(nranks):
        status, blob = outcomes[rank]
        if status == "ok":
            results[rank] = pickle.loads(blob)
        elif status == "err":
            exc, tb = pickle.loads(blob)
            if tb and not isinstance(exc, CommAborted):
                exc.__cause__ = RuntimeError(f"rank {rank} traceback:\n{tb}")
            errors[rank] = exc
        elif status == "crash":
            injected = blob == INJECTED_CRASH_EXIT
            errors[rank] = CommAborted(
                f"world rank {rank} exited abnormally (exit code {blob}"
                f"{', injected crash' if injected else ''}) "
                "before reporting a result",
                failed_rank=rank,
                host=(
                    config.hostmap.host_of(rank)
                    if config.hostmap is not None
                    else None
                ),
                kind="injected-crash" if injected else "child-exit",
            )
        else:  # hang
            errors[rank] = CommAborted(
                f"world rank {rank} did not report a result within "
                f"{_PARENT_GRACE:.0f}s of the job starting to die "
                f"(abort/crash/exit); job torn down{suffix}",
                failed_rank=rank,
                host=(
                    config.hostmap.host_of(rank)
                    if config.hostmap is not None
                    else None
                ),
                kind="hang",
            )

    if config.allow_failures:
        return [
            errors[rank] if errors[rank] is not None else results[rank]
            for rank in range(nranks)
        ]
    first_real = next(
        (e for e in errors if e is not None and not isinstance(e, CommAborted)), None
    )
    if first_real is not None:
        raise first_real
    first_any = next((e for e in errors if e is not None), None)
    if first_any is not None:
        raise first_any
    return results


def _run_spmd_processes(
    nranks: int,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    config: JobConfig,
) -> list[Any]:
    """Process-backend launcher: fork one child per rank, gather results."""
    return _launch_forked(nranks, fn, args, kwargs, config)


register_backend("process", _run_spmd_processes)
