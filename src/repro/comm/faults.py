"""Deterministic fault injection for the SPMD transport layer.

Production-scale synchronous training has to survive ranks that crash,
stall, or ship garbage — and the only way to *test* those paths is to make
the failures reproducible.  This module defines a seeded, declarative
:class:`FaultPlan` that both world backends consult on every transport
operation (point-to-point ``send``/``recv``, which the collectives,
schedules, and shuffles are all built on):

* ``crash``   — kill the rank at the Nth matching transport op.  On the
  thread backend this raises :class:`InjectedCrash` inside the rank; on the
  process backend the child hard-exits (``os._exit``) without reporting a
  result, exercising the parent's child-exit watcher exactly as a real
  segfault or OOM kill would.
* ``delay``   — sleep before the matching op (a straggler / slow link).
* ``drop``    — swallow a matching send (the message is never delivered),
  turning into a receive timeout downstream.
* ``corrupt`` — perturb the array payload of a matching op with noise drawn
  from the plan's seeded RNG, so the corruption is bitwise identical run
  to run.

Matching is structural, never timing-based: a spec names the world rank it
arms on, the transport point (``send`` or ``recv``), an optional peer and a
substring of the message tag, and fires on the ``after``-th matching op of
that rank.  Because every rank executes its communication in a fixed
program order, the same plan hits the same operation on every run — chaos
tests are deterministic.

Install a plan per job (``run_spmd(..., faults=FaultPlan(...))``) or
globally through the ``REPRO_FAULTS`` environment variable, whose value is
parsed by :meth:`FaultPlan.parse`, e.g.::

    REPRO_FAULTS="crash@rank2:point=send:after=3:tag=#alg"
    REPRO_FAULTS="delay@rank0:seconds=0.2;drop@rank1:tag=#nb:once ; seed=7"
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

#: Environment variable carrying a :meth:`FaultPlan.parse` spec applied to
#: every ``run_spmd`` call that does not pass ``faults=`` explicitly.
FAULTS_ENV = "REPRO_FAULTS"

#: Exit code a process-backend rank dies with on an injected crash, so the
#: parent's diagnostics can tell an injected death from a real one.
INJECTED_CRASH_EXIT = 117

_KINDS = ("crash", "delay", "drop", "corrupt")
#: ``send``/``recv`` bracket every transport operation on every backend;
#: ``wire`` is the socket backend's on-the-wire point, applied to the
#: serialized TCP frame *after* its CRC32 is computed — a ``corrupt`` fault
#: there models real link corruption and must be caught by the receiver's
#: frame checksum, not by arithmetic going quietly wrong.
_POINTS = ("send", "recv", "wire")


class InjectedFault(RuntimeError):
    """Base of all exceptions raised by the fault-injection plane."""


class InjectedCrash(InjectedFault):
    """Raised inside a rank to simulate its death (thread backend)."""


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault, armed on one rank's transport path.

    ``after`` counts *matching* operations: the fault fires on the
    ``after``-th match (0 = the first).  ``tag`` is matched as a substring
    of ``repr(tag)`` so callers can target a traffic class (``"#alg"`` for
    schedule segments, ``"#nb"`` for nonblocking deposits, ``"#coll"`` for
    blocking collectives) without spelling out full tag tuples.  ``once``
    (default) disarms the spec after it fires; recurring faults
    (``once=False``) re-fire on every subsequent match — meaningless for
    ``crash``, which ends the rank.
    """

    kind: str
    rank: int
    point: str = "send"
    after: int = 0
    tag: str | None = None
    peer: int | None = None
    seconds: float = 0.05
    once: bool = True

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected {_KINDS}")
        if self.point not in _POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; expected {_POINTS}"
            )
        if self.rank < 0:
            raise ValueError(f"fault rank must be >= 0, got {self.rank}")
        if self.after < 0:
            raise ValueError(f"fault after must be >= 0, got {self.after}")
        if self.kind == "drop" and self.point != "send":
            raise ValueError("drop faults arm on the send point")
        if self.point == "wire" and self.kind not in ("corrupt", "delay"):
            raise ValueError(
                "the wire point carries serialized frames; only corrupt "
                f"and delay faults arm there, not {self.kind!r}"
            )

    def describe(self) -> str:
        bits = [f"{self.kind}@rank{self.rank}", f"point={self.point}"]
        if self.after:
            bits.append(f"after={self.after}")
        if self.tag is not None:
            bits.append(f"tag={self.tag}")
        if self.peer is not None:
            bits.append(f"peer={self.peer}")
        if self.kind == "delay":
            bits.append(f"seconds={self.seconds}")
        return ":".join(bits)


class FaultPlan:
    """A seeded set of :class:`FaultSpec`\\ s for one SPMD job.

    The plan itself is immutable shared configuration (fork- and
    pickle-safe); per-rank match counters live in the
    :class:`FaultInjector` each world creates via :meth:`injector`.
    """

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...], seed: int = 0):
        self.specs = tuple(specs)
        self.seed = int(seed)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, "
            f"[{'; '.join(s.describe() for s in self.specs)}])"
        )

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` mini-language.

        ``;``-separated entries; each is ``kind@rank<r>`` followed by
        ``:key=value`` options (``point``, ``after``, ``tag``, ``peer``,
        ``seconds``) or the bare flag ``:recurring``.  A ``seed=<n>`` entry
        seeds the plan's RNG (corruption noise).
        """
        specs: list[FaultSpec] = []
        seed = 0
        for entry in text.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                seed = int(entry[len("seed="):])
                continue
            head, _, rest = entry.partition(":")
            kind, _, rank_s = head.partition("@")
            if not rank_s.startswith("rank"):
                raise ValueError(
                    f"bad fault entry {entry!r}: expected kind@rank<r>[...]"
                )
            kwargs: dict[str, Any] = {
                "kind": kind.strip(),
                "rank": int(rank_s[len("rank"):]),
            }
            if rest:
                for opt in rest.split(":"):
                    opt = opt.strip()
                    if opt == "recurring":
                        kwargs["once"] = False
                        continue
                    key, _, value = opt.partition("=")
                    if key in ("after", "peer"):
                        kwargs[key] = int(value)
                    elif key == "seconds":
                        kwargs[key] = float(value)
                    elif key in ("tag", "point"):
                        kwargs[key] = value
                    else:
                        raise ValueError(
                            f"unknown fault option {key!r} in {entry!r}"
                        )
            specs.append(FaultSpec(**kwargs))
        return cls(specs, seed=seed)

    def injector(self, rank: int) -> "FaultInjector | None":
        """Fresh per-rank runtime state, or ``None`` if no spec arms here."""
        mine = [s for s in self.specs if s.rank == rank]
        if not mine:
            return None
        return FaultInjector(mine, self.seed, rank)


def _corrupt_payload(payload: Any, rng: np.random.Generator) -> Any:
    """Deterministically perturb the first float/int array in ``payload``.

    Containers are walked recursively; exactly one element of the first
    eligible array is overwritten with a large seeded value, so a corrupted
    allreduce is detectably — and reproducibly — wrong.
    """
    if isinstance(payload, (bytes, bytearray)) and len(payload):
        # Serialized wire frames: flip every bit of one seeded byte, so a
        # CRC-protected transport must detect the corruption.
        bad = bytearray(payload)
        bad[int(rng.integers(0, len(bad)))] ^= 0xFF
        return bytes(bad)
    if isinstance(payload, np.ndarray) and payload.dtype != object and payload.size:
        bad = payload.copy()
        idx = int(rng.integers(0, bad.size))
        flat = bad.reshape(-1)
        if np.issubdtype(bad.dtype, np.floating):
            flat[idx] = rng.standard_normal() * 1e12
        elif np.issubdtype(bad.dtype, np.integer):
            flat[idx] = int(rng.integers(-(2**31), 2**31))
        else:  # bool and friends: invert
            flat[idx] = not flat[idx]
        return bad
    if isinstance(payload, tuple):
        out = list(payload)
        for i, p in enumerate(out):
            q = _corrupt_payload(p, rng)
            if q is not p:
                out[i] = q
                return tuple(out)
        return payload
    if isinstance(payload, list):
        for i, p in enumerate(payload):
            q = _corrupt_payload(p, rng)
            if q is not p:
                out = list(payload)
                out[i] = q
                return out
        return payload
    if isinstance(payload, dict):
        for k, v in payload.items():
            q = _corrupt_payload(v, rng)
            if q is not v:
                out = dict(payload)
                out[k] = q
                return out
        return payload
    return payload


class FaultInjector:
    """One rank's armed faults plus their match counters.

    The backends call :meth:`on_transport` from their send and receive
    paths.  The return value is ``(action, payload)`` where ``action`` is
    ``"pass"`` or ``"drop"``; ``delay`` sleeps in place, ``corrupt``
    replaces the payload, and ``crash`` invokes ``crash_cb`` (which must
    not return — it raises or exits the process).
    """

    def __init__(self, specs: list[FaultSpec], seed: int, rank: int) -> None:
        #: [spec, matches seen, fired] — mutable runtime state per spec.
        self._armed: list[list] = [[s, 0, False] for s in specs]
        self._rng = np.random.default_rng((seed, rank))
        self.rank = rank
        #: Log of fired faults, for diagnostics/tests: (describe, point, tag).
        self.fired: list[tuple[str, str, str]] = []

    def _matches(self, spec: FaultSpec, point: str, peer: int, tag: Any) -> bool:
        if spec.point != point:
            return False
        if spec.peer is not None and spec.peer != peer:
            return False
        if spec.tag is not None and spec.tag not in repr(tag):
            return False
        return True

    def on_transport(
        self,
        point: str,
        peer: int,
        tag: Any,
        payload: Any,
        crash_cb: Callable[[str], None],
    ) -> tuple[str, Any]:
        action = "pass"
        for state in self._armed:
            spec, _, fired = state
            if fired and spec.once:
                continue
            if not self._matches(spec, point, peer, tag):
                continue
            n = state[1]
            state[1] = n + 1
            if n < spec.after:
                continue
            state[2] = True
            detail = (
                f"{spec.describe()} fired at world rank {self.rank} "
                f"({point} #{n}, peer {peer}, tag={tag!r})"
            )
            self.fired.append((spec.describe(), point, repr(tag)))
            if spec.kind == "crash":
                crash_cb(detail)
                raise InjectedCrash(detail)  # crash_cb must not return
            if spec.kind == "delay":
                time.sleep(spec.seconds)
            elif spec.kind == "drop":
                action = "drop"
            elif spec.kind == "corrupt":
                payload = _corrupt_payload(payload, self._rng)
        return action, payload


@dataclass
class JobConfig:
    """Per-job runtime knobs shared by every backend launcher.

    ``timeout`` is the default bound on one blocked transport operation;
    ``op_timeouts`` overrides it per operation name *prefix* (longest
    prefix wins), e.g. ``{"recv": 5.0, "iallreduce": 30.0}``.  ``retries``
    grants a timed-out wait that many extra timeout windows (each logged as
    a warning) before the job is aborted — the knob for platforms where a
    slow rank is more likely than a dead one.  ``detect_interval`` paces
    the process backend's failure detector (child-exit watcher +
    heartbeats); a dead rank is detected within roughly one interval
    rather than at the next per-op timeout.  ``allow_failures`` makes
    ``run_spmd`` return per-rank exceptions in the result list instead of
    re-raising the first one — the chaos-testing mode.
    """

    timeout: float = 120.0
    op_timeouts: dict[str, float] = field(default_factory=dict)
    retries: int = 0
    faults: FaultPlan | None = None
    allow_failures: bool = False
    detect_interval: float = 0.25
    #: Optional :class:`~repro.comm.hostmap.HostMap` grouping ranks into
    #: logical nodes: picks the socket backend's shared-memory-vs-TCP
    #: routing and drives hierarchical collective selection on every
    #: backend (``None`` = the backend's default layout).
    hostmap: Any = None
    #: Optional :class:`~repro.obs.tracer.TraceConfig` enabling per-rank
    #: span tracing (``run_spmd(trace=...)`` / ``REPRO_TRACE``); carries
    #: the merged-output path and the shared job epoch used to align every
    #: rank's clock.  ``None`` = tracing disabled.
    trace: Any = None

    def timeout_for(self, opname: str) -> float:
        best: str | None = None
        for prefix in self.op_timeouts:
            if opname.startswith(prefix) and (best is None or len(prefix) > len(best)):
                best = prefix
        return self.op_timeouts[best] if best is not None else self.timeout
