"""Analytic α-β cost models for point-to-point and collective operations.

Follows the linear (Hockney) model of the paper's §II-B: sending ``n`` bytes
between two nodes costs ``α + βn`` with latency ``α`` (seconds) and inverse
bandwidth ``β`` (seconds/byte).  Collective costs follow Thakur, Rabenseifner
& Gropp, *Optimization of Collective Communication Operations in MPICH*
(IJHPCA 2005), which is the model the paper cites for allreduce:

* recursive doubling: ``lg(p)·α + lg(p)·n·β + lg(p)·n·γ`` — best for small n;
* Rabenseifner (reduce-scatter + allgather):
  ``2·lg(p)·α + 2·((p-1)/p)·n·β + ((p-1)/p)·n·γ`` — best for large n, p=2^k;
* ring: ``2·(p-1)·α + 2·((p-1)/p)·n·β + ((p-1)/p)·n·γ`` — bandwidth-optimal,
  what NCCL uses for large messages.

``γ`` is the per-byte local reduction cost.  All functions take byte counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Sequence


class AllreduceAlgorithm(str, Enum):
    RECURSIVE_DOUBLING = "recursive_doubling"
    RABENSEIFNER = "rabenseifner"
    RING = "ring"


#: The legacy deposit-combine exchange (every rank ships its whole payload
#: to every peer): not a scheduled algorithm, but priceable so modeled and
#: measured traffic can be compared for the bitwise-reference mode too.
DIRECT_ALGORITHM = "direct"

#: The two-level (intra-node reduce-scatter → inter-node allreduce →
#: intra-node allgather) composition: selected when a
#: :class:`TwoTierTopology` says the inter-node wire is the bottleneck.
HIERARCHICAL_ALGORITHM = "hierarchical"

#: Message size (bytes) above which bandwidth-optimal algorithms win.
#: Thakur et al. use 2 KiB as the small/large cutoff for allreduce.
SMALL_MESSAGE_CUTOFF: int = 2048


@dataclass(frozen=True)
class LinkParameters:
    """α-β(-γ) parameters for one class of link."""

    alpha: float  # latency, seconds
    beta: float  # inverse bandwidth, seconds per byte
    gamma: float = 0.0  # local reduction cost, seconds per byte

    def pt2pt(self, nbytes: float) -> float:
        return self.alpha + self.beta * nbytes


#: Default intra-node link: NVLink2-class (~47 GB/s effective, CUDA-IPC
#: launch latency).  Shared with :class:`repro.perfmodel.machine.MachineSpec`
#: so the communicator's topology-aware selection and the performance model
#: price the same wire.
DEFAULT_INTRA_LINK = LinkParameters(
    alpha=4.0e-6, beta=1.0 / 47.0e9, gamma=1.0 / 500.0e9
)

#: Default inter-node link: dual-rail IB EDR-class (~21 GB/s per node).
DEFAULT_INTER_LINK = LinkParameters(
    alpha=6.0e-6, beta=1.0 / 21.0e9, gamma=1.0 / 500.0e9
)


@dataclass(frozen=True)
class TwoTierTopology:
    """Two-level bandwidth-latency model: ``nnodes`` × ``ranks_per_node``.

    The hierarchical composition only makes sense on a *uniform* layout
    (the same rank count on every node), which is what
    :meth:`Communicator.hierarchy` hands over; degenerate layouts (one
    node, or one rank per node) are priced as flat collectives on the
    corresponding link.
    """

    nnodes: int
    ranks_per_node: int
    intra: LinkParameters = DEFAULT_INTRA_LINK
    inter: LinkParameters = DEFAULT_INTER_LINK

    @property
    def size(self) -> int:
        return self.nnodes * self.ranks_per_node

    @property
    def hierarchical(self) -> bool:
        """True when both tiers are non-trivial (m >= 2 nodes, k >= 2 ranks)."""
        return self.nnodes >= 2 and self.ranks_per_node >= 2


def pt2pt_time(nbytes: float, link: LinkParameters) -> float:
    """SR(n): time to send and receive ``n`` bytes between two ranks.

    The network is assumed full-duplex (paper §II-B), so a simultaneous
    exchange costs one traversal.
    """
    if nbytes <= 0:
        return 0.0
    return link.pt2pt(nbytes)


def allreduce_time(
    p: int,
    nbytes: float,
    link: LinkParameters,
    algorithm: AllreduceAlgorithm | str | None = None,
) -> float:
    """AR(p, n): allreduce of ``n`` bytes over ``p`` ranks.

    With ``algorithm=None`` the fastest algorithm for this (p, n, link) is
    used (mirroring MPICH/NCCL tuned selection and the paper's observation
    that "allreduces use different algorithms for different n and p").
    ``algorithm`` also accepts the engine's knob values: ``"auto"``
    (Thakur-style :func:`select_allreduce_algorithm` — the *same* selection
    the communicator applies on the wire, so modeled and measured traffic
    agree) and ``"direct"`` (the legacy deposit-combine exchange: ``p-1``
    full payloads in and out of every rank plus a full local fold).
    """
    if p <= 1 or nbytes <= 0:
        return 0.0
    if algorithm is None:
        return min(
            allreduce_time(p, nbytes, link, alg) for alg in AllreduceAlgorithm
        )
    if not isinstance(algorithm, AllreduceAlgorithm):
        if algorithm == "auto":
            algorithm = select_allreduce_algorithm(p, nbytes)
        elif algorithm == DIRECT_ALGORITHM:
            a, b, g = link.alpha, link.beta, link.gamma
            return (p - 1) * (a + nbytes * b) + (p - 1) * nbytes * g
        else:
            algorithm = AllreduceAlgorithm(algorithm)
    a, b, g = link.alpha, link.beta, link.gamma
    frac = (p - 1) / p
    lg = math.log2(p)
    if algorithm is AllreduceAlgorithm.RECURSIVE_DOUBLING:
        return lg * a + lg * nbytes * b + lg * nbytes * g
    if algorithm is AllreduceAlgorithm.RABENSEIFNER:
        return 2 * lg * a + 2 * frac * nbytes * b + frac * nbytes * g
    if algorithm is AllreduceAlgorithm.RING:
        return 2 * (p - 1) * a + 2 * frac * nbytes * b + frac * nbytes * g
    raise ValueError(f"unknown allreduce algorithm {algorithm!r}")


def select_allreduce_algorithm(
    p: int, nbytes: float, topology: "TwoTierTopology | None" = None
) -> AllreduceAlgorithm | str:
    """Thakur-style selection: latency-optimal for small n, bandwidth for large.

    This is the single selection rule shared by the cost model, the
    simulator, and the engine's ``algorithm="auto"`` collectives, so the
    algorithm the model prices is the one the wire actually runs.

    With a hierarchical ``topology`` (>= 2 nodes of >= 2 ranks) the
    two-tier model is consulted first: when the composed two-level
    schedule (:func:`hierarchical_allreduce_time`) beats every flat
    algorithm priced on the bottleneck inter-node link, the string
    :data:`HIERARCHICAL_ALGORITHM` is returned instead of a flat
    :class:`AllreduceAlgorithm` member.  One-node (or one-rank-per-node)
    topologies degenerate to the flat rule, so a host map never *changes*
    single-node selection.
    """
    if topology is not None and topology.hierarchical and p == topology.size:
        flat = min(
            allreduce_time(p, nbytes, topology.inter, alg)
            for alg in AllreduceAlgorithm
        )
        if hierarchical_allreduce_time(nbytes, topology) < flat:
            return HIERARCHICAL_ALGORITHM
    if nbytes < SMALL_MESSAGE_CUTOFF:
        return AllreduceAlgorithm.RECURSIVE_DOUBLING
    if p & (p - 1) == 0:  # power of two: halving/doubling applies directly
        return AllreduceAlgorithm.RABENSEIFNER
    return AllreduceAlgorithm.RING


def select_inter_algorithm(
    nnodes: int, nbytes: float
) -> AllreduceAlgorithm:
    """Flat algorithm for the inter-node stage of a hierarchical allreduce.

    The inter-node exchange is itself an allreduce over ``nnodes`` node
    leaders on a segment of ``nbytes``, so the plain Thakur rule applies.
    """
    alg = select_allreduce_algorithm(nnodes, nbytes)
    assert isinstance(alg, AllreduceAlgorithm)
    return alg


def hierarchical_allreduce_time(
    nbytes: float,
    topology: TwoTierTopology,
    inter_algorithm: AllreduceAlgorithm | str | None = None,
) -> float:
    """AR time of the two-level composition on a two-tier topology.

    Intra-node ring reduce-scatter over ``k`` ranks, inter-node allreduce
    of the ``n/k`` segment over ``m`` node counterparts on the slow link,
    intra-node ring allgather — the composition
    :func:`repro.comm.algorithms.compile_hierarchical_allreduce` executes.
    Degenerate topologies collapse to the flat model on the active link.
    """
    k, m = topology.ranks_per_node, topology.nnodes
    if nbytes <= 0 or topology.size <= 1:
        return 0.0
    if m <= 1:
        return allreduce_time(k, nbytes, topology.intra, inter_algorithm)
    if k <= 1:
        return allreduce_time(m, nbytes, topology.inter, inter_algorithm)
    intra = topology.intra
    frac = (k - 1) / k
    rs = (k - 1) * intra.alpha + frac * nbytes * (intra.beta + intra.gamma)
    ag = (k - 1) * intra.alpha + frac * nbytes * intra.beta
    mid = allreduce_time(m, nbytes / k, topology.inter, inter_algorithm)
    return rs + mid + ag


def hierarchical_inter_wire_bytes(
    nbytes: float,
    topology: TwoTierTopology,
    inter_algorithm: AllreduceAlgorithm | str | None = None,
) -> float:
    """Per-rank bytes sent on the *inter-node* wire by one hierarchical
    allreduce of ``n`` bytes.

    Every rank leads the inter-node exchange for its owned ``n/k``
    segment, so inter traffic is uniform across ranks:
    ``allreduce_wire_bytes(m, n/k)`` — e.g. ``2(n/k)(m-1)/m`` for the
    inter ring, versus the flat ring's ``2n(p-1)/p`` crossing the node
    boundary on every edge rank.  The measured counterpart is the
    schedule runner's ``wire_sent_inter`` counter and the socket
    backend's TCP payload-byte transport counter.
    """
    k, m = topology.ranks_per_node, topology.nnodes
    if nbytes <= 0 or m <= 1:
        return 0.0
    if k <= 1:
        return allreduce_wire_bytes(m, nbytes, inter_algorithm)
    if inter_algorithm is None:
        inter_algorithm = select_inter_algorithm(m, nbytes / k)
    return allreduce_wire_bytes(m, nbytes / k, inter_algorithm)


def resolve_allreduce_algorithm(
    algorithm: AllreduceAlgorithm | str | None,
    p: int,
    nbytes: float,
    topology: "TwoTierTopology | None" = None,
) -> str:
    """Normalize an ``algorithm=`` knob value to a concrete algorithm name.

    ``None``/``"auto"`` apply :func:`select_allreduce_algorithm` (which may
    pick ``"hierarchical"`` when a hierarchical ``topology`` is supplied);
    ``"direct"``/``"hierarchical"`` pass through; anything else must name
    an :class:`AllreduceAlgorithm` member (``ValueError`` otherwise).
    """
    if isinstance(algorithm, AllreduceAlgorithm):
        return algorithm.value
    if algorithm in (None, "auto"):
        selected = select_allreduce_algorithm(p, nbytes, topology)
        if isinstance(selected, AllreduceAlgorithm):
            return selected.value
        return selected
    if algorithm in (DIRECT_ALGORITHM, HIERARCHICAL_ALGORITHM):
        return algorithm
    return AllreduceAlgorithm(algorithm).value


def allreduce_wire_bytes(
    p: int, nbytes: float, algorithm: AllreduceAlgorithm | str | None = None
) -> float:
    """Per-rank bytes *sent* on the wire by one allreduce of ``n`` bytes.

    The model-side counterpart of the engine's wire counters
    (:class:`~repro.comm.stats.CommStats` ``wire`` split / the process
    backend's transport counters): ring and Rabenseifner move the
    bandwidth-optimal ``2n(p-1)/p``, recursive doubling ``n·lg p̂`` (p̂ the
    largest power of two <= p; the non-power-of-two fold adds one payload
    on the folded ranks — the worst case is reported), and the legacy
    ``"direct"`` exchange ``n(p-1)``.
    """
    if p <= 1 or nbytes <= 0:
        return 0.0
    name = resolve_allreduce_algorithm(algorithm, p, nbytes)
    if name == DIRECT_ALGORITHM:
        return nbytes * (p - 1)
    if name == AllreduceAlgorithm.RECURSIVE_DOUBLING.value:
        pof2 = 1 << (p.bit_length() - 1)
        extra = nbytes if pof2 != p else 0.0
        return nbytes * math.log2(pof2) + extra
    if (
        name == AllreduceAlgorithm.RABENSEIFNER.value
        and p & (p - 1) != 0
    ):
        name = AllreduceAlgorithm.RING.value  # schedule-level fallback
    # ring and (power-of-two) Rabenseifner are both bandwidth-optimal.
    return 2.0 * nbytes * (p - 1) / p


def segment_sizes(nbytes: float, segment_bytes: float) -> list[float]:
    """Split ``nbytes`` into near-equal segments of at most ``segment_bytes``."""
    if nbytes <= 0:
        return []
    if not segment_bytes or segment_bytes >= nbytes:
        return [nbytes]
    nseg = int(math.ceil(nbytes / segment_bytes))
    per = nbytes / nseg
    return [per] * nseg


def segmented_allreduce_time(
    p: int,
    nbytes: float,
    link: LinkParameters,
    segment_bytes: float | None = None,
    algorithm: AllreduceAlgorithm | None = None,
) -> float:
    """Total comm-channel occupancy of an allreduce issued in segments.

    Segmenting pays (nseg - 1) extra latency terms but lets the engine
    start draining a large gradient while later segments are still being
    produced — the cost counterpart of the bucketed reducer's pipelining.
    ``segment_bytes=None`` (or >= nbytes) degenerates to one allreduce.
    """
    return sum(
        allreduce_time(p, s, link, algorithm)
        for s in segment_sizes(nbytes, segment_bytes or 0)
    )


#: Smallest pipeline segment the selector will consider (4 KiB): below
#: this the per-segment latency terms dominate any overlap win.
MIN_SEGMENT_BYTES: int = 1 << 12


def schedule_rounds(p: int, algorithm: AllreduceAlgorithm | str) -> int:
    """Pipeline depth of one compiled allreduce schedule: the number of
    send/recv rounds on a rank's critical path.

    This is the depth over which a segmented schedule amortizes its extra
    latency (:func:`pipelined_segmented_allreduce_time`): ring runs
    ``2(p-1)`` rounds, Rabenseifner ``2·lg p`` (power-of-two groups; other
    sizes fall back to the ring schedule, mirroring ``compile_allreduce``),
    recursive doubling ``lg p̂`` plus the two non-power-of-two fold
    exchanges, and the legacy ``"direct"`` deposit-combine exchange is a
    single unpipelineable round.
    """
    if p <= 1:
        return 1
    name = (
        algorithm.value
        if isinstance(algorithm, AllreduceAlgorithm)
        else algorithm
    )
    if name == DIRECT_ALGORITHM:
        return 1
    if name == AllreduceAlgorithm.RABENSEIFNER.value and p & (p - 1) == 0:
        return 2 * int(math.log2(p))
    if name == AllreduceAlgorithm.RECURSIVE_DOUBLING.value:
        pof2 = 1 << (p.bit_length() - 1)
        return int(math.log2(pof2)) + (2 if pof2 != p else 0)
    if name in (
        AllreduceAlgorithm.RING.value,
        AllreduceAlgorithm.RABENSEIFNER.value,  # non-power-of-two fallback
    ):
        return 2 * (p - 1)
    raise ValueError(f"unknown allreduce algorithm {algorithm!r}")


def pipelined_segmented_allreduce_time(
    p: int,
    nbytes: float,
    link: LinkParameters,
    segment_bytes: float | None = None,
    algorithm: AllreduceAlgorithm | str | None = None,
) -> float:
    """AR time of one allreduce whose *schedule* is segmented.

    Unlike :func:`segmented_allreduce_time` (independent back-to-back
    allreduces, the bucketed-reducer pipelining), this models the engine's
    in-schedule segmentation: every send/recv/reduce step is split into
    ``nseg`` per-segment sub-steps, so segment ``k+1`` is on the wire
    while ``k`` reduces.  The first segment pays the full schedule
    (``t_seg``); each further segment drains one pipeline round behind it:

        ``t_seg + (nseg - 1) · t_seg / L``,  ``L = schedule_rounds(p, alg)``

    which degenerates to :func:`allreduce_time` at ``nseg <= 1`` and to
    the unpipelined sum for the depth-1 ``"direct"`` exchange.
    """
    if p <= 1 or nbytes <= 0:
        return 0.0
    name = resolve_allreduce_algorithm(algorithm, p, nbytes)
    sizes = segment_sizes(nbytes, segment_bytes or 0)
    if name == HIERARCHICAL_ALGORITHM:
        # Depth of the two-level composition depends on the node layout;
        # approximate with the ring (both are bandwidth-optimal pipelines).
        name = AllreduceAlgorithm.RING.value
    if len(sizes) <= 1:
        return allreduce_time(p, nbytes, link, name)
    t_seg = allreduce_time(p, sizes[0], link, name)
    rounds = schedule_rounds(p, name)
    return t_seg + (len(sizes) - 1) * t_seg / rounds


def select_segment_bytes(
    p: int,
    nbytes: float,
    link: LinkParameters = DEFAULT_INTRA_LINK,
    algorithm: AllreduceAlgorithm | str | None = None,
) -> int | None:
    """Segment size minimizing :func:`pipelined_segmented_allreduce_time`,
    or ``None`` when the whole (unsegmented) schedule is fastest.

    This is the ``segment_bytes="auto"`` rule the communicator applies:
    power-of-two candidates from :data:`MIN_SEGMENT_BYTES` up to half the
    payload are priced against the unsegmented schedule.  Small payloads
    (latency-bound) and the unscheduled ``"direct"`` exchange never
    segment.
    """
    if p <= 1 or nbytes < 2 * MIN_SEGMENT_BYTES:
        return None
    name = resolve_allreduce_algorithm(algorithm, p, nbytes)
    if name == DIRECT_ALGORITHM:
        return None
    best_t = pipelined_segmented_allreduce_time(p, nbytes, link, None, name)
    best: int | None = None
    seg = MIN_SEGMENT_BYTES
    while seg <= nbytes / 2:
        t = pipelined_segmented_allreduce_time(p, nbytes, link, seg, name)
        if t < best_t:
            best_t, best = t, seg
        seg <<= 1
    return best


def segmented_allreduce_wire_bytes(
    p: int,
    nbytes: float,
    segment_bytes: float | None = None,
    algorithm: AllreduceAlgorithm | str | None = None,
) -> float:
    """Per-rank bytes sent by one allreduce issued in pipeline segments.

    The algorithm is resolved once on the *whole* payload (matching the
    engine, which selects before segmenting) and each segment then moves
    its own :func:`allreduce_wire_bytes` — total volume is unchanged for
    the volume-linear ring/Rabenseifner/direct, while recursive doubling's
    non-power-of-two fold pays its extra payload once per segment.
    """
    if p <= 1 or nbytes <= 0:
        return 0.0
    name = resolve_allreduce_algorithm(algorithm, p, nbytes)
    return sum(
        allreduce_wire_bytes(p, s, name)
        for s in segment_sizes(nbytes, segment_bytes or 0)
    )


def bucketed_allreduce_time(
    p: int,
    sizes: Sequence[float],
    link: LinkParameters,
    bucket_bytes: float,
) -> float:
    """Allreduce time for per-tensor ``sizes`` coalesced into buckets.

    Models the engine's :class:`~repro.core.grad_reducer.BucketedGradReducer`:
    consecutive tensors are merged until the bucket reaches ``bucket_bytes``
    (a tensor larger than the bucket still goes out whole), so per-collective
    latency is amortized over many small gradients.
    """
    if p <= 1:
        return 0.0
    total = 0.0
    pending = 0.0
    for n in sizes:
        if n <= 0:
            continue
        pending += n
        if pending >= bucket_bytes:
            total += allreduce_time(p, pending, link)
            pending = 0.0
    if pending > 0:
        total += allreduce_time(p, pending, link)
    return total


def reduce_scatter_time(p: int, nbytes: float, link: LinkParameters) -> float:
    """Reduce-scatter of ``n`` total bytes over ``p`` ranks (pairwise exchange)."""
    if p <= 1 or nbytes <= 0:
        return 0.0
    frac = (p - 1) / p
    return math.log2(p) * link.alpha + frac * nbytes * (link.beta + link.gamma)


def allgather_time(p: int, nbytes: float, link: LinkParameters) -> float:
    """Allgather to ``n`` total bytes over ``p`` ranks (recursive doubling)."""
    if p <= 1 or nbytes <= 0:
        return 0.0
    frac = (p - 1) / p
    return math.log2(p) * link.alpha + frac * nbytes * link.beta


def bcast_time(p: int, nbytes: float, link: LinkParameters) -> float:
    """Broadcast of ``n`` bytes (scatter + allgather, van de Geijn)."""
    if p <= 1 or nbytes <= 0:
        return 0.0
    lg = math.log2(p)
    frac = (p - 1) / p
    if nbytes < SMALL_MESSAGE_CUTOFF:
        return lg * (link.alpha + nbytes * link.beta)  # binomial tree
    return (lg + p - 1) * link.alpha + 2 * frac * nbytes * link.beta


def barrier_time(p: int, link: LinkParameters) -> float:
    """Dissemination barrier over ``p`` ranks: ``ceil(lg p)`` latency rounds.

    Used to model the synchronization cost a *blocking* collective pays on
    top of its payload movement — e.g. the two rendezvous barriers of the
    blocking shuffle all-to-all, which the nonblocking
    :class:`~repro.tensor.shuffle.ShuffleExchange` removes.
    """
    if p <= 1:
        return 0.0
    return math.ceil(math.log2(p)) * link.alpha


def alltoall_time(p: int, nbytes_per_pair: float, link: LinkParameters) -> float:
    """All-to-all where each rank exchanges ``nbytes_per_pair`` with every other.

    Uses the pairwise-exchange model (p-1 rounds), which is what the data
    redistribution ("shuffle", paper §III-C) maps onto for large messages.
    """
    if p <= 1 or nbytes_per_pair <= 0:
        return 0.0
    return (p - 1) * (link.alpha + nbytes_per_pair * link.beta)
