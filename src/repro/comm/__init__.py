"""MPI-like communication substrate for in-process SPMD execution.

This package replaces the MPI + NCCL + Aluminum stack used by the paper's
LBANN implementation with a functionally equivalent, thread-based runtime:

* :mod:`repro.comm.backend` — the SPMD harness (:func:`run_spmd`) that runs
  one Python thread per rank with shared mailboxes and rendezvous state.
* :mod:`repro.comm.communicator` — the :class:`Communicator` API
  (``send``/``recv``/``sendrecv``/``allreduce``/``allgather``/``alltoall``/
  ``bcast``/``barrier``/``split``), mirroring mpi4py's lower-case object
  interface.
* :mod:`repro.comm.stats` — per-rank communication statistics (bytes,
  message and collective counts) used by tests and benchmarks to verify the
  communication-volume formulas of the paper's Section V.
* :mod:`repro.comm.collective_models` — α-β cost models for point-to-point
  and collective operations (Thakur et al.), used by the performance model.

The communicator is *buffered and eager*: ``send`` never blocks, so the
halo-exchange and shuffle patterns used by the distributed tensor library
cannot deadlock regardless of ordering.
"""

from repro.comm.backend import CommAborted, run_spmd
from repro.comm.communicator import Communicator
from repro.comm.stats import CommStats
from repro.comm.collective_models import (
    AllreduceAlgorithm,
    allgather_time,
    allreduce_time,
    alltoall_time,
    bcast_time,
    pt2pt_time,
    reduce_scatter_time,
    select_allreduce_algorithm,
)

__all__ = [
    "AllreduceAlgorithm",
    "CommAborted",
    "CommStats",
    "Communicator",
    "allgather_time",
    "allreduce_time",
    "alltoall_time",
    "bcast_time",
    "pt2pt_time",
    "reduce_scatter_time",
    "run_spmd",
    "select_allreduce_algorithm",
]
