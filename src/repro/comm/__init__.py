"""MPI-like communication substrate for in-process SPMD execution.

This package replaces the MPI + NCCL + Aluminum stack used by the paper's
LBANN implementation with a functionally equivalent, thread-based runtime:

* :mod:`repro.comm.backend` — the SPMD harness (:func:`run_spmd`) that runs
  one Python thread per rank with shared mailboxes and rendezvous state.
* :mod:`repro.comm.communicator` — the :class:`Communicator` API
  (``send``/``recv``/``sendrecv``/``allreduce``/``allgather``/``alltoall``/
  ``bcast``/``barrier``/``split``), mirroring mpi4py's lower-case object
  interface.
* :mod:`repro.comm.stats` — per-rank communication statistics (bytes,
  message and collective counts) used by tests and benchmarks to verify the
  communication-volume formulas of the paper's Section V.
* :mod:`repro.comm.collective_models` — α-β cost models for point-to-point
  and collective operations (Thakur et al.), used by the performance model.

The communicator is *buffered and eager*: ``send`` never blocks, so the
halo-exchange and shuffle patterns used by the distributed tensor library
cannot deadlock regardless of ordering.  Nonblocking variants
(``isend``/``irecv``/``iallreduce``) return :class:`Request` handles with
``wait()``/``test()``; contiguous array payloads cross the boundary
zero-copy as read-only views (see :func:`set_zero_copy`).
"""

from repro.comm.backend import CommAborted, run_spmd
from repro.comm.buffers import BufferPool
from repro.comm.communicator import Communicator, Request, set_zero_copy
from repro.comm.stats import CommStats
from repro.comm.collective_models import (
    AllreduceAlgorithm,
    allgather_time,
    allreduce_time,
    alltoall_time,
    barrier_time,
    bcast_time,
    bucketed_allreduce_time,
    pt2pt_time,
    reduce_scatter_time,
    segmented_allreduce_time,
    select_allreduce_algorithm,
)

__all__ = [
    "AllreduceAlgorithm",
    "BufferPool",
    "CommAborted",
    "CommStats",
    "Communicator",
    "Request",
    "allgather_time",
    "allreduce_time",
    "alltoall_time",
    "barrier_time",
    "bcast_time",
    "bucketed_allreduce_time",
    "pt2pt_time",
    "segmented_allreduce_time",
    "reduce_scatter_time",
    "run_spmd",
    "select_allreduce_algorithm",
    "set_zero_copy",
]
