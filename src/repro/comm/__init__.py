"""MPI-like communication substrate with pluggable SPMD backends.

This package replaces the MPI + NCCL + Aluminum stack used by the paper's
LBANN implementation with a functionally equivalent runtime:

* :mod:`repro.comm.backend` — the SPMD harness (:func:`run_spmd`), the
  abstract world/channel contract, the backend registry, and the default
  **thread** backend (one Python thread per rank over shared mailboxes and
  rendezvous state).
* :mod:`repro.comm.proc_backend` — the **process** backend: one forked OS
  process per rank with a shared-memory arena transport, so ranks execute
  in genuine parallel.  Select it with ``run_spmd(..., backend="process")``
  or globally via ``REPRO_BACKEND=process``.
* :mod:`repro.comm.socket_backend` — the **socket** backend: forked ranks
  grouped into logical nodes by a :class:`HostMap`
  (``run_spmd(..., hostmap="0,1:A 2,3:B")`` or ``REPRO_HOSTMAP``);
  same-node ranks use the shared-memory transport, cross-node ranks talk
  TCP.  The node layout also drives the communicator's *hierarchical*
  collectives (intra-node ring + inter-node exchange), selected by the
  two-tier cost model (:class:`TwoTierTopology`).
* :mod:`repro.comm.communicator` — the :class:`Communicator` API
  (``send``/``recv``/``sendrecv``/``allreduce``/``allgather``/``alltoall``/
  ``bcast``/``barrier``/``split``), mirroring mpi4py's lower-case object
  interface; backend-agnostic, and bitwise-reproducible across backends
  for a fixed rank count.
* :mod:`repro.comm.stats` — per-rank communication statistics (bytes,
  message and collective counts) used by tests and benchmarks to verify the
  communication-volume formulas of the paper's Section V.
* :mod:`repro.comm.collective_models` — α-β cost models for point-to-point
  and collective operations (Thakur et al.), used by the performance model.

The communicator is *buffered and eager*: ``send`` never blocks, so the
halo-exchange and shuffle patterns used by the distributed tensor library
cannot deadlock regardless of ordering.  Nonblocking variants
(``isend``/``irecv``/``iallreduce``/``ialltoall``) return :class:`Request`
handles with ``wait()``/``test()``; on the thread backend contiguous array
payloads cross the boundary zero-copy as read-only views (see
:func:`set_zero_copy`).
"""

from repro.comm.backend import (
    DEFAULT_TIMEOUT,
    CommAborted,
    CommIntegrityError,
    available_backends,
    default_backend,
    register_backend,
    resolve_backend,
    run_spmd,
)
from repro.comm.faults import (
    FAULTS_ENV,
    INJECTED_CRASH_EXIT,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    JobConfig,
)
from repro.comm import proc_backend as _proc_backend  # registers "process"
from repro.comm import socket_backend as _socket_backend  # registers "socket"
from repro.comm.buffers import BufferPool
from repro.comm.hostmap import HOSTMAP_ENV, HostMap, resolve_hostmap
from repro.comm.communicator import (
    COLLECTIVE_ALG_ENV,
    Communicator,
    Request,
    set_zero_copy,
)
from repro.comm.stats import CommStats
from repro.comm.collective_models import (
    AllreduceAlgorithm,
    DIRECT_ALGORITHM,
    HIERARCHICAL_ALGORITHM,
    TwoTierTopology,
    allgather_time,
    allreduce_time,
    allreduce_wire_bytes,
    alltoall_time,
    barrier_time,
    bcast_time,
    bucketed_allreduce_time,
    pt2pt_time,
    reduce_scatter_time,
    hierarchical_allreduce_time,
    hierarchical_inter_wire_bytes,
    resolve_allreduce_algorithm,
    segmented_allreduce_time,
    select_allreduce_algorithm,
    select_inter_algorithm,
)

__all__ = [
    "AllreduceAlgorithm",
    "BufferPool",
    "COLLECTIVE_ALG_ENV",
    "CommAborted",
    "CommIntegrityError",
    "CommStats",
    "Communicator",
    "DEFAULT_TIMEOUT",
    "DIRECT_ALGORITHM",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultSpec",
    "HIERARCHICAL_ALGORITHM",
    "HOSTMAP_ENV",
    "HostMap",
    "INJECTED_CRASH_EXIT",
    "InjectedCrash",
    "InjectedFault",
    "JobConfig",
    "Request",
    "TwoTierTopology",
    "allgather_time",
    "allreduce_wire_bytes",
    "hierarchical_allreduce_time",
    "hierarchical_inter_wire_bytes",
    "resolve_allreduce_algorithm",
    "resolve_hostmap",
    "select_inter_algorithm",
    "available_backends",
    "default_backend",
    "register_backend",
    "resolve_backend",
    "allreduce_time",
    "alltoall_time",
    "barrier_time",
    "bcast_time",
    "bucketed_allreduce_time",
    "pt2pt_time",
    "segmented_allreduce_time",
    "reduce_scatter_time",
    "run_spmd",
    "select_allreduce_algorithm",
    "set_zero_copy",
]
