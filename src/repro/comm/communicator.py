"""MPI-style communicator over the thread-based SPMD backend.

The interface mirrors mpi4py's lower-case (object) API: payloads are Python
objects, numpy arrays are passed by value (defensively copied at the
communication boundary so neither side can observe later mutations), and
collectives combine contributions in deterministic comm-rank order so runs
are bit-reproducible for a fixed rank count.

Semantics implemented:

* eager buffered ``send``/``recv``/``sendrecv`` matched on ``(source, tag)``;
* ``barrier``, ``bcast``, ``gather``, ``scatter``, ``allgather``,
  ``alltoall``, ``reduce``, ``allreduce``, ``reduce_scatter``;
* ``split(color, key)`` creating sub-communicators, the building block for
  the sample-group × spatial-group process grids of the paper's hybrid
  sample/spatial parallelism.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

import numpy as np

from repro.comm.backend import CommAborted, World, _Rendezvous
from repro.comm.stats import CommStats

_REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": lambda a, b: np.maximum(a, b),
    "min": lambda a, b: np.minimum(a, b),
}


def _freeze(payload: Any) -> Any:
    """Defensively copy array payloads crossing the communication boundary."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, tuple):
        return tuple(_freeze(p) for p in payload)
    if isinstance(payload, list):
        return [_freeze(p) for p in payload]
    return payload


def payload_nbytes(payload: Any) -> int:
    """Approximate wire size of a payload (numpy arrays dominate in practice)."""
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(p) for p in payload)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(v) for v in payload.values())
    return 64  # nominal envelope for small control messages


class Communicator:
    """A group of ranks with point-to-point and collective operations."""

    def __init__(
        self,
        world: World,
        members: tuple[int, ...],
        rank: int,
        key: Any,
    ) -> None:
        self._world = world
        self._members = members
        self.rank = rank
        self.size = len(members)
        self._key = key
        self._ctx: _Rendezvous = world.group(key, self.size)
        self._op_seq = 0
        self.stats = self._rank_stats(world, members[rank])

    # -- construction -------------------------------------------------------
    @classmethod
    def _world_comm(cls, world: World, rank: int) -> "Communicator":
        return cls(world, tuple(range(world.size)), rank, key=("world",))

    @staticmethod
    def _rank_stats(world: World, world_rank: int) -> CommStats:
        # One CommStats per world rank, shared by every communicator that
        # rank participates in, so split comms accumulate into one place.
        with world._groups_lock:
            registry = getattr(world, "_stats_registry", None)
            if registry is None:
                registry = [CommStats() for _ in range(world.size)]
                world._stats_registry = registry  # type: ignore[attr-defined]
        return registry[world_rank]

    # -- identity ------------------------------------------------------------
    @property
    def world_rank(self) -> int:
        """This rank's id in the global (world) communicator."""
        return self._members[self.rank]

    @property
    def members(self) -> tuple[int, ...]:
        """World ranks of this communicator's members, in comm-rank order."""
        return self._members

    def translate(self, comm_rank: int) -> int:
        """Map a rank of this communicator to its world rank."""
        return self._members[comm_rank]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Communicator(rank={self.rank}/{self.size}, "
            f"world_rank={self.world_rank}, key={self._key!r})"
        )

    # -- point-to-point -------------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Eagerly send ``payload`` to comm-rank ``dest`` (never blocks).

        Self-sends (``dest == self.rank``) are legal, as in buffered MPI.
        """
        self._check_peer(dest, "dest")
        frozen = _freeze(payload)
        self.stats.record_send(payload_nbytes(frozen))
        self._world.deliver(self.world_rank, self._members[dest], self._tag_key(tag), frozen)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Block until a message from comm-rank ``source`` with ``tag`` arrives."""
        self._check_peer(source, "source")
        payload = self._world.collect(
            self.world_rank, self._members[source], self._tag_key(tag)
        )
        self.stats.record_recv(payload_nbytes(payload))
        return payload

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        source: int,
        send_tag: int = 0,
        recv_tag: int = 0,
    ) -> Any:
        """Combined send+receive; safe in any order because sends are eager."""
        self.send(payload, dest, tag=send_tag)
        return self.recv(source, tag=recv_tag)

    def _check_peer(self, peer: int, what: str) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(
                f"{what}={peer} out of range for communicator of size {self.size}"
            )

    def _tag_key(self, tag: int) -> Any:
        # Namespacing tags by communicator key keeps traffic on different
        # communicators (e.g. spatial group vs sample group) from colliding.
        return (self._key, tag)

    # -- collectives ------------------------------------------------------------
    def barrier(self) -> None:
        self._barrier_wait()

    def bcast(self, payload: Any, root: int = 0) -> Any:
        def combine(slots: list[Any]) -> Any:
            return _freeze(slots[root])

        result = self._collective(payload if self.rank == root else None, combine)
        self.stats.record_collective("bcast", payload_nbytes(result))
        return result

    def gather(self, payload: Any, root: int = 0) -> list[Any] | None:
        def combine(slots: list[Any]) -> list[Any]:
            return [_freeze(s) for s in slots]

        gathered = self._collective(payload, combine)
        self.stats.record_collective("gather", payload_nbytes(payload))
        return gathered if self.rank == root else None

    def scatter(self, payloads: Sequence[Any] | None, root: int = 0) -> Any:
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise ValueError(
                    f"scatter root must supply exactly {self.size} payloads"
                )

        def combine(slots: list[Any]) -> Any:
            return _freeze(slots[root][self.rank])

        result = self._collective(payloads if self.rank == root else None, combine)
        self.stats.record_collective("scatter", payload_nbytes(result))
        return result

    def allgather(self, payload: Any) -> list[Any]:
        def combine(slots: list[Any]) -> list[Any]:
            return [_freeze(s) for s in slots]

        result = self._collective(payload, combine)
        self.stats.record_collective("allgather", payload_nbytes(payload))
        return result

    def alltoall(self, payloads: Sequence[Any]) -> list[Any]:
        """``payloads[j]`` is sent to comm-rank ``j``; returns what each rank sent us."""
        if len(payloads) != self.size:
            raise ValueError(f"alltoall requires exactly {self.size} payloads")

        def combine(slots: list[Any]) -> list[Any]:
            return [_freeze(slots[i][self.rank]) for i in range(self.size)]

        result = self._collective(list(payloads), combine)
        self.stats.record_collective(
            "alltoall",
            sum(payload_nbytes(p) for i, p in enumerate(payloads) if i != self.rank),
        )
        return result

    def reduce(self, value: Any, op: str = "sum", root: int = 0) -> Any | None:
        result = self.allreduce(value, op=op)
        return result if self.rank == root else None

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """Element-wise reduction combined in deterministic comm-rank order."""
        try:
            fn = _REDUCE_OPS[op]
        except KeyError:
            raise ValueError(f"unknown reduction op {op!r}") from None

        def combine(slots: list[Any]) -> Any:
            acc = _freeze(slots[0])
            for s in slots[1:]:
                acc = fn(acc, s)
            return acc

        result = self._collective(value, combine)
        self.stats.record_collective("allreduce", payload_nbytes(result))
        return result

    def reduce_scatter(self, parts: Sequence[Any], op: str = "sum") -> Any:
        """``parts[j]`` is this rank's contribution destined for rank ``j``.

        Returns the reduction, over all ranks, of their contribution for
        *this* rank.  This is the primitive channel-parallel convolution
        uses to combine partial sums over the channel group (paper §III-D).
        """
        if len(parts) != self.size:
            raise ValueError(f"reduce_scatter requires exactly {self.size} parts")
        try:
            fn = _REDUCE_OPS[op]
        except KeyError:
            raise ValueError(f"unknown reduction op {op!r}") from None

        def combine(slots: list[Any]) -> Any:
            acc = _freeze(slots[0][self.rank])
            for s in slots[1:]:
                acc = fn(acc, s[self.rank])
            return acc

        result = self._collective(list(parts), combine)
        self.stats.record_collective("reduce_scatter", payload_nbytes(result))
        return result

    # -- sub-communicators ----------------------------------------------------
    def split(self, color: int | None, key: int | None = None) -> "Communicator | None":
        """Partition the communicator by ``color``; order new ranks by ``key``.

        Ranks passing ``color=None`` receive ``None`` (MPI_UNDEFINED).  All
        members must call ``split`` (it is collective).
        """
        seq = self._op_seq  # captured before the allgather consumes a slot
        sort_key = key if key is not None else self.rank
        infos = self.allgather((color, sort_key))

        if color is None:
            return None
        group = sorted(
            (
                (info_key, comm_rank)
                for comm_rank, (info_color, info_key) in enumerate(infos)
                if info_color == color
            ),
        )
        new_members = tuple(self._members[comm_rank] for _, comm_rank in group)
        new_rank = new_members.index(self.world_rank)
        new_key = (self._key, "split", seq, color)
        return Communicator(self._world, new_members, new_rank, new_key)

    def dup(self) -> "Communicator":
        """Duplicate this communicator (fresh collective context and tags)."""
        seq = self._op_seq
        self.barrier()
        return Communicator(
            self._world, self._members, self.rank, key=(self._key, "dup", seq)
        )

    # -- internals -----------------------------------------------------------
    def _collective(self, contribution: Any, combine: Callable[[list[Any]], Any]) -> Any:
        ctx = self._ctx
        ctx.slots[self.rank] = contribution
        self._barrier_wait()
        # Slots are complete and read-only in this phase; every rank combines
        # independently (identical deterministic order) into a private copy.
        result = combine(ctx.slots)
        self._barrier_wait()
        return result

    def _barrier_wait(self) -> None:
        self._op_seq += 1
        try:
            self._ctx.barrier.wait(timeout=self._world.timeout)
        except threading.BrokenBarrierError:
            raise CommAborted(
                f"collective on {self._key!r} interrupted: world aborted or timed out"
            ) from None
