"""MPI-style communicator over a pluggable SPMD world backend.

The interface mirrors mpi4py's lower-case (object) API: payloads are Python
objects, collectives combine contributions in deterministic comm-rank order
so runs are bit-reproducible for a fixed rank count — on *either* backend:
the communicator is backend-agnostic and talks to the world through the
:class:`~repro.comm.backend.BaseWorld` / GroupChannel contract, so the same
``combine`` arithmetic runs on the same slot order whether ranks are
threads or processes.

Array payloads cross the communication boundary **zero-copy** where
possible on the thread backend: a C-contiguous ndarray is shared as a
read-only view instead of being deep-copied (non-contiguous arrays are
still copied; see :func:`set_zero_copy` to disable the fast path when
chasing a suspected aliasing bug).  The process backend copies through a
shared-memory arena instead.  The contract is MPI's either way: a buffer
handed to ``send``/``isend`` or contributed to a collective must not be
mutated afterwards.  Received arrays may be read-only; treat them as
immutable (``bcast``/``scatter`` results are exempt — they are private
writable copies, since they commonly carry small control state the
receiver updates in place).

Semantics implemented:

* eager buffered ``send``/``recv``/``sendrecv`` matched on ``(source, tag)``;
* ``barrier``, ``bcast``, ``gather``, ``scatter``, ``allgather``,
  ``alltoall``, ``reduce``, ``allreduce``, ``reduce_scatter``;
* **nonblocking** ``isend``/``irecv``/``iallreduce``/``ialltoall`` returning
  :class:`Request` handles with MPI-style ``wait()``/``test()``; any number
  of requests may be in flight per communicator and they may be completed
  out of order.  This is the primitive the training engine uses to overlap
  the dL/dw allreduces with backpropagation (paper §IV);
* ``split(color, key)`` creating sub-communicators, the building block for
  the sample-group × spatial-group process grids of the paper's hybrid
  sample/spatial parallelism;
* **algorithmic wire schedules**: the reduction and rooted collectives take
  an ``algorithm=`` knob (``"auto"`` → the cost model's Thakur-style
  selection; ``REPRO_COLLECTIVE_ALG`` overrides globally) that compiles
  ring / Rabenseifner / recursive-doubling / binomial-tree schedules onto
  the point-to-point transport (:mod:`repro.comm.algorithms`), cutting an
  allreduce's per-rank wire volume from ``n(p-1)`` to ``2n(p-1)/p``;
  ``"direct"`` retains the deposit-combine comm-rank-order fold as the
  bitwise-reference mode.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Any, Callable, Sequence

import numpy as np

from repro.comm import algorithms as _alg
from repro.comm.backend import BaseWorld, GroupChannel
from repro.comm.buffers import BufferPool
from repro.comm.collective_models import (
    HIERARCHICAL_ALGORITHM,
    TwoTierTopology,
    resolve_allreduce_algorithm,
    segment_sizes,
    select_inter_algorithm,
    select_segment_bytes,
)
from repro.comm.stats import CommStats
from repro.obs import tracer as _trace

_REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": lambda a, b: np.maximum(a, b),
    "min": lambda a, b: np.minimum(a, b),
}

#: The binary ufunc behind each reduction op — handed to
#: :class:`~repro.comm.algorithms.ScheduleRunner` so scheduled reductions
#: accumulate in place (``ufunc(a, b, out=a)``) instead of allocating a
#: temporary per receive.  Operand order still follows the compiled
#: schedule's ``acc_first``, so results stay bitwise identical to the
#: generic-callable path.
_REDUCE_UFUNCS: dict[str, Any] = {
    "sum": np.add,
    "prod": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
}

#: Environment override for every ``algorithm=`` collective knob: set to
#: ``direct`` for the bitwise-reference mode (every collective runs the
#: legacy deposit-combine path), to ``ring`` / ``rabenseifner`` /
#: ``recursive_doubling`` to force the reduction schedules, to
#: ``binomial`` to force the rooted trees, or to ``auto`` for model-driven
#: selection.  Values that are meaningless for an op (e.g. ``binomial``
#: for an allreduce) leave that op on its own default resolution.
COLLECTIVE_ALG_ENV = "REPRO_COLLECTIVE_ALG"

#: Environment override for the reduction collectives' ``segment_bytes=``
#: pipelining knob: ``auto`` applies the cost model's
#: :func:`~repro.comm.collective_models.select_segment_bytes` minimization,
#: ``none``/``off``/``0`` disables segmentation, and a positive integer
#: forces that segment size in bytes.  Anything else fails loudly.
SEGMENT_BYTES_ENV = "REPRO_SEGMENT_BYTES"

_REDUCTION_ALG_CHOICES = {
    "auto", "direct", HIERARCHICAL_ALGORITHM, *_alg.REDUCTION_ALGORITHMS
}
_TREE_ALG_CHOICES = {"auto", "direct", "binomial"}
_RS_ALG_CHOICES = {"auto", "direct", "ring"}
_AG_ALG_CHOICES = {"auto", "direct", "ring", "recursive_doubling"}
#: Every name the env override may legally carry; anything else is a typo
#: and must fail loudly rather than silently disable the override.
_ALL_ALG_CHOICES = (
    _REDUCTION_ALG_CHOICES
    | _TREE_ALG_CHOICES
    | _RS_ALG_CHOICES
    | _AG_ALG_CHOICES
)


def _parse_segment_bytes(text: str) -> int | str | None:
    """Parse a ``segment_bytes`` knob/env value; raise loudly on typos."""
    t = text.strip().lower()
    if t in ("none", "off", "0"):
        return None
    if t == "auto":
        return "auto"
    try:
        value = int(t)
    except ValueError:
        raise ValueError(
            f"{SEGMENT_BYTES_ENV}={text!r} is not a segment size; expected "
            f"'auto', 'none', or a positive integer byte count"
        ) from None
    if value < 1:
        raise ValueError(
            f"{SEGMENT_BYTES_ENV}={text!r} must be a positive byte count"
        )
    return value

#: When True (default), C-contiguous arrays are shared across the boundary
#: as read-only views instead of deep copies.
_ZERO_COPY = True


def set_zero_copy(enabled: bool) -> bool:
    """Enable/disable the zero-copy send fast path; returns the old setting.

    Turning it off restores the historical copy-on-send semantics, which is
    useful as a bisection tool when debugging a suspected aliasing bug (a
    behavioral difference between the two modes indicates a sender mutating
    a buffer after handing it to the communicator).
    """
    global _ZERO_COPY
    prev = _ZERO_COPY
    _ZERO_COPY = bool(enabled)
    return prev


def _freeze(payload: Any) -> Any:
    """Make an array payload safe to hand across the communication boundary.

    C-contiguous ndarrays become read-only *views* (zero-copy): the receiver
    cannot write through them, and the sender promises not to mutate the
    buffer after the send — the MPI contract.  Everything else that needs
    protecting is copied.
    """
    if isinstance(payload, np.ndarray):
        if _ZERO_COPY and payload.flags.c_contiguous:
            if not payload.flags.writeable:
                return payload
            view = payload.view()
            view.flags.writeable = False
            return view
        return payload.copy()
    if isinstance(payload, tuple):
        return tuple(_freeze(p) for p in payload)
    if isinstance(payload, list):
        return [_freeze(p) for p in payload]
    return payload


def _private(payload: Any) -> Any:
    """A writable private copy of a (possibly frozen) payload."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, tuple):
        return tuple(_private(p) for p in payload)
    if isinstance(payload, list):
        return [_private(p) for p in payload]
    return payload


def _schedulable_array(payload: Any) -> bool:
    """True if a payload can run through the chunked reduction schedules."""
    return isinstance(payload, np.ndarray) and payload.dtype != object


def payload_nbytes(payload: Any) -> int:
    """Approximate wire size of a payload (numpy arrays dominate in practice)."""
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (tuple, list)):
        return sum(payload_nbytes(p) for p in payload)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(v) for v in payload.values())
    return 64  # nominal envelope for small control messages


class Request:
    """Handle to an in-flight nonblocking operation (MPI_Request analogue).

    ``wait()`` blocks until the operation completes and returns its result
    (``None`` for sends).  ``test()`` polls without blocking and returns
    whether the operation has completed; once it returns True the result is
    available from ``wait()`` immediately.  Requests may be completed in any
    order.  If the world aborts, both raise :class:`CommAborted`.
    """

    _done: bool = False
    _result: Any = None

    @property
    def complete(self) -> bool:
        return self._done

    def wait(self) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def test(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class _CompletedRequest(Request):
    """A request born complete (eager ``isend``)."""

    def __init__(self, result: Any = None) -> None:
        self._done = True
        self._result = result

    def wait(self) -> Any:
        return self._result

    def test(self) -> bool:
        return True


class _RecvRequest(Request):
    """Pending point-to-point receive."""

    def __init__(
        self, comm: "Communicator", source: int, tag: int, opname: str = "irecv"
    ) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._opname = opname
        self._t_launch = perf_counter()

    def _finish(self, payload: Any, waited: float) -> None:
        comm = self._comm
        nbytes = payload_nbytes(payload)
        comm.stats.record_recv(nbytes)
        overlapped = (perf_counter() - self._t_launch) - waited
        comm.stats.record_async(self._opname, nbytes, waited, overlapped, collective=False)
        if _trace.is_on():
            _trace.flow_in(comm._members[self._source], comm._tag_key(self._tag))
            _trace.wait_span(self._opname, waited, overlapped, nbytes)
        self._result = payload
        self._done = True

    def wait(self) -> Any:
        if self._done:
            return self._result
        comm = self._comm
        t0 = perf_counter()
        payload = comm._world.collect(
            comm.world_rank,
            comm._members[self._source],
            comm._tag_key(self._tag),
            opname=self._opname,
        )
        self._finish(payload, waited=perf_counter() - t0)
        return self._result

    def test(self) -> bool:
        if self._done:
            return True
        comm = self._comm
        got, payload = comm._world.try_collect(
            comm.world_rank, comm._members[self._source], comm._tag_key(self._tag)
        )
        if got:
            self._finish(payload, waited=0.0)
        return self._done


class _CollectiveRequest(Request):
    """Pending nonblocking collective on one communicator.

    The underlying operation completes when every member has deposited;
    waiting never requires peers to have *read* their results, so a fast
    rank can fire-and-forget many collectives and drain them later, out of
    order.  Slot exchange is the backend channel's job; the *combine*
    arithmetic runs here, identically on every backend.
    """

    def __init__(
        self,
        comm: "Communicator",
        token: Any,
        combine: Callable[[list[Any]], Any],
        opname: str,
        count_stats: bool = True,
        wire: tuple[int, int | Callable[[Any], int]] | None = None,
    ) -> None:
        self._comm = comm
        self._token = token
        self._combine = combine
        self._opname = opname
        self._count_stats = count_stats
        #: (sent bytes, received bytes or fn(result) -> received bytes):
        #: the notional wire volume of the deposit-combine exchange,
        #: recorded at completion under the op's wire counters.
        self._wire = wire
        self._t_launch = perf_counter()

    def _complete(self, slots: list[Any], waited: float) -> None:
        comm = self._comm
        t0 = perf_counter()
        # Slots are fully deposited and read-only by convention; every
        # member combines independently in identical deterministic order.
        result = self._combine(slots)
        comm._channel.nb_finish(self._token)
        # The caller is blocked while the reduction arithmetic runs, so
        # combine time counts as wait, never as hidden communication.
        waited += perf_counter() - t0
        overlapped = (perf_counter() - self._t_launch) - waited
        comm.stats.record_async(
            self._opname,
            payload_nbytes(result),
            waited,
            overlapped,
            collective=self._count_stats,
        )
        if self._wire is not None:
            sent, recv = self._wire
            comm.stats.record_wire(
                self._opname, sent, recv(result) if callable(recv) else recv
            )
        if _trace.is_on():
            _trace.wait_span(self._opname, waited, overlapped, payload_nbytes(result))
        self._result = result
        self._done = True

    def wait(self) -> Any:
        if self._done:
            return self._result
        t0 = perf_counter()
        slots = self._comm._channel.nb_wait(self._token)
        self._complete(slots, waited=perf_counter() - t0)
        return self._result

    def test(self) -> bool:
        if self._done:
            return True
        if self._comm._channel.nb_test(self._token):
            slots = self._comm._channel.nb_wait(self._token)
            self._complete(slots, waited=0.0)
        return self._done


class _ScheduleRequest(Request):
    """Pending algorithmic (scheduled) nonblocking collective.

    The compiled schedule is driven *progressively*: issue time performs
    every step up to the first unsatisfied receive (all sends are eager),
    ``test()`` advances with nonblocking probes, ``wait()`` blocks through
    the rest.  Because later steps of a schedule depend on peers making
    progress on the *same* schedule, waiting on a request first completes
    any earlier in-flight scheduled collectives on the communicator (they
    cache their results in their own request objects) — the liveness rule
    that lets requests be waited in any order, mirroring an MPI progress
    engine.  The reduction order is fixed at compile time, so results are
    independent of when progress happens.
    """

    def __init__(
        self, comm: "Communicator", runner: "_alg.ScheduleRunner", opname: str
    ) -> None:
        self._comm = comm
        self._runner = runner
        self._opname = opname
        self._t_launch = perf_counter()
        runner.launch()
        comm._alg_inflight.append(self)

    def _complete(self, result: Any, waited: float) -> None:
        comm = self._comm
        runner = self._runner
        comm.stats.record_wire(
            self._opname, runner.wire_sent, runner.wire_recv,
            inter_sent=runner.wire_sent_inter,
            inter_recv=runner.wire_recv_inter,
        )
        overlapped = (perf_counter() - self._t_launch) - waited
        comm.stats.record_async(
            self._opname, payload_nbytes(result), waited, overlapped
        )
        if _trace.is_on():
            _trace.wait_span(self._opname, waited, overlapped, payload_nbytes(result))
        try:
            comm._alg_inflight.remove(self)
        except ValueError:  # pragma: no cover - defensive
            pass
        self._result = result
        self._done = True

    def _drain_predecessors(self, blocking: bool) -> None:
        for req in list(self._comm._alg_inflight):
            if req is self:
                break
            if blocking:
                req.wait()
            else:
                req.test()

    def wait(self) -> Any:
        if self._done:
            return self._result
        t0 = perf_counter()
        self._drain_predecessors(blocking=True)
        result = self._runner.finish()
        self._complete(result, waited=perf_counter() - t0)
        return self._result

    def test(self) -> bool:
        if self._done:
            return True
        self._drain_predecessors(blocking=False)
        if self._runner.progress():
            self._complete(self._runner.finish(), waited=0.0)
        return self._done


class Communicator:
    """A group of ranks with point-to-point and collective operations."""

    def __init__(
        self,
        world: BaseWorld,
        members: tuple[int, ...],
        rank: int,
        key: Any,
    ) -> None:
        self._world = world
        self._members = members
        self.rank = rank
        self.size = len(members)
        self._key = key
        self._channel: GroupChannel = world.channel(key, members, rank)
        self._op_seq = 0
        self._nb_seq = 0  # nonblocking-collective sequence (matched across ranks)
        self._xchg_seq = 0  # pt2pt exchange-pattern sequence (matched across ranks)
        self._alg_seq = 0  # algorithmic-schedule sequence (matched across ranks)
        #: Staging buffers for the schedules' send segments (recycled once
        #: receivers drop their zero-copy views).
        self._alg_pool = BufferPool(max_buffers_per_key=4)
        #: In-flight algorithmic nonblocking collectives, in issue order.
        self._alg_inflight: list["_ScheduleRequest"] = []
        #: Lazy caches for the node-hierarchy view of this communicator
        #: (``False`` = not yet computed; the layout is immutable).
        self._hierarchy_cache: Any = False
        self._inter_flags_cache: tuple[bool, ...] | None = None
        self.stats: CommStats = world.rank_stats(members[rank])

    # -- construction -------------------------------------------------------
    @classmethod
    def _world_comm(cls, world: BaseWorld, rank: int) -> "Communicator":
        return cls(world, tuple(range(world.size)), rank, key=("world",))

    # -- identity ------------------------------------------------------------
    @property
    def world_rank(self) -> int:
        """This rank's id in the global (world) communicator."""
        return self._members[self.rank]

    @property
    def members(self) -> tuple[int, ...]:
        """World ranks of this communicator's members, in comm-rank order."""
        return self._members

    @property
    def backend(self) -> str:
        """Name of the world backend this communicator runs on."""
        return self._world.backend_name

    def translate(self, comm_rank: int) -> int:
        """Map a rank of this communicator to its world rank."""
        return self._members[comm_rank]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Communicator(rank={self.rank}/{self.size}, "
            f"world_rank={self.world_rank}, backend={self.backend}, "
            f"key={self._key!r})"
        )

    # -- point-to-point -------------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Eagerly send ``payload`` to comm-rank ``dest`` (never blocks).

        Contiguous arrays are handed over zero-copy: the buffer must not be
        mutated after the call.  Self-sends (``dest == self.rank``) are
        legal, as in buffered MPI.
        """
        self._check_peer(dest, "dest")
        frozen = _freeze(payload)
        nbytes = payload_nbytes(frozen)
        self.stats.record_send(nbytes)
        tag_key = self._tag_key(tag)
        with _trace.span("send", cat="pt2pt", dest=dest, bytes=nbytes):
            _trace.flow_out(self._members[dest], tag_key)
            self._world.deliver(self.world_rank, self._members[dest], tag_key, frozen)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Block until a message from comm-rank ``source`` with ``tag`` arrives."""
        self._check_peer(source, "source")
        tag_key = self._tag_key(tag)
        with _trace.span("recv", cat="pt2pt", source=source) as sp:
            payload = self._world.collect(self.world_rank, self._members[source], tag_key)
            _trace.flow_in(self._members[source], tag_key)
            nbytes = payload_nbytes(payload)
            sp.set(bytes=nbytes)
        self.stats.record_recv(nbytes)
        return payload

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send.  Sends are eager, so the request is born complete."""
        self.send(payload, dest, tag=tag)
        return _CompletedRequest()

    def irecv(self, source: int, tag: int = 0, *, opname: str = "irecv") -> Request:
        """Nonblocking receive; ``wait()`` returns the payload.

        ``opname`` labels the request in :class:`~repro.comm.stats.CommStats`
        so structured exchange patterns (e.g. the overlapped halo exchange)
        can surface their wait-vs-overlap split separately from generic
        point-to-point traffic.
        """
        self._check_peer(source, "source")
        return _RecvRequest(self, source, tag, opname=opname)

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        source: int,
        send_tag: int = 0,
        recv_tag: int = 0,
    ) -> Any:
        """Combined send+receive; safe in any order because sends are eager."""
        self.send(payload, dest, tag=send_tag)
        return self.recv(source, tag=recv_tag)

    def _check_peer(self, peer: int, what: str) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(
                f"{what}={peer} out of range for communicator of size {self.size}"
            )

    def next_exchange_seq(self) -> int:
        """Sequence number for one symmetric point-to-point exchange pattern.

        Structured exchanges (halo gathers) tag their messages with this
        sequence so concurrent or skewed exchanges on the same communicator
        can never mis-match.  Every rank must call it at the same logical
        point (once per exchange, in program order) — the same discipline
        MPI imposes on collective call order.
        """
        seq = self._xchg_seq
        self._xchg_seq += 1
        return seq

    def _tag_key(self, tag: int) -> Any:
        # Namespacing tags by communicator key keeps traffic on different
        # communicators (e.g. spatial group vs sample group) from colliding.
        return (self._key, tag)

    # -- algorithm selection --------------------------------------------------
    def _next_alg_seq(self) -> int:
        """Sequence number for one algorithmic (scheduled) collective.

        Matched across ranks the same way nonblocking-collective sequences
        are: every member issues a group's collectives in the same program
        order, so the pt2pt tags the schedules exchange under line up.
        """
        seq = self._alg_seq
        self._alg_seq += 1
        return seq

    def _knob(self, algorithm: Any, choices: set, opname: str) -> str:
        """Validate an ``algorithm=`` knob and apply the env override.

        ``REPRO_COLLECTIVE_ALG`` overrides every call site when its value
        is meaningful for the op (``direct`` always is — the global
        bitwise-reference mode); meaningless combinations (``binomial``
        for an allreduce) leave the op on its own resolution.
        """
        name = "auto" if algorithm is None else getattr(algorithm, "value", algorithm)
        if name not in choices:
            raise ValueError(
                f"unknown {opname} algorithm {name!r}; "
                f"expected one of {sorted(choices)}"
            )
        env = os.environ.get(COLLECTIVE_ALG_ENV)
        if env:
            if env not in _ALL_ALG_CHOICES:
                raise ValueError(
                    f"{COLLECTIVE_ALG_ENV}={env!r} names no collective "
                    f"algorithm; expected one of {sorted(_ALL_ALG_CHOICES)}"
                )
            if env in choices:
                name = env
        return name

    # -- node hierarchy -------------------------------------------------------
    def hierarchy(self) -> tuple[tuple[int, ...], ...] | None:
        """This communicator's comm ranks grouped by logical node.

        Groups follow the world's host map (:meth:`BaseWorld.node_of`),
        ordered by node id with comm ranks ascending inside each group.
        Returns ``None`` unless the layout is *usable* for a two-level
        schedule: at least two nodes, at least two members per node, and
        the same member count on every node.  Without a host map all
        members share node 0, so flat single-machine runs see ``None``.
        """
        if self._hierarchy_cache is False:
            groups: dict[int, list[int]] = {}
            for comm_rank, member in enumerate(self._members):
                groups.setdefault(self._world.node_of(member), []).append(comm_rank)
            layout = tuple(tuple(groups[n]) for n in sorted(groups))
            usable = (
                len(layout) >= 2
                and len(layout[0]) >= 2
                and all(len(g) == len(layout[0]) for g in layout)
            )
            self._hierarchy_cache = layout if usable else None
        return self._hierarchy_cache

    def _two_tier(self) -> TwoTierTopology | None:
        """Two-tier cost-model topology of this communicator, or ``None``."""
        h = self.hierarchy()
        if h is None:
            return None
        return TwoTierTopology(nnodes=len(h), ranks_per_node=len(h[0]))

    def _inter_flags(self) -> tuple[bool, ...] | None:
        """Per-comm-rank flag: does that member live on another node?

        ``None`` when every member shares this rank's node (no inter-node
        wire to meter) — the schedule runners then skip the inter tally.
        """
        if self._inter_flags_cache is None:
            my_node = self._world.node_of(self.world_rank)
            flags = tuple(
                self._world.node_of(m) != my_node for m in self._members
            )
            self._inter_flags_cache = flags if any(flags) else ()
        return self._inter_flags_cache or None

    def _resolve_reduction(self, algorithm: Any, payload: Any, opname: str) -> str:
        name = self._knob(algorithm, _REDUCTION_ALG_CHOICES, opname)
        if self.size == 1 or not _schedulable_array(payload):
            return "direct"
        if name == "auto":
            return resolve_allreduce_algorithm(
                "auto", self.size, payload.nbytes, self._two_tier()
            )
        if name == HIERARCHICAL_ALGORITHM and self.hierarchy() is None:
            # Forced hierarchical without a usable node layout (no host
            # map, non-uniform groups, or a single node): fall back to the
            # flat model-driven choice rather than fail the collective.
            return resolve_allreduce_algorithm("auto", self.size, payload.nbytes)
        return name

    def _resolve_segment_bytes(
        self, segment_bytes: Any, value: np.ndarray, alg: str
    ) -> int | None:
        """Normalize a ``segment_bytes`` knob to a concrete byte count.

        ``None`` → unsegmented (the pre-segmentation schedules, bitwise);
        ``"auto"`` → the cost model's
        :func:`~repro.comm.collective_models.select_segment_bytes`
        minimization for this ``(p, nbytes, algorithm)``; an integer
        forces that size.  :data:`SEGMENT_BYTES_ENV` overrides the call
        site.  ``"direct"`` has no schedule to segment and always returns
        ``None``.
        """
        env = os.environ.get(SEGMENT_BYTES_ENV)
        if env is not None and env.strip() != "":
            segment_bytes = _parse_segment_bytes(env)
        elif isinstance(segment_bytes, str):
            segment_bytes = _parse_segment_bytes(segment_bytes)
        if segment_bytes is None or alg == "direct":
            return None
        if segment_bytes == "auto":
            return select_segment_bytes(self.size, value.nbytes, algorithm=alg)
        seg = int(segment_bytes)
        if seg < 1:
            raise ValueError(
                f"segment_bytes must be a positive byte count, got {seg}"
            )
        return seg

    def _reduction_runner(
        self,
        opname: str,
        alg: str,
        value: Any,
        fn: Callable[[Any, Any], Any],
        segment_bytes: Any = None,
        ufunc: Any = None,
    ) -> "_alg.ScheduleRunner":
        """Build the schedule runner for one scheduled reduction.

        With a resolved ``segment_bytes`` that splits the payload into
        ``nseg >= 2`` segments, the compiled schedule is expanded
        step-major over the :func:`~repro.comm.algorithms.segmented_offsets`
        table (:func:`~repro.comm.algorithms.segment_steps`), so segment
        ``k+1`` is on the wire while ``k`` reduces; ``nseg <= 1`` leaves
        the base schedule untouched — bitwise-identical to the
        unsegmented path.
        """
        if alg == HIERARCHICAL_ALGORITHM:
            h = self.hierarchy()
            assert h is not None  # _resolve_reduction guarantees it
            inter = select_inter_algorithm(
                len(h), max(1.0, value.nbytes / len(h[0]))
            )
            steps = _alg.compile_hierarchical_allreduce(h, inter.value)[self.rank]
        else:
            steps = _alg.compile_allreduce(self.size, alg)[self.rank]
        offsets = None
        seg = self._resolve_segment_bytes(segment_bytes, value, alg)
        if seg:
            nseg = len(segment_sizes(value.nbytes, seg))
            if nseg > 1:
                steps = _alg.segment_steps(steps, self.size, nseg)
                offsets = _alg.segmented_offsets(value.size, self.size, nseg)
                self.stats.record_segments(opname, nseg)
        return _alg.ScheduleRunner(
            self, opname, steps, value, fn, self._next_alg_seq(),
            offsets=offsets, inter_peers=self._inter_flags(), ufunc=ufunc,
        )

    def _resolve_tree(self, algorithm: Any, opname: str) -> str:
        name = self._knob(algorithm, _TREE_ALG_CHOICES, opname)
        if self.size == 1:
            return "direct"
        return "binomial" if name == "auto" else name

    def _progress_inflight_schedules(self) -> None:
        """Advance pending scheduled collectives without blocking.

        Called on entry to the blocking channel collectives: a rank about
        to sink into a rendezvous first pushes its in-flight schedules as
        far as the already-arrived messages allow, so peers driving those
        schedules keep receiving segments.  (The SPMD discipline still
        requires every rank to eventually wait each scheduled request —
        a rank that abandons one can starve peers that wait it.)
        """
        for req in list(self._alg_inflight):
            req.test()

    # -- collectives ------------------------------------------------------------
    def barrier(self) -> None:
        with _trace.span("barrier", cat="coll"):
            self._progress_inflight_schedules()
            self._op_seq += 1
            self._channel.barrier()

    def bcast(
        self, payload: Any, root: int = 0, *, algorithm: str | None = None
    ) -> Any:
        """Broadcast ``root``'s payload to every member.

        ``algorithm``: ``"binomial"`` (the default via ``"auto"``) routes
        the payload down a binomial tree in ``⌈lg p⌉`` point-to-point
        rounds, so the root sends ``⌈lg p⌉`` copies instead of ``p - 1``;
        ``"direct"`` is the legacy root-deposits exchange.  Both are pure
        routing — results are bitwise identical either way.
        """
        self._check_peer(root, "root")
        alg = self._resolve_tree(algorithm, "bcast")
        if alg == "binomial":
            node = _alg.compile_tree(self.size, root)[self.rank]
            with _trace.span("bcast", cat="coll", alg="binomial"):
                got, t = _alg.run_tree_bcast(
                    self,
                    node,
                    _freeze(payload) if self.rank == root else None,
                    "bcast",
                    self._next_alg_seq(),
                )
            result = _private(got)
            self.stats.record_wire("bcast", t.wire_sent, t.wire_recv)
        else:
            def combine(slots: list[Any]) -> Any:
                return _private(slots[root])

            # Every rank reads only the root's slot, so message-passing
            # backends route root -> everyone instead of a full allgather.
            result = self._collective(
                payload if self.rank == root else None, combine, "bcast",
                needs=lambda r: (root,),
            )
            n = payload_nbytes(result)
            if self.rank == root:
                self.stats.record_wire("bcast", sent=n * (self.size - 1))
            else:
                self.stats.record_wire("bcast", recv=n)
        self.stats.record_collective("bcast", payload_nbytes(result))
        return result

    def gather(
        self, payload: Any, root: int = 0, *, algorithm: str | None = None
    ) -> list[Any] | None:
        """Gather every member's payload at ``root`` (comm-rank order).

        ``"binomial"`` (the default via ``"auto"``) merges subtree bundles
        up a binomial tree; ``"direct"`` ships every contribution straight
        to the root.  Pure routing — bitwise identical either way.  The
        root's stats row accounts the full gathered volume (non-roots
        their own contribution), so ``comm_report`` rows line up with the
        transport counters.
        """
        self._check_peer(root, "root")
        alg = self._resolve_tree(algorithm, "gather")
        own = payload_nbytes(payload)
        if alg == "binomial":
            node = _alg.compile_tree(self.size, root)[self.rank]
            with _trace.span("gather", cat="coll", alg="binomial"):
                gathered, t = _alg.run_tree_gather(
                    self, node, _freeze(payload), "gather", self._next_alg_seq()
                )
            self.stats.record_wire("gather", t.wire_sent, t.wire_recv)
        else:
            all_ranks = tuple(range(self.size))

            def combine(slots: list[Any]) -> list[Any]:
                return list(slots)

            gathered = self._collective(
                payload, combine, "gather",
                needs=lambda r: all_ranks if r == root else (),
            )
            if self.rank == root:
                self.stats.record_wire(
                    "gather",
                    recv=sum(
                        payload_nbytes(s)
                        for i, s in enumerate(gathered)
                        if i != self.rank
                    ),
                )
            else:
                self.stats.record_wire("gather", sent=own)
        if self.rank == root:
            self.stats.record_collective(
                "gather", sum(payload_nbytes(s) for s in gathered)
            )
            return gathered
        self.stats.record_collective("gather", own)
        return None

    def scatter(
        self,
        payloads: Sequence[Any] | None,
        root: int = 0,
        *,
        algorithm: str | None = None,
    ) -> Any:
        """Distribute ``payloads[j]`` from ``root`` to comm-rank ``j``.

        ``"binomial"`` (the default via ``"auto"``) sends each child its
        subtree's bundle down a binomial tree; ``"direct"`` ships from the
        root directly.  Pure routing — bitwise identical either way.  The
        root's stats row accounts all scattered pieces (non-roots their
        received piece).
        """
        self._check_peer(root, "root")
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise ValueError(
                    f"scatter root must supply exactly {self.size} payloads"
                )
        alg = self._resolve_tree(algorithm, "scatter")
        if alg == "binomial":
            node = _alg.compile_tree(self.size, root)[self.rank]
            with _trace.span("scatter", cat="coll", alg="binomial"):
                own, t = _alg.run_tree_scatter(
                    self,
                    node,
                    _freeze(list(payloads)) if self.rank == root else None,
                    root,
                    "scatter",
                    self._next_alg_seq(),
                )
            result = _private(own)
            self.stats.record_wire("scatter", t.wire_sent, t.wire_recv)
        else:
            def combine(slots: list[Any]) -> Any:
                return _private(slots[root][self.rank])

            result = self._collective(
                payloads if self.rank == root else None, combine, "scatter",
                needs=lambda r: (root,),
            )
            if self.rank == root:
                self.stats.record_wire(
                    "scatter",
                    sent=sum(
                        payload_nbytes(p)
                        for i, p in enumerate(payloads)
                        if i != self.rank
                    ),
                )
            else:
                self.stats.record_wire("scatter", recv=payload_nbytes(result))
        self.stats.record_collective(
            "scatter",
            sum(payload_nbytes(p) for p in payloads)
            if self.rank == root
            else payload_nbytes(result),
        )
        return result

    def allgather(
        self, payload: Any, *, algorithm: str | None = None
    ) -> list[Any]:
        """Gather every member's payload at every member (comm-rank order).

        ``algorithm``: ``"auto"`` (the default) stays on the ``"direct"``
        deposit-combine exchange (one frozen payload fanned out to every
        peer — the cheapest control-plane shape).  The compiled schedules
        are opt-in: ``"recursive_doubling"`` doubles ``(source rank,
        payload)`` bundles over ``lg p`` rounds (power-of-two groups;
        other sizes fall back to ``"ring"``), ``"ring"`` circulates them
        neighbour-to-neighbour in ``p - 1`` steps.  All modes are pure
        routing — heterogeneous payloads of any type route unchanged and
        results are bitwise identical; only the message structure (and
        the wire counters) differ.

        Unlike allreduce, ``"auto"`` must *not* pick a schedule from the
        payload size: allgather payloads are per-rank (uneven shards,
        even empty ones), so a size-based choice can diverge across ranks
        and deadlock the collective.  Explicit knobs and the
        ``REPRO_COLLECTIVE_ALG`` override are the same on every rank, so
        those may name a schedule safely.
        """
        alg = self._resolve_allgather(algorithm, payload)
        if alg == "direct":
            def combine(slots: list[Any]) -> list[Any]:
                return list(slots)

            result = self._collective(payload, combine, "allgather")
            own = payload_nbytes(payload)
            self.stats.record_wire(
                "allgather",
                sent=own * (self.size - 1),
                recv=sum(
                    payload_nbytes(s)
                    for i, s in enumerate(result)
                    if i != self.rank
                ),
            )
        else:
            self._progress_inflight_schedules()
            run = (
                _alg.run_rd_allgather
                if alg == "recursive_doubling"
                else _alg.run_ring_allgather
            )
            with _trace.span("allgather", cat="coll", alg=alg):
                result, t = run(self, payload, "allgather", self._next_alg_seq())
            own = payload_nbytes(payload)
            self.stats.record_wire("allgather", t.wire_sent, t.wire_recv)
        self.stats.record_collective("allgather", own)
        return result

    def _resolve_allgather(self, algorithm: Any, payload: Any) -> str:
        name = self._knob(algorithm, _AG_ALG_CHOICES, "allgather")
        if self.size == 1:
            return "direct"
        if name == "auto":
            # Never size-select here: allgather payload sizes are
            # per-rank, and a choice that differs across ranks mixes the
            # deposit path with a pt2pt schedule and deadlocks.  Knob and
            # env override are rank-symmetric, so only they pick schedules.
            return "direct"
        if name == "recursive_doubling" and not _alg.is_power_of_two(self.size):
            name = "ring"  # schedule-level fallback, like rabenseifner's
        return name

    def alltoall(
        self,
        payloads: Sequence[Any],
        *,
        count_stats: bool = True,
        opname: str = "alltoall",
    ) -> list[Any]:
        """``payloads[j]`` is sent to comm-rank ``j``; returns what each rank sent us.

        ``count_stats=False`` skips the generic "alltoall" accounting —
        used by structured patterns (the blocking shuffle) that record
        their traffic under their own op name, keeping per-op counters
        comparable between the blocking and nonblocking paths.  ``opname``
        labels the wire-byte counters (structured patterns pass their own
        name so logical and wire rows line up in ``comm_report``).
        """
        if len(payloads) != self.size:
            raise ValueError(f"alltoall requires exactly {self.size} payloads")

        # ``parts``: the channel routes piece j to rank j only (and hands
        # back the received pieces), so message-passing backends move
        # MPI-alltoall volume instead of shipping every full payload list
        # to every peer.
        def combine(received: list[Any]) -> list[Any]:
            return list(received)

        result = self._collective(list(payloads), combine, opname, parts=True)
        sent = sum(
            payload_nbytes(p) for i, p in enumerate(payloads) if i != self.rank
        )
        self.stats.record_wire(
            opname,
            sent=sent,
            recv=sum(
                payload_nbytes(r) for i, r in enumerate(result) if i != self.rank
            ),
        )
        if count_stats:
            self.stats.record_collective("alltoall", sent)
        return result

    def ialltoall(
        self,
        payloads: Sequence[Any],
        *,
        opname: str = "ialltoall",
        count_stats: bool = True,
    ) -> Request:
        """Nonblocking all-to-all: deposits immediately, returns a handle.

        ``wait()`` blocks only until every member has deposited (never until
        they have read), then picks this rank's slice of each contribution —
        bitwise identical to :meth:`alltoall` but without the collective's
        rendezvous barriers, so a fast rank keeps computing while peers are
        still producing their payloads.  All members must issue their
        nonblocking collectives on a communicator in the same order.

        ``opname``/``count_stats`` label the request in
        :class:`~repro.comm.stats.CommStats`: structured patterns (e.g. the
        overlapped shuffle) pass their own op name and account volume
        themselves, keeping per-op counters comparable between the blocking
        and nonblocking paths.
        """
        if len(payloads) != self.size:
            raise ValueError(f"alltoall requires exactly {self.size} payloads")

        def combine(received: list[Any]) -> list[Any]:
            return list(received)

        rank = self.rank
        sent = sum(payload_nbytes(p) for i, p in enumerate(payloads) if i != rank)

        def wire_recv(result: list[Any]) -> int:
            return sum(
                payload_nbytes(r) for i, r in enumerate(result) if i != rank
            )

        return self._icollective(
            list(payloads), combine, opname, count_stats, parts=True,
            wire=(sent, wire_recv),
        )

    def reduce(
        self,
        value: Any,
        op: str = "sum",
        root: int = 0,
        *,
        algorithm: str | None = None,
    ) -> Any | None:
        """Rooted reduction: the result lands at ``root``, ``None`` elsewhere.

        Historically this ran a full allreduce and threw the result away
        on non-roots — allreduce wire volume for a rooted op.  It is now a
        genuinely rooted collective recorded under its own ``"reduce"``
        stats: ``"direct"`` routes every contribution to the root only
        (non-roots move just their own payload) and folds in comm-rank
        order — bitwise identical to the historical result — while
        ``"binomial"`` (the default via ``"auto"`` for array payloads)
        folds up a binomial tree, each node combining its children in
        ascending relative rank, so non-roots move ``O(n log p)`` and the
        root receives ``⌈lg p⌉`` messages instead of ``p - 1``.
        """
        self._check_peer(root, "root")
        try:
            fn = _REDUCE_OPS[op]
        except KeyError:
            raise ValueError(f"unknown reduction op {op!r}") from None
        alg = self._resolve_tree(algorithm, "reduce")
        if alg == "binomial" and not _schedulable_array(value):
            alg = "direct"
        n = payload_nbytes(value)
        if alg == "binomial":
            node = _alg.compile_tree(self.size, root)[self.rank]
            with _trace.span("reduce", cat="coll", alg="binomial", bytes=n):
                result, t = _alg.run_tree_reduce(
                    self, node, value, fn, "reduce", self._next_alg_seq()
                )
            self.stats.record_wire("reduce", t.wire_sent, t.wire_recv)
        else:
            all_ranks = tuple(range(self.size))
            fold = self._reduce_combine(fn)
            root_here = self.rank == root

            def combine(slots: list[Any]) -> Any:
                return fold(slots) if root_here else None

            result = self._collective(
                value, combine, "reduce",
                needs=lambda r: all_ranks if r == root else (),
            )
            if root_here:
                self.stats.record_wire("reduce", recv=n * (self.size - 1))
            else:
                self.stats.record_wire("reduce", sent=n)
        self.stats.record_collective("reduce", n)
        return result if self.rank == root else None

    @staticmethod
    def _reduce_combine(fn: Callable[[Any, Any], Any]) -> Callable[[list[Any]], Any]:
        """Fold slots in comm-rank order (bitwise-deterministic)."""

        def combine(slots: list[Any]) -> Any:
            if len(slots) == 1:
                return _private(slots[0])
            acc = fn(slots[0], slots[1])
            for s in slots[2:]:
                acc = fn(acc, s)
            return acc

        return combine

    def allreduce(
        self,
        value: Any,
        op: str = "sum",
        *,
        algorithm: str | None = None,
        segment_bytes: int | str | None = None,
    ) -> Any:
        """Element-wise reduction over every member.

        ``segment_bytes`` pipelines a *scheduled* algorithm: the payload is
        split into near-equal segments (the cost model's ``segment_sizes``)
        and every schedule step runs per segment, so segment ``k+1`` is on
        the wire while ``k`` reduces.  ``None`` (default) keeps the whole
        schedule — bitwise-identical to the unsegmented path; ``"auto"``
        applies the model's ``select_segment_bytes`` minimization; an
        integer forces that segment size.  The ``REPRO_SEGMENT_BYTES``
        environment variable overrides the knob globally.  Segmentation
        never changes the per-segment reduction order (the base
        algorithm's documented order applies to each segment
        independently), so segmented results remain allclose to
        ``"direct"`` and deterministic for a given
        ``(algorithm, p, nseg)``; ``"direct"`` itself never segments.

        ``algorithm`` selects how the payload moves on the wire:

        * ``None``/``"auto"`` — model-driven selection (the same
          Thakur-style rule the cost model prices): recursive doubling for
          small payloads, Rabenseifner for large power-of-two groups, ring
          otherwise;
        * ``"ring"`` / ``"rabenseifner"`` / ``"recursive_doubling"`` —
          force one of the chunked point-to-point schedules
          (:mod:`repro.comm.algorithms`), ``2n(p-1)/p`` bytes per rank for
          the bandwidth-optimal pair;
        * ``"hierarchical"`` — the two-level composition (intra-node ring
          reduce-scatter → inter-node allreduce over same-local-index
          counterparts → intra-node allgather), same ``2n(p-1)/p`` total
          volume but only ``2(n/k)(m-1)/m`` of it on the inter-node wire.
          Requires a usable node layout (:meth:`hierarchy`); without one
          it falls back to the flat ``"auto"`` choice.  ``"auto"`` picks
          it by itself when the world carries a host map and the two-tier
          cost model favors the composition;
        * ``"direct"`` — the legacy deposit-combine exchange, folding in
          comm-rank order: the bitwise-reference mode (``n(p-1)`` per rank
          on a message-passing backend).

        Non-array payloads (scalars, tuples, object arrays) always take
        ``"direct"``.  Every mode is deterministic across runs and
        backends; the scheduled modes match ``"direct"`` to floating-point
        *allclose* (their documented reduction orders differ).  The
        ``REPRO_COLLECTIVE_ALG`` environment variable overrides the knob
        globally.
        """
        try:
            fn = _REDUCE_OPS[op]
        except KeyError:
            raise ValueError(f"unknown reduction op {op!r}") from None

        alg = self._resolve_reduction(algorithm, value, "allreduce")
        if alg == "direct":
            result = self._collective(value, self._reduce_combine(fn), "allreduce")
            n = payload_nbytes(result)
            inter_peers = sum(self._inter_flags() or ())
            self.stats.record_wire(
                "allreduce", n * (self.size - 1), n * (self.size - 1),
                inter_sent=n * inter_peers, inter_recv=n * inter_peers,
            )
        else:
            runner = self._reduction_runner(
                "allreduce", alg, value, fn, segment_bytes,
                ufunc=_REDUCE_UFUNCS.get(op),
            )
            with _trace.span("allreduce", cat="coll", alg=alg, bytes=value.nbytes):
                result = runner.finish()
            self.stats.record_wire(
                "allreduce", runner.wire_sent, runner.wire_recv,
                inter_sent=runner.wire_sent_inter,
                inter_recv=runner.wire_recv_inter,
            )
        self.stats.record_collective("allreduce", payload_nbytes(result))
        return result

    def iallreduce(
        self,
        value: Any,
        op: str = "sum",
        *,
        algorithm: str | None = None,
        segment_bytes: int | str | None = None,
    ) -> Request:
        """Nonblocking allreduce: returns a handle immediately.

        ``algorithm`` and ``segment_bytes`` select the wire path exactly
        as in :meth:`allreduce` — a segmented schedule gives ``test()``
        finer progress granularity on top of the in-schedule pipelining
        (each probe can land one segment instead of one whole chunk).
        With ``"direct"``, the call deposits its
        contribution and ``wait()`` blocks only until every member has
        deposited, then combines in comm-rank order — bitwise identical to
        the blocking ``"direct"`` allreduce.  With a scheduled algorithm,
        the first segments are sent eagerly at issue time and the
        remaining steps progress on ``test()``/``wait()``; requests may be
        waited in any order (waiting one first completes earlier in-flight
        scheduled collectives — see :class:`_ScheduleRequest`).  All
        members must issue their nonblocking collectives in the same
        order, as always — and, unlike the fire-and-forget-able
        ``"direct"`` deposits, every member must eventually ``wait()`` (or
        ``test()`` to completion) each *scheduled* request: later segments
        only move when their owner drives them, so a rank that abandons
        one can starve peers that wait it.
        """
        try:
            fn = _REDUCE_OPS[op]
        except KeyError:
            raise ValueError(f"unknown reduction op {op!r}") from None
        alg = self._resolve_reduction(algorithm, value, "iallreduce")
        if alg == "direct":
            n = payload_nbytes(value)
            return self._icollective(
                value, self._reduce_combine(fn), "iallreduce",
                wire=(n * (self.size - 1), n * (self.size - 1)),
            )
        runner = self._reduction_runner(
            "iallreduce", alg, value, fn, segment_bytes,
            ufunc=_REDUCE_UFUNCS.get(op),
        )
        return _ScheduleRequest(self, runner, "iallreduce")

    def reduce_scatter(
        self, parts: Sequence[Any], op: str = "sum", *, algorithm: str | None = None
    ) -> Any:
        """``parts[j]`` is this rank's contribution destined for rank ``j``.

        Returns the reduction, over all ranks, of their contribution for
        *this* rank.  This is the primitive channel-parallel convolution
        uses to combine partial sums over the channel group (paper §III-D).

        ``algorithm``: ``"ring"`` (the default via ``"auto"`` when every
        part is an ndarray of one dtype) circulates partial sums around
        the ring — part ``j`` is folded in ring order starting at rank
        ``j + 1`` — moving the same ``(p-1)/p`` volume as ``"direct"`` but
        as a pipelined schedule; ``"direct"`` ships each piece to its
        destination and folds in comm-rank order (bitwise reference).
        """
        if len(parts) != self.size:
            raise ValueError(f"reduce_scatter requires exactly {self.size} parts")
        try:
            fn = _REDUCE_OPS[op]
        except KeyError:
            raise ValueError(f"unknown reduction op {op!r}") from None

        alg = self._knob(algorithm, _RS_ALG_CHOICES, "reduce_scatter")
        if (
            self.size == 1
            or not all(_schedulable_array(x) for x in parts)
            or len({x.dtype for x in parts}) != 1
        ):
            alg = "direct"
        elif alg == "auto":
            alg = "ring"

        if alg == "ring":
            flat = np.concatenate(
                [np.ascontiguousarray(x).reshape(-1) for x in parts]
            )
            offsets = [0]
            for x in parts:
                offsets.append(offsets[-1] + x.size)
            steps = _alg.compile_reduce_scatter(self.size)[self.rank]
            runner = _alg.ScheduleRunner(
                self, "reduce_scatter", steps, flat, fn,
                self._next_alg_seq(), offsets=tuple(offsets),
                owns_buffer=True,  # the concatenation above is fresh
                inter_peers=self._inter_flags(),
                ufunc=_REDUCE_UFUNCS.get(op),
            )
            with _trace.span("reduce_scatter", cat="coll", alg="ring", bytes=flat.nbytes):
                out = runner.finish()
            result = out[offsets[self.rank] : offsets[self.rank + 1]].reshape(
                parts[self.rank].shape
            )
            self.stats.record_wire(
                "reduce_scatter", runner.wire_sent, runner.wire_recv,
                inter_sent=runner.wire_sent_inter,
                inter_recv=runner.wire_recv_inter,
            )
        else:
            # ``parts`` routing: each member receives only the pieces
            # destined for it; the fold below runs over the same values in
            # the same comm-rank order as the historical full-slot form,
            # so results are bitwise identical.
            def combine(received: list[Any]) -> Any:
                if len(received) == 1:
                    return _private(received[0])
                acc = fn(received[0], received[1])
                for piece in received[2:]:
                    acc = fn(acc, piece)
                return acc

            result = self._collective(
                list(parts), combine, "reduce_scatter", parts=True
            )
            self.stats.record_wire(
                "reduce_scatter",
                sent=sum(
                    payload_nbytes(x)
                    for i, x in enumerate(parts)
                    if i != self.rank
                ),
                recv=(self.size - 1) * payload_nbytes(result),
            )
        self.stats.record_collective("reduce_scatter", payload_nbytes(result))
        return result

    # -- sub-communicators ----------------------------------------------------
    def split(self, color: int | None, key: int | None = None) -> "Communicator | None":
        """Partition the communicator by ``color``; order new ranks by ``key``.

        Ranks passing ``color=None`` receive ``None`` (MPI_UNDEFINED).  All
        members must call ``split`` (it is collective).
        """
        seq = self._op_seq  # captured before the allgather consumes a slot
        sort_key = key if key is not None else self.rank
        infos = self.allgather((color, sort_key))

        if color is None:
            return None
        group = sorted(
            (
                (info_key, comm_rank)
                for comm_rank, (info_color, info_key) in enumerate(infos)
                if info_color == color
            ),
        )
        new_members = tuple(self._members[comm_rank] for _, comm_rank in group)
        new_rank = new_members.index(self.world_rank)
        new_key = (self._key, "split", seq, color)
        return Communicator(self._world, new_members, new_rank, new_key)

    def dup(self) -> "Communicator":
        """Duplicate this communicator (fresh collective context and tags)."""
        seq = self._op_seq
        self.barrier()
        return Communicator(
            self._world, self._members, self.rank, key=(self._key, "dup", seq)
        )

    # -- internals -----------------------------------------------------------
    def _collective(
        self,
        contribution: Any,
        combine: Callable[[list[Any]], Any],
        opname: str = "collective",
        needs: Callable[[int], Any] | None = None,
        parts: bool = False,
    ) -> Any:
        sp = _trace.span(opname, cat="coll", alg="direct")
        with sp:
            if _trace.is_on():
                sp.set(bytes=payload_nbytes(contribution))
            self._progress_inflight_schedules()
            self._op_seq += 1
            return self._channel.collective(
                _freeze(contribution), combine, opname, needs=needs, parts=parts
            )

    def _icollective(
        self,
        contribution: Any,
        combine: Callable[[list[Any]], Any],
        opname: str,
        count_stats: bool = True,
        parts: bool = False,
        wire: tuple[int, int | Callable[[Any], int]] | None = None,
    ) -> Request:
        seq = self._nb_seq
        self._nb_seq += 1
        token = self._channel.nb_start(seq, _freeze(contribution), opname, parts=parts)
        return _CollectiveRequest(self, token, combine, opname, count_stats, wire)
