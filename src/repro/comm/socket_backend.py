"""Socket/TCP SPMD backend with host-map routing.

The process backend is "MPI on one host": every byte moves through shared
memory.  Real deployments of the paper's fine-grained parallelism span
nodes, where the inter-node wire — not the NVLink domain — bottlenecks the
gradient allreduces (§VI-B1).  This backend puts an actual network stack
under the engine while staying runnable on one machine:

* **Host map** — ranks are grouped into *logical nodes* by a
  :class:`~repro.comm.hostmap.HostMap` (``run_spmd(..., hostmap=...)`` or
  ``REPRO_HOSTMAP``, e.g. ``"0,1:A 2,3:B"``).  Ranks on the same logical
  node exchange messages exactly as the process backend does (queue +
  shared-memory arena); ranks on *different* nodes talk over per-pair TCP
  connections on the loopback interface.  The default map (no host map
  given) is one rank per node, so every byte crosses TCP.  The same map
  feeds :meth:`BaseWorld.node_of`, which drives the communicator's
  hierarchical collective selection — the transport and the cost model see
  one topology.
* **Wire protocol** — length-prefixed frames (``!BII`` header: type,
  payload length, CRC32 of the payload) over ``TCP_NODELAY`` sockets.
  ``DATA`` frames carry a pickled ``(source, tag, payload)``; ``HEARTBEAT``
  frames keep liveness fresh; a ``BYE`` frame announces an orderly exit, so
  the subsequent EOF is not mistaken for a crash.  The receiver recomputes
  every payload's CRC32 before unpickling: a mismatch — real link
  corruption, or an injected ``corrupt@…:point=wire`` fault — aborts the
  job with a :class:`CommIntegrityError` naming the sending rank and host,
  instead of feeding silently wrong bytes into the collectives (an
  elastic-restartable failure class: the data was bad, not the rank).
  Sends are *eager*: ``deliver`` enqueues
  the frame on a per-peer outbound queue serviced by a sender thread and
  never blocks the caller, preserving the buffered-send contract all
  backends share.  Transport counters (``tcp_messages`` / ``tcp_bytes`` /
  ``tcp_payload_bytes``) are tallied synchronously at ``deliver`` time, so
  they are deterministic and — for the ndarray-payload counter — exactly
  comparable to the collective cost model's wire-byte predictions.
* **Failure detection across hosts** — each rank heartbeats its inter-node
  peers over the sockets (and its parent through the shared slot).  A peer
  that dies takes its connections with it: the reader thread sees EOF
  without a preceding ``BYE`` and aborts the job naming the lost rank and
  its host; a peer that is alive but silent past the staleness bound is
  logged as a straggler.  Survivors fail with :class:`CommAborted` naming
  the failed rank, exactly as on the other backends.
* **No leaks** — listening sockets are bound pre-fork (port 0, loopback)
  and closed by the parent right after the fork; each child closes every
  listener but its own, and closes its connections after a BYE + bounded
  outbound flush on exit.  A completed job leaves no sockets or fds behind
  in the parent (regression-tested by ``tests/test_socket_backend.py`` and
  the CI ``multi-host`` job, mirroring the ``/dev/shm`` leak check).

Collectives, fault injection, result plumbing, and the parent's failure
detector are shared with the process backend (`_launch_forked`,
`ProcessChannel`, `_pack`/`_unpack`): this module only swaps the transport
underneath the same :class:`~repro.comm.backend.BaseWorld` contract, so
every collective stays bitwise identical across backends.
"""

from __future__ import annotations

import logging
import pickle
import socket
import struct
import threading
import time
import zlib
from collections import deque
from time import monotonic
from typing import Any, Callable

import numpy as np

from repro.comm.backend import (
    CommAborted,
    CommIntegrityError,
    _format_pending,
    _retry_note,
    register_backend,
)
from repro.comm.faults import JobConfig
from repro.comm.hostmap import HostMap
from repro.obs import tracer
from repro.comm.proc_backend import (
    ProcessWorld,
    _child_main,
    _Inbox,
    _launch_forked,
    _SharedJobState,
    _unpack,
)

logger = logging.getLogger(__name__)

#: Frame types of the wire protocol (header ``!BII``: type, payload
#: length, CRC32 of the payload).
_FRAME_DATA = 0
_FRAME_HEARTBEAT = 1
_FRAME_BYE = 2

_HEADER = struct.Struct("!BII")
_HELLO = struct.Struct("!I")

#: How long an exiting rank waits for its outbound frames to drain before
#: closing a connection (per connection; an orderly peer drains in
#: microseconds — this bound only matters when the peer is wedged).
_FLUSH_TIMEOUT = 10.0

#: Bound on establishing the full inter-node mesh at startup.
_CONNECT_TIMEOUT = 60.0


def _array_nbytes(payload: Any) -> int:
    """Total ndarray bytes in ``payload`` (recursively; object dtype excluded).

    The model-comparable part of a message: collective schedules ship bare
    array segments, so for them this equals the wire bytes the cost model
    prices — pickle framing and container skeletons are excluded, keeping
    the modeled == measured comparison exact.
    """
    if isinstance(payload, np.ndarray):
        return 0 if payload.dtype == object else payload.nbytes
    if isinstance(payload, (tuple, list)):
        return sum(_array_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(_array_nbytes(v) for v in payload.values())
    return 0


class _SocketShared(_SharedJobState):
    """Process-backend shared state plus pre-fork-bound listeners + host map."""

    def __init__(self, ctx, nranks: int, config: JobConfig) -> None:
        super().__init__(ctx, nranks, config)
        #: Effective node layout: the job's host map, or one-rank-per-node
        #: (all traffic over TCP) when none was given.
        self.hostmap: HostMap = config.hostmap or HostMap.one_per_rank(nranks)
        # One loopback listener per rank, bound pre-fork so every child
        # knows every port without any rendezvous service.
        self.listeners: list[socket.socket | None] = []
        self.ports: list[int] = []
        try:
            for _ in range(nranks):
                s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                s.bind(("127.0.0.1", 0))
                s.listen(nranks + 4)
                self.listeners.append(s)
                self.ports.append(s.getsockname()[1])
        except OSError:
            self.post_fork_parent()
            super().teardown()
            raise

    def post_fork_parent(self) -> None:
        """Close the parent's copies of the listeners and fast-lane pipes
        (the children own theirs from fork on)."""
        super().post_fork_parent()
        for i, s in enumerate(self.listeners):
            if s is not None:
                try:
                    s.close()
                except OSError:  # pragma: no cover - depends on host
                    pass
                self.listeners[i] = None

    def teardown(self) -> None:
        self.post_fork_parent()
        super().teardown()


class _SocketInbox(_Inbox):
    """(source, tag)-matched mailbox fed by TCP readers and the lane feeder.

    Unlike the process backend's single-consumer `_Inbox`, messages arrive
    from multiple threads (one reader per TCP connection plus the
    shared-memory lane feeder), so the buffer is guarded by a condition
    variable; the owning rank's ``get`` blocks on it, waking immediately
    on TCP arrivals and — via the feeder's ``select`` over the descriptor
    pipes and the queue fd — promptly for intra-node arrivals.  The
    drain/reorder machinery (descriptor-pipe fast lane, cross-lane
    sequence numbers) is inherited; only admission (``_deposit``) is
    rerouted through the condition variable.
    """

    def __init__(self, world: "SocketWorld") -> None:
        super().__init__(world)
        self._cv = threading.Condition()
        threading.Thread(
            target=self._feeder_loop,
            name=f"shm-feeder-rank-{world.rank}",
            daemon=True,
        ).start()

    # -- producers (reader threads, feeder thread, self-delivery) ----------
    def put(self, source: int, tag: Any, payload: Any) -> None:
        with self._cv:
            self._buffered.setdefault((source, tag), deque()).append(payload)
            self._cv.notify_all()

    def _deposit(self, source: int, tag: Any, payload: Any) -> None:
        # Intra-node (arena/pipe/queue) admission from the feeder thread.
        self.put(source, tag, payload)

    def _feeder_loop(self) -> None:
        """Drain this rank's intra-node lanes into the buffer."""
        while True:
            try:
                self._drain_blocking(0.25)
            except (OSError, ValueError):  # queue closed: rank is exiting
                return

    # -- consumer (the rank's own threads) ---------------------------------
    def get(
        self, source: int, tag: Any, timeout: float, describe: Any
    ) -> Any:
        # ``describe`` may be a zero-arg callable, formatted only on the
        # abort/timeout slow paths (see ``_Inbox.get``).
        world = self._world
        retries = world.config.retries
        attempt = 0
        deadline = monotonic() + timeout
        poll = min(0.25, max(0.01, world.config.detect_interval))
        key = (source, tag)
        with self._cv:
            while True:
                q = self._buffered.get(key)
                if q:
                    return q.popleft()
                if world.aborted:
                    raise world.abort_error(
                        f"{describe() if callable(describe) else describe} "
                        f"interrupted: world aborted{world.abort_suffix()}"
                    )
                remaining = deadline - monotonic()
                if remaining <= 0:
                    if attempt < retries:
                        attempt += 1
                        logger.warning(
                            "%s still waiting after %.1fs; retry %d/%d "
                            "(pending inbox: %s)",
                            describe() if callable(describe) else describe,
                            timeout, attempt, retries,
                            self.pending_keys(),
                        )
                        deadline = monotonic() + timeout
                        continue
                    reason = (
                        f"{describe() if callable(describe) else describe} "
                        f"timed out after {timeout:.1f}s"
                        f"{_retry_note(attempt)}; "
                        f"pending inbox: {self.pending_keys()}"
                    )
                    world.abort(reason)
                    raise CommAborted(reason, kind="timeout")
                self._cv.wait(min(remaining, poll))

    def try_get(self, source: int, tag: Any) -> tuple[bool, Any]:
        with self._cv:
            q = self._buffered.get((source, tag))
            if q:
                return True, q.popleft()
        if self._world.aborted:
            raise self._world.abort_error(
                f"irecv(source={source}, tag={tag}) interrupted: "
                f"world aborted{self._world.abort_suffix()}"
            )
        return False, None

    def pending_keys(self, limit: int = 8) -> str:
        with self._cv:
            keys = [k for k, q in self._buffered.items() if q]
        return _format_pending(keys, limit)


class _Connection:
    """One TCP link to an inter-node peer: sender + reader threads.

    Sends are enqueued (never blocking the caller) and written by the
    sender thread; the reader feeds the world's inbox and doubles as the
    cross-host failure detector — EOF without a preceding BYE means the
    peer died, and aborts the job naming it.
    """

    def __init__(self, world: "SocketWorld", peer: int, sock: socket.socket) -> None:
        self._world = world
        self.peer = peer
        self._sock = sock
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        self._out: deque[bytes] = deque()
        self._cv = threading.Condition()
        self._sending = False
        self._closed = False
        #: Peer announced an orderly exit (BYE received).
        self.peer_done = False
        #: monotonic() stamp of the last frame read from this peer.
        self.last_heard = monotonic()
        name = f"rank-{world.rank}-peer-{peer}"
        threading.Thread(
            target=self._sender_loop, name=f"tcp-send-{name}", daemon=True
        ).start()
        threading.Thread(
            target=self._reader_loop, name=f"tcp-recv-{name}", daemon=True
        ).start()

    # -- sending -----------------------------------------------------------
    def send_frame(self, ftype: int, blob: bytes = b"", crc: int | None = None) -> None:
        """Queue one frame.  ``crc`` defaults to the blob's CRC32; `deliver`
        passes the checksum of the *pre-wire-fault* payload so injected
        on-the-wire corruption is detectable at the receiver, exactly like
        a frame corrupted by the link after the NIC computed its checksum."""
        if crc is None:
            crc = zlib.crc32(blob) & 0xFFFFFFFF
        frame = _HEADER.pack(ftype, len(blob), crc) + blob
        with self._cv:
            if self._closed:
                return
            self._out.append(frame)
            self._cv.notify_all()

    def _sender_loop(self) -> None:
        while True:
            with self._cv:
                while not self._out and not self._closed:
                    self._cv.wait(0.25)
                if not self._out:
                    return  # closed and drained
                frame = self._out.popleft()
                self._sending = True
            try:
                self._sock.sendall(frame)
            except OSError as exc:
                world = self._world
                with self._cv:
                    self._out.clear()
                    self._sending = False
                    self._cv.notify_all()
                if self.peer_done or world.aborted or self._closed:
                    # The peer exited cleanly (or the job is already dying):
                    # frames to a finished rank are fire-and-forget leftovers.
                    return
                world.record_failure(
                    "peer-death", self.peer, world.hostmap.host_of(self.peer)
                )
                world.abort(
                    f"world rank {self.peer} "
                    f"(host {world.hostmap.host_of(self.peer)}) unreachable "
                    f"from world rank {world.rank}: send failed "
                    f"({type(exc).__name__}: {exc})"
                )
                return
            with self._cv:
                self._sending = False
                if not self._out:
                    self._cv.notify_all()

    # -- receiving ---------------------------------------------------------
    def _recv_exact(self, n: int) -> bytes | None:
        buf = bytearray()
        while len(buf) < n:
            try:
                chunk = self._sock.recv(n - len(buf))
            except OSError:
                return None
            if not chunk:
                return None
            buf += chunk
        return bytes(buf)

    def _reader_loop(self) -> None:
        world = self._world
        while True:
            header = self._recv_exact(_HEADER.size)
            if header is None:
                break
            ftype, length, crc = _HEADER.unpack(header)
            blob = self._recv_exact(length) if length else b""
            if blob is None:
                break
            self.last_heard = monotonic()
            if (zlib.crc32(blob) & 0xFFFFFFFF) != crc:
                # Corrupted on the wire: abort with an integrity failure
                # instead of unpickling garbage into the collectives.
                host = world.hostmap.host_of(self.peer)
                world.record_failure("integrity", self.peer, host)
                world.abort(
                    f"frame from world rank {self.peer} (host {host}) "
                    f"failed its CRC32 integrity check at world rank "
                    f"{world.rank} (payload corrupted on the wire)"
                )
                return
            if ftype == _FRAME_DATA:
                source, tag, payload = pickle.loads(blob)
                # Freeze received arrays, mirroring every other transport:
                # received data is immutable by contract.
                world._inbox.put(source, tag, _unpack(payload, []))
            elif ftype == _FRAME_BYE:
                self.peer_done = True
            # heartbeats only refresh last_heard
        if self.peer_done or self._closed or world.aborted:
            return  # orderly EOF
        world.record_failure(
            "peer-death", self.peer, world.hostmap.host_of(self.peer)
        )
        world.abort(
            f"world rank {self.peer} "
            f"(host {world.hostmap.host_of(self.peer)}) lost: connection "
            f"closed unexpectedly (crash or network failure), detected by "
            f"world rank {world.rank}"
        )

    # -- teardown ----------------------------------------------------------
    def close(self, flush_timeout: float = _FLUSH_TIMEOUT) -> None:
        """Drain outbound frames (bounded), then close the socket."""
        deadline = monotonic() + flush_timeout
        with self._cv:
            while self._out or self._sending:
                remaining = deadline - monotonic()
                if remaining <= 0:
                    logger.warning(
                        "world rank %d: dropping %d unflushed frames to "
                        "world rank %d on close",
                        self._world.rank, len(self._out), self.peer,
                    )
                    break
                self._cv.wait(min(0.05, remaining))
            self._closed = True
            self._cv.notify_all()
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - depends on host
            pass


class SocketWorld(ProcessWorld):
    """One rank's view of a socket-backend SPMD job.

    Subclasses :class:`ProcessWorld`: collectives, fault injection, abort
    plumbing, and the intra-node shared-memory path are inherited; only
    message *routing* (queue/arena within a logical node, TCP frames
    across nodes) and connection lifecycle differ.
    """

    backend_name = "socket"

    def __init__(self, shared: _SocketShared, rank: int) -> None:
        super().__init__(shared, rank)
        self._hostmap: HostMap = shared.hostmap
        self._node = tuple(self._hostmap.node_of(r) for r in range(self.size))
        self._inbox = _SocketInbox(self)
        self._conns: dict[int, _Connection] = {}
        self._conn_lock = threading.Lock()
        self._shutting_down = False
        #: Structured cause of a wire-level failure this rank observed
        #: (kind, peer rank, peer host), recorded just before the abort so
        #: survivor exceptions can carry it (first observation wins).
        self._failure: tuple[str, int, str] | None = None
        self.transport.update(
            tcp_messages=0,
            tcp_bytes=0,          # full frame payloads (pickle included)
            tcp_payload_bytes=0,  # ndarray bytes only (model-comparable)
        )

    # -- failure attribution -------------------------------------------------
    def record_failure(self, kind: str, peer: int, host: str) -> None:
        """Remember the structured cause behind an imminent abort."""
        if self._failure is None:
            self._failure = (kind, peer, host)

    def abort_error(self, message: str) -> CommAborted:
        """Build the survivor-side exception for an aborted world, carrying
        the recorded wire-level cause; integrity failures get the dedicated
        :class:`CommIntegrityError` type."""
        if self._failure is not None:
            kind, peer, host = self._failure
            cls = CommIntegrityError if kind == "integrity" else CommAborted
            return cls(message, failed_rank=peer, host=host, kind=kind)
        return CommAborted(message)

    # -- topology ----------------------------------------------------------
    @property
    def hostmap(self) -> HostMap:
        """The *effective* host map (defaulted, unlike ``config.hostmap``)."""
        return self._hostmap

    def node_of(self, world_rank: int) -> int:
        return self._node[world_rank]

    def _inter_peers(self) -> list[int]:
        my = self._node[self.rank]
        return [q for q in range(self.size) if self._node[q] != my]

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Establish the inter-node TCP mesh (rank ``a`` dials ``b`` iff
        ``a < b``); blocks until every expected connection is up."""
        shared: _SocketShared = self._shared  # type: ignore[assignment]
        me = self.rank
        inter = self._inter_peers()
        expect_accept = [q for q in inter if q < me]
        to_dial = [q for q in inter if q > me]
        # Every child inherited every listener; keep only our own (and
        # only if someone will dial it).
        for q, s in enumerate(shared.listeners):
            if s is not None and (q != me or not expect_accept):
                try:
                    s.close()
                except OSError:  # pragma: no cover - depends on host
                    pass
                shared.listeners[q] = None
        if expect_accept:
            threading.Thread(
                target=self._accept_loop,
                args=(shared.listeners[me], len(expect_accept)),
                name=f"tcp-accept-rank-{me}",
                daemon=True,
            ).start()
        for q in to_dial:
            sock = socket.create_connection(
                ("127.0.0.1", shared.ports[q]), timeout=_CONNECT_TIMEOUT
            )
            sock.sendall(_HELLO.pack(me))
            with self._conn_lock:
                self._conns[q] = _Connection(self, q, sock)
        deadline = monotonic() + min(self.timeout, _CONNECT_TIMEOUT)
        while True:
            with self._conn_lock:
                missing = [q for q in inter if q not in self._conns]
            if not missing:
                break
            if self.aborted:
                raise CommAborted(
                    f"world rank {me}: connection setup interrupted: world "
                    f"aborted{self.abort_suffix()}"
                )
            if monotonic() > deadline:
                reason = (
                    f"world rank {me} could not reach world rank(s) "
                    f"{missing} within {_CONNECT_TIMEOUT:.0f}s of startup"
                )
                self.abort(reason)
                raise CommAborted(reason)
            time.sleep(0.005)
        if inter:
            threading.Thread(
                target=self._peer_monitor_loop,
                name=f"tcp-heartbeat-rank-{me}",
                daemon=True,
            ).start()

    def _accept_loop(self, listener: socket.socket, expected: int) -> None:
        try:
            for _ in range(expected):
                sock, _addr = listener.accept()
                hello = sock.recv(_HELLO.size, socket.MSG_WAITALL)
                if len(hello) != _HELLO.size:
                    sock.close()
                    continue
                (peer,) = _HELLO.unpack(hello)
                with self._conn_lock:
                    self._conns[peer] = _Connection(self, peer, sock)
        except OSError:  # pragma: no cover - listener closed mid-accept
            pass
        finally:
            try:
                listener.close()
            except OSError:  # pragma: no cover - depends on host
                pass
            self._shared.listeners[self.rank] = None

    def _peer_monitor_loop(self) -> None:
        """Heartbeat inter-node peers and flag the silent ones."""
        detect = max(0.02, self.config.detect_interval)
        stale_after = max(10 * detect, 5.0)
        flagged: set[int] = set()
        while not self.aborted and not self._shutting_down:
            now = monotonic()
            with self._conn_lock:
                conns = list(self._conns.values())
            for conn in conns:
                if conn.peer_done:
                    continue
                conn.send_frame(_FRAME_HEARTBEAT)
                silent = now - conn.last_heard
                if silent > stale_after and conn.peer not in flagged:
                    flagged.add(conn.peer)
                    logger.warning(
                        "world rank %d: no frames from world rank %d "
                        "(host %s) for %.1fs (straggler or wedged rank)",
                        self.rank, conn.peer,
                        self._hostmap.host_of(conn.peer), silent,
                    )
            time.sleep(max(0.02, detect / 2.0))

    def shutdown(self, ok: bool) -> None:
        """Announce an orderly exit and flush + close every connection."""
        self._shutting_down = True
        with self._conn_lock:
            conns = list(self._conns.values())
        for conn in conns:
            conn.send_frame(_FRAME_BYE)
        for conn in conns:
            conn.close(flush_timeout=_FLUSH_TIMEOUT if ok else 1.0)

    # -- transport ----------------------------------------------------------
    def deliver(self, source: int, dest: int, tag: Any, payload: Any) -> None:
        self._check_rank(dest, "dest")
        if source == self.rank:
            action, payload = self._fault("send", dest, tag, payload)
            if action == "drop":
                return
        if dest == self.rank:
            self._inbox.put(source, tag, payload)
            return
        if self._node[dest] == self._node[self.rank]:
            # Intra-node: the process backend's arena + fast-lane path.
            self._send_local(source, dest, tag, payload)
            return
        # Inter-node: one DATA frame on the pair's TCP connection.
        blob = pickle.dumps(
            (source, tag, payload), protocol=pickle.HIGHEST_PROTOCOL
        )
        # The frame's CRC32 is stamped *before* the wire fault point, so an
        # injected on-the-wire corruption reaches the receiver with a stale
        # checksum and trips its integrity check — modeling a link that
        # flips bits after the sender computed the frame's checksum.
        crc = zlib.crc32(blob) & 0xFFFFFFFF
        if source == self.rank:
            _, blob = self._fault("wire", dest, tag, blob)
        self.transport["tcp_messages"] += 1
        self.transport["tcp_bytes"] += len(blob)
        self.transport["tcp_payload_bytes"] += _array_nbytes(payload)
        conn = self._conns.get(dest)
        if conn is None:  # pragma: no cover - defensive
            raise CommAborted(
                f"world rank {self.rank} has no connection to world rank "
                f"{dest} (host {self._hostmap.host_of(dest)})"
            )
        with tracer.span("xport:tcp", cat="transport", dest=dest, bytes=len(blob)):
            conn.send_frame(_FRAME_DATA, blob, crc=crc)


def _socket_child_main(
    shared: _SocketShared,
    rank: int,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
) -> None:
    _child_main(shared, rank, fn, args, kwargs, world_cls=SocketWorld)


def _run_spmd_sockets(
    nranks: int,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    config: JobConfig,
) -> list[Any]:
    """Socket-backend launcher: the forked parent loop over TCP children."""
    return _launch_forked(
        nranks, fn, args, kwargs, config,
        shared_factory=_SocketShared, child_main=_socket_child_main,
    )


register_backend("socket", _run_spmd_sockets)
