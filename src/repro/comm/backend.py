"""SPMD execution harness: pluggable world backends behind one contract.

The paper's implementation runs one MPI process per GPU.  This module
defines the *contract* a rank runtime must satisfy — the abstract
:class:`BaseWorld` (point-to-point transport, failure handling) and
:class:`GroupChannel` (per-communicator collective context) — plus the
backend registry :func:`run_spmd` dispatches on, and the default **thread**
backend: one Python thread per rank over shared mailboxes and rendezvous
state (numpy releases the GIL for array kernels, so ranks overlap for the
bulk of the arithmetic, but Python-level work time-shares — "overlap" on
this backend buys removed synchronization, not parallel compute).

The **process** backend (:mod:`repro.comm.proc_backend`) implements the same
contract with one OS process per rank and a shared-memory transport, so
ranks genuinely execute in parallel.  Select a backend per call
(``run_spmd(..., backend="process")``) or globally via the
``REPRO_BACKEND`` environment variable; the thread backend stays the
default because it is the cheap, debuggable choice for tests.

Two completion disciplines coexist, mirroring MPI + NCCL/Aluminum:

* **Blocking collectives** synchronize all members around a shared slot
  array (thread backend: a two-phase barrier; process backend: an
  allgather of contributions), then every member combines the slots
  independently in identical deterministic order, so results are bitwise
  reproducible across backends for a fixed rank count.
* **Nonblocking collectives** (the engine's gradient-allreduce hot path)
  skip the rendezvous: each call deposits its contribution under a
  sequence-keyed operation and immediately returns a request handle.  A
  rank only blocks when it *waits* on the handle, and only until every
  member has deposited — a fast rank never waits for slow peers to *read*,
  which is what lets the per-layer dL/dw allreduces overlap with the
  remainder of backpropagation (paper §IV).  Multiple operations per
  communicator may be in flight at once; completion may be observed out of
  order.

Payloads cross the thread-backend boundary zero-copy where possible:
C-contiguous ndarrays are shared as read-only views instead of being
deep-copied (see ``_freeze`` in :mod:`repro.comm.communicator`), so the
sender must treat a buffer as transferred once it has been handed to
``send``/``isend``/a collective.  The process backend copies through a
shared-memory arena instead (see :mod:`repro.comm.proc_backend`), under the
same no-mutate-after-send contract.

Error handling follows MPI's "abort the job" philosophy: if any rank
raises, the world is aborted, every rendezvous is broken, pending
nonblocking requests are woken, and the original exception is re-raised in
the caller with :class:`CommAborted` raised inside the surviving ranks.
Abort reasons are structured: the first failure (rank, operation, cause)
is recorded once per world and every survivor's :class:`CommAborted`
carries it, so a chaos test can assert that rank 3's death was named on
ranks 0-2.  Timeouts identify the stuck operation: the diagnostic names
the waiting world rank, the operation, (for sequenced collectives) the
sequence number and schedule step, and dumps the pending inbox — the
queued-but-unmatched ``(source, tag)`` pairs — rather than a bare "timed
out".

Timeouts are per *transport operation*, not per job: ``run_spmd`` takes a
default ``timeout`` plus ``op_timeouts`` overrides keyed by operation-name
prefix (e.g. ``{"recv": 5.0, "iallreduce": 30.0}``) and a ``retries``
grace count (each expiry below the retry budget logs a warning and waits
another window instead of aborting).  Deterministic fault injection
(``run_spmd(..., faults=...)`` / ``REPRO_FAULTS``) hooks the same
transport paths on both backends; see :mod:`repro.comm.faults`.
"""

from __future__ import annotations

import abc
import logging
import os
import threading
from collections import deque
from dataclasses import dataclass, field
from time import monotonic, time as _wall_time
from typing import Any, Callable

from repro.obs import tracer

from repro.comm.faults import (
    FAULTS_ENV,
    FaultInjector,
    FaultPlan,
    JobConfig,
)
from repro.comm.hostmap import HOSTMAP_ENV, HostMap, resolve_hostmap

logger = logging.getLogger(__name__)


class CommAborted(RuntimeError):
    """Raised inside surviving ranks when the SPMD world has been aborted.

    ``failed_rank``/``op``/``seq``/``host``/``kind`` carry the structured
    abort cause when it is known at the raise site (the message always
    carries it in text; the attributes are a convenience for programmatic
    handling).  ``kind`` is a failure class the elastic supervisor can act
    on — ``"injected-crash"``, ``"child-exit"``, ``"peer-death"``,
    ``"timeout"``, ``"integrity"``, or ``"hang"``; ``host`` is the logical
    host of the failed rank when a host map attributes one.  The attributes
    survive process-boundary pickling (see :meth:`__reduce__`), so the
    parent of a forked job sees the same structure the raising rank built.
    """

    def __init__(
        self,
        message: str,
        *,
        failed_rank: int | None = None,
        op: str | None = None,
        seq: int | None = None,
        host: str | None = None,
        kind: str | None = None,
    ) -> None:
        super().__init__(message)
        self.failed_rank = failed_rank
        self.op = op
        self.seq = seq
        self.host = host
        self.kind = kind

    def __reduce__(self):
        # Default exception pickling re-calls __init__ with ``args`` only,
        # dropping the keyword attributes; carry them as post-init state.
        return (
            self.__class__,
            (self.args[0] if self.args else "",),
            {
                "failed_rank": self.failed_rank,
                "op": self.op,
                "seq": self.seq,
                "host": self.host,
                "kind": self.kind,
            },
        )


class CommIntegrityError(CommAborted):
    """A transport frame failed its integrity check (CRC32 mismatch).

    Raised on the socket backend when a received TCP frame's payload does
    not match the checksum its sender stamped into the header — real link
    corruption, or an injected ``corrupt@…:point=wire`` fault.  Subclasses
    :class:`CommAborted` so every existing abort-handling path treats it as
    a job abort, but the distinct type (``kind="integrity"``) marks the
    failure as restartable-with-the-same-world for the elastic supervisor:
    the data was bad, not the rank.
    """


#: Default number of seconds a rank will wait on a peer before concluding the
#: job is wedged.  Functional tests run on <=16 in-process ranks; a minute is
#: far beyond any legitimate wait.
DEFAULT_TIMEOUT: float = 120.0


# ---------------------------------------------------------------------------
# The backend contract
# ---------------------------------------------------------------------------


class GroupChannel(abc.ABC):
    """Collective context of one communicator group on one rank.

    Created by :meth:`BaseWorld.channel` with the group's members and this
    rank's position; all state needed to run blocking and nonblocking
    collectives for that group lives behind this interface, so
    :class:`~repro.comm.communicator.Communicator` is backend-agnostic.

    The nonblocking half hands back opaque *tokens*: ``nb_start`` deposits a
    contribution and returns a token, ``nb_test``/``nb_wait`` poll or block
    until every member has deposited, ``nb_wait`` returns the slot list (all
    contributions in comm-rank order — the caller combines them, so the
    arithmetic and its order are shared across backends), and ``nb_finish``
    releases backend bookkeeping.

    Two routing refinements let message-passing backends avoid the naive
    everyone-to-everyone exchange (backends with shared slot storage may
    ignore both):

    * ``needs(comm_rank)`` — identical on every member, derived from shared
      arguments like the root — names the source comm-ranks whose slots
      that rank's ``combine`` reads (rooted bcast/gather/scatter routing).
    * ``parts=True`` declares the contribution *per-destination*: a
      sequence of group-size pieces where element ``j`` is consumed only by
      comm-rank ``j`` (alltoall, reduce_scatter).  The value handed to
      ``combine`` (or returned by ``nb_wait``) is then the received-pieces
      list — element ``i`` is what rank ``i`` addressed to this rank —
      selected by pure indexing, so no floating-point behavior depends on
      the backend.
    """

    @abc.abstractmethod
    def barrier(self, opname: str = "barrier") -> None:
        """Synchronize all members; raise :class:`CommAborted` on failure."""

    @abc.abstractmethod
    def collective(
        self,
        contribution: Any,
        combine: Callable[[list[Any]], Any],
        opname: str,
        needs: Callable[[int], Any] | None = None,
        parts: bool = False,
    ) -> Any:
        """Blocking collective: exchange contributions, return
        ``combine(slots)`` (or ``combine(received_pieces)`` with
        ``parts=True``) evaluated on this rank."""

    @abc.abstractmethod
    def nb_start(
        self, seq: int, contribution: Any, opname: str, parts: bool = False
    ) -> Any:
        """Deposit a nonblocking contribution for sequence ``seq``; never
        blocks; returns a token for the other ``nb_*`` calls."""

    @abc.abstractmethod
    def nb_test(self, token: Any) -> bool:
        """True once every member has deposited; raises on abort."""

    @abc.abstractmethod
    def nb_wait(self, token: Any) -> list[Any]:
        """Block until complete; return the slots in comm-rank order."""

    @abc.abstractmethod
    def nb_finish(self, token: Any) -> None:
        """Release per-operation bookkeeping after the result was combined."""


class BaseWorld(abc.ABC):
    """All shared state of one SPMD job, as one rank sees it.

    Point-to-point delivery is MPI-style eager and buffered: ``deliver``
    never blocks; ``collect`` blocks until a matching ``(source, tag)``
    message arrives, the world aborts, or the timeout expires (with a
    diagnostic naming the waiting rank and operation).
    """

    backend_name: str = "abstract"
    size: int
    timeout: float
    #: Per-job knobs (op timeouts, retries, faults); every concrete world
    #: assigns one in its constructor.
    config: JobConfig

    @property
    @abc.abstractmethod
    def aborted(self) -> bool: ...

    @property
    def abort_reason(self) -> str | None:
        """The recorded cause of the abort (first failure wins), if any."""
        return None

    def abort_suffix(self) -> str:
        """Human-readable abort cause to append to survivor diagnostics."""
        reason = self.abort_reason
        return f" — {reason}" if reason else ""

    def timeout_for(self, opname: str) -> float:
        """The timeout bound for one blocked operation named ``opname``."""
        return self.config.timeout_for(opname)

    @property
    def hostmap(self) -> "HostMap | None":
        """The job's logical-node layout (``None`` = all one node)."""
        return self.config.hostmap

    def node_of(self, world_rank: int) -> int:
        """Logical node index of a world rank (0 when no host map is set).

        Drives hierarchical collective selection: two ranks with equal
        ``node_of`` share the fast intra-node transport domain, differing
        values mean traffic between them crosses the inter-node wire.
        """
        hm = self.config.hostmap
        return 0 if hm is None else hm.node_of(world_rank)

    @abc.abstractmethod
    def deliver(self, source: int, dest: int, tag: Any, payload: Any) -> None: ...

    @abc.abstractmethod
    def collect(
        self, dest: int, source: int, tag: Any, opname: str = "recv"
    ) -> Any: ...

    @abc.abstractmethod
    def try_collect(self, dest: int, source: int, tag: Any) -> tuple[bool, Any]: ...

    @abc.abstractmethod
    def channel(self, key: Any, members: tuple[int, ...], rank: int) -> GroupChannel:
        """Fetch-or-create the collective channel for a communicator group.

        ``key`` must be identical across all members (e.g. the parent key
        plus a creation sequence number); on backends with shared state the
        first caller creates the context and later callers reuse it.
        """

    @abc.abstractmethod
    def rank_stats(self, world_rank: int):
        """The :class:`~repro.comm.stats.CommStats` of one world rank
        (shared by every communicator that rank participates in)."""

    @abc.abstractmethod
    def abort(self, reason: str | None = None) -> None:
        """Abort the job; the first non-``None`` ``reason`` is recorded."""


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------

#: name -> launcher(nranks, fn, args, kwargs, config) -> list of results.
_BACKENDS: dict[str, Callable[..., list[Any]]] = {}

#: Environment variable overriding the default backend for every
#: ``run_spmd`` call that does not pass ``backend=`` explicitly.
BACKEND_ENV = "REPRO_BACKEND"

#: Environment override for the process backend's failure-detection pace.
DETECT_INTERVAL_ENV = "REPRO_DETECT_INTERVAL"


def register_backend(name: str, launcher: Callable[..., list[Any]]) -> None:
    """Register a world implementation under ``name``.

    ``launcher(nranks, fn, args, kwargs, config)`` must run
    ``fn(comm, *args, **kwargs)`` on ``nranks`` ranks under the
    :class:`~repro.comm.faults.JobConfig` knobs and return the results in
    rank order, re-raising the first real rank error (or, with
    ``config.allow_failures``, returning per-rank exceptions in place).
    """
    _BACKENDS[name] = launcher


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def default_backend() -> str:
    """The backend used when ``run_spmd`` gets no explicit ``backend``."""
    return os.environ.get(BACKEND_ENV, "thread")


def resolve_backend(backend: str | None) -> str:
    """Validate an explicit/env/default backend choice."""
    name = backend if backend is not None else default_backend()
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown SPMD backend {name!r}; available: {available_backends()}"
        )
    return name


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = DEFAULT_TIMEOUT,
    backend: str | None = None,
    op_timeouts: dict[str, float] | None = None,
    retries: int = 0,
    faults: "FaultPlan | str | None" = None,
    allow_failures: bool = False,
    detect_interval: float | None = None,
    hostmap: "HostMap | str | None" = None,
    trace: str | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` ranks; return results.

    This is the in-process analogue of ``mpiexec -n nranks python script.py``.
    ``fn`` receives a :class:`~repro.comm.communicator.Communicator` whose
    ``rank``/``size`` identify the caller.  Results are returned in rank
    order.  If any rank raises, the world is aborted and the first exception
    (by rank) is re-raised in the caller.

    ``backend`` selects the world implementation (``"thread"`` or
    ``"process"``; see :func:`available_backends`).  When omitted, the
    ``REPRO_BACKEND`` environment variable decides, defaulting to the
    thread backend.  The process backend requires ``fn``'s results to be
    picklable and ``fn`` itself to be fork-inheritable (any callable
    defined before the call qualifies, closures included).

    Fault-tolerance knobs:

    * ``timeout`` bounds one blocked transport operation (not the job);
      ``op_timeouts`` overrides it per operation-name prefix and
      ``retries`` grants each wait that many extra logged timeout windows
      before the job is aborted.
    * ``faults`` installs a deterministic
      :class:`~repro.comm.faults.FaultPlan` (or a string in the
      ``REPRO_FAULTS`` syntax) on both backends' transport paths; when
      omitted, the ``REPRO_FAULTS`` environment variable applies.
    * ``allow_failures`` returns per-rank exceptions *in the result list*
      instead of re-raising the first one — the chaos-testing mode in
      which survivor ``CommAborted``\\ s are observable alongside the
      failed rank's error.
    * ``detect_interval`` paces the process backend's failure detector
      (child-exit watcher + heartbeats; env ``REPRO_DETECT_INTERVAL``);
      a dead rank aborts the job within about one interval.
    * ``hostmap`` (a :class:`~repro.comm.hostmap.HostMap` or a spec string
      like ``"0,1:A 2,3:B"``; env ``REPRO_HOSTMAP``) groups ranks into
      logical nodes: the socket backend routes intra-node traffic over
      shared memory and inter-node traffic over TCP, and the collective
      layer selects hierarchical two-level schedules when the layout spans
      nodes.  ``None`` leaves each backend's default layout (thread and
      process: all one node; socket: one node per rank).
    * ``trace`` (env ``REPRO_TRACE``) enables per-rank span tracing: every
      rank records structured spans/flows (see :mod:`repro.obs.tracer`)
      and, after the job completes, the per-rank files are merged into one
      Chrome trace-event JSON at the given path, clock-aligned via the
      shared job epoch captured here before launch.

    For ``nranks == 1`` the function is invoked directly on the calling
    thread regardless of backend, which keeps single-rank tests cheap and
    debuggable.
    """
    name = resolve_backend(backend)
    if faults is None:
        env_faults = os.environ.get(FAULTS_ENV)
        if env_faults:
            faults = FaultPlan.parse(env_faults)
    elif isinstance(faults, str):
        faults = FaultPlan.parse(faults)
    if detect_interval is None:
        detect_interval = float(os.environ.get(DETECT_INTERVAL_ENV, 0.25))
    config = JobConfig(
        timeout=timeout,
        op_timeouts=dict(op_timeouts or {}),
        retries=retries,
        faults=faults,
        allow_failures=allow_failures,
        detect_interval=detect_interval,
        hostmap=resolve_hostmap(hostmap, os.environ.get(HOSTMAP_ENV)),
    )
    trace_path = trace if trace is not None else os.environ.get(tracer.TRACE_ENV)
    if trace_path:
        config.trace = tracer.TraceConfig(path=str(trace_path), epoch=_wall_time())
    if nranks == 1:
        from repro.comm.communicator import Communicator

        world = World(size=nranks, timeout=timeout, config=config)
        tracer.enter_rank(0, _host_of(config, 0), trace=config.trace, thread_scope=True)
        try:
            results = [fn(Communicator._world_comm(world, 0), *args, **kwargs)]
        except Exception as exc:
            if allow_failures:
                results = [exc]
            else:
                raise
        finally:
            tracer.exit_rank(thread_scope=True)
        _merge_trace(config, nranks)
        return results
    results = _BACKENDS[name](nranks, fn, args, kwargs, config)
    _merge_trace(config, nranks)
    return results


def _host_of(config: JobConfig, rank: int) -> str:
    return config.hostmap.host_of(rank) if config.hostmap is not None else "node0"


def _merge_trace(config: JobConfig, nranks: int) -> None:
    """Fold the per-rank trace files into one Chrome-trace JSON; called
    after the launcher returns (ranks have flushed by join time).  Skipped
    when the job raised, leaving the rank files behind for debugging."""
    if config.trace is None:
        return
    from repro.obs.export import merge_traces

    merge_traces(config.trace.path, nranks)


# ---------------------------------------------------------------------------
# Thread backend
# ---------------------------------------------------------------------------


class _Mailbox:
    """Point-to-point message store for one destination rank.

    Messages are matched MPI-style on ``(source, tag)`` with FIFO order per
    pair.  Sends are eager (never block); receives block until a matching
    message arrives or the world aborts.
    """

    def __init__(self, world: "World") -> None:
        self._world = world
        self._cv = threading.Condition()
        self._queues: dict[tuple[int, Any], deque[Any]] = {}

    def put(self, source: int, tag: Any, payload: Any) -> None:
        with self._cv:
            self._queues.setdefault((source, tag), deque()).append(payload)
            self._cv.notify_all()

    def get(self, source: int, tag: Any, timeout: float, describe: str) -> Any:
        key = (source, tag)
        retries = self._world.config.retries
        attempt = 0
        deadline = monotonic() + timeout
        with self._cv:
            while True:
                q = self._queues.get(key)
                if q:
                    return q.popleft()
                if self._world.aborted:
                    raise CommAborted(
                        f"{describe} interrupted: world aborted"
                        f"{self._world.abort_suffix()}"
                    )
                remaining = deadline - monotonic()
                if remaining <= 0:
                    if attempt < retries:
                        attempt += 1
                        logger.warning(
                            "%s still waiting after %.1fs; retry %d/%d "
                            "(pending inbox: %s)",
                            describe, timeout, attempt, retries,
                            self.pending_keys(),
                        )
                        deadline = monotonic() + timeout
                        continue
                    raise CommAborted(
                        f"{describe} timed out after {timeout:.1f}s"
                        f"{_retry_note(attempt)}; "
                        f"pending inbox: {self.pending_keys()}",
                        kind="timeout",
                    )
                self._cv.wait(timeout=min(remaining, 0.5))

    def try_get(self, source: int, tag: Any) -> tuple[bool, Any]:
        """Nonblocking probe-and-pop: ``(True, payload)`` or ``(False, None)``."""
        key = (source, tag)
        with self._cv:
            q = self._queues.get(key)
            if q:
                return True, q.popleft()
            if self._world.aborted:
                raise CommAborted(
                    f"irecv(source={source}, tag={tag}) interrupted: "
                    f"world aborted{self._world.abort_suffix()}"
                )
            return False, None

    def pending(self) -> int:
        with self._cv:
            return sum(len(q) for q in self._queues.values())

    def pending_keys(self, limit: int = 8) -> str:
        """Queued-but-unmatched ``(source, tag)`` pairs, for diagnostics."""
        with self._cv:
            keys = [k for k, q in self._queues.items() if q]
        return _format_pending(keys, limit)


def _format_pending(keys: list, limit: int) -> str:
    if not keys:
        return "(empty)"
    shown = ", ".join(
        f"(source={s}, tag={t!r})" for s, t in keys[:limit]
    )
    more = len(keys) - limit
    return f"[{shown}{f', … +{more} more' if more > 0 else ''}]"


def _retry_note(attempts: int) -> str:
    return f" (after {attempts} retries)" if attempts else ""


class _PendingOp:
    """State of one in-flight nonblocking collective.

    Created lazily by the first member to deposit; every member contributes
    exactly once.  The operation is *complete* once all members have
    deposited; each member then combines the slots independently (identical
    deterministic order, so results are bitwise reproducible) and marks
    itself consumed.  The entry is reclaimed when every member has consumed.
    """

    __slots__ = ("slots", "deposited", "consumed")

    def __init__(self, nmembers: int) -> None:
        self.slots: list[Any] = [None] * nmembers
        self.deposited = 0
        self.consumed = 0


class _Rendezvous:
    """Shared collective context for one communicator group.

    Blocking collectives are implemented as a two-phase barrier around a
    shared slot array: every member deposits its contribution, synchronizes,
    reads the (deterministically combined) result, and synchronizes again so
    a fast rank cannot race ahead into the next collective and clobber the
    slots.

    Nonblocking collectives instead live in ``pending``, keyed by a
    per-communicator sequence number (identical across members because
    collectives must be issued in the same order on every rank).  Entries
    are independent, so any number may be in flight and they may complete
    out of order.
    """

    def __init__(self, nmembers: int) -> None:
        self.barrier = threading.Barrier(nmembers)
        self.slots: list[Any] = [None] * nmembers
        self.scratch: dict[str, Any] = {}
        self.lock = threading.Lock()
        self.pending_cv = threading.Condition()
        self.pending: dict[Any, _PendingOp] = {}

    # -- nonblocking-collective state -------------------------------------
    def deposit(self, key: Any, nmembers: int, rank: int, payload: Any) -> _PendingOp:
        """Deposit ``rank``'s contribution for the op identified by ``key``.

        Never blocks.  Waiters are woken only by the *completing* deposit —
        an incomplete op cannot unblock anyone, so notifying earlier would
        just burn context switches on every waiter.
        """
        with self.pending_cv:
            op = self.pending.get(key)
            if op is None:
                op = _PendingOp(nmembers)
                self.pending[key] = op
            op.slots[rank] = payload
            op.deposited += 1
            if op.deposited >= nmembers:
                self.pending_cv.notify_all()
        return op

    def consume(self, key: Any, op: _PendingOp) -> None:
        """Mark one member's result as read; reclaim the entry on the last."""
        with self.pending_cv:
            op.consumed += 1
            if op.consumed >= len(op.slots):
                self.pending.pop(key, None)

    def abort(self) -> None:
        self.barrier.abort()
        with self.pending_cv:
            self.pending_cv.notify_all()


class _ThreadToken:
    """Nonblocking-collective token of the thread backend."""

    __slots__ = ("key", "op", "seq", "opname", "parts")

    def __init__(
        self, key: Any, op: _PendingOp, seq: int, opname: str, parts: bool
    ):
        self.key = key
        self.op = op
        self.seq = seq
        self.opname = opname
        self.parts = parts


class ThreadChannel(GroupChannel):
    """Thread-backend channel: a view over the shared :class:`_Rendezvous`."""

    def __init__(
        self,
        world: "World",
        ctx: _Rendezvous,
        key: Any,
        members: tuple[int, ...],
        rank: int,
    ) -> None:
        self._world = world
        self._ctx = ctx
        self._key = key
        self._members = members
        self._rank = rank

    def _diag(self, opname: str, seq: int | None = None) -> str:
        tail = f"[seq={seq}]" if seq is not None else ""
        return (
            f"{opname}{tail} on comm {self._key!r} at world rank "
            f"{self._members[self._rank]} (comm rank {self._rank})"
        )

    def _select_parts(self, slots: list[Any]) -> list[Any]:
        """Per-destination view of complete slots: what each rank sent me.

        Pure indexing — no arithmetic — so the values ``combine`` sees are
        identical to a message-passing backend delivering the pieces.
        """
        rank = self._rank
        return [slots[i][rank] for i in range(len(self._members))]

    def barrier(self, opname: str = "barrier") -> None:
        bound = self._world.timeout_for(opname)
        try:
            self._ctx.barrier.wait(timeout=bound)
        except threading.BrokenBarrierError:
            raise CommAborted(
                f"{self._diag(opname)} interrupted: world aborted or a peer "
                f"missed the rendezvous within {bound:.1f}s"
                f"{self._world.abort_suffix()}"
            ) from None

    def collective(
        self,
        contribution: Any,
        combine: Callable[[list[Any]], Any],
        opname: str,
        needs: Callable[[int], Any] | None = None,
        parts: bool = False,
    ) -> Any:
        # ``needs`` is ignored: slots are shared memory between threads, so
        # routing rooted collectives more narrowly would save nothing.
        ctx = self._ctx
        ctx.slots[self._rank] = contribution
        self.barrier(opname)
        # Slots are complete and read-only in this phase; every rank combines
        # independently (identical deterministic order).
        result = combine(self._select_parts(ctx.slots) if parts else ctx.slots)
        self.barrier(opname)
        # Release this rank's contribution so large buffers don't outlive
        # the collective (safe: all members have combined by now, and only
        # this rank writes this slot).
        ctx.slots[self._rank] = None
        return result

    def nb_start(
        self, seq: int, contribution: Any, opname: str, parts: bool = False
    ) -> Any:
        key = ("nb", seq)
        op = self._ctx.deposit(key, len(self._members), self._rank, contribution)
        return _ThreadToken(key, op, seq, opname, parts)

    def nb_test(self, token: _ThreadToken) -> bool:
        with self._ctx.pending_cv:
            if self._world.aborted:
                raise CommAborted(
                    f"{self._diag(token.opname, token.seq)} interrupted: "
                    f"world aborted{self._world.abort_suffix()}"
                )
            return token.op.deposited >= len(self._members)

    def nb_wait(self, token: _ThreadToken) -> list[Any]:
        ctx = self._ctx
        n = len(self._members)
        bound = self._world.timeout_for(token.opname)
        deadline = monotonic() + bound
        with ctx.pending_cv:
            while token.op.deposited < n:
                if self._world.aborted:
                    raise CommAborted(
                        f"{self._diag(token.opname, token.seq)} interrupted: "
                        f"world aborted{self._world.abort_suffix()}"
                    )
                remaining = deadline - monotonic()
                if remaining <= 0:
                    raise CommAborted(
                        f"{self._diag(token.opname, token.seq)} timed out "
                        f"after {bound:.1f}s with "
                        f"{token.op.deposited}/{n} contributions deposited",
                        kind="timeout",
                    )
                ctx.pending_cv.wait(timeout=min(remaining, 0.5))
        if token.parts:
            return self._select_parts(token.op.slots)
        return token.op.slots

    def nb_finish(self, token: _ThreadToken) -> None:
        self._ctx.consume(token.key, token.op)


@dataclass
class World(BaseWorld):
    """Thread-backend shared state for one SPMD job."""

    size: int
    timeout: float = DEFAULT_TIMEOUT
    config: JobConfig | None = None
    _aborted: bool = False
    _abort_reason: str | None = None
    _mailboxes: list[_Mailbox] = field(default_factory=list)
    _groups: dict[Any, _Rendezvous] = field(default_factory=dict)
    _groups_lock: threading.Lock = field(default_factory=threading.Lock)
    _abort_lock: threading.Lock = field(default_factory=threading.Lock)

    backend_name = "thread"

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"world size must be >= 1, got {self.size}")
        if self.config is None:
            self.config = JobConfig(timeout=self.timeout)
        else:
            self.timeout = self.config.timeout
        self._mailboxes = [_Mailbox(self) for _ in range(self.size)]
        self._stats_registry = None
        faults = self.config.faults
        self._injectors: list[FaultInjector | None] = [
            faults.injector(r) if faults is not None else None
            for r in range(self.size)
        ]

    @property
    def aborted(self) -> bool:
        return self._aborted

    @property
    def abort_reason(self) -> str | None:
        return self._abort_reason

    # -- point-to-point ----------------------------------------------------
    def deliver(self, source: int, dest: int, tag: Any, payload: Any) -> None:
        self._check_rank(dest, "dest")
        inj = self._injectors[source] if 0 <= source < self.size else None
        if inj is not None:
            # On the thread backend an injected crash propagates as an
            # exception in the sending rank's thread; no process to kill.
            action, payload = inj.on_transport(
                "send", dest, tag, payload, lambda detail: None
            )
            if action == "drop":
                return
        self._mailboxes[dest].put(source, tag, payload)

    def collect(self, dest: int, source: int, tag: Any, opname: str = "recv") -> Any:
        self._check_rank(source, "source")
        describe = (
            f"{opname}(world rank {dest} <- {source}, tag={tag!r})"
        )
        payload = self._mailboxes[dest].get(
            source, tag, self.timeout_for(opname), describe
        )
        return self._recv_fault(dest, source, tag, payload)

    def try_collect(self, dest: int, source: int, tag: Any) -> tuple[bool, Any]:
        self._check_rank(source, "source")
        ok, payload = self._mailboxes[dest].try_get(source, tag)
        if ok:
            payload = self._recv_fault(dest, source, tag, payload)
        return ok, payload

    def _recv_fault(self, dest: int, source: int, tag: Any, payload: Any) -> Any:
        """Apply recv-point faults on a *successful* retrieval.

        Counting only retrievals (never empty polls) keeps ``after``
        deterministic even though ``try_collect`` may poll a
        run-dependent number of times.
        """
        inj = self._injectors[dest] if 0 <= dest < self.size else None
        if inj is not None:
            _, payload = inj.on_transport(
                "recv", source, tag, payload, lambda detail: None
            )
        return payload

    # -- collective rendezvous --------------------------------------------
    def group(self, key: Any, nmembers: int) -> _Rendezvous:
        """Fetch-or-create the shared rendezvous context for a group key."""
        with self._groups_lock:
            ctx = self._groups.get(key)
            if ctx is None:
                ctx = _Rendezvous(nmembers)
                self._groups[key] = ctx
            return ctx

    def channel(self, key: Any, members: tuple[int, ...], rank: int) -> GroupChannel:
        return ThreadChannel(self, self.group(key, len(members)), key, members, rank)

    def rank_stats(self, world_rank: int):
        from repro.comm.stats import CommStats

        # One CommStats per world rank, shared by every communicator that
        # rank participates in, so split comms accumulate into one place.
        with self._groups_lock:
            if self._stats_registry is None:
                self._stats_registry = [CommStats() for _ in range(self.size)]
        return self._stats_registry[world_rank]

    # -- failure handling ---------------------------------------------------
    def abort(self, reason: str | None = None) -> None:
        with self._abort_lock:
            if self._aborted:
                return
            self._aborted = True
            self._abort_reason = reason
        with self._groups_lock:
            for ctx in self._groups.values():
                ctx.abort()
        for mb in self._mailboxes:
            with mb._cv:
                mb._cv.notify_all()

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"{what}={rank} out of range for world of size {self.size}")


def _run_spmd_threads(
    nranks: int,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    config: JobConfig,
) -> list[Any]:
    """Thread-backend launcher (the historical in-process harness)."""
    from repro.comm.communicator import Communicator

    world = World(size=nranks, timeout=config.timeout, config=config)
    results: list[Any] = [None] * nranks
    errors: list[BaseException | None] = [None] * nranks

    def runner(rank: int) -> None:
        tracer.enter_rank(
            rank, _host_of(config, rank), trace=config.trace, thread_scope=True
        )
        try:
            comm = Communicator._world_comm(world, rank)
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must propagate anything
            errors[rank] = exc
            if not isinstance(exc, CommAborted):
                world.abort(
                    f"world rank {rank} failed: {type(exc).__name__}: {exc}"
                )
            else:
                world.abort()
        finally:
            tracer.exit_rank(thread_scope=True)

    threads = [
        threading.Thread(target=runner, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if config.allow_failures:
        return [
            errors[rank] if errors[rank] is not None else results[rank]
            for rank in range(nranks)
        ]
    first_real = next(
        (e for e in errors if e is not None and not isinstance(e, CommAborted)), None
    )
    if first_real is not None:
        raise first_real
    first_any = next((e for e in errors if e is not None), None)
    if first_any is not None:
        raise first_any
    return results


register_backend("thread", _run_spmd_threads)
