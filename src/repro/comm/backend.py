"""SPMD execution harness: one thread per rank, shared rendezvous state.

The paper's implementation runs one MPI process per GPU.  Here every rank is
a Python thread; numpy releases the GIL for array kernels, so ranks overlap
for the bulk of the arithmetic.  All shared state (mailboxes for
point-to-point messages, rendezvous groups for collectives) lives in a
:class:`World` object created once per :func:`run_spmd` call.

Error handling follows MPI's "abort the job" philosophy: if any rank raises,
the world is aborted, every barrier is broken, and the original exception is
re-raised in the caller with :class:`CommAborted` raised inside the
surviving ranks.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


class CommAborted(RuntimeError):
    """Raised inside surviving ranks when the SPMD world has been aborted."""


#: Default number of seconds a rank will wait on a peer before concluding the
#: job is wedged.  Functional tests run on <=16 in-process ranks; a minute is
#: far beyond any legitimate wait.
DEFAULT_TIMEOUT: float = 120.0


class _Mailbox:
    """Point-to-point message store for one destination rank.

    Messages are matched MPI-style on ``(source, tag)`` with FIFO order per
    pair.  Sends are eager (never block); receives block until a matching
    message arrives or the world aborts.
    """

    def __init__(self, world: "World") -> None:
        self._world = world
        self._cv = threading.Condition()
        self._queues: dict[tuple[int, int], deque[Any]] = {}

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self._cv:
            self._queues.setdefault((source, tag), deque()).append(payload)
            self._cv.notify_all()

    def get(self, source: int, tag: int, timeout: float) -> Any:
        key = (source, tag)
        with self._cv:
            while True:
                q = self._queues.get(key)
                if q:
                    return q.popleft()
                if self._world.aborted:
                    raise CommAborted(
                        f"recv(source={source}, tag={tag}) interrupted: world aborted"
                    )
                if not self._cv.wait(timeout=min(timeout, 0.5)):
                    timeout -= 0.5
                    if timeout <= 0:
                        raise CommAborted(
                            f"recv(source={source}, tag={tag}) timed out"
                        )

    def pending(self) -> int:
        with self._cv:
            return sum(len(q) for q in self._queues.values())


class _Rendezvous:
    """Shared collective context for one communicator group.

    Collectives are implemented as a two-phase barrier around a shared slot
    array: every member deposits its contribution, synchronizes, reads the
    (deterministically combined) result, and synchronizes again so a fast
    rank cannot race ahead into the next collective and clobber the slots.
    """

    def __init__(self, nmembers: int) -> None:
        self.barrier = threading.Barrier(nmembers)
        self.slots: list[Any] = [None] * nmembers
        self.scratch: dict[str, Any] = {}
        self.lock = threading.Lock()

    def abort(self) -> None:
        self.barrier.abort()


@dataclass
class World:
    """All shared state for one SPMD job."""

    size: int
    timeout: float = DEFAULT_TIMEOUT
    aborted: bool = False
    _mailboxes: list[_Mailbox] = field(default_factory=list)
    _groups: dict[Any, _Rendezvous] = field(default_factory=dict)
    _groups_lock: threading.Lock = field(default_factory=threading.Lock)
    _abort_lock: threading.Lock = field(default_factory=threading.Lock)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"world size must be >= 1, got {self.size}")
        self._mailboxes = [_Mailbox(self) for _ in range(self.size)]

    # -- point-to-point ----------------------------------------------------
    def deliver(self, source: int, dest: int, tag: int, payload: Any) -> None:
        self._check_rank(dest, "dest")
        self._mailboxes[dest].put(source, tag, payload)

    def collect(self, dest: int, source: int, tag: int) -> Any:
        self._check_rank(source, "source")
        return self._mailboxes[dest].get(source, tag, self.timeout)

    # -- collective rendezvous --------------------------------------------
    def group(self, key: Any, nmembers: int) -> _Rendezvous:
        """Fetch-or-create the rendezvous context for a communicator group.

        ``key`` must be identical across all members (e.g. the sorted member
        tuple plus a creation sequence number); the first caller creates the
        context, later callers reuse it.
        """
        with self._groups_lock:
            ctx = self._groups.get(key)
            if ctx is None:
                ctx = _Rendezvous(nmembers)
                self._groups[key] = ctx
            return ctx

    # -- failure handling ---------------------------------------------------
    def abort(self) -> None:
        with self._abort_lock:
            if self.aborted:
                return
            self.aborted = True
        with self._groups_lock:
            for ctx in self._groups.values():
                ctx.abort()
        for mb in self._mailboxes:
            with mb._cv:
                mb._cv.notify_all()

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"{what}={rank} out of range for world of size {self.size}")


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = DEFAULT_TIMEOUT,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` ranks; return results.

    This is the in-process analogue of ``mpiexec -n nranks python script.py``.
    ``fn`` receives a :class:`~repro.comm.communicator.Communicator` whose
    ``rank``/``size`` identify the caller.  Results are returned in rank
    order.  If any rank raises, the world is aborted and the first exception
    (by rank) is re-raised in the caller.

    For ``nranks == 1`` the function is invoked directly on the calling
    thread, which keeps single-rank tests cheap and debuggable.
    """
    from repro.comm.communicator import Communicator

    world = World(size=nranks, timeout=timeout)
    if nranks == 1:
        return [fn(Communicator._world_comm(world, 0), *args, **kwargs)]

    results: list[Any] = [None] * nranks
    errors: list[BaseException | None] = [None] * nranks

    def runner(rank: int) -> None:
        try:
            comm = Communicator._world_comm(world, rank)
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must propagate anything
            errors[rank] = exc
            world.abort()

    threads = [
        threading.Thread(target=runner, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    first_real = next(
        (e for e in errors if e is not None and not isinstance(e, CommAborted)), None
    )
    if first_real is not None:
        raise first_real
    first_any = next((e for e in errors if e is not None), None)
    if first_any is not None:
        raise first_any
    return results
