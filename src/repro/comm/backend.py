"""SPMD execution harness: one thread per rank, shared rendezvous state.

The paper's implementation runs one MPI process per GPU.  Here every rank is
a Python thread; numpy releases the GIL for array kernels, so ranks overlap
for the bulk of the arithmetic.  All shared state (mailboxes for
point-to-point messages, rendezvous groups for collectives) lives in a
:class:`World` object created once per :func:`run_spmd` call.

Two completion disciplines coexist, mirroring MPI + NCCL/Aluminum:

* **Blocking collectives** rendezvous at a two-phase barrier around a shared
  slot array (every member deposits, synchronizes, combines, synchronizes).
* **Nonblocking collectives** (the engine's gradient-allreduce hot path)
  skip the barrier entirely: each call deposits its contribution into a
  sequence-keyed :class:`_PendingOp` and immediately returns a request
  handle.  A rank only blocks when it *waits* on the handle, and only until
  every member has deposited — a fast rank never waits for slow peers to
  *read*, which is what lets the per-layer dL/dw allreduces overlap with the
  remainder of backpropagation (paper §IV).  Multiple operations per
  communicator may be in flight at once; completion may be observed out of
  order.

Payloads cross the boundary zero-copy where possible: C-contiguous ndarrays
are shared as read-only views instead of being deep-copied (see ``_freeze``
in :mod:`repro.comm.communicator`), so the sender must treat a buffer as
transferred once it has been handed to ``send``/``isend``/a collective.

Error handling follows MPI's "abort the job" philosophy: if any rank raises,
the world is aborted, every barrier is broken, pending nonblocking requests
are woken, and the original exception is re-raised in the caller with
:class:`CommAborted` raised inside the surviving ranks.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable


class CommAborted(RuntimeError):
    """Raised inside surviving ranks when the SPMD world has been aborted."""


#: Default number of seconds a rank will wait on a peer before concluding the
#: job is wedged.  Functional tests run on <=16 in-process ranks; a minute is
#: far beyond any legitimate wait.
DEFAULT_TIMEOUT: float = 120.0


class _Mailbox:
    """Point-to-point message store for one destination rank.

    Messages are matched MPI-style on ``(source, tag)`` with FIFO order per
    pair.  Sends are eager (never block); receives block until a matching
    message arrives or the world aborts.
    """

    def __init__(self, world: "World") -> None:
        self._world = world
        self._cv = threading.Condition()
        self._queues: dict[tuple[int, int], deque[Any]] = {}

    def put(self, source: int, tag: int, payload: Any) -> None:
        with self._cv:
            self._queues.setdefault((source, tag), deque()).append(payload)
            self._cv.notify_all()

    def get(self, source: int, tag: int, timeout: float) -> Any:
        key = (source, tag)
        with self._cv:
            while True:
                q = self._queues.get(key)
                if q:
                    return q.popleft()
                if self._world.aborted:
                    raise CommAborted(
                        f"recv(source={source}, tag={tag}) interrupted: world aborted"
                    )
                if not self._cv.wait(timeout=min(timeout, 0.5)):
                    timeout -= 0.5
                    if timeout <= 0:
                        raise CommAborted(
                            f"recv(source={source}, tag={tag}) timed out"
                        )

    def try_get(self, source: int, tag: int) -> tuple[bool, Any]:
        """Nonblocking probe-and-pop: ``(True, payload)`` or ``(False, None)``."""
        key = (source, tag)
        with self._cv:
            q = self._queues.get(key)
            if q:
                return True, q.popleft()
            if self._world.aborted:
                raise CommAborted(
                    f"irecv(source={source}, tag={tag}) interrupted: world aborted"
                )
            return False, None

    def pending(self) -> int:
        with self._cv:
            return sum(len(q) for q in self._queues.values())


class _PendingOp:
    """State of one in-flight nonblocking collective.

    Created lazily by the first member to deposit; every member contributes
    exactly once.  The operation is *complete* once all members have
    deposited; each member then combines the slots independently (identical
    deterministic order, so results are bitwise reproducible) and marks
    itself consumed.  The entry is reclaimed when every member has consumed.
    """

    __slots__ = ("slots", "deposited", "consumed")

    def __init__(self, nmembers: int) -> None:
        self.slots: list[Any] = [None] * nmembers
        self.deposited = 0
        self.consumed = 0


class _Rendezvous:
    """Shared collective context for one communicator group.

    Blocking collectives are implemented as a two-phase barrier around a
    shared slot array: every member deposits its contribution, synchronizes,
    reads the (deterministically combined) result, and synchronizes again so
    a fast rank cannot race ahead into the next collective and clobber the
    slots.

    Nonblocking collectives instead live in ``pending``, keyed by a
    per-communicator sequence number (identical across members because
    collectives must be issued in the same order on every rank).  Entries
    are independent, so any number may be in flight and they may complete
    out of order.
    """

    def __init__(self, nmembers: int) -> None:
        self.barrier = threading.Barrier(nmembers)
        self.slots: list[Any] = [None] * nmembers
        self.scratch: dict[str, Any] = {}
        self.lock = threading.Lock()
        self.pending_cv = threading.Condition()
        self.pending: dict[Any, _PendingOp] = {}

    # -- nonblocking-collective state -------------------------------------
    def deposit(self, key: Any, nmembers: int, rank: int, payload: Any) -> _PendingOp:
        """Deposit ``rank``'s contribution for the op identified by ``key``.

        Never blocks.  Waiters are woken only by the *completing* deposit —
        an incomplete op cannot unblock anyone, so notifying earlier would
        just burn context switches on every waiter.
        """
        with self.pending_cv:
            op = self.pending.get(key)
            if op is None:
                op = _PendingOp(nmembers)
                self.pending[key] = op
            op.slots[rank] = payload
            op.deposited += 1
            if op.deposited >= nmembers:
                self.pending_cv.notify_all()
        return op

    def consume(self, key: Any, op: _PendingOp) -> None:
        """Mark one member's result as read; reclaim the entry on the last."""
        with self.pending_cv:
            op.consumed += 1
            if op.consumed >= len(op.slots):
                self.pending.pop(key, None)

    def abort(self) -> None:
        self.barrier.abort()
        with self.pending_cv:
            self.pending_cv.notify_all()


@dataclass
class World:
    """All shared state for one SPMD job."""

    size: int
    timeout: float = DEFAULT_TIMEOUT
    aborted: bool = False
    _mailboxes: list[_Mailbox] = field(default_factory=list)
    _groups: dict[Any, _Rendezvous] = field(default_factory=dict)
    _groups_lock: threading.Lock = field(default_factory=threading.Lock)
    _abort_lock: threading.Lock = field(default_factory=threading.Lock)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"world size must be >= 1, got {self.size}")
        self._mailboxes = [_Mailbox(self) for _ in range(self.size)]

    # -- point-to-point ----------------------------------------------------
    def deliver(self, source: int, dest: int, tag: int, payload: Any) -> None:
        self._check_rank(dest, "dest")
        self._mailboxes[dest].put(source, tag, payload)

    def collect(self, dest: int, source: int, tag: int) -> Any:
        self._check_rank(source, "source")
        return self._mailboxes[dest].get(source, tag, self.timeout)

    def try_collect(self, dest: int, source: int, tag: int) -> tuple[bool, Any]:
        self._check_rank(source, "source")
        return self._mailboxes[dest].try_get(source, tag)

    # -- collective rendezvous --------------------------------------------
    def group(self, key: Any, nmembers: int) -> _Rendezvous:
        """Fetch-or-create the rendezvous context for a communicator group.

        ``key`` must be identical across all members (e.g. the sorted member
        tuple plus a creation sequence number); the first caller creates the
        context, later callers reuse it.
        """
        with self._groups_lock:
            ctx = self._groups.get(key)
            if ctx is None:
                ctx = _Rendezvous(nmembers)
                self._groups[key] = ctx
            return ctx

    # -- failure handling ---------------------------------------------------
    def abort(self) -> None:
        with self._abort_lock:
            if self.aborted:
                return
            self.aborted = True
        with self._groups_lock:
            for ctx in self._groups.values():
                ctx.abort()
        for mb in self._mailboxes:
            with mb._cv:
                mb._cv.notify_all()

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"{what}={rank} out of range for world of size {self.size}")


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = DEFAULT_TIMEOUT,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` ranks; return results.

    This is the in-process analogue of ``mpiexec -n nranks python script.py``.
    ``fn`` receives a :class:`~repro.comm.communicator.Communicator` whose
    ``rank``/``size`` identify the caller.  Results are returned in rank
    order.  If any rank raises, the world is aborted and the first exception
    (by rank) is re-raised in the caller.

    For ``nranks == 1`` the function is invoked directly on the calling
    thread, which keeps single-rank tests cheap and debuggable.
    """
    from repro.comm.communicator import Communicator

    world = World(size=nranks, timeout=timeout)
    if nranks == 1:
        return [fn(Communicator._world_comm(world, 0), *args, **kwargs)]

    results: list[Any] = [None] * nranks
    errors: list[BaseException | None] = [None] * nranks

    def runner(rank: int) -> None:
        try:
            comm = Communicator._world_comm(world, rank)
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must propagate anything
            errors[rank] = exc
            world.abort()

    threads = [
        threading.Thread(target=runner, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    first_real = next(
        (e for e in errors if e is not None and not isinstance(e, CommAborted)), None
    )
    if first_real is not None:
        raise first_real
    first_any = next((e for e in errors if e is not None), None)
    if first_any is not None:
        raise first_any
    return results
