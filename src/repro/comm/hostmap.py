"""Logical host map: grouping SPMD ranks into nodes.

Multi-host collectives care about *which ranks share a fast transport
domain* (shared memory, NVLink) and which pairs must cross the slow wire
(TCP, InfiniBand).  A :class:`HostMap` captures exactly that: a partition
of ranks into named logical nodes, parsed from the ``REPRO_HOSTMAP``
environment variable (or built programmatically), e.g.::

    REPRO_HOSTMAP="0,1:A 2,3:B"     # ranks 0-1 on host A, 2-3 on host B
    REPRO_HOSTMAP="0-3:alpha 4-7:beta"

The map is a *layout spec*, not a job-size contract: a spec listing ``m``
ranks assigns any world rank ``r`` to the node of ``r % m`` (modulo
folding).  One env setting therefore applies to every job in a test sweep
regardless of each job's rank count — a 2-rank job under the example above
lands entirely on node ``A`` (and collectives degenerate to flat
schedules), an 8-rank job folds to four ranks per node.  This is what lets
CI pin one 2-logical-host layout and run the whole parity suite under it.

On one physical machine the "hosts" are logical: the socket backend routes
intra-node traffic over shared memory / queues and inter-node traffic over
real TCP sockets, so the transport boundary is exercised end-to-end even
though everything runs on localhost.  The same map drives the hierarchical
collective schedules (:func:`repro.comm.algorithms.compile_hierarchical_allreduce`)
and the two-tier cost model (:class:`repro.comm.collective_models.TwoTierTopology`)
on *every* backend — thread-backend jobs with a host map select and run the
same two-level schedules, keeping cross-backend parity bitwise.
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: Environment variable carrying a :meth:`HostMap.parse` spec applied to
#: every ``run_spmd`` call that does not pass ``hostmap=`` explicitly.
HOSTMAP_ENV = "REPRO_HOSTMAP"


def _parse_ranks(field: str) -> list[int]:
    """Parse a rank list: comma-separated ints with ``a-b`` ranges."""
    ranks: list[int] = []
    for part in field.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part[1:]:  # allow "-" only as a range, not a sign
            lo_s, hi_s = part.split("-", 1)
            lo, hi = int(lo_s), int(hi_s)
            if hi < lo:
                raise ValueError(f"empty rank range {part!r}")
            ranks.extend(range(lo, hi + 1))
        else:
            ranks.append(int(part))
    return ranks


class HostMap:
    """Partition of ranks 0..m-1 into named logical nodes.

    ``nodes`` is a sequence of rank groups (one per node, in node-index
    order); every rank in ``range(m)`` must appear exactly once across the
    groups, where ``m`` is the total rank count.  Ranks beyond ``m`` fold
    in modulo ``m`` (see the module docstring), so a map is total over any
    world size.
    """

    def __init__(
        self,
        nodes: Sequence[Iterable[int]],
        names: Sequence[str] | None = None,
    ) -> None:
        groups = [tuple(sorted(int(r) for r in g)) for g in nodes]
        if not groups or any(not g for g in groups):
            raise ValueError("host map needs at least one non-empty node")
        if names is None:
            names = [f"node{i}" for i in range(len(groups))]
        if len(names) != len(groups):
            raise ValueError(
                f"{len(names)} host names for {len(groups)} node groups"
            )
        all_ranks = [r for g in groups for r in g]
        size = len(all_ranks)
        if sorted(all_ranks) != list(range(size)):
            raise ValueError(
                f"host map must assign every rank 0..{size - 1} exactly "
                f"once; got {sorted(all_ranks)}"
            )
        self._nodes = tuple(groups)
        self._names = tuple(str(n) for n in names)
        self._node_by_rank = [0] * size
        for node, group in enumerate(groups):
            for r in group:
                self._node_by_rank[r] = node

    # -- constructors --------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "HostMap":
        """Parse ``"0,1:A 2,3:B"`` / ``"0-3:A 4-7:B"`` (whitespace-separated
        ``ranks:hostname`` groups; repeated hostnames merge into one node)."""
        by_name: dict[str, list[int]] = {}
        order: list[str] = []
        for entry in spec.split():
            if ":" not in entry:
                raise ValueError(
                    f"bad host-map entry {entry!r} in {spec!r}; "
                    "expected 'ranks:hostname' (e.g. '0,1:A')"
                )
            ranks_s, name = entry.rsplit(":", 1)
            name = name.strip()
            if not name:
                raise ValueError(f"empty hostname in host-map entry {entry!r}")
            if name not in by_name:
                by_name[name] = []
                order.append(name)
            by_name[name].extend(_parse_ranks(ranks_s))
        if not order:
            raise ValueError(f"empty host-map spec {spec!r}")
        return cls([by_name[n] for n in order], names=order)

    @classmethod
    def single_node(cls, nranks: int, name: str = "node0") -> "HostMap":
        """Every rank on one node (the thread/process backend default)."""
        return cls([range(max(1, nranks))], names=[name])

    @classmethod
    def one_per_rank(cls, nranks: int) -> "HostMap":
        """Every rank its own node (the socket backend default: all-TCP)."""
        n = max(1, nranks)
        return cls([[r] for r in range(n)], names=[f"node{r}" for r in range(n)])

    @classmethod
    def uniform(cls, nranks: int, ranks_per_node: int) -> "HostMap":
        """``nranks`` consecutive ranks grouped ``ranks_per_node`` to a node."""
        if nranks % ranks_per_node:
            raise ValueError(
                f"{nranks} ranks do not divide into nodes of {ranks_per_node}"
            )
        return cls(
            [
                range(i, i + ranks_per_node)
                for i in range(0, nranks, ranks_per_node)
            ]
        )

    # -- queries -------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks the spec lists (the modulo-folding period)."""
        return len(self._node_by_rank)

    @property
    def nnodes(self) -> int:
        return len(self._nodes)

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def node_of(self, rank: int) -> int:
        """Node index of a world rank (ranks beyond the spec fold modulo)."""
        return self._node_by_rank[int(rank) % len(self._node_by_rank)]

    def host_of(self, rank: int) -> str:
        """Logical host name of a world rank."""
        return self._names[self.node_of(rank)]

    def groups_for(self, nranks: int) -> tuple[tuple[int, ...], ...]:
        """Ranks ``0..nranks-1`` grouped by node (empty nodes dropped),
        ordered by node index — the node layout of one concrete job."""
        buckets: dict[int, list[int]] = {}
        for r in range(nranks):
            buckets.setdefault(self.node_of(r), []).append(r)
        return tuple(tuple(buckets[n]) for n in sorted(buckets))

    def is_single_node(self, nranks: int) -> bool:
        """True when a job of ``nranks`` lands entirely on one node."""
        return len({self.node_of(r) for r in range(nranks)}) <= 1

    def excluding(
        self,
        hosts: Iterable[str] = (),
        ranks: Iterable[int] = (),
    ) -> "HostMap":
        """A shrunk map with the given hosts and/or spec ranks blacklisted.

        The elastic runner calls this after attributing repeated failures
        to a host (or, without host attribution, a rank): surviving spec
        ranks are renumbered densely to ``0..m'-1`` in their original
        order, empty nodes are dropped, and node names are kept so failure
        accounting stays keyed by the same host names across restarts.
        Raises ``ValueError`` when nothing would survive.
        """
        bad_hosts = {str(h) for h in hosts}
        bad_ranks = {int(r) % self.size for r in ranks}
        survivors = [
            r
            for r in range(self.size)
            if self.host_of(r) not in bad_hosts and r not in bad_ranks
        ]
        if not survivors:
            raise ValueError(
                f"excluding hosts={sorted(bad_hosts)} ranks={sorted(bad_ranks)} "
                f"leaves no ranks in host map {self.describe()!r}"
            )
        renumber = {old: new for new, old in enumerate(survivors)}
        groups: list[list[int]] = []
        names: list[str] = []
        for group, name in zip(self._nodes, self._names):
            kept = [renumber[r] for r in group if r in renumber]
            if kept:
                groups.append(kept)
                names.append(name)
        return HostMap(groups, names=names)

    def describe(self) -> str:
        """Round-trippable spec string (``HostMap.parse(m.describe()) == m``)."""
        return " ".join(
            ",".join(str(r) for r in group) + f":{name}"
            for group, name in zip(self._nodes, self._names)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HostMap):
            return NotImplemented
        return self._nodes == other._nodes and self._names == other._names

    def __hash__(self) -> int:
        return hash((self._nodes, self._names))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HostMap({self.describe()!r})"


def resolve_hostmap(hostmap: "HostMap | str | None", env: str | None) -> "HostMap | None":
    """Normalize a ``hostmap=`` knob: explicit map, spec string, or env."""
    if isinstance(hostmap, HostMap):
        return hostmap
    if isinstance(hostmap, str):
        return HostMap.parse(hostmap)
    if env:
        return HostMap.parse(env)
    return None
