"""Synthetic mesh-tangling dataset.

The paper's dataset: "images representing a hydrodynamics simulation state
at a timestep, and the problem is to predict, for each pixel, whether the
mesh cell at that location needs to be relaxed to prevent tangling.  Mesh
tangling occurs when cells overlap. ... The input data is either 1024x1024
or 2048x2048 pixel images, with 18 channels consisting of various state
variables and mesh quality metrics from a hydrodynamics simulation."

This generator mimics an ALE (arbitrary Lagrangian-Eulerian) setting:

1. draw a smooth random displacement field (sum of random Fourier modes) —
   the "mesh motion" of a timestep;
2. derive *state variables* (density/pressure/velocity-like smooth fields
   advected by the displacement) and *mesh quality metrics* (Jacobian
   determinant, aspect ratio, skewness proxies of the displaced mesh);
3. label a pixel as "needs relaxation" where the displacement Jacobian
   determinant falls below a threshold — exactly the incipient-tangling
   condition (cells inverting / overlapping).

Labels are therefore a deterministic, learnable function of the input
channels (the Jacobian channels), so small models can overfit a batch —
which the integration tests exploit.
"""

from __future__ import annotations

import numpy as np

#: Channel layout: 8 state-variable channels + 10 mesh-quality channels.
N_STATE_CHANNELS = 8
N_MESH_CHANNELS = 10
N_CHANNELS = N_STATE_CHANNELS + N_MESH_CHANNELS


class MeshTanglingDataset:
    """Generates (state, label) samples of a given resolution."""

    def __init__(
        self,
        resolution: int = 1024,
        n_modes: int = 6,
        tangle_threshold: float = 0.55,
        label_stride: int = 1,
        seed: int = 0,
    ) -> None:
        if resolution < 8:
            raise ValueError("resolution must be >= 8")
        self.resolution = resolution
        self.n_modes = n_modes
        self.tangle_threshold = tangle_threshold
        self.label_stride = label_stride
        self.seed = seed

    # -- field synthesis --------------------------------------------------------
    def _displacement(self, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Smooth random displacement field (dx, dy), O(cell size) amplitude."""
        r = self.resolution
        yy, xx = np.meshgrid(
            np.linspace(0, 2 * np.pi, r), np.linspace(0, 2 * np.pi, r), indexing="ij"
        )
        dx = np.zeros((r, r))
        dy = np.zeros((r, r))
        for _ in range(self.n_modes):
            kx, ky = rng.integers(1, 5, size=2)
            phase = rng.uniform(0, 2 * np.pi, size=2)
            amp = rng.uniform(0.2, 1.0) / (kx + ky)
            dx += amp * np.sin(kx * xx + phase[0]) * np.cos(ky * yy + phase[1])
            dy += amp * np.cos(kx * xx + phase[1]) * np.sin(ky * yy + phase[0])
        return dx, dy

    @staticmethod
    def _jacobian(dx: np.ndarray, dy: np.ndarray) -> dict[str, np.ndarray]:
        """Metrics of the displaced mesh x' = x + d(x)."""
        dxx = np.gradient(dx, axis=1)
        dxy = np.gradient(dx, axis=0)
        dyx = np.gradient(dy, axis=1)
        dyy = np.gradient(dy, axis=0)
        scale = dx.shape[0] / (2 * np.pi) * 0.8
        j11 = 1.0 + dxx * scale
        j12 = dxy * scale
        j21 = dyx * scale
        j22 = 1.0 + dyy * scale
        det = j11 * j22 - j12 * j21
        frob = np.sqrt(j11**2 + j12**2 + j21**2 + j22**2)
        aspect = np.sqrt((j11**2 + j21**2) / np.maximum(j12**2 + j22**2, 1e-6))
        skew = np.abs(j11 * j12 + j21 * j22) / np.maximum(frob, 1e-6)
        return {
            "j11": j11, "j12": j12, "j21": j21, "j22": j22,
            "det": det, "frob": frob, "aspect": aspect, "skew": skew,
        }

    def sample(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(x, y)``: x is (18, R, R); y is (1, R/s, R/s) in {0,1}."""
        rng = np.random.default_rng((self.seed, index))
        r = self.resolution
        dx, dy = self._displacement(rng)
        jac = self._jacobian(dx, dy)

        channels = []
        # State variables: smooth fields + their advected versions.
        base = [dx, dy]
        for k in range(N_STATE_CHANNELS - 2):
            kx, ky = rng.integers(1, 6, size=2)
            yy, xx = np.meshgrid(
                np.linspace(0, 2 * np.pi, r), np.linspace(0, 2 * np.pi, r),
                indexing="ij",
            )
            base.append(np.sin(kx * xx + k) * np.cos(ky * yy - k) + 0.1 * dx)
        channels.extend(base)
        # Mesh-quality metrics.
        channels.extend(
            [jac["j11"], jac["j12"], jac["j21"], jac["j22"], jac["det"],
             jac["frob"], jac["aspect"], jac["skew"]]
        )
        # Two derived damage/quality proxies.
        channels.append(np.minimum(jac["det"], 1.0))
        channels.append((jac["det"] < self.tangle_threshold * 1.2).astype(float))
        x = np.stack(channels).astype(np.float64)
        assert x.shape[0] == N_CHANNELS

        label_full = (jac["det"] < self.tangle_threshold).astype(np.float64)
        s = self.label_stride
        if s > 1:
            label = label_full[: (r // s) * s, : (r // s) * s]
            label = label.reshape(r // s, s, r // s, s).max(axis=(1, 3))
        else:
            label = label_full
        return x, label[None, :, :]

    def batch(
        self, n: int, start: int = 0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stack ``n`` samples into ``(x, y)`` arrays (NCHW / N1HW)."""
        xs, ys = zip(*(self.sample(start + i) for i in range(n)))
        return np.stack(xs), np.stack(ys)

    def positive_fraction(self, n: int = 4) -> float:
        """Fraction of tangling pixels (sanity: labels are non-degenerate)."""
        _, y = self.batch(n)
        return float(y.mean())
