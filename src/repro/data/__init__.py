"""Synthetic datasets (S13 in DESIGN.md).

The paper's performance evaluation itself uses synthetic data ("we use
synthetic data, as our goal is to focus on the performance of our
algorithms"); the real mesh-tangling fields are not public.  These
generators produce data with the published shapes and plausible structure:

* :mod:`repro.data.mesh_tangling` — 18-channel hydrodynamics-like state
  fields (smooth advected quantities + mesh-quality metrics) with
  per-pixel tangling labels derived from the synthetic mesh deformation;
* :mod:`repro.data.imagenet_synth` — ImageNet-shaped classification
  batches (3 x 224 x 224, 1000 classes).
"""

from repro.data.mesh_tangling import MeshTanglingDataset
from repro.data.imagenet_synth import SyntheticImageNet

__all__ = ["MeshTanglingDataset", "SyntheticImageNet"]
