"""Synthetic ImageNet-shaped classification data.

Only shape and throughput matter for the scaling experiments reproduced
from the paper; the images are class-conditioned Gaussian blobs so that a
classifier can actually reduce the loss (used by integration tests and the
quickstart example).
"""

from __future__ import annotations

import numpy as np


class SyntheticImageNet:
    """Class-conditioned synthetic images: (3, S, S), labels in [0, classes)."""

    def __init__(
        self,
        image_size: int = 224,
        num_classes: int = 1000,
        seed: int = 0,
    ) -> None:
        self.image_size = image_size
        self.num_classes = num_classes
        self.seed = seed
        rng = np.random.default_rng(seed)
        # A fixed random template per class gives the data learnable signal.
        self._templates = rng.standard_normal((min(num_classes, 64), 3, 8, 8))

    def sample(self, index: int) -> tuple[np.ndarray, int]:
        rng = np.random.default_rng((self.seed, index))
        label = int(rng.integers(0, self.num_classes))
        t = self._templates[label % len(self._templates)]
        s = self.image_size
        reps = (s + 7) // 8
        img = np.tile(t, (1, reps, reps))[:, :s, :s].copy()
        img += 0.5 * rng.standard_normal((3, s, s))
        return img, label

    def batch(self, n: int, start: int = 0) -> tuple[np.ndarray, np.ndarray]:
        xs, ys = zip(*(self.sample(start + i) for i in range(n)))
        return np.stack(xs), np.asarray(ys)
