"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works on hosts without the ``wheel``
package (e.g. air-gapped machines, like the one the test suite targets).
"""

from setuptools import setup

setup()
