"""End-to-end exactness: distributed network == single-device network.

Covers the full §III pipeline: conv + pool + BN + ReLU + residual adds +
GAP + losses, under sample / spatial / hybrid strategies, including
per-layer strategies that force data redistributions (§III-C).
"""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.core import DistNetwork, DistTrainer, LayerParallelism, ParallelStrategy
from repro.nn import LocalNetwork, NetworkSpec, SGD
from repro.nn.meshnet import mesh_model_tiny
from repro.nn.resnet import build_resnet_tiny

RTOL = 1e-9
ATOL = 1e-11


def small_conv_net():
    """conv-bn-relu x2 with a maxpool and BCE segmentation loss."""
    net = NetworkSpec("small")
    net.add("input", "input", channels=3, height=16, width=16)
    net.add("c1", "conv", ["input"], filters=4, kernel=3, stride=1, pad=1)
    net.add("b1", "bn", ["c1"])
    net.add("r1", "relu", ["b1"])
    net.add("p1", "pool", ["r1"], mode="max", kernel=3, stride=2, pad=1)
    net.add("c2", "conv", ["p1"], filters=4, kernel=3, stride=1, pad=1)
    net.add("b2", "bn", ["c2"])
    net.add("r2", "relu", ["b2"])
    net.add("predict", "conv", ["r2"], filters=1, kernel=1, bias=True)
    net.add("loss", "bce", ["predict"])
    return net


def make_batch(spec, n, seed=0):
    rng = np.random.default_rng(seed)
    shapes = spec.infer_shapes()
    cin, h, w = shapes["input"]
    x = rng.standard_normal((n, cin, h, w))
    out = spec.outputs()[0]
    if out.kind == "bce":
        _, th, tw = shapes[out.parents[0]]
        t = (rng.random((n, 1, th, tw)) > 0.5).astype(float)
    else:
        classes = shapes[out.parents[0]][0]
        t = rng.integers(0, classes, size=n)
    return x, t


def run_dist(spec, nranks, strategy, x, t, steps=1, lr=0.1, seed=0):
    """Distributed training for `steps`; returns (losses, params) per rank."""

    def prog(comm):
        net = DistNetwork(spec, comm, strategy, seed=seed)
        trainer = DistTrainer(net, SGD(lr=lr))
        losses = [trainer.step(x, t) for _ in range(steps)]
        return losses, {k: {p: a.copy() for p, a in v.items()} for k, v in net.params.items()}

    return run_spmd(nranks, prog)


def run_local(spec, x, t, steps=1, lr=0.1, seed=0):
    net = LocalNetwork(spec, seed=seed)
    opt = SGD(lr=lr)
    losses = []
    for _ in range(steps):
        loss, grads = net.loss_and_grad(x, t)
        opt.step(net.params, grads)
        losses.append(loss)
    return losses, net.params


STRATEGIES = [
    ("sample4", 4, LayerParallelism(sample=4)),
    ("spatial2x2", 4, LayerParallelism(height=2, width=2)),
    ("spatial4x1", 4, LayerParallelism(height=4, width=1)),
    ("hybrid2x2x1", 4, LayerParallelism(sample=2, height=2, width=1)),
    ("hybrid2x2x2", 8, LayerParallelism(sample=2, height=2, width=2)),
]


class TestSmallNetExactness:
    @pytest.mark.parametrize("label,nranks,par", STRATEGIES)
    def test_three_steps_match_local(self, label, nranks, par):
        spec = small_conv_net()
        x, t = make_batch(spec, n=4, seed=3)
        ref_losses, ref_params = run_local(spec, x, t, steps=3)
        for losses, params in run_dist(spec, nranks, par, x, t, steps=3):
            np.testing.assert_allclose(losses, ref_losses, rtol=RTOL)
            for lname, lp in ref_params.items():
                for pname, arr in lp.items():
                    np.testing.assert_allclose(
                        params[lname][pname], arr, rtol=RTOL, atol=ATOL,
                        err_msg=f"{label}: {lname}.{pname}",
                    )

    def test_mixed_per_layer_strategy_with_shuffles(self):
        """First block spatial, second block sample-parallel: forces an
        activation shuffle between p1 and c2 and the reverse shuffle in
        backprop (§III-C)."""
        spec = small_conv_net()
        x, t = make_batch(spec, n=4, seed=4)
        spatial = LayerParallelism(height=2, width=2)
        sample = LayerParallelism(sample=4)
        strategy = ParallelStrategy(
            {
                "input": spatial, "c1": spatial, "b1": spatial, "r1": spatial,
                "p1": spatial,
                "c2": sample, "b2": sample, "r2": sample,
                "predict": sample, "loss": sample,
            }
        )
        ref_losses, ref_params = run_local(spec, x, t, steps=2)

        def prog(comm):
            net = DistNetwork(spec, comm, strategy)
            trainer = DistTrainer(net, SGD(lr=0.1))
            losses = [trainer.step(x, t) for _ in range(2)]
            return losses, net.shuffle_count, net.params["c2"]["w"].copy()

        results = run_spmd(4, prog)
        for losses, shuffles, c2w in results:
            np.testing.assert_allclose(losses, ref_losses, rtol=RTOL)
            assert shuffles > 0  # the redistribution actually happened
            np.testing.assert_allclose(c2w, ref_params["c2"]["w"], rtol=RTOL)

    def test_gradients_identical_across_ranks(self):
        """After the allreduce, every rank must hold identical gradients —
        the precondition for replicated SGD."""
        spec = small_conv_net()
        x, t = make_batch(spec, n=2, seed=5)

        def prog(comm):
            net = DistNetwork(spec, comm, LayerParallelism(height=2, width=2))
            _, grads = net.loss_and_grad(x, t)
            return {k: {p: a.copy() for p, a in v.items()} for k, v in grads.items()}

        results = run_spmd(4, prog)
        for other in results[1:]:
            for lname, lg in results[0].items():
                for pname, arr in lg.items():
                    np.testing.assert_array_equal(other[lname][pname], arr)


class TestResNetTinyExactness:
    @pytest.mark.parametrize(
        "nranks,par",
        [
            (4, LayerParallelism(sample=4)),
            (4, LayerParallelism(height=2, width=2)),
            (4, LayerParallelism(sample=2, height=2, width=1)),
        ],
    )
    def test_residual_network_matches_local(self, nranks, par):
        """Bottleneck blocks with projection shortcuts, GAP head, softmax:
        the full ResNet structure class of the paper's evaluation."""
        spec = build_resnet_tiny(image_size=16)
        x, t = make_batch(spec, n=4, seed=6)
        ref_losses, ref_params = run_local(spec, x, t, steps=2)
        for losses, params in run_dist(spec, nranks, par, x, t, steps=2):
            np.testing.assert_allclose(losses, ref_losses, rtol=RTOL)
            np.testing.assert_allclose(
                params["conv1"]["w"], ref_params["conv1"]["w"], rtol=RTOL, atol=ATOL
            )
            np.testing.assert_allclose(
                params["res3a_branch1"]["w"],
                ref_params["res3a_branch1"]["w"],
                rtol=RTOL,
                atol=ATOL,
            )


class TestMeshTinyExactness:
    @pytest.mark.parametrize(
        "nranks,par",
        [
            (2, LayerParallelism(sample=2)),
            (4, LayerParallelism(height=2, width=2)),
            (4, LayerParallelism(sample=2, height=1, width=2)),
        ],
    )
    def test_mesh_model_matches_local(self, nranks, par):
        spec = mesh_model_tiny(resolution=32)
        x, t = make_batch(spec, n=2, seed=7)
        ref_losses, _ = run_local(spec, x, t, steps=2)
        for losses, _ in run_dist(spec, nranks, par, x, t, steps=2):
            np.testing.assert_allclose(losses, ref_losses, rtol=RTOL)


class TestValidation:
    def test_strategy_rank_mismatch(self):
        spec = small_conv_net()

        def prog(comm):
            DistNetwork(spec, comm, LayerParallelism(sample=4))

        with pytest.raises(ValueError, match="strategy uses 4 ranks"):
            run_spmd(2, prog, timeout=10)

    def test_eval_mode_runs(self):
        spec = small_conv_net()
        x, t = make_batch(spec, n=2, seed=8)

        def prog(comm):
            net = DistNetwork(spec, comm, LayerParallelism(sample=2))
            trainer = DistTrainer(net)
            trainer.step(x, t)
            return trainer.evaluate(x, t)

        losses = run_spmd(2, prog)
        assert np.isfinite(losses).all()
        assert losses[0] == pytest.approx(losses[1])

    def test_trainer_fit(self):
        spec = small_conv_net()

        def prog(comm):
            net = DistNetwork(spec, comm, LayerParallelism(sample=2))
            trainer = DistTrainer(net, SGD(lr=0.5))
            batches = [make_batch(spec, n=2, seed=s) for s in range(3)]
            stats = trainer.fit(batches, epochs=2)
            return stats.steps, stats.losses

        for steps, losses in run_spmd(2, prog):
            assert steps == 6
            assert losses[-1] < losses[0]
