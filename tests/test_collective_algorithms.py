"""Algorithmic collectives: schedule correctness, parity, wire accounting.

Covers the chunked point-to-point schedules of :mod:`repro.comm.algorithms`
(ring / Rabenseifner / recursive doubling allreduce, ring reduce-scatter,
binomial-tree bcast/reduce/gather/scatter) and their integration into the
communicator:

* **parity** — every algorithm x op x backend x p (uneven shapes, non-
  power-of-two groups falling back) is allclose to the bitwise-reference
  ``"direct"`` fold, exactly deterministic across repeated runs, and
  bitwise identical across ranks;
* **wire accounting** — the logical-vs-wire split in ``CommStats``: a ring
  allreduce records ``2n(p-1)/p`` bytes per rank where ``"direct"``
  records ``n(p-1)``, matching :func:`allreduce_wire_bytes`;
* **transport counters** — on the process backend the shared-memory
  transport moves no more than the ring bound plus slack (the O(p*n) ->
  2n(p-1)/p reduction, measured, not modeled);
* **engine** — gradient-reducer training runs are deterministic and
  allclose across ``"direct"`` vs ``"auto"`` on both backends.
"""

import numpy as np
import pytest

from conftest import reduce_for_process
from repro.comm import run_spmd
from repro.comm.algorithms import (
    REDUCTION_ALGORITHMS,
    chunk_offsets,
    compile_allreduce,
    compile_reduce_scatter,
    compile_tree,
)
from repro.comm.collective_models import (
    AllreduceAlgorithm,
    allreduce_wire_bytes,
    resolve_allreduce_algorithm,
)
from repro.core import DistNetwork, DistTrainer, LayerParallelism, ParallelStrategy
from repro.nn import NetworkSpec, SGD

OPS = ("sum", "prod", "max", "min")
SHAPES = ((17,), (3, 5), (2, 3, 4), (1,), (5, 1, 2))  # uneven, incl. n < p


def _payload(rank: int, shape, op: str) -> np.ndarray:
    rng = np.random.default_rng(1000 * rank + hash(shape) % 97)
    x = rng.standard_normal(shape)
    if op == "prod":
        # Keep products well-conditioned so allclose is meaningful.
        x = 1.0 + 0.01 * x
    return x


# ---------------------------------------------------------------------------
# Schedule compilation
# ---------------------------------------------------------------------------


class TestCompilation:
    def test_chunk_offsets_cover_everything(self):
        for n in (0, 1, 3, 7, 64):
            for p in (1, 2, 3, 5, 8):
                offs = chunk_offsets(n, p)
                assert len(offs) == p + 1
                assert offs[0] == 0 and offs[-1] == n
                sizes = [offs[i + 1] - offs[i] for i in range(p)]
                assert max(sizes) - min(sizes) <= 1

    @pytest.mark.parametrize("p", [2, 3, 4, 5, 8])
    @pytest.mark.parametrize("alg", REDUCTION_ALGORITHMS)
    def test_schedules_are_pairwise_matched(self, p, alg):
        """Every send has exactly one matching receive (same pair, same
        element count, same relative order) — the property that makes the
        FIFO (source, tag) matching sufficient."""
        scheds = compile_allreduce(p, alg)
        n = 64
        offs = chunk_offsets(n, p)
        sends: dict[tuple[int, int], list[int]] = {}
        recvs: dict[tuple[int, int], list[int]] = {}
        for r, steps in enumerate(scheds):
            for s in steps:
                nbytes = offs[s.hi] - offs[s.lo]
                if s.kind == "send":
                    sends.setdefault((r, s.peer), []).append(nbytes)
                else:
                    recvs.setdefault((s.peer, r), []).append(nbytes)
        assert sends == recvs

    def test_ring_moves_bandwidth_optimal_volume(self):
        p, n = 4, 64
        offs = chunk_offsets(n, p)
        for r, steps in enumerate(compile_allreduce(p, "ring")):
            sent = sum(
                offs[s.hi] - offs[s.lo] for s in steps if s.kind == "send"
            )
            assert sent == 2 * n * (p - 1) // p

    def test_rabenseifner_non_power_of_two_falls_back_to_ring(self):
        for p in (3, 5, 6, 7):
            assert compile_allreduce(p, "rabenseifner") == compile_allreduce(
                p, "ring"
            )
        assert compile_allreduce(4, "rabenseifner") != compile_allreduce(4, "ring")

    def test_reduce_scatter_destinations(self):
        """After the ring reduce-scatter schedule, the last recv_reduce of
        rank r lands on chunk r (its destination)."""
        for p in (2, 3, 4, 8):
            for r, steps in enumerate(compile_reduce_scatter(p)):
                last = [s for s in steps if s.kind == "recv_reduce"][-1]
                assert (last.lo, last.hi) == (r, r + 1)

    def test_tree_shape(self):
        for p in (2, 3, 4, 5, 8):
            for root in (0, p - 1):
                nodes = compile_tree(p, root)
                assert nodes[root].parent is None
                covered = {root}
                for node in nodes:
                    for child, subtree in node.children:
                        assert nodes[child].parent == node.rank
                        assert subtree[0] == child
                        covered.update(subtree)
                assert covered == set(range(p))

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule algorithm"):
            compile_allreduce(4, "nope")

    def test_resolver(self):
        assert resolve_allreduce_algorithm(None, 4, 10) == "recursive_doubling"
        assert resolve_allreduce_algorithm("auto", 4, 1 << 20) == "rabenseifner"
        assert resolve_allreduce_algorithm("auto", 6, 1 << 20) == "ring"
        assert resolve_allreduce_algorithm("direct", 4, 10) == "direct"
        assert (
            resolve_allreduce_algorithm(AllreduceAlgorithm.RING, 4, 10) == "ring"
        )
        with pytest.raises(ValueError):
            resolve_allreduce_algorithm("nope", 4, 10)


# ---------------------------------------------------------------------------
# Algorithm parity (allclose vs "direct", exact determinism, cross-rank)
# ---------------------------------------------------------------------------


def _parity_prog(comm):
    out = {}
    for alg in REDUCTION_ALGORITHMS:
        for op in OPS:
            for shape in SHAPES:
                x = _payload(comm.rank, shape, op)
                ref = comm.allreduce(x, op=op, algorithm="direct")
                got = comm.allreduce(x, op=op, algorithm=alg)
                rerun = comm.allreduce(x, op=op, algorithm=alg)
                out[(alg, op, shape)] = (ref, got, rerun)
    return out


class TestAllreduceParity:
    @pytest.mark.parametrize("nranks", [2, 3, 4, 8])
    def test_all_algorithms_match_direct(self, backend, nranks):
        reduce_for_process(
            backend, nranks not in (2, 4), "p in {2, 4} covers the fork cost"
        )
        results = run_spmd(nranks, _parity_prog, backend=backend)
        for key, (ref, got, rerun) in results[0].items():
            np.testing.assert_allclose(
                got, ref, rtol=1e-10, atol=1e-12, err_msg=str(key)
            )
            # Exact determinism: repeating the collective reproduces the
            # bits, and every rank holds the identical result.
            np.testing.assert_array_equal(got, rerun, err_msg=str(key))
            for other in results[1:]:
                np.testing.assert_array_equal(
                    got, other[key][1], err_msg=str(key)
                )

    def test_single_rank_passthrough(self):
        def prog(comm):
            return comm.allreduce(np.arange(5.0), algorithm="ring")

        np.testing.assert_array_equal(run_spmd(1, prog)[0], np.arange(5.0))

    def test_non_array_payloads_fall_back(self, backend):
        """Scalars and containers take the direct path (scheduled modes
        need a flat numeric buffer): identical results either way."""

        def prog(comm):
            scalar = comm.allreduce(comm.rank + 1, algorithm="ring")
            tup = comm.allreduce((comm.rank, np.ones(2)), algorithm="ring")
            tup_direct = comm.allreduce(
                (comm.rank, np.ones(2)), algorithm="direct"
            )
            return scalar, len(tup), len(tup_direct)

        for scalar, n_ring, n_direct in run_spmd(3, prog, backend=backend):
            assert scalar == 6
            assert n_ring == n_direct  # same (historical) fold semantics

    def test_integer_payloads_exact(self):
        def prog(comm):
            x = np.arange(11, dtype=np.int64) * (comm.rank + 1)
            return [
                comm.allreduce(x, algorithm=alg)
                for alg in ("direct",) + REDUCTION_ALGORITHMS
            ]

        for res in run_spmd(4, prog):
            for got in res[1:]:
                np.testing.assert_array_equal(got, res[0])


class TestReduceScatter:
    @pytest.mark.parametrize("nranks", [2, 3, 4, 8])
    def test_ring_matches_direct(self, backend, nranks):
        reduce_for_process(backend, nranks not in (4,), "p=4 covers the fork cost")

        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            # Uneven per-destination shapes (identical across ranks).
            parts = [
                rng.standard_normal((j + 1, 3)) for j in range(comm.size)
            ]
            ref = comm.reduce_scatter(parts, algorithm="direct")
            got = comm.reduce_scatter(parts, algorithm="ring")
            rerun = comm.reduce_scatter(parts, algorithm="ring")
            return ref, got, rerun

        for ref, got, rerun in run_spmd(nranks, prog, backend=backend):
            np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)
            np.testing.assert_array_equal(got, rerun)

    def test_mixed_payloads_fall_back(self):
        def prog(comm):
            parts = [np.array([(comm.rank + 1) * 10 + j]) for j in range(comm.size)]
            parts[0] = float(parts[0][0])  # non-array piece: direct fallback
            got = comm.reduce_scatter(parts)
            return float(np.asarray(got).ravel()[0])

        got = run_spmd(3, prog)
        assert got == [60.0 + 3 * j for j in range(3)]


class TestRootedCollectives:
    @pytest.mark.parametrize("nranks", [2, 3, 4, 8])
    def test_tree_reduce_matches_direct(self, backend, nranks):
        reduce_for_process(backend, nranks not in (4,), "p=4 covers the fork cost")

        def prog(comm):
            root = comm.size - 1
            x = _payload(comm.rank, (4, 7), "sum")
            ref = comm.reduce(x, root=root, algorithm="direct")
            got = comm.reduce(x, root=root, algorithm="binomial")
            rerun = comm.reduce(x, root=root, algorithm="binomial")
            stats_ops = set(comm.stats.collectives)
            return ref, got, rerun, stats_ops

        results = run_spmd(nranks, prog, backend=backend)
        root = nranks - 1
        for rank, (ref, got, rerun, stats_ops) in enumerate(results):
            assert "reduce" in stats_ops  # recorded under its own op name
            if rank == root:
                np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-12)
                np.testing.assert_array_equal(got, rerun)
            else:
                assert ref is None and got is None and rerun is None

    def test_reduce_no_longer_runs_allreduce_volume(self):
        """Non-roots send only their own payload (direct) or O(n log p)
        (tree) — never the allreduce's n(p-1)."""

        def prog(comm):
            n = 1000 * 8
            x = np.ones(1000)
            comm.stats.reset()
            comm.reduce(x, root=0, algorithm="direct")
            direct_sent = comm.stats.total_wire_sent("reduce")
            comm.stats.reset()
            comm.reduce(x, root=0, algorithm="binomial")
            tree_sent = comm.stats.total_wire_sent("reduce")
            allreduce_volume = n * (comm.size - 1)
            if comm.rank != 0:
                assert direct_sent == n
                assert 0 < tree_sent < allreduce_volume
            return True

        assert all(run_spmd(8, prog))

    def test_tree_bcast_gather_scatter_bitwise(self, backend):
        """Tree routing is pure forwarding: bitwise identical to direct,
        including non-array payloads."""

        def prog(comm):
            arr = np.arange(100.0) * 3 if comm.rank == 1 else None
            b_tree = comm.bcast(arr, root=1, algorithm="binomial")
            b_direct = comm.bcast(arr, root=1, algorithm="direct")
            obj = {"rank": comm.rank, "arr": np.full(3, comm.rank)}
            g_tree = comm.gather(obj, root=0, algorithm="binomial")
            g_direct = comm.gather(obj, root=0, algorithm="direct")
            pieces = (
                [("piece", i, np.full(2, i)) for i in range(comm.size)]
                if comm.rank == 0
                else None
            )
            s_tree = comm.scatter(pieces, root=0, algorithm="binomial")
            s_direct = comm.scatter(pieces, root=0, algorithm="direct")
            return b_tree, b_direct, g_tree, g_direct, s_tree, s_direct

        for rank, (bt, bd, gt, gd, st, sd) in enumerate(
            run_spmd(5, prog, backend=backend)
        ):
            np.testing.assert_array_equal(bt, bd)
            if rank == 0:
                assert len(gt) == len(gd) == 5
                for a, b in zip(gt, gd):
                    assert a["rank"] == b["rank"]
                    np.testing.assert_array_equal(a["arr"], b["arr"])
            else:
                assert gt is None and gd is None
            assert st[:2] == sd[:2] == ("piece", rank)
            np.testing.assert_array_equal(st[2], sd[2])

    def test_scatter_result_stays_private(self):
        def prog(comm):
            got = comm.scatter(
                [np.zeros(4) for _ in range(comm.size)] if comm.rank == 0 else None,
                root=0,
            )
            got += comm.rank  # must not leak to other ranks
            comm.barrier()
            return float(got[0])

        assert run_spmd(3, prog) == [0.0, 1.0, 2.0]


# ---------------------------------------------------------------------------
# Nonblocking schedules
# ---------------------------------------------------------------------------


class TestScheduledNonblocking:
    def test_out_of_order_wait(self, backend):
        def prog(comm):
            a = comm.iallreduce(np.full(5000, 1.0 + comm.rank), algorithm="ring")
            b = comm.iallreduce(
                np.arange(100.0) * comm.rank, algorithm="recursive_doubling"
            )
            c = comm.iallreduce(np.ones(10), algorithm="direct")
            vc = c.wait()
            vb = b.wait()  # waited before a: predecessors force-complete
            assert a.complete  # completed as b's predecessor
            va = a.wait()
            return float(va[0]), float(vb[1]), float(vc[0])

        p = 4
        for va, vb, vc in run_spmd(p, prog, backend=backend):
            assert va == sum(1.0 + r for r in range(p))
            assert vb == sum(float(r) for r in range(p))
            assert vc == p

    def test_test_completes_without_wait(self):
        from time import monotonic

        def prog(comm):
            req = comm.iallreduce(np.ones(100), algorithm="ring")
            comm.barrier()  # every rank has issued (and eagerly sent)
            deadline = monotonic() + 60.0
            while not req.test():  # progress purely via nonblocking probes
                assert monotonic() < deadline, "test() never completed"
            return float(req.wait()[0])

        assert run_spmd(4, prog) == [4.0] * 4

    def test_mixed_with_blocking_collectives(self, backend):
        def prog(comm):
            req = comm.iallreduce(np.full(3000, float(comm.rank)), algorithm="ring")
            total = comm.allreduce(comm.rank)  # deposit path, interleaved
            blocked = comm.allreduce(np.ones(2000), algorithm="rabenseifner")
            return float(req.wait()[0]), total, float(blocked[0])

        p = 4
        for v, total, b in run_spmd(p, prog, backend=backend):
            assert v == sum(range(p))
            assert total == sum(range(p))
            assert b == p


# ---------------------------------------------------------------------------
# Wire accounting and transport counters
# ---------------------------------------------------------------------------


class TestWireAccounting:
    @pytest.mark.parametrize(
        "alg", ["direct", "ring", "rabenseifner", "recursive_doubling"]
    )
    @pytest.mark.parametrize("nranks", [2, 4, 8])
    def test_allreduce_wire_matches_model(self, alg, nranks):
        n_elems = 1024 * nranks  # divisible: chunk arithmetic is exact
        nbytes = n_elems * 8

        def prog(comm):
            comm.stats.reset()
            comm.allreduce(np.ones(n_elems), algorithm=alg)
            return (
                comm.stats.total_wire_sent("allreduce"),
                comm.stats.total_wire_recv("allreduce"),
                comm.stats.collective_bytes["allreduce"],
            )

        for sent, recv, logical in run_spmd(nranks, prog):
            assert sent == allreduce_wire_bytes(nranks, nbytes, alg)
            assert recv == sent  # all three schedules are symmetric
            assert logical == nbytes  # logical volume is algorithm-independent

    def test_ring_beats_direct_on_the_wire(self):
        p, nbytes = 8, 4096 * 8
        ring = allreduce_wire_bytes(p, nbytes, "ring")
        direct = allreduce_wire_bytes(p, nbytes, "direct")
        assert ring == 2 * nbytes * (p - 1) / p
        assert direct == nbytes * (p - 1)
        assert ring < direct / 3  # 2/p vs 1: a 4x gap at p=8

    def test_gather_scatter_stats_account_true_volume(self, backend):
        """The satellite fix: the root's rows carry all pieces, and summed
        wire-out equals summed wire-in across ranks."""

        def prog(comm):
            comm.stats.reset()
            comm.gather(np.ones(100), root=0, algorithm="direct")
            comm.scatter(
                [np.ones(50) * j for j in range(comm.size)]
                if comm.rank == 0
                else None,
                root=0,
                algorithm="direct",
            )
            s = comm.stats
            return (
                s.collective_bytes["gather"],
                s.collective_bytes["scatter"],
                s.total_wire_sent(),
                s.total_wire_recv(),
            )

        p = 4
        results = run_spmd(p, prog, backend=backend)
        gather_logical = [r[0] for r in results]
        scatter_logical = [r[1] for r in results]
        assert gather_logical[0] == p * 100 * 8  # root counts all pieces
        assert all(g == 100 * 8 for g in gather_logical[1:])
        assert scatter_logical[0] == p * 50 * 8
        assert all(s == 50 * 8 for s in scatter_logical[1:])
        assert sum(r[2] for r in results) == sum(r[3] for r in results)

    def test_reduce_scatter_wire(self):
        def prog(comm):
            comm.stats.reset()
            parts = [np.ones(256) for _ in range(comm.size)]
            comm.reduce_scatter(parts, algorithm="ring")
            return comm.stats.total_wire_sent("reduce_scatter")

        p = 4
        for sent in run_spmd(p, prog):
            assert sent == (p - 1) * 256 * 8  # (p-1)/p of the total payload

    def test_shuffle_wire_recorded_under_shuffle(self):
        from repro.tensor.dist_tensor import DistTensor
        from repro.tensor.distribution import Distribution
        from repro.tensor.grid import ProcessGrid
        from repro.tensor.shuffle import shuffle

        def prog(comm):
            comm.stats.reset()
            src_grid = ProcessGrid(comm, (comm.size, 1))
            dst_grid = ProcessGrid(comm, (1, comm.size))
            dt = DistTensor.from_global(
                src_grid,
                Distribution.make((comm.size, 1)),
                np.arange(64.0).reshape(8, 8),
            )
            shuffle(dt, dst_grid, Distribution.make((1, comm.size)))
            return set(comm.stats.collective_wire_sent)

        for ops in run_spmd(4, prog):
            assert ops <= {"shuffle"}  # never under the generic "alltoall"


class TestTransportCounters:
    """The acceptance criterion: measured wire bytes on the process
    backend's shared-memory transport."""

    def test_ring_allreduce_meets_bandwidth_bound(self):
        n_elems = 262_144  # 2 MiB; chunks of 512 KiB >> the shm floor
        nbytes = n_elems * 8
        p = 4

        def prog(comm):
            x = np.full(n_elems, float(comm.rank + 1))
            comm.allreduce(x, algorithm="ring")  # warm the pools
            before = dict(comm._world.transport)
            comm.allreduce(x, algorithm="ring")
            after = comm._world.transport
            return (
                after["shm_bytes"] - before["shm_bytes"],
                after["inline_messages"] - before["inline_messages"],
            )

        slack = 64 * 1024  # headers/skeletons; segments all ride the arena
        bound = 2 * nbytes * (p - 1) / p
        for shm_delta, inline_delta in run_spmd(p, prog, backend="process"):
            assert 0 < shm_delta <= bound + slack
            assert shm_delta < nbytes * (p - 1)  # strictly beats direct
            assert inline_delta == 0  # every segment went through the arena

    def test_direct_allreduce_moves_full_volume(self):
        n_elems = 65_536
        nbytes = n_elems * 8
        p = 4

        def prog(comm):
            before = dict(comm._world.transport)
            comm.allreduce(np.ones(n_elems), algorithm="direct")
            after = comm._world.transport
            return after["shm_bytes"] - before["shm_bytes"]

        for shm_delta in run_spmd(p, prog, backend="process"):
            assert shm_delta == nbytes * (p - 1)


# ---------------------------------------------------------------------------
# Selection and the environment override
# ---------------------------------------------------------------------------


class TestSelection:
    def test_auto_follows_the_cost_model(self):
        def prog(comm):
            s = comm.stats
            s.reset()
            comm.allreduce(np.ones(8))  # 64 B: small -> recursive doubling
            small = s.total_wire_sent("allreduce")
            s.reset()
            comm.allreduce(np.ones(65_536))  # 512 KiB, p=4: Rabenseifner
            large = s.total_wire_sent("allreduce")
            return small, large

        p = 4
        small, large = run_spmd(p, prog)[0]
        assert small == allreduce_wire_bytes(p, 64, "recursive_doubling")
        assert large == allreduce_wire_bytes(p, 65_536 * 8, "rabenseifner")

    def test_env_override_forces_direct(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLLECTIVE_ALG", "direct")

        def prog(comm):
            comm.stats.reset()
            comm.allreduce(np.ones(4096), algorithm="ring")  # env wins
            return comm.stats.total_wire_sent("allreduce")

        p = 4
        assert run_spmd(p, prog)[0] == 4096 * 8 * (p - 1)

    def test_env_override_forces_ring(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLLECTIVE_ALG", "ring")

        def prog(comm):
            comm.stats.reset()
            comm.allreduce(np.ones(4096), algorithm="direct")
            return comm.stats.total_wire_sent("allreduce")

        p = 4
        assert run_spmd(p, prog)[0] == 2 * 4096 * 8 * (p - 1) // p

    def test_env_typo_fails_loudly(self, monkeypatch):
        """A misspelled override must error, not silently disable itself."""
        monkeypatch.setenv("REPRO_COLLECTIVE_ALG", "Direct")

        def prog(comm):
            comm.allreduce(np.ones(4))

        with pytest.raises(ValueError, match="REPRO_COLLECTIVE_ALG"):
            run_spmd(2, prog, timeout=10)

    def test_env_tree_value_leaves_reductions_alone(self, monkeypatch):
        """'binomial' is meaningful for rooted ops only; allreduce keeps
        its own resolution."""
        monkeypatch.setenv("REPRO_COLLECTIVE_ALG", "binomial")

        def prog(comm):
            comm.stats.reset()
            comm.allreduce(np.ones(4096), algorithm="ring")
            return comm.stats.total_wire_sent("allreduce")

        p = 4
        assert run_spmd(p, prog)[0] == 2 * 4096 * 8 * (p - 1) // p

    def test_invalid_algorithm_rejected(self):
        def prog(comm):
            comm.allreduce(np.ones(4), algorithm="bogus")

        with pytest.raises(ValueError, match="unknown allreduce algorithm"):
            run_spmd(2, prog, timeout=10)


# ---------------------------------------------------------------------------
# Engine: the gradient hot path
# ---------------------------------------------------------------------------


def _tiny_net():
    net = NetworkSpec("alg-parity")
    net.add("input", "input", channels=2, height=8, width=8)
    net.add("c1", "conv", ["input"], filters=4, kernel=3, pad=1, bias=True)
    net.add("r1", "relu", ["c1"])
    net.add("c2", "conv", ["r1"], filters=4, kernel=3, pad=1)
    net.add("gap", "gap", ["c2"])
    net.add("fc", "fc", ["gap"], units=3)
    net.add("loss", "softmax_ce", ["fc"])
    return net


def _train(comm, algorithm, steps=3):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((4, 2, 8, 8))
    t = rng.integers(0, 3, size=4)
    net = DistNetwork(
        _tiny_net(),
        comm,
        ParallelStrategy.uniform(LayerParallelism(sample=comm.size)),
        seed=0,
        collective_algorithm=algorithm,
    )
    trainer = DistTrainer(net, SGD(lr=0.05, momentum=0.9))
    losses = [trainer.step(x, t) for _ in range(steps)]
    params = {
        k: {p: a.copy() for p, a in v.items()} for k, v in net.params.items()
    }
    return losses, params


def _grad_parity_prog(comm):
    return _train(comm, "direct"), _train(comm, "auto"), _train(comm, "auto")


class TestGradReducerParity:
    def test_training_direct_vs_auto(self, backend):
        """Acceptance: grad_reducer runs are deterministic and allclose
        across "direct" vs "auto" on both backends."""
        results = run_spmd(4, _grad_parity_prog, backend=backend)
        (d_losses, d_params), (a_losses, a_params), (r_losses, r_params) = results[0]
        np.testing.assert_allclose(a_losses, d_losses, rtol=1e-8)
        for layer in d_params:
            for pname in d_params[layer]:
                np.testing.assert_allclose(
                    a_params[layer][pname],
                    d_params[layer][pname],
                    rtol=1e-7,
                    atol=1e-10,
                )
                # Determinism: repeated "auto" runs are bitwise equal.
                np.testing.assert_array_equal(
                    a_params[layer][pname], r_params[layer][pname]
                )
        assert a_losses == r_losses

    def test_auto_bitwise_identical_across_backends(self):
        thread = run_spmd(4, _grad_parity_prog, backend="thread")
        process = run_spmd(4, _grad_parity_prog, backend="process")
        (_, (t_losses, t_params), _) = thread[0]
        (_, (p_losses, p_params), _) = process[0]
        assert t_losses == p_losses
        for layer in t_params:
            for pname in t_params[layer]:
                np.testing.assert_array_equal(
                    t_params[layer][pname], p_params[layer][pname]
                )
