"""Process grids, distributions, and the DistTensor region primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import run_spmd
from repro.tensor import DistTensor, Distribution, ProcessGrid
from repro.tensor.distribution import DimKind
from repro.tensor.indexing import extract_padded


def make_grid_prog(grid_shape, dist, global_array, body):
    """Helper: build grid+tensor on each rank, run `body(dt, comm)`."""

    def prog(comm):
        grid = ProcessGrid(comm, grid_shape)
        dt = DistTensor.from_global(grid, dist, global_array)
        return body(dt, comm)

    return prog


class TestProcessGrid:
    def test_coords_roundtrip(self):
        def prog(comm):
            grid = ProcessGrid(comm, (2, 1, 2, 2))
            assert grid.rank_of(grid.coords) == comm.rank
            return grid.coords

        coords = run_spmd(8, prog)
        assert len(set(coords)) == 8
        assert coords[0] == (0, 0, 0, 0)
        assert coords[7] == (1, 0, 1, 1)

    def test_spatial_axes_vary_fastest(self):
        """Spatial group of one sample occupies consecutive ranks (same node)."""

        def prog(comm):
            grid = ProcessGrid(comm, (2, 1, 2, 2))
            return grid.coords[0]

        sample_coord = run_spmd(8, prog)
        assert sample_coord == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_neighbor(self):
        def prog(comm):
            grid = ProcessGrid(comm, (1, 1, 2, 2))
            return (grid.neighbor(2, -1), grid.neighbor(2, 1), grid.neighbor(3, 1))

        results = run_spmd(4, prog)
        assert results[0] == (None, 2, 1)   # coords (0,0,0,0)
        assert results[3] == (1, None, None)  # coords (0,0,1,1)

    def test_size_mismatch(self):
        def prog(comm):
            ProcessGrid(comm, (3, 1))

        with pytest.raises(ValueError, match="requires 3 ranks"):
            run_spmd(2, prog, timeout=10)

    def test_axis_comm_groups(self):
        def prog(comm):
            grid = ProcessGrid(comm, (2, 2))
            row = grid.axis_comm(1)  # varies along axis 1
            col = grid.axis_comm(0)
            return (row.allreduce(comm.rank), col.allreduce(comm.rank))

        results = run_spmd(4, prog)
        # grid: rank = 2*a0 + a1 -> rows {0,1},{2,3}; cols {0,2},{1,3}
        assert results == [(1, 2), (1, 4), (5, 2), (5, 4)]

    def test_axes_comm_full(self):
        def prog(comm):
            grid = ProcessGrid(comm, (2, 2))
            both = grid.axes_comm((0, 1))
            return both.size

        assert run_spmd(4, prog) == [4, 4, 4, 4]


class TestDistribution:
    def test_block_bounds_per_coord(self):
        d = Distribution.make((4,))
        assert d.dim_bounds((10,), 0, 0) == (0, 3)
        assert d.dim_bounds((10,), 0, 1) == (3, 6)
        assert d.dim_bounds((10,), 0, 3) == (8, 10)

    def test_replicated_bounds(self):
        d = Distribution.make((4,), replicated_axes=[0])
        for c in range(4):
            assert d.dim_bounds((10,), 0, c) == (0, 10)
        assert d.replication_factor() == 4

    def test_extent_one_axis_normalized_to_block(self):
        d = Distribution((1, 4), (DimKind.REPLICATED, DimKind.BLOCK))
        assert d.kinds[0] is DimKind.BLOCK
        assert not d.is_split(0) and d.is_split(1)

    def test_fully_replicated(self):
        d = Distribution.fully_replicated(2, (2, 2))
        assert d.replication_factor() == 4
        assert d.local_shape((6, 8), (1, 1)) == (6, 8)

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            Distribution((2, 2), (DimKind.BLOCK,))

    def test_str(self):
        d = Distribution.make((2, 4), replicated_axes=[1])
        assert str(d) == "Dist(2x*4)"


class TestFromToGlobal:
    @pytest.mark.parametrize("grid_shape", [(1, 4), (2, 2), (4, 1)])
    def test_roundtrip(self, grid_shape):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((6, 10))
        dist = Distribution.make(grid_shape)

        def body(dt, comm):
            return dt.to_global()

        for got in run_spmd(4, make_grid_prog(grid_shape, dist, x, body)):
            np.testing.assert_array_equal(got, x)

    def test_local_shard_contents(self):
        x = np.arange(16.0).reshape(4, 4)
        dist = Distribution.make((2, 2))

        def body(dt, comm):
            return dt.local.copy()

        shards = run_spmd(4, make_grid_prog((2, 2), dist, x, body))
        np.testing.assert_array_equal(shards[0], [[0, 1], [4, 5]])
        np.testing.assert_array_equal(shards[3], [[10, 11], [14, 15]])

    def test_replicated_dim_shards(self):
        x = np.arange(8.0).reshape(2, 4)
        dist = Distribution.make((2, 2), replicated_axes=[0])

        def body(dt, comm):
            return dt.local.copy()

        shards = run_spmd(4, make_grid_prog((2, 2), dist, x, body))
        # Axis 0 replicated: both "rows" of the grid hold both tensor rows.
        np.testing.assert_array_equal(shards[0], shards[2])
        assert shards[0].shape == (2, 2)


class TestGatherRegion:
    @pytest.mark.parametrize("grid_shape", [(2, 2), (1, 4), (4, 1)])
    def test_matches_extract_padded(self, grid_shape):
        """gather_region on a distributed tensor == extract_padded on the
        global array, for regions spanning partitions and boundaries."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal((9, 11))
        dist = Distribution.make(grid_shape)
        regions = [
            ((-2, -2), (4, 5)),
            ((3, 4), (9, 11)),
            ((0, 0), (9, 11)),
            ((-1, -1), (10, 12)),
            ((4, 4), (4, 4)),  # empty
        ]

        def body(dt, comm):
            outs = []
            for lo, hi in regions:
                outs.append(dt.gather_region(lo, hi))
            return outs

        results = run_spmd(4, make_grid_prog(grid_shape, dist, x, body))
        for outs in results:
            for (lo, hi), got in zip(regions, outs):
                np.testing.assert_array_equal(got, extract_padded(x, lo, hi))

    def test_per_rank_distinct_regions(self):
        """Each rank fetches the dependency region of its own block — the
        halo-exchange pattern."""
        x = np.arange(64.0).reshape(8, 8)
        dist = Distribution.make((2, 2))

        def body(dt, comm):
            (hlo, hhi), (wlo, whi) = dt.bounds
            got = dt.gather_region((hlo - 1, wlo - 1), (hhi + 1, whi + 1))
            want = extract_padded(x, (hlo - 1, wlo - 1), (hhi + 1, whi + 1))
            np.testing.assert_array_equal(got, want)
            return True

        assert all(run_spmd(4, make_grid_prog((2, 2), dist, x, body)))

    def test_replicated_axis_stays_in_group(self):
        """With a replicated dim, gathers are served within the caller's
        replica group, and every replica gets the right data."""
        x = np.arange(24.0).reshape(2, 12)
        dist = Distribution.make((2, 2), replicated_axes=[0])

        def body(dt, comm):
            got = dt.gather_region((0, 2), (2, 10))
            np.testing.assert_array_equal(got, x[:, 2:10])
            return True

        assert all(run_spmd(4, make_grid_prog((2, 2), dist, x, body)))

    def test_region_spanning_multiple_owners(self):
        x = np.arange(100.0).reshape(10, 10)
        dist = Distribution.make((4, 1))

        def body(dt, comm):
            if comm.rank == 0:
                got = dt.gather_region((0, 0), (10, 10))
                np.testing.assert_array_equal(got, x)
            else:
                dt.gather_region((0, 0), (0, 0))
            return True

        assert all(run_spmd(4, make_grid_prog((4, 1), dist, x, body)))

    def test_fill_value(self):
        x = np.zeros((4, 4))
        dist = Distribution.make((2, 2))

        def body(dt, comm):
            got = dt.gather_region((-1, 0), (0, 4), fill=9.0)
            np.testing.assert_array_equal(got, np.full((1, 4), 9.0))
            return True

        assert all(run_spmd(4, make_grid_prog((2, 2), dist, x, body)))


class TestScatterRegionAdd:
    def test_reverse_halo_accumulation(self):
        """Each rank scatters a region one cell wider than its block; interior
        overlaps accumulate, out-of-range parts are dropped."""
        dist = Distribution.make((2,))

        def prog(comm):
            grid = ProcessGrid(comm, (2,))
            dt = DistTensor.zeros(grid, dist, (8,))
            lo, hi = dt.bounds[0]
            region = np.ones(hi - lo + 2)
            dt.scatter_region_add(region, (lo - 1,))
            return dt.to_global()

        for got in run_spmd(2, prog):
            # Interior boundary cells (3 and 4) get contributions from both
            # ranks; edge cells' out-of-range contributions are dropped.
            np.testing.assert_array_equal(
                got, [1, 1, 1, 2, 2, 1, 1, 1]
            )

    def test_scatter_gather_adjoint(self):
        """<gather(x), y> == <x, scatter_add(y)> — the two primitives are
        adjoint linear maps, the property conv backprop relies on."""
        rng = np.random.default_rng(7)
        x = rng.standard_normal((6, 6))
        dist = Distribution.make((2, 2))
        lo, hi = (-1, 2), (4, 7)
        y = rng.standard_normal(tuple(h - b for b, h in zip(lo, hi)))

        def prog(comm):
            grid = ProcessGrid(comm, (2, 2))
            dt = DistTensor.from_global(grid, dist, x)
            gathered = dt.gather_region(lo, hi) if comm.rank == 0 else dt.gather_region((0, 0), (0, 0))
            acc = DistTensor.zeros(grid, dist, x.shape)
            if comm.rank == 0:
                acc.scatter_region_add(y, lo)
            else:
                acc.scatter_region_add(np.zeros((0, 0)), (0, 0))
            sy = acc.to_global()
            return gathered, sy

        results = run_spmd(4, prog)
        gathered = results[0][0]
        scattered = results[0][1]
        lhs = float((gathered * y).sum())
        rhs = float((x * scattered).sum())
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_replica_consistency(self):
        """Scatter-add on a replicated-dim tensor keeps replicas identical."""
        dist = Distribution.make((2, 2), replicated_axes=[0])

        def prog(comm):
            grid = ProcessGrid(comm, (2, 2))
            dt = DistTensor.zeros(grid, dist, (3, 8))
            lo, hi = dt.bounds[1]
            dt.scatter_region_add(np.ones((3, hi - lo)), (0, lo))
            return dt.local.copy()

        shards = run_spmd(4, prog)
        np.testing.assert_array_equal(shards[0], shards[2])
        np.testing.assert_array_equal(shards[1], shards[3])
        assert shards[0].sum() == 3 * 4


class TestDistTensorValidation:
    def test_wrong_local_shape(self):
        def prog(comm):
            grid = ProcessGrid(comm, (2,))
            dist = Distribution.make((2,))
            DistTensor(grid, dist, (8,), np.zeros(5))

        with pytest.raises(ValueError, match="local shard shape"):
            run_spmd(2, prog, timeout=10)

    def test_grid_shape_mismatch(self):
        def prog(comm):
            grid = ProcessGrid(comm, (2,))
            dist = Distribution.make((4,))
            DistTensor(grid, dist, (8,), np.zeros(2))

        with pytest.raises(ValueError, match="!= process grid"):
            run_spmd(2, prog, timeout=10)


@settings(max_examples=20, deadline=None)
@given(
    h=st.integers(min_value=4, max_value=12),
    w=st.integers(min_value=4, max_value=12),
    dlo=st.tuples(
        st.integers(min_value=-3, max_value=3), st.integers(min_value=-3, max_value=3)
    ),
    extent=st.tuples(
        st.integers(min_value=0, max_value=10), st.integers(min_value=0, max_value=10)
    ),
)
def test_gather_region_property(h, w, dlo, extent):
    """gather_region == extract_padded for arbitrary regions and sizes."""
    rng = np.random.default_rng(h * 100 + w)
    x = rng.standard_normal((h, w))
    dist = Distribution.make((2, 2))
    lo = dlo
    hi = (dlo[0] + extent[0], dlo[1] + extent[1])

    def prog(comm):
        grid = ProcessGrid(comm, (2, 2))
        dt = DistTensor.from_global(grid, dist, x)
        return dt.gather_region(lo, hi)

    for got in run_spmd(4, prog):
        np.testing.assert_array_equal(got, extract_padded(x, lo, hi))
