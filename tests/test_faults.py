"""Deterministic fault injection: plan parsing, every fault kind, both
backends, and the headline detection guarantee.

The acceptance property of the fault-tolerance layer: with an injected rank
crash mid-allreduce on the process backend, every survivor raises
``CommAborted`` *naming the failed rank* within 2x the detection interval —
no hang, no leaked ``/dev/shm`` segments.
"""

import os
from time import monotonic

import numpy as np
import pytest

from repro.comm import CommAborted, FaultPlan, FaultSpec, InjectedCrash, run_spmd
from repro.comm.faults import INJECTED_CRASH_EXIT
from repro.comm.proc_backend import SHM_PREFIX

SHM_DIR = "/dev/shm"


def _shm_segments() -> set[str]:
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux hosts
        pytest.skip("no /dev/shm on this platform")
    return {f for f in os.listdir(SHM_DIR) if f.startswith(SHM_PREFIX)}


class TestFaultPlanParsing:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "crash@rank2:after=3:tag=#alg; delay@rank0:seconds=0.2:recurring;"
            "drop@rank1:peer=3; corrupt@rank0:point=recv; seed=7"
        )
        assert plan.seed == 7
        kinds = [s.kind for s in plan.specs]
        assert kinds == ["crash", "delay", "drop", "corrupt"]
        crash = plan.specs[0]
        assert (crash.rank, crash.after, crash.tag) == (2, 3, "#alg")
        delay = plan.specs[1]
        assert delay.seconds == 0.2 and delay.once is False
        assert plan.specs[2].peer == 3
        assert plan.specs[3].point == "recv"

    def test_parse_rejects_malformed_entries(self):
        with pytest.raises(ValueError, match="expected kind@rank"):
            FaultPlan.parse("crash@two")
        with pytest.raises(ValueError, match="unknown fault option"):
            FaultPlan.parse("crash@rank0:wat=1")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("melt@rank0")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="drop faults arm on the send"):
            FaultSpec(kind="drop", rank=0, point="recv")
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec(kind="crash", rank=0, point="everywhere")

    def test_injector_only_for_armed_ranks(self):
        plan = FaultPlan.parse("crash@rank1")
        assert plan.injector(0) is None
        assert plan.injector(1) is not None


class TestFaultKinds:
    """Each fault kind, exercised on the (fast) thread backend."""

    def test_delay_is_survivable(self):
        def prog(comm):
            return float(comm.allreduce(np.ones(8), algorithm="ring")[0])

        out = run_spmd(4, prog, faults="delay@rank2:seconds=0.05:tag=#alg")
        assert out == [4.0] * 4

    def test_drop_turns_into_timeout_naming_pending_inbox(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.ones(4), dest=1, tag="wanted")
            elif comm.rank == 1:
                return comm.recv(source=0, tag="wanted")
            return None

        with pytest.raises(CommAborted, match=r"timed out.*pending inbox"):
            run_spmd(
                2, prog, faults="drop@rank0:tag=wanted", timeout=1.5
            )

    def test_corrupt_is_deterministic_across_runs(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(64), dest=1, tag=9)
                return None
            return comm.recv(source=0, tag=9).copy()

        plan = "corrupt@rank0:tag=9; seed=5"
        first = run_spmd(2, prog, faults=plan)[1]
        second = run_spmd(2, prog, faults=plan)[1]
        assert np.count_nonzero(first) == 1  # exactly one element perturbed
        np.testing.assert_array_equal(first, second)  # bitwise reproducible

    def test_crash_raises_injected_crash_in_rank(self):
        def prog(comm):
            return float(comm.allreduce(np.ones(4), algorithm="ring")[0])

        out = run_spmd(
            4, prog, faults="crash@rank1:tag=#alg", allow_failures=True
        )
        assert isinstance(out[1], InjectedCrash)
        survivors = [out[r] for r in (0, 2, 3)]
        assert all(isinstance(e, CommAborted) for e in survivors)
        assert all("rank 1" in str(e) for e in survivors)

    def test_after_counts_matching_ops(self):
        """after=N skips the first N matches: sends 0 and 1 pass, send 2
        is dropped (observed as an irecv that never completes)."""

        def prog2(comm):
            if comm.rank == 0:
                for i in range(3):
                    comm.send(np.full(4, float(i)), dest=1, tag="seq")
                comm.barrier()
                return None
            a = comm.recv(source=0, tag="seq")
            b = comm.recv(source=0, tag="seq")
            req = comm.irecv(source=0, tag="seq")
            comm.barrier()
            ok = req.test()
            return float(a[0]), float(b[0]), ok

        out = run_spmd(
            2, prog2, faults="drop@rank0:tag=seq:after=2", timeout=5.0
        )
        a, b, third_arrived = out[1]
        assert (a, b) == (0.0, 1.0)
        assert third_arrived is False

    def test_env_variable_installs_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash@rank0")

        def prog(comm):
            comm.send(np.ones(2), dest=(comm.rank + 1) % comm.size, tag=1)
            return comm.recv(source=(comm.rank - 1) % comm.size, tag=1)

        out = run_spmd(2, prog, allow_failures=True)
        assert isinstance(out[0], InjectedCrash)

    def test_explicit_plan_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash@rank0")

        def prog(comm):
            return float(comm.allreduce(1.0))

        # An explicit empty plan disables the env faults.
        assert run_spmd(2, prog, faults=FaultPlan([])) == [2.0, 2.0]


class TestProcessBackendCrash:
    """The acceptance property: bounded-time detection, named rank, no
    leaks — with the rank dying via ``os._exit`` (a real hard death)."""

    def test_crash_mid_allreduce_detected_within_two_intervals(self):
        detect = 1.0
        before = _shm_segments()

        def prog(comm):
            x = np.full(4096, float(comm.rank))
            t0 = monotonic()
            try:
                # The direct deposit-combine path tags traffic "#coll";
                # scheduled algorithms ("#alg") are covered below and in
                # tests/test_abort_propagation.py.
                comm.allreduce(x, algorithm="direct")
            except CommAborted as exc:
                return (monotonic() - t0, str(exc))
            return None  # only the crashed rank "returns" nothing

        out = run_spmd(
            4,
            prog,
            backend="process",
            faults="crash@rank1:tag=#coll",
            allow_failures=True,
            detect_interval=detect,
            timeout=60.0,  # detection must NOT come from the op timeout
        )
        # The dead rank is reported as an injected crash by exit code.
        assert isinstance(out[1], CommAborted)
        assert "exit code 117" in str(out[1]) and "injected" in str(out[1])
        for r in (0, 2, 3):
            elapsed, message = out[r]
            assert "rank 1" in message, message
            assert elapsed < 2.0 * detect, (
                f"survivor {r} took {elapsed:.2f}s > 2x detection interval"
            )
        assert _shm_segments() == before

    def test_exit_code_is_the_injected_sentinel(self):
        assert INJECTED_CRASH_EXIT == 117  # documented in README

    def test_crash_during_scheduled_allreduce_names_rank(self):
        def prog(comm):
            return comm.allreduce(np.ones(64), algorithm="ring")

        out = run_spmd(
            4,
            prog,
            backend="process",
            faults="crash@rank2:tag=#alg",
            allow_failures=True,
            detect_interval=0.2,
            timeout=30.0,
        )
        for r in (0, 1, 3):
            assert isinstance(out[r], CommAborted)
            assert "rank 2" in str(out[r])


class TestAllowFailures:
    def test_mixed_results_and_errors_in_rank_order(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            try:
                comm.barrier()
            except CommAborted as exc:
                return exc
            return comm.rank

        out = run_spmd(3, prog, allow_failures=True, timeout=5.0)
        assert isinstance(out[1], ValueError)

    def test_single_rank_allow_failures(self):
        def prog(comm):
            raise RuntimeError("solo failure")

        out = run_spmd(1, prog, allow_failures=True)
        assert isinstance(out[0], RuntimeError)


class TestPerOpTimeouts:
    def test_op_timeout_overrides_default(self):
        """A tight recv override fails fast while the world default stays
        long — per-op knobs replace the single world timeout."""

        def prog(comm):
            if comm.rank == 0:
                return None
            t0 = monotonic()
            try:
                comm.recv(source=0, tag=1)
            except CommAborted:
                return monotonic() - t0
            return None

        out = run_spmd(
            2, prog, timeout=60.0, op_timeouts={"recv": 1.0},
            allow_failures=True,
        )
        assert out[1] < 10.0  # far below the 60s world default

    def test_longest_prefix_wins(self):
        from repro.comm import JobConfig

        cfg = JobConfig(
            timeout=100.0, op_timeouts={"i": 50.0, "iallreduce": 5.0}
        )
        assert cfg.timeout_for("iallreduce") == 5.0
        assert cfg.timeout_for("ialltoall") == 50.0
        assert cfg.timeout_for("recv") == 100.0

    def test_retries_extend_the_wait(self, caplog):
        """retries grants extra timeout windows (logged) before aborting."""
        import logging

        def prog(comm):
            if comm.rank == 0:
                from time import sleep

                sleep(1.2)  # longer than one window, shorter than two
                comm.send(np.ones(2), dest=1, tag=5)
                return True
            return float(comm.recv(source=0, tag=5)[0])

        with caplog.at_level(logging.WARNING, logger="repro.comm.backend"):
            out = run_spmd(2, prog, timeout=0.8, retries=2)
        assert out[1] == 1.0
        assert any("retry 1/2" in r.message for r in caplog.records)
