"""Pooling, batch norm, ReLU, linear, and loss kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


class TestMaxPool:
    def test_known_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        y, _ = F.maxpool2d_forward(x, kernel=2, stride=2)
        np.testing.assert_array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_overlapping_windows_resnet_style(self):
        """ResNet's 3x3/2 maxpool with pad 1."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 8, 8))
        y, _ = F.maxpool2d_forward(x, kernel=3, stride=2, pad=1)
        assert y.shape == (2, 3, 4, 4)
        # Spot-check one window.
        want = x[0, 0, 0:2, 0:2].max()  # window at (0,0) clipped by padding
        assert y[0, 0, 0, 0] == pytest.approx(want)

    def test_backward_routes_to_argmax(self):
        x = np.array([[[[1.0, 5.0], [2.0, 3.0]]]])
        y, argmax = F.maxpool2d_forward(x, kernel=2, stride=2)
        dy = np.ones_like(y)
        dx = F.maxpool2d_backward(dy, argmax, x.shape, kernel=2, stride=2)
        np.testing.assert_array_equal(dx, [[[[0, 1], [0, 0]]]])

    def test_backward_finite_difference(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 2, 6, 6))
        y, argmax = F.maxpool2d_forward(x, kernel=3, stride=2, pad=1)
        dy = rng.standard_normal(y.shape)
        dx = F.maxpool2d_backward(dy, argmax, x.shape, kernel=3, stride=2, pad=1)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (0, 1, 3, 3), (0, 0, 5, 5)]:
            xp, xm = x.copy(), x.copy()
            xp[idx] += eps
            xm[idx] -= eps
            yp, _ = F.maxpool2d_forward(xp, kernel=3, stride=2, pad=1)
            ym, _ = F.maxpool2d_forward(xm, kernel=3, stride=2, pad=1)
            num = ((yp - ym) * dy).sum() / (2 * eps)
            np.testing.assert_allclose(dx[idx], num, rtol=1e-4, atol=1e-7)

    def test_padding_never_wins(self):
        """-inf padding means a padded cell is never the argmax."""
        x = np.full((1, 1, 2, 2), -100.0)
        y, argmax = F.maxpool2d_forward(x, kernel=3, stride=1, pad=1)
        assert (y == -100.0).all()
        dy = np.ones_like(y)
        dx = F.maxpool2d_backward(dy, argmax, x.shape, kernel=3, stride=1, pad=1)
        assert dx.sum() == pytest.approx(dy.size)


class TestAvgPool:
    def test_known_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        y = F.avgpool2d_forward(x, kernel=2, stride=2)
        np.testing.assert_array_equal(y[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_adjoint(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((2, 3, 9, 9))
        y = F.avgpool2d_forward(x, kernel=3, stride=2, pad=1)
        dy = rng.standard_normal(y.shape)
        dx = F.avgpool2d_backward(dy, x.shape, kernel=3, stride=2, pad=1)
        np.testing.assert_allclose((y * dy).sum(), (x * dx).sum(), rtol=1e-12)

    def test_global_avgpool(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 4, 5, 5))
        y = F.global_avgpool_forward(x)
        np.testing.assert_allclose(y, x.mean(axis=(2, 3)))
        dy = rng.standard_normal(y.shape)
        dx = F.global_avgpool_backward(dy, x.shape)
        np.testing.assert_allclose((y * dy).sum(), (x * dx).sum(), rtol=1e-12)


class TestBatchNorm:
    def test_normalizes(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((8, 3, 6, 6)) * 5 + 2
        y, _ = F.batchnorm_forward(x, np.ones(3), np.zeros(3))
        np.testing.assert_allclose(y.mean(axis=(0, 2, 3)), 0, atol=1e-10)
        np.testing.assert_allclose(y.var(axis=(0, 2, 3)), 1, atol=1e-4)

    def test_gamma_beta(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((4, 2, 3, 3))
        gamma, beta = np.array([2.0, 3.0]), np.array([-1.0, 1.0])
        y, _ = F.batchnorm_forward(x, gamma, beta)
        np.testing.assert_allclose(y.mean(axis=(0, 2, 3)), beta, atol=1e-10)

    def test_backward_finite_difference(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((3, 2, 4, 4))
        gamma = rng.standard_normal(2) + 1.5
        beta = rng.standard_normal(2)
        y, cache = F.batchnorm_forward(x, gamma, beta)
        dy = rng.standard_normal(y.shape)
        dx, dgamma, dbeta = F.batchnorm_backward(dy, cache)
        eps = 1e-6

        def loss(xv, gv, bv):
            yv, _ = F.batchnorm_forward(xv, gv, bv)
            return (yv * dy).sum()

        for idx in [(0, 0, 0, 0), (2, 1, 3, 3), (1, 0, 2, 1)]:
            xp, xm = x.copy(), x.copy()
            xp[idx] += eps
            xm[idx] -= eps
            num = (loss(xp, gamma, beta) - loss(xm, gamma, beta)) / (2 * eps)
            np.testing.assert_allclose(dx[idx], num, rtol=1e-4, atol=1e-7)
        for c in range(2):
            gp, gm = gamma.copy(), gamma.copy()
            gp[c] += eps
            gm[c] -= eps
            num = (loss(x, gp, beta) - loss(x, gm, beta)) / (2 * eps)
            np.testing.assert_allclose(dgamma[c], num, rtol=1e-5)
            bp, bm = beta.copy(), beta.copy()
            bp[c] += eps
            bm[c] -= eps
            num = (loss(x, gamma, bp) - loss(x, gamma, bm)) / (2 * eps)
            np.testing.assert_allclose(dbeta[c], num, rtol=1e-5)

    def test_external_stats_match_local(self):
        """Supplying the batch's own stats externally must reproduce the
        local result — the equivalence the distributed BN variants rely on."""
        rng = np.random.default_rng(7)
        x = rng.standard_normal((4, 3, 5, 5))
        gamma, beta = np.ones(3), np.zeros(3)
        y_local, _ = F.batchnorm_forward(x, gamma, beta)
        s, ss, m = F.batchnorm_stats(x)
        mean = s / m
        var = ss / m - mean**2
        y_ext, _ = F.batchnorm_forward(x, gamma, beta, mean=mean, var=var)
        np.testing.assert_allclose(y_ext, y_local, rtol=1e-10)

    def test_distributed_backward_formula(self):
        """batchnorm_backward with stat_sums aggregated over two halves of
        the batch equals the single-shot backward."""
        rng = np.random.default_rng(8)
        x = rng.standard_normal((4, 2, 4, 4))
        gamma, beta = np.ones(2) * 1.3, np.zeros(2)
        y, cache = F.batchnorm_forward(x, gamma, beta)
        dy = rng.standard_normal(y.shape)
        dx_ref, dg_ref, db_ref = F.batchnorm_backward(dy, cache)

        # Split into two "ranks" along N; each computes local sums; aggregate.
        halves = [(slice(0, 2)), (slice(2, 4))]
        mean, var = x.mean(axis=(0, 2, 3)), x.var(axis=(0, 2, 3))
        partials = []
        caches = []
        for sl in halves:
            yk, ck = F.batchnorm_forward(x[sl], gamma, beta, mean=mean, var=var)
            caches.append(ck)
            partials.append(
                ((dy[sl] * ck["xhat"]).sum(axis=(0, 2, 3)), dy[sl].sum(axis=(0, 2, 3)))
            )
        dg = partials[0][0] + partials[1][0]
        db = partials[0][1] + partials[1][1]
        m = float(x.shape[0] * x.shape[2] * x.shape[3])
        for sl, ck in zip(halves, caches):
            dxk, _, _ = F.batchnorm_backward(dy[sl], ck, stat_sums=(dg, db, m))
            np.testing.assert_allclose(dxk, dx_ref[sl], rtol=1e-10)
        np.testing.assert_allclose(dg, dg_ref, rtol=1e-10)
        np.testing.assert_allclose(db, db_ref, rtol=1e-10)


class TestReluLinear:
    def test_relu(self):
        x = np.array([-2.0, 0.0, 3.0])
        y, mask = F.relu_forward(x)
        np.testing.assert_array_equal(y, [0, 0, 3])
        np.testing.assert_array_equal(F.relu_backward(np.ones(3), mask), [0, 0, 1])

    def test_linear_adjoint(self):
        rng = np.random.default_rng(9)
        x = rng.standard_normal((4, 6))
        w = rng.standard_normal((3, 6))
        y = F.linear_forward(x, w)
        dy = rng.standard_normal(y.shape)
        dx, dw, db = F.linear_backward(x, w, dy)
        np.testing.assert_allclose((y * dy).sum(), (x * dx).sum(), rtol=1e-12)
        np.testing.assert_allclose((y * dy).sum(), (w * dw).sum(), rtol=1e-12)
        np.testing.assert_allclose(db, dy.sum(axis=0))


class TestLosses:
    def test_softmax_ce_uniform(self):
        logits = np.zeros((2, 4))
        loss, grad = F.softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(np.log(4))
        np.testing.assert_allclose(grad.sum(axis=1), 0, atol=1e-12)

    def test_softmax_ce_gradient(self):
        rng = np.random.default_rng(10)
        logits = rng.standard_normal((3, 5))
        labels = np.array([1, 4, 0])
        _, grad = F.softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for idx in [(0, 0), (1, 4), (2, 2)]:
            lp, lm = logits.copy(), logits.copy()
            lp[idx] += eps
            lm[idx] -= eps
            num = (
                F.softmax_cross_entropy(lp, labels)[0]
                - F.softmax_cross_entropy(lm, labels)[0]
            ) / (2 * eps)
            np.testing.assert_allclose(grad[idx], num, rtol=1e-5, atol=1e-9)

    def test_bce_matches_reference(self):
        rng = np.random.default_rng(11)
        z = rng.standard_normal((2, 1, 4, 4)) * 3
        t = (rng.random((2, 1, 4, 4)) > 0.5).astype(float)
        loss, grad = F.sigmoid_bce_with_logits(z, t)
        p = 1 / (1 + np.exp(-z))
        ref = -(t * np.log(p) + (1 - t) * np.log(1 - p)).mean()
        assert loss == pytest.approx(ref, rel=1e-9)
        eps = 1e-6
        zp, zm = z.copy(), z.copy()
        zp[0, 0, 0, 0] += eps
        zm[0, 0, 0, 0] -= eps
        num = (
            F.sigmoid_bce_with_logits(zp, t)[0] - F.sigmoid_bce_with_logits(zm, t)[0]
        ) / (2 * eps)
        np.testing.assert_allclose(grad[0, 0, 0, 0], num, rtol=1e-5)

    def test_bce_extreme_logits_stable(self):
        z = np.array([[[[100.0, -100.0]]]])
        t = np.array([[[[1.0, 0.0]]]])
        loss, grad = F.sigmoid_bce_with_logits(z, t)
        assert np.isfinite(loss) and loss < 1e-10
        assert np.isfinite(grad).all()


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 3),
    c=st.integers(1, 3),
    h=st.integers(2, 8),
    k=st.sampled_from([2, 3]),
    s=st.integers(1, 2),
)
def test_pool_adjoint_property(n, c, h, k, s):
    """Avg pooling fwd/bwd are adjoint for random geometries."""
    if h < k:
        return
    rng = np.random.default_rng(n * 100 + h * 10 + k)
    x = rng.standard_normal((n, c, h, h))
    y = F.avgpool2d_forward(x, kernel=k, stride=s)
    dy = rng.standard_normal(y.shape)
    dx = F.avgpool2d_backward(dy, x.shape, kernel=k, stride=s)
    np.testing.assert_allclose((y * dy).sum(), (x * dx).sum(), rtol=1e-9, atol=1e-9)
