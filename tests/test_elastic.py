"""Elastic self-healing training: supervised restart, cross-world resume,
degraded-mode continuation.

The headline guarantees:

* a rank killed mid-run is detected, classified, and the job auto-resumed
  at the *same* world size with **bitwise** identical final parameters to
  an uninterrupted run — on both forked backends;
* a repeatedly-failing rank/host is blacklisted and the job resumes at a
  *shrunk* world from re-sharded checkpoints, matching a from-scratch run
  at the smaller size (allclose: reduction order differs across world
  sizes) that replays the same global batch order;
* when shrinking would cross ``min_ranks``, the runner stops restarting
  and reports structured degradation instead of looping forever.
"""

import numpy as np
import pytest

from repro.comm import CommAborted, run_spmd
from repro.comm.backend import CommIntegrityError
from repro.core import DistNetwork, DistTrainer, LayerParallelism
from repro.core.elastic import (
    ElasticRunner,
    classify_error,
    classify_failures,
    parse_elastic_env,
    run_elastic,
)
from repro.nn import NetworkSpec, SGD

NSTEPS = 6
EVERY = 2


def small_spec() -> NetworkSpec:
    spec = NetworkSpec("elastic")
    spec.add("input", "input", channels=1, height=8, width=8)
    spec.add("c1", "conv", ["input"], filters=4, kernel=3, pad=1, bias=True)
    spec.add("b1", "bn", ["c1"])
    spec.add("r1", "relu", ["b1"])
    spec.add("gap", "gap", ["r1"])
    spec.add("fc", "fc", ["gap"], units=3)
    spec.add("loss", "softmax_ce", ["fc"])
    return spec


def etrain(comm, ckdir, nsteps=NSTEPS):
    """Elastic training entry: resumes from whatever checkpoints exist
    (same-world bitwise, cross-world re-sharded), then trains to
    ``nsteps``.  The global batch (size 6: divisible by 1, 2, and 3
    sample-parallel ways) is drawn from the replicated trainer rng, so
    every world size replays the identical data order."""
    net = DistNetwork(
        small_spec(), comm, LayerParallelism(sample=comm.size), seed=0
    )
    trainer = DistTrainer(
        net,
        SGD(lr=0.05, momentum=0.9, weight_decay=1e-4),
        checkpoint_dir=ckdir,
        checkpoint_every=EVERY,
        rng=np.random.default_rng(42),
    )
    trainer.resume_elastic()
    for _ in range(trainer.step_index, nsteps):
        x = trainer.rng.standard_normal((6, 1, 8, 8))
        t = trainer.rng.integers(0, 3, size=6)
        trainer.step(x, t)
    params = {
        layer: {p: a.copy() for p, a in v.items()}
        for layer, v in net.params.items()
    }
    return params, trainer.stats.losses, trainer.step_index


def work(comm):
    """Array allreduce so compiled (#alg-tagged) schedules carry traffic
    the fault injector can arm on."""
    return float(np.sum(comm.allreduce(np.ones(4096))))


def _assert_params_match(ref, out, exact=True):
    for (p_ref, _, s_ref), (p_out, _, s_out) in zip(ref, out):
        assert s_ref == s_out == NSTEPS
        for layer in p_ref:
            for pname in p_ref[layer]:
                if exact:
                    np.testing.assert_array_equal(
                        p_ref[layer][pname], p_out[layer][pname]
                    )
                else:
                    np.testing.assert_allclose(
                        p_ref[layer][pname], p_out[layer][pname],
                        rtol=1e-9, atol=1e-12,
                    )


class TestClassification:
    def test_structured_attrs_win(self):
        err = CommAborted("boom", failed_rank=3, host="B", kind="peer-death")
        f = classify_error(err)
        assert (f.rank, f.host, f.kind) == (3, "B", "peer-death")

    def test_survivor_echo_names_culprit_not_observer(self):
        err = CommAborted(
            "allreduce[seq=0, schedule step 1](world rank 0 <- 1, "
            "tag=(('world',), ('#alg', 0))) interrupted: world aborted — "
            "world rank 1 failed: InjectedCrash: crash@rank1"
        )
        f = classify_error(err, observer_rank=0)
        assert f.rank == 1 and f.kind == "injected-crash" and f.attributed

    def test_child_exit_message(self):
        err = CommAborted(
            "world rank 2 exited abnormally (exit code 1) "
            "before reporting a result"
        )
        f = classify_error(err)
        assert f.rank == 2 and f.kind == "child-exit"

    def test_peer_death_with_host_attribution(self):
        err = CommAborted(
            "world rank 3 (host B) lost: connection closed unexpectedly "
            "(crash or network failure), detected by world rank 1"
        )
        f = classify_error(err)
        assert (f.rank, f.host, f.kind) == (3, "B", "peer-death")

    def test_integrity_message(self):
        err = CommAborted(
            "recv interrupted: world aborted — frame from world rank 0 "
            "(host A) failed its CRC32 integrity check at world rank 1"
        )
        f = classify_error(err)
        assert (f.rank, f.host, f.kind) == (0, "A", "integrity")

    def test_timeout_blamed_on_observer_when_no_culprit(self):
        err = CommAborted("recv(source=1, tag=5) timed out after 2.0s")
        f = classify_error(err, observer_rank=1)
        assert f.rank == 1 and f.kind == "timeout" and not f.attributed

    def test_echoes_folded_into_culprit(self):
        results = [
            CommAborted(
                "barrier interrupted: world aborted — world rank 2 failed: "
                "InjectedCrash: crash@rank2"
            ),
            None,
            CommAborted("crash fired", failed_rank=2, kind="injected-crash"),
            CommAborted("op timed out after 5.0s"),
        ]
        failures = classify_failures(results)
        assert len(failures) == 1
        assert failures[0].rank == 2
        assert failures[0].kind == "injected-crash"

    def test_all_unattributed_timeouts_kept(self):
        """A genuine deadlock (no culprit anywhere) must not classify to
        an empty failure list — that would look like success."""
        results = [
            CommAborted("op timed out after 5.0s"),
            CommAborted("op timed out after 5.0s"),
        ]
        failures = classify_failures(results)
        assert len(failures) == 2
        assert {f.kind for f in failures} == {"timeout"}


class TestEnvParsing:
    def test_parse(self):
        assert parse_elastic_env(
            "max_restarts=3;min_ranks=2;backoff=0.25"
        ) == {"max_restarts": 3, "min_ranks": 2, "backoff": 0.25}

    def test_empty_and_none(self):
        assert parse_elastic_env(None) == {}
        assert parse_elastic_env("") == {}

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            parse_elastic_env("restarts=3")

    def test_env_feeds_run_elastic(self, monkeypatch):
        monkeypatch.setenv("REPRO_ELASTIC", "max_restarts=0;backoff=0.0")
        report = run_elastic(
            work, 2,
            faults=["crash@rank1:after=0"],
            sleep=lambda s: None,
            timeout=10.0,
        )
        # max_restarts=0 from the environment: first failure gives up.
        assert not report.ok
        assert report.restarts[-1].action == "gave-up"


class TestRestartLoop:
    def test_transient_crash_restarts_same_world(self):
        slept = []
        report = ElasticRunner(
            2, backoff=0.05, sleep=slept.append,
            faults=["crash@rank1:after=0"], timeout=10.0,
        ).run(work)
        assert report.ok and not report.degraded
        assert report.total_restarts == 1
        assert report.final_nranks == 2
        assert report.results == [8192.0, 8192.0]
        assert slept == [0.05]
        [rec] = report.restarts
        assert rec.action == "restart"
        assert [f.kind for f in rec.failures] == ["injected-crash"]

    def test_backoff_grows_exponentially(self):
        slept = []
        report = ElasticRunner(
            2, backoff=0.1, backoff_factor=2.0, max_restarts=3,
            blacklist_after=99, sleep=slept.append,
            faults=["crash@rank1:after=0", "crash@rank1:after=0", None],
            timeout=10.0,
        ).run(work)
        assert report.ok
        assert slept == [0.1, 0.2]

    def test_exhausted_restarts_give_up(self):
        report = ElasticRunner(
            2, backoff=0.0, max_restarts=1, blacklist_after=99,
            sleep=lambda s: None,
            faults=["crash@rank1:after=0"] * 3, timeout=10.0,
        ).run(work)
        assert not report.ok and report.restarts[-1].action == "gave-up"
        assert report.total_restarts == 1  # the gave-up record is not a restart

    def test_repeat_offender_blacklisted_by_host(self):
        report = ElasticRunner(
            4, backoff=0.0, min_ranks=2, blacklist_after=2, max_restarts=5,
            sleep=lambda s: None, hostmap="0,1:A 2,3:B",
            faults=["crash@rank3:after=0", "crash@rank3:after=0"],
            timeout=10.0,
        ).run(work)
        assert report.ok and report.degraded
        assert report.final_nranks == 2
        assert report.blacklisted_hosts == ("B",)
        assert report.results == [8192.0, 8192.0]
        actions = [rec.action for rec in report.restarts]
        assert actions == ["restart", "shrink"]

    def test_degraded_when_min_ranks_would_be_crossed(self):
        report = ElasticRunner(
            2, backoff=0.0, min_ranks=2, blacklist_after=2, max_restarts=5,
            sleep=lambda s: None,
            faults=["crash@rank1:after=0", "crash@rank1:after=0"],
            timeout=10.0,
        ).run(work)
        assert not report.ok and report.degraded
        assert report.restarts[-1].action == "degraded"
        # The report is JSON-serializable for the CI artifact.
        doc = report.to_dict()
        assert doc["restarts"][-1]["action"] == "degraded"
        assert doc["total_restarts"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="min_ranks"):
            ElasticRunner(2, min_ranks=3)
        with pytest.raises(ValueError, match="nranks"):
            ElasticRunner(0)

    def test_metrics_recorded(self):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        ElasticRunner(
            2, backoff=0.0, sleep=lambda s: None,
            faults=["crash@rank1:after=0"], timeout=10.0, metrics=metrics,
        ).run(work)
        local = metrics.local()
        assert local["counters"]["elastic_restarts"] == 1
        assert local["gauges"]["elastic_degraded"] == 0.0
        assert local["gauges"]["elastic_final_nranks"] == 2


class TestElasticTraining:
    """The acceptance criteria: kill-then-auto-resume parity."""

    @pytest.mark.parametrize("backend", ["process", "socket"])
    def test_same_world_auto_resume_is_bitwise(self, backend, tmp_path):
        ref = run_spmd(
            2, etrain, str(tmp_path / "ref"), backend=backend, timeout=30.0
        )
        ckdir = str(tmp_path / "kill")
        report = ElasticRunner(
            2, backend=backend, backoff=0.0, sleep=lambda s: None,
            # 5 "#alg" sends per rank per step: send 12 is mid-step-3,
            # after the step-2 checkpoint cadence hit the disk.
            faults=["crash@rank1:tag=#alg:after=12"],
            checkpoint_dir=ckdir,
            detect_interval=0.2, timeout=30.0,
        ).run(etrain, ckdir)
        assert report.ok, report.describe()
        assert report.total_restarts == 1
        [rec] = report.restarts
        assert rec.resumed_step == EVERY
        _assert_params_match(ref, report.results, exact=True)

    def test_shrunk_world_resumes_from_resharded_checkpoints(self, tmp_path):
        """3 ranks, rank 2 dies twice -> blacklisted -> 2-rank world
        re-shards the 3-rank checkpoint set and matches a from-scratch
        2-rank run replaying the same global batch order."""
        ref = run_spmd(
            2, etrain, str(tmp_path / "ref"), backend="process", timeout=30.0
        )
        ckdir = str(tmp_path / "shrink")
        report = ElasticRunner(
            3, backend="process", backoff=0.0, sleep=lambda s: None,
            min_ranks=2, blacklist_after=2, max_restarts=5,
            faults=[
                "crash@rank2:tag=#alg:after=12",
                "crash@rank2:tag=#alg:after=0",
            ],
            checkpoint_dir=ckdir,
            detect_interval=0.2, timeout=30.0,
        ).run(etrain, ckdir)
        assert report.ok, report.describe()
        assert report.final_nranks == 2 and report.degraded
        _assert_params_match(ref, report.results, exact=False)

    def test_thread_backend_end_to_end(self, tmp_path):
        """Cheap smoke of the full loop on the in-process backend."""
        ref = run_spmd(2, etrain, str(tmp_path / "ref"))
        ckdir = str(tmp_path / "kill")
        report = ElasticRunner(
            2, backoff=0.0, sleep=lambda s: None,
            faults=["crash@rank1:tag=#alg:after=12"],
            checkpoint_dir=ckdir, timeout=20.0,
        ).run(etrain, ckdir)
        assert report.ok, report.describe()
        _assert_params_match(ref, report.results, exact=True)


class TestIntegrity:
    def test_wire_corruption_surfaces_named_integrity_error(self):
        """Satellite: CRC32 on socket frames.  A corrupted wire frame must
        raise a named integrity error at the receiving rank — never be
        silently unpickled into wrong data."""
        out = run_spmd(
            2, work, backend="socket", hostmap="0:A 1:B",
            faults="corrupt@rank0:point=wire",
            allow_failures=True, timeout=20.0, detect_interval=0.2,
        )
        integrity = [e for e in out if isinstance(e, CommIntegrityError)]
        assert integrity, f"no CommIntegrityError in {out!r}"
        err = integrity[0]
        assert err.kind == "integrity"
        assert err.failed_rank == 0  # the corrupted frame's sender
        assert "CRC32" in str(err)
        # And the elastic classifier maps it to the right culprit.
        failures = classify_failures(out)
        assert any(f.kind == "integrity" and f.rank == 0 for f in failures)

    def test_clean_socket_traffic_unaffected_by_crc(self):
        out = run_spmd(
            2, work, backend="socket", hostmap="0:A 1:B", timeout=20.0
        )
        assert out == [8192.0, 8192.0]
