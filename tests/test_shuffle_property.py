"""Randomized property suite for §III-C redistribution correctness.

Redistribution bugs are silent data corruption, so the shuffle subsystem is
swept over ~100 seeded random (src grid, dst grid, distribution, shape)
combinations — including replicated axes on either side, empty local shards
(a dimension smaller than its part count), and uneven partitions — asserting

* the overlapped :class:`~repro.tensor.shuffle.ShuffleExchange` is bitwise
  equal to the blocking :func:`~repro.tensor.shuffle.shuffle`;
* the redistributed tensor's global content is exactly the original;
* shuffling there and back is the identity on every rank's shard.

Also holds the plan-cache regression test: ``shuffle()`` historically
re-intersected every rank pair on every call; plans must now be computed
once per (grids, distributions, shape) and recycled, with pooled send
payloads keeping the per-step allocation count stable.
"""

import numpy as np

from repro.comm import BufferPool, run_spmd
from repro.tensor import (
    DistTensor,
    Distribution,
    ProcessGrid,
    shuffle,
    shuffle_plan_stats,
    start_shuffle,
)

NRANKS = 4

#: Grid shapes over 4 ranks, by tensor rank.
GRIDS = {
    2: [(4, 1), (1, 4), (2, 2)],
    3: [(4, 1, 1), (1, 4, 1), (1, 1, 4), (2, 2, 1), (2, 1, 2), (1, 2, 2)],
    4: [(4, 1, 1, 1), (1, 1, 2, 2), (2, 1, 2, 1), (1, 1, 4, 1), (1, 2, 1, 2)],
}

N_CASES = 100


def _random_cases(n_cases: int, seed: int = 1234):
    """Seeded random (shape, src grid+dist, dst grid+dist) combinations."""
    rng = np.random.default_rng(seed)
    cases = []
    for _ in range(n_cases):
        ndim = int(rng.choice([2, 2, 3, 3, 4]))
        grids = GRIDS[ndim]
        src_grid = grids[int(rng.integers(len(grids)))]
        dst_grid = grids[int(rng.integers(len(grids)))]
        # Dimensions down to 1: a block axis with more parts than indices
        # leaves some ranks with empty shards; 7/9 over 2/4 parts exercises
        # uneven partitions.
        shape = tuple(int(rng.integers(1, 10)) for _ in range(ndim))
        # Replicate a random subset of the non-trivial axes on either side.
        src_rep = [
            d for d in range(ndim) if src_grid[d] > 1 and rng.random() < 0.3
        ]
        dst_rep = [
            d for d in range(ndim) if dst_grid[d] > 1 and rng.random() < 0.3
        ]
        cases.append(
            (
                shape,
                src_grid,
                Distribution.make(src_grid, src_rep),
                dst_grid,
                Distribution.make(dst_grid, dst_rep),
            )
        )
    return cases


CASES = _random_cases(N_CASES)

#: The process backend sweeps a reduced prefix of the case list (same
#: seeded cases, fewer of them) to keep CI time bounded; the thread
#: backend keeps the full sweep.
N_CASES_PROCESS = 20


def test_random_redistribution_sweep(backend):
    """Blocking == overlapped, content preserved, round trip == identity."""
    cases = CASES if backend == "thread" else CASES[:N_CASES_PROCESS]
    rng = np.random.default_rng(99)
    arrays = [rng.standard_normal(shape) for shape, *_ in cases]

    def prog(comm):
        grid_cache: dict[tuple[int, ...], ProcessGrid] = {}

        def grid_of(shape):
            g = grid_cache.get(shape)
            if g is None:
                g = grid_cache[shape] = ProcessGrid(comm, shape)
            return g

        for x, (shape, sg, sd, dg, dd) in zip(arrays, cases):
            src = DistTensor.from_global(grid_of(sg), sd, x)
            blocking = shuffle(src, grid_of(dg), dd)
            ex = start_shuffle(src, grid_of(dg), dd)
            # Independent work between start and finish: what the engine
            # runs here (sibling branches, gradient bucketing) must not
            # perturb the in-flight exchange.
            _ = float(np.sum(src.local)) if src.local.size else 0.0
            overlapped = ex.finish()

            assert overlapped.dist == blocking.dist
            np.testing.assert_array_equal(overlapped.local, blocking.local)
            np.testing.assert_array_equal(blocking.to_global(), x)
            back = shuffle(blocking, grid_of(sg), sd)
            np.testing.assert_array_equal(back.local, src.local)
        return True

    assert all(run_spmd(NRANKS, prog, backend=backend))


def test_sweep_covers_edge_cases():
    """The random sweep actually contains the advertised edge cases."""
    has_src_rep = has_dst_rep = has_empty = has_uneven = False
    for shape, sg, sd, dg, dd in CASES:
        if any(not sd.is_split(d) and sg[d] > 1 for d in range(len(shape))):
            has_src_rep = True
        if any(not dd.is_split(d) and dg[d] > 1 for d in range(len(shape))):
            has_dst_rep = True
        for d in range(len(shape)):
            if sd.is_split(d) or dd.is_split(d):
                parts = max(sd.parts(d), dd.parts(d))
                if shape[d] < parts:
                    has_empty = True
                elif shape[d] % parts:
                    has_uneven = True
    assert has_src_rep and has_dst_rep and has_empty and has_uneven


class TestPlanCache:
    def test_plan_reused_across_repeated_shuffles(self):
        """Regression: the rank-pair intersections are computed once per
        (grids, distributions, shape) and cached on the communicator — a
        repeated shuffle must not re-plan."""
        x = np.arange(96.0).reshape(8, 12)
        steps = 6

        def prog(comm):
            g1, g2 = ProcessGrid(comm, (4, 1)), ProcessGrid(comm, (2, 2))
            d1, d2 = Distribution.make((4, 1)), Distribution.make((2, 2))
            src = DistTensor.from_global(g1, d1, x)
            for _ in range(steps):
                out = shuffle(src, g2, d2)
                back = start_shuffle(out, g1, d1).finish()
                np.testing.assert_array_equal(back.local, src.local)
            return shuffle_plan_stats(comm)

        for hits, misses in run_spmd(NRANKS, prog):
            assert misses == 2  # one plan per direction, ever
            assert hits == 2 * steps - 2

    def test_pooled_payloads_stable_allocation_count(self):
        """With a BufferPool, steady-state steps allocate nothing new: the
        staged send payloads are reclaimed and recycled."""
        x = np.arange(64.0).reshape(8, 8)
        steps = 6

        def prog(comm):
            g1, g2 = ProcessGrid(comm, (4, 1)), ProcessGrid(comm, (1, 4))
            d1, d2 = Distribution.make((4, 1)), Distribution.make((1, 4))
            src = DistTensor.from_global(g1, d1, x)
            # Each step stages 2 * (nranks - 1) same-shaped payloads; the
            # free list must hold them all for a fully stable steady state.
            pool = BufferPool(max_buffers_per_key=16)
            for _ in range(steps):
                out = shuffle(src, g2, d2, pool=pool)
                back = start_shuffle(out, g1, d1, pool=pool).finish()
                np.testing.assert_array_equal(back.local, src.local)
                comm.barrier()  # peers drain mailboxes -> payloads reclaimable
            return pool.stats()

        per_step = 2 * (NRANKS - 1)  # staged payloads per step per rank
        for hits, misses in run_spmd(NRANKS, prog):
            assert hits + misses == steps * per_step
            # The allocation count is O(1), not O(steps): at most two
            # step-populations of buffers exist (one free, one whose sent
            # views are still being dropped); everything else recycles.
            # Without the pool every take would be a fresh allocation.
            assert misses <= 2 * per_step, (hits, misses)
            assert hits >= (steps - 2) * per_step, (hits, misses)
