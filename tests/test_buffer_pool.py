"""BufferPool recycling: immediate reuse, deferred send-strip reclaim, and
pooled gather/scatter alltoall payloads."""

import numpy as np

from repro.comm import BufferPool, run_spmd
from repro.core.dist_layers import DistPool2d
from repro.core.parallelism import activation_dist
from repro.nn import functional as F
from repro.tensor import DistTensor, Distribution, ProcessGrid, halo_exchange


class TestImmediateReuse:
    def test_take_give_roundtrip(self):
        pool = BufferPool()
        a = pool.take((4, 4), np.float64)
        pool.give(a)
        b = pool.take((4, 4), np.float64)
        assert b is a
        assert pool.stats() == (1, 1)

    def test_mismatched_shape_allocates(self):
        pool = BufferPool()
        pool.give(pool.take((4, 4), np.float64))
        c = pool.take((8, 2), np.float64)
        assert c.shape == (8, 2)
        assert pool.stats() == (0, 2)

    def test_views_and_readonly_rejected(self):
        pool = BufferPool()
        a = np.zeros((4, 4))
        pool.give(a[:2])  # view: base is not None
        ro = np.zeros((4, 4))
        ro.flags.writeable = False
        pool.give(ro)
        assert pool.take((2, 4), np.float64) is not None
        assert pool.stats() == (0, 1)


class TestDeferredReclaim:
    def test_reclaims_only_after_view_dropped(self):
        pool = BufferPool()
        buf = pool.take((8,), np.float64)
        view = buf.view()
        view.flags.writeable = False
        pool.give_deferred(buf, view)
        # The view is still alive (simulating a mailbox holding it): the
        # buffer must NOT come back.
        again = pool.take((8,), np.float64)
        assert again is not buf
        del view
        reclaimed = pool.take((8,), np.float64)
        assert reclaimed is buf

    def test_halo_exchange_strips_reused(self):
        """Pooled halo_exchange recycles both the extended assembly buffer
        and the contiguous send strips across calls (the copy noted in the
        ROADMAP is now pool-backed)."""
        x = np.arange(64.0).reshape(8, 8)
        dist = Distribution.make((2, 2))
        iters = 5

        def prog(comm):
            grid = ProcessGrid(comm, (2, 2))
            dt = DistTensor.from_global(grid, dist, x)
            pool = BufferPool()
            for _ in range(iters):
                out = halo_exchange(dt, (1, 1), pool=pool)
                comm.barrier()  # peers have drained their mailboxes
                pool.give(out)
            return pool.stats()

        for hits, misses in run_spmd(4, prog):
            # Per iteration: 1 extended buffer + 2 send strips (one per
            # split axis on a 2x2 grid).  Everything after the cold first
            # iteration should hit; allow one strip shape still in flight.
            assert misses <= 4, (hits, misses)
            assert hits >= 3 * (iters - 1) - 2, (hits, misses)

    def test_halo_exchange_pooled_matches_unpooled(self):
        x = np.arange(144.0).reshape(12, 12)
        dist = Distribution.make((2, 2))

        def prog(comm):
            grid = ProcessGrid(comm, (2, 2))
            dt = DistTensor.from_global(grid, dist, x)
            pool = BufferPool()
            for _ in range(3):
                got = halo_exchange(dt, (2, 2), pool=pool)
                want = halo_exchange(dt, (2, 2))
                np.testing.assert_array_equal(got, want)
                pool.give(got)
            return True

        assert all(run_spmd(4, prog))


class TestGatherScatterPayloadPooling:
    """gather_region replies and scatter_region_add contributions are
    staged through the pool and recycled across calls."""

    def test_gather_region_reply_payloads_recycled(self):
        x = np.arange(144.0).reshape(12, 12)
        dist = Distribution.make((2, 2))
        iters = 6

        def prog(comm):
            grid = ProcessGrid(comm, (2, 2))
            dt = DistTensor.from_global(grid, dist, x)
            pool = BufferPool(max_buffers_per_key=16)
            (hlo, hhi), (wlo, whi) = dt.bounds
            for _ in range(iters):
                out = dt.gather_region((hlo - 2, wlo - 2), (hhi + 2, whi + 2), pool=pool)
                comm.barrier()  # peers drain -> reply views reclaimable
                pool.give(out)
            return pool.stats()

        for hits, misses in run_spmd(4, prog):
            # O(1) allocations over O(iters) takes: only the warmup
            # populations miss, everything afterwards recycles.
            assert hits > misses, (hits, misses)

    def test_gather_region_pooled_matches_unpooled(self):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((9, 13))
        dist = Distribution.make((2, 2))

        def prog(comm):
            grid = ProcessGrid(comm, (2, 2))
            dt = DistTensor.from_global(grid, dist, x)
            pool = BufferPool()
            (hlo, hhi), (wlo, whi) = dt.bounds
            region = ((hlo - 1, wlo - 2), (hhi + 2, whi + 1))
            for _ in range(3):
                got = dt.gather_region(*region, pool=pool)
                want = dt.gather_region(*region)
                np.testing.assert_array_equal(got, want)
                pool.give(got)
            return True

        assert all(run_spmd(4, prog))

    def test_scatter_region_add_pooled_matches_unpooled(self):
        rng = np.random.default_rng(8)
        contributions = rng.standard_normal((4, 7, 7))
        dist = Distribution.make((2, 2))

        def prog(comm):
            grid = ProcessGrid(comm, (2, 2))
            pool = BufferPool()
            outs = []
            for pooled in (True, False):
                dt = DistTensor.zeros(grid, dist, (10, 10))
                for _ in range(2):
                    dt.scatter_region_add(
                        contributions[comm.rank], (comm.rank, comm.rank),
                        pool=pool if pooled else None,
                    )
                outs.append(dt.to_global())
            np.testing.assert_array_equal(outs[0], outs[1])
            return True

        assert all(run_spmd(4, prog))

    def test_dist_pool2d_numerics_unchanged_under_pooling(self):
        """DistPool2d now routes its gather/scatter traffic through an
        internal pool; forward/backward must replicate the single-device
        result exactly, and repeated steps must recycle buffers."""
        rng = np.random.default_rng(9)
        x = rng.standard_normal((2, 3, 8, 8))
        y_ref, argmax = F.maxpool2d_forward(x, (2, 2), (2, 2), 0)
        dy = rng.standard_normal(y_ref.shape)
        dx_ref = F.maxpool2d_backward(dy, argmax, x.shape, (2, 2), (2, 2), 0)
        grid_shape = (1, 1, 2, 2)

        def prog(comm):
            grid = ProcessGrid(comm, grid_shape)
            dist = activation_dist(grid_shape, x.shape)
            xd = DistTensor.from_global(grid, dist, x)
            layer = DistPool2d(grid, "max", 2, 2)
            for _ in range(3):
                y = layer.forward(xd)
                dyd = DistTensor.from_global(grid, y.dist, dy)
                dx = layer.backward(dyd)
                comm.barrier()
            return y.to_global(), dx.to_global(), layer._pool.stats()

        for y, dx, (hits, misses) in run_spmd(4, prog):
            np.testing.assert_array_equal(y, y_ref)
            np.testing.assert_array_equal(dx, dx_ref)
            assert hits > 0, (hits, misses)  # later steps recycled buffers
