"""BufferPool recycling: immediate reuse and deferred send-strip reclaim."""

import numpy as np

from repro.comm import BufferPool, run_spmd
from repro.tensor import DistTensor, Distribution, ProcessGrid, halo_exchange


class TestImmediateReuse:
    def test_take_give_roundtrip(self):
        pool = BufferPool()
        a = pool.take((4, 4), np.float64)
        pool.give(a)
        b = pool.take((4, 4), np.float64)
        assert b is a
        assert pool.stats() == (1, 1)

    def test_mismatched_shape_allocates(self):
        pool = BufferPool()
        pool.give(pool.take((4, 4), np.float64))
        c = pool.take((8, 2), np.float64)
        assert c.shape == (8, 2)
        assert pool.stats() == (0, 2)

    def test_views_and_readonly_rejected(self):
        pool = BufferPool()
        a = np.zeros((4, 4))
        pool.give(a[:2])  # view: base is not None
        ro = np.zeros((4, 4))
        ro.flags.writeable = False
        pool.give(ro)
        assert pool.take((2, 4), np.float64) is not None
        assert pool.stats() == (0, 1)


class TestDeferredReclaim:
    def test_reclaims_only_after_view_dropped(self):
        pool = BufferPool()
        buf = pool.take((8,), np.float64)
        view = buf.view()
        view.flags.writeable = False
        pool.give_deferred(buf, view)
        # The view is still alive (simulating a mailbox holding it): the
        # buffer must NOT come back.
        again = pool.take((8,), np.float64)
        assert again is not buf
        del view
        reclaimed = pool.take((8,), np.float64)
        assert reclaimed is buf

    def test_halo_exchange_strips_reused(self):
        """Pooled halo_exchange recycles both the extended assembly buffer
        and the contiguous send strips across calls (the copy noted in the
        ROADMAP is now pool-backed)."""
        x = np.arange(64.0).reshape(8, 8)
        dist = Distribution.make((2, 2))
        iters = 5

        def prog(comm):
            grid = ProcessGrid(comm, (2, 2))
            dt = DistTensor.from_global(grid, dist, x)
            pool = BufferPool()
            for _ in range(iters):
                out = halo_exchange(dt, (1, 1), pool=pool)
                comm.barrier()  # peers have drained their mailboxes
                pool.give(out)
            return pool.stats()

        for hits, misses in run_spmd(4, prog):
            # Per iteration: 1 extended buffer + 2 send strips (one per
            # split axis on a 2x2 grid).  Everything after the cold first
            # iteration should hit; allow one strip shape still in flight.
            assert misses <= 4, (hits, misses)
            assert hits >= 3 * (iters - 1) - 2, (hits, misses)

    def test_halo_exchange_pooled_matches_unpooled(self):
        x = np.arange(144.0).reshape(12, 12)
        dist = Distribution.make((2, 2))

        def prog(comm):
            grid = ProcessGrid(comm, (2, 2))
            dt = DistTensor.from_global(grid, dist, x)
            pool = BufferPool()
            for _ in range(3):
                got = halo_exchange(dt, (2, 2), pool=pool)
                want = halo_exchange(dt, (2, 2))
                np.testing.assert_array_equal(got, want)
                pool.give(got)
            return True

        assert all(run_spmd(4, prog))
