"""Neighbor halo exchange and all-to-all redistribution (shuffle)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import run_spmd
from repro.tensor import DistTensor, Distribution, ProcessGrid, halo_exchange, shuffle
from repro.tensor.indexing import extract_padded
from repro.tensor.shuffle import shuffle_cost_bytes


class TestHaloExchange:
    @pytest.mark.parametrize("grid_shape,nranks", [((2, 2), 4), ((4, 1), 4), ((1, 4), 4)])
    def test_matches_gather_region(self, grid_shape, nranks):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((8, 8))
        dist = Distribution.make(grid_shape)

        def prog(comm):
            grid = ProcessGrid(comm, grid_shape)
            dt = DistTensor.from_global(grid, dist, x)
            got = halo_exchange(dt, (1, 1))
            (hlo, hhi), (wlo, whi) = dt.bounds
            want = extract_padded(x, (hlo - 1, wlo - 1), (hhi + 1, whi + 1))
            np.testing.assert_array_equal(got, want)
            return True

        assert all(run_spmd(nranks, prog))

    def test_width_two_with_corners(self):
        """Width-2 halos on a 2x2 grid: corner data crosses diagonally via the
        two-phase exchange."""
        x = np.arange(144.0).reshape(12, 12)
        dist = Distribution.make((2, 2))

        def prog(comm):
            grid = ProcessGrid(comm, (2, 2))
            dt = DistTensor.from_global(grid, dist, x)
            got = halo_exchange(dt, (2, 2))
            (hlo, hhi), (wlo, whi) = dt.bounds
            want = extract_padded(x, (hlo - 2, wlo - 2), (hhi + 2, whi + 2))
            np.testing.assert_array_equal(got, want)
            return True

        assert all(run_spmd(4, prog))

    def test_zero_width_is_padding_free(self):
        x = np.arange(16.0).reshape(4, 4)
        dist = Distribution.make((2, 2))

        def prog(comm):
            grid = ProcessGrid(comm, (2, 2))
            dt = DistTensor.from_global(grid, dist, x)
            got = halo_exchange(dt, (0, 0))
            np.testing.assert_array_equal(got, dt.local)
            return True

        assert all(run_spmd(4, prog))

    def test_4d_cnn_layout(self):
        """Halo only on spatial axes of an (N, C, H, W) tensor."""
        rng = np.random.default_rng(11)
        x = rng.standard_normal((2, 3, 8, 8))
        dist = Distribution.make((1, 1, 2, 2))

        def prog(comm):
            grid = ProcessGrid(comm, (1, 1, 2, 2))
            dt = DistTensor.from_global(grid, dist, x)
            got = halo_exchange(dt, (0, 0, 1, 1))
            b = dt.bounds
            want = extract_padded(
                x,
                (b[0][0], b[1][0], b[2][0] - 1, b[3][0] - 1),
                (b[0][1], b[1][1], b[2][1] + 1, b[3][1] + 1),
            )
            np.testing.assert_array_equal(got, want)
            return True

        assert all(run_spmd(4, prog))

    def test_width_exceeding_block_raises(self):
        x = np.zeros((4, 4))
        dist = Distribution.make((4, 1))

        def prog(comm):
            grid = ProcessGrid(comm, (4, 1))
            dt = DistTensor.from_global(grid, dist, x)
            halo_exchange(dt, (2, 0))

        with pytest.raises(ValueError, match="use gather_region"):
            run_spmd(4, prog, timeout=10)

    def test_message_count_matches_paper(self):
        """Two messages per split axis per rank (interior ranks), as in the
        paper's east/west + north/south exchange."""
        x = np.zeros((8, 8))
        dist = Distribution.make((1, 4))

        def prog(comm):
            grid = ProcessGrid(comm, (1, 4))
            dt = DistTensor.from_global(grid, dist, x)
            comm.stats.reset()
            halo_exchange(dt, (1, 1))
            return comm.stats.sends

        sends = run_spmd(4, prog)
        assert sends == [1, 2, 2, 1]  # edge ranks have one neighbor


class TestShuffle:
    @pytest.mark.parametrize(
        "src_shape,dst_shape",
        [
            ((4, 1), (1, 4)),
            ((2, 2), (4, 1)),
            ((1, 4), (2, 2)),
            ((2, 2), (2, 2)),
        ],
    )
    def test_redistribution_preserves_tensor(self, src_shape, dst_shape):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((8, 12))

        def prog(comm):
            src_grid = ProcessGrid(comm, src_shape)
            src = DistTensor.from_global(src_grid, Distribution.make(src_shape), x)
            dst_grid = ProcessGrid(comm, dst_shape)
            dst = shuffle(src, dst_grid, Distribution.make(dst_shape))
            return dst.to_global()

        for got in run_spmd(4, prog):
            np.testing.assert_array_equal(got, x)

    def test_sample_to_spatial_cnn(self):
        """The paper's §III-C case: sample-parallel conv -> spatially
        partitioned conv on a 4D (N, C, H, W) tensor."""
        rng = np.random.default_rng(6)
        x = rng.standard_normal((4, 3, 8, 8))

        def prog(comm):
            sample_grid = ProcessGrid(comm, (4, 1, 1, 1))
            src = DistTensor.from_global(
                sample_grid, Distribution.make((4, 1, 1, 1)), x
            )
            spatial_grid = ProcessGrid(comm, (1, 1, 2, 2))
            dst = shuffle(src, spatial_grid, Distribution.make((1, 1, 2, 2)))
            assert dst.local.shape == (4, 3, 4, 4)
            return dst.to_global()

        for got in run_spmd(4, prog):
            np.testing.assert_array_equal(got, x)

    def test_to_replicated(self):
        """Partitioned -> fully replicated (allgather pattern)."""
        x = np.arange(24.0).reshape(4, 6)

        def prog(comm):
            g1 = ProcessGrid(comm, (2, 2))
            src = DistTensor.from_global(g1, Distribution.make((2, 2)), x)
            dst = shuffle(src, g1, Distribution.fully_replicated(2, (2, 2)))
            return dst.local.copy()

        for got in run_spmd(4, prog):
            np.testing.assert_array_equal(got, x)

    def test_from_replicated_dedup(self):
        """Replicated -> partitioned must ship each element exactly once."""
        x = np.arange(16.0).reshape(4, 4)

        def prog(comm):
            g = ProcessGrid(comm, (2, 2))
            src = DistTensor.from_global(g, Distribution.fully_replicated(2, (2, 2)), x)
            dst = shuffle(src, g, Distribution.make((2, 2)))
            return dst.to_global()

        for got in run_spmd(4, prog):
            np.testing.assert_array_equal(got, x)

    def test_identity_shuffle_no_offrank_traffic(self):
        x = np.arange(16.0).reshape(4, 4)
        dist = Distribution.make((2, 2))

        def prog(comm):
            g = ProcessGrid(comm, (2, 2))
            src = DistTensor.from_global(g, dist, x)
            return shuffle_cost_bytes(src, g, dist)

        assert run_spmd(4, prog) == [0, 0, 0, 0]

    def test_rank_mismatch_raises(self):
        x = np.zeros((4, 4))

        def prog(comm):
            g = ProcessGrid(comm, (2, 2))
            src = DistTensor.from_global(g, Distribution.make((2, 2)), x)
            shuffle(src, g, Distribution.make((2,)))

        with pytest.raises(ValueError, match="rank mismatch"):
            run_spmd(4, prog, timeout=10)


@settings(max_examples=15, deadline=None)
@given(
    h=st.integers(min_value=4, max_value=10),
    w=st.integers(min_value=4, max_value=10),
    seed=st.integers(min_value=0, max_value=100),
)
def test_shuffle_roundtrip_property(h, w, seed):
    """src -> dst -> src recovers the original shards exactly."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((h, w))

    def prog(comm):
        g1 = ProcessGrid(comm, (4, 1))
        g2 = ProcessGrid(comm, (1, 4))
        d1, d2 = Distribution.make((4, 1)), Distribution.make((1, 4))
        src = DistTensor.from_global(g1, d1, x)
        back = shuffle(shuffle(src, g2, d2), g1, d1)
        np.testing.assert_array_equal(back.local, src.local)
        return True

    assert all(run_spmd(4, prog))
