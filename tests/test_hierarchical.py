"""Hierarchical collectives: two-tier cost model, schedules, and counters.

Three layers are pinned here:

* **model** — :func:`select_allreduce_algorithm` consults the two-tier
  (intra/inter) bandwidth-latency model when a hierarchical topology is
  supplied: the composed schedule wins when the inter-node link is the
  bottleneck, degenerates to the flat Thakur rule for one-node layouts,
  and the modeled inter-node wire bytes are an exact formula;
* **schedules** — :func:`compile_hierarchical_allreduce` produces
  deterministic three-phase schedules (intra reduce-scatter → inter
  allreduce → intra allgather) that match ``"direct"`` numerically for
  every layout and inter algorithm, while moving strictly fewer
  inter-node bytes than the flat ring;
* **counters** — the schedule runner's ``wire_*_inter`` tallies and the
  socket backend's TCP payload counter both equal the model's predicted
  inter-node volume *exactly* (payload sizes divisible by ``p`` keep the
  chunk table uniform, so modeled == measured to the byte).
"""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.comm.algorithms import Step, compile_hierarchical_allreduce
from repro.comm.collective_models import (
    HIERARCHICAL_ALGORITHM,
    AllreduceAlgorithm,
    LinkParameters,
    TwoTierTopology,
    allreduce_time,
    allreduce_wire_bytes,
    hierarchical_allreduce_time,
    hierarchical_inter_wire_bytes,
    select_allreduce_algorithm,
    select_inter_algorithm,
)
from repro.perfmodel.machine import LASSEN

HOSTMAP_2X2 = "0,1:A 2,3:B"


# ---------------------------------------------------------------------------
# The two-tier cost model
# ---------------------------------------------------------------------------


class TestTwoTierModel:
    def test_hierarchical_wins_when_inter_is_the_bottleneck(self):
        slow_inter = TwoTierTopology(
            nnodes=2, ranks_per_node=2,
            inter=LinkParameters(alpha=50e-6, beta=1 / 1e9, gamma=1 / 500e9),
        )
        assert (
            select_allreduce_algorithm(4, 64 << 10, slow_inter)
            == HIERARCHICAL_ALGORITHM
        )
        # The default Lassen-like links (NVLink in, EDR out) already favor
        # it for bandwidth-bound payloads.
        assert (
            select_allreduce_algorithm(4, 1 << 20, TwoTierTopology(2, 2))
            == HIERARCHICAL_ALGORITHM
        )

    def test_latency_bound_payloads_stay_flat(self):
        # 64 B at p=4: one flat recursive-doubling round trip beats the
        # three-phase composition's extra latency terms.
        got = select_allreduce_algorithm(4, 64, TwoTierTopology(2, 2))
        assert got == AllreduceAlgorithm.RECURSIVE_DOUBLING

    @pytest.mark.parametrize(
        "topo",
        [
            TwoTierTopology(nnodes=1, ranks_per_node=4),  # one node
            TwoTierTopology(nnodes=4, ranks_per_node=1),  # one rank/node
        ],
    )
    def test_degenerate_topologies_collapse_to_flat(self, topo):
        assert not topo.hierarchical
        for nbytes in (64, 64 << 10, 4 << 20):
            assert select_allreduce_algorithm(4, nbytes, topo) == (
                select_allreduce_algorithm(4, nbytes)
            )
            # The degenerate time model equals the flat model on the
            # active link (intra for one node, inter for one rank/node).
            link = topo.intra if topo.nnodes == 1 else topo.inter
            assert hierarchical_allreduce_time(nbytes, topo) == pytest.approx(
                allreduce_time(4, nbytes, link)
            )

    def test_size_mismatch_falls_back_to_flat(self):
        # A communicator smaller than the topology (split groups) must not
        # be priced hierarchically.
        topo = TwoTierTopology(2, 2)
        assert select_allreduce_algorithm(2, 1 << 20, topo) == (
            select_allreduce_algorithm(2, 1 << 20)
        )

    def test_hierarchical_time_decomposition(self):
        topo = TwoTierTopology(2, 2)
        n = float(1 << 20)
        k, m = 2, 2
        frac = (k - 1) / k
        rs = (k - 1) * topo.intra.alpha + frac * n * (
            topo.intra.beta + topo.intra.gamma
        )
        ag = (k - 1) * topo.intra.alpha + frac * n * topo.intra.beta
        mid = allreduce_time(m, n / k, topo.inter)
        assert hierarchical_allreduce_time(n, topo) == pytest.approx(
            rs + mid + ag
        )

    def test_inter_wire_bytes_formula(self):
        topo = TwoTierTopology(2, 2)
        n = float(1 << 20)
        # Ring over m=2 on the n/k segment: 2*(n/k)*(m-1)/m = n/2.
        assert hierarchical_inter_wire_bytes(
            n, topo, AllreduceAlgorithm.RING
        ) == pytest.approx(n / 2)
        assert hierarchical_inter_wire_bytes(
            n, TwoTierTopology(1, 4)
        ) == 0.0

    def test_machine_spec_exposes_the_same_model(self):
        topo = LASSEN.two_tier(nnodes=8)
        assert topo.ranks_per_node == LASSEN.gpus_per_node
        assert topo.intra == LASSEN.intra_link
        n = 4 << 20
        assert LASSEN.hierarchical_allreduce_time(8, n) == pytest.approx(
            hierarchical_allreduce_time(n, topo)
        )

    def test_inter_algorithm_selection_is_flat_thakur(self):
        assert (
            select_inter_algorithm(2, 64)
            == AllreduceAlgorithm.RECURSIVE_DOUBLING
        )
        assert select_inter_algorithm(2, 1 << 20) in (
            AllreduceAlgorithm.RABENSEIFNER, AllreduceAlgorithm.RING,
        )


# ---------------------------------------------------------------------------
# The compiled schedules
# ---------------------------------------------------------------------------


class TestHierarchicalSchedules:
    @pytest.mark.parametrize(
        "nodes",
        [
            ((0, 1), (2, 3)),
            ((0, 2), (1, 3)),          # interleaved rank placement
            ((0, 1, 2), (3, 4, 5)),
            ((0, 1), (2, 3), (4, 5), (6, 7)),
        ],
    )
    @pytest.mark.parametrize(
        "inter", ["ring", "recursive_doubling", "rabenseifner"]
    )
    def test_matches_direct_numerically(self, nodes, inter):
        p = sum(len(g) for g in nodes)
        n = 257  # deliberately not divisible by p: ragged chunk table

        def prog(comm):
            from repro.comm.algorithms import ScheduleRunner

            rng = np.random.default_rng(99 + comm.rank)
            x = rng.standard_normal(n).astype(np.float64)
            ref = comm.allreduce(x, algorithm="direct")
            steps = compile_hierarchical_allreduce(nodes, inter)[comm.rank]
            runner = ScheduleRunner(
                comm, "allreduce", steps, x,
                lambda a, b: a + b, comm._next_alg_seq(),
            )
            got = runner.finish()
            assert np.allclose(got, ref, rtol=1e-10, atol=1e-10)
            return runner.wire_sent

        sent = run_spmd(p, prog)
        # Total volume stays bandwidth-optimal-ish: every rank moves data;
        # the exact per-rank figure depends on the ragged chunk table.
        assert all(s > 0 for s in sent)

    def test_total_volume_matches_flat_ring_when_divisible(self):
        nodes = ((0, 1), (2, 3))
        p, n = 4, 4096  # divisible: every chunk is exactly n/p elements

        def prog(comm):
            from repro.comm.algorithms import ScheduleRunner

            x = np.ones(n, dtype=np.float64)
            steps = compile_hierarchical_allreduce(nodes, "ring")[comm.rank]
            runner = ScheduleRunner(
                comm, "allreduce", steps, x,
                lambda a, b: a + b, comm._next_alg_seq(),
            )
            runner.finish()
            return runner.wire_sent

        nbytes = n * 8
        expect = allreduce_wire_bytes(p, nbytes, AllreduceAlgorithm.RING)
        assert run_spmd(p, prog) == [int(expect)] * p

    def test_validation(self):
        with pytest.raises(ValueError, match="uniform"):
            compile_hierarchical_allreduce(((0, 1), (2,)), "ring")
        with pytest.raises(ValueError, match="exactly once"):
            compile_hierarchical_allreduce(((0, 1), (1, 2)), "ring")
        with pytest.raises(ValueError, match="inter-node algorithm"):
            compile_hierarchical_allreduce(((0, 1), (2, 3)), "bogus")

    def test_deterministic_and_cached(self):
        a = compile_hierarchical_allreduce(((0, 1), (2, 3)), "ring")
        b = compile_hierarchical_allreduce(((0, 1), (2, 3)), "ring")
        assert a is b  # lru_cache: one compilation per layout
        assert all(isinstance(s, Step) for sched in a for s in sched)


# ---------------------------------------------------------------------------
# Modeled == measured inter-node bytes
# ---------------------------------------------------------------------------


def _measured_inter(backend, algorithm, n_elems):
    """Per-rank (inter_sent, total_sent) for one allreduce."""

    def prog(comm):
        x = np.ones(n_elems, dtype=np.float32)
        comm.stats.reset()
        comm.allreduce(x, algorithm=algorithm)
        return (
            comm.stats.total_wire_sent_inter("allreduce"),
            comm.stats.total_wire_sent("allreduce"),
        )

    return run_spmd(
        4, prog, backend=backend, hostmap=HOSTMAP_2X2, timeout=60
    )


class TestModeledEqualsMeasured:
    N = 16384  # divisible by p=4: uniform chunks, exact byte equality

    def test_hierarchical_inter_bytes_match_the_model_exactly(self):
        nbytes = self.N * 4
        topo = TwoTierTopology(2, 2)
        inter_alg = select_inter_algorithm(2, nbytes / 2)
        model = hierarchical_inter_wire_bytes(nbytes, topo, inter_alg)
        for inter_sent, total_sent in _measured_inter(
            "thread", "hierarchical", self.N
        ):
            assert inter_sent == int(model)
            assert total_sent == int(
                allreduce_wire_bytes(4, nbytes, AllreduceAlgorithm.RING)
            )

    def test_hierarchical_beats_flat_ring_on_the_inter_wire(self):
        hier = _measured_inter("thread", "hierarchical", self.N)
        ring = _measured_inter("thread", "ring", self.N)
        assert sum(h[0] for h in hier) < sum(r[0] for r in ring)
        assert max(h[0] for h in hier) < max(r[0] for r in ring)
        # ...at identical total volume (both are bandwidth-optimal).
        assert sum(h[1] for h in hier) == sum(r[1] for r in ring)

    def test_socket_transport_counter_agrees(self):
        # The TCP payload-byte counter is the *transport-level* measured
        # analogue of the CommStats inter tally: for a lone allreduce the
        # two must agree to the byte.
        def prog(comm):
            x = np.ones(self.N, dtype=np.float32)
            before = comm._world.transport["tcp_payload_bytes"]
            comm.stats.reset()
            comm.allreduce(x, algorithm="hierarchical")
            tcp = comm._world.transport["tcp_payload_bytes"] - before
            return tcp, comm.stats.total_wire_sent_inter("allreduce")

        for tcp, inter in run_spmd(
            4, prog, backend="socket", hostmap=HOSTMAP_2X2, timeout=60
        ):
            assert tcp == inter
            assert tcp == int(
                hierarchical_inter_wire_bytes(
                    self.N * 4, TwoTierTopology(2, 2),
                    select_inter_algorithm(2, self.N * 2),
                )
            )


# ---------------------------------------------------------------------------
# Communicator plumbing
# ---------------------------------------------------------------------------


class TestCommunicatorHierarchy:
    def test_hierarchy_detected_from_the_hostmap(self):
        def prog(comm):
            return comm.hierarchy()

        assert run_spmd(4, prog, hostmap=HOSTMAP_2X2) == [
            ((0, 1), (2, 3))
        ] * 4

    def test_no_hostmap_means_no_hierarchy(self, monkeypatch):
        # Shed any ambient REPRO_HOSTMAP (CI's multi-host job exports one).
        monkeypatch.delenv("REPRO_HOSTMAP", raising=False)

        def prog(comm):
            return comm.hierarchy()

        assert run_spmd(4, prog) == [None] * 4

    def test_non_uniform_layout_is_unusable(self):
        def prog(comm):
            return comm.hierarchy()

        assert run_spmd(4, prog, hostmap="0,1,2:A 3:B") == [None] * 4

    def test_split_communicator_regroups(self):
        # Splitting 8 ranks on "0,1:A 2,3:B" (folded) by parity: the even
        # group's world ranks {0,2,4,6} land on nodes A,B,A,B, so in
        # comm-rank space the sub-communicator sees the interleaved — but
        # still uniform 2x2 — layout ((0,2),(1,3)).
        def prog(comm):
            sub = comm.split(comm.rank % 2)
            return sub.hierarchy()

        out = run_spmd(8, prog, hostmap=HOSTMAP_2X2)
        assert all(h == ((0, 2), (1, 3)) for h in out)

    def test_forced_hierarchical_without_layout_falls_back(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOSTMAP", raising=False)

        def prog(comm):
            x = np.ones(1024, dtype=np.float64)
            ref = comm.allreduce(x, algorithm="direct")
            got = comm.allreduce(x, algorithm="hierarchical")  # no hostmap
            assert np.allclose(got, ref)
            return True

        assert all(run_spmd(4, prog))

    def test_env_override_selects_hierarchical(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLLECTIVE_ALG", "hierarchical")

        def prog(comm):
            x = np.ones(4096, dtype=np.float32)
            comm.stats.reset()
            comm.allreduce(x)
            return comm.stats.total_wire_sent_inter("allreduce")

        nbytes = 4096 * 4
        expect = int(
            hierarchical_inter_wire_bytes(
                nbytes, TwoTierTopology(2, 2),
                select_inter_algorithm(2, nbytes / 2),
            )
        )
        assert run_spmd(4, prog, hostmap=HOSTMAP_2X2) == [expect] * 4

    def test_auto_goes_hierarchical_for_large_payloads(self):
        def prog(comm):
            x = np.ones(1 << 18, dtype=np.float32)  # 1 MiB
            comm.stats.reset()
            comm.allreduce(x)  # auto
            return comm.stats.total_wire_sent_inter("allreduce") > 0

        def prog_small(comm):
            x = np.ones(8, dtype=np.float32)  # 32 B: flat rec-doubling
            comm.stats.reset()
            comm.allreduce(x)
            return comm.stats.total_wire_sent_inter("allreduce")

        assert all(run_spmd(4, prog, hostmap=HOSTMAP_2X2))
        # Small payloads stay flat — but still cross the node boundary.
        small = run_spmd(4, prog_small, hostmap=HOSTMAP_2X2)
        assert all(s > 0 for s in small)
