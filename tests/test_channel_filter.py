"""Channel- and filter-parallel convolution (§III-D extension)."""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.core.channel_filter import (
    ChannelParallelConv2d,
    FilterParallelConv2d,
    _channel_replicated_dist,
)
from repro.nn import functional as F
from repro.tensor import DistTensor, Distribution, ProcessGrid

RTOL = 1e-10


def reference(x, w, s, p):
    y = F.conv2d_forward(x, w, stride=s, pad=p)
    rng = np.random.default_rng(99)
    dy = rng.standard_normal(y.shape)
    dx = F.conv2d_backward_data(dy, w, stride=s, pad=p, x_spatial=x.shape[2:])
    dw = F.conv2d_backward_filter(x, dy, kernel=w.shape[2], stride=s, pad=p)
    return y, dy, dx, dw


class TestChannelParallel:
    @pytest.mark.parametrize(
        "grid_shape,s,p,k",
        [
            ((1, 2, 1, 1), 1, 1, 3),
            ((1, 4, 1, 1), 1, 1, 3),
            ((1, 2, 2, 1), 2, 2, 5),  # channel + spatial hybrid
            ((2, 2, 1, 1), 1, 0, 1),  # sample + channel
        ],
    )
    def test_exactness(self, grid_shape, s, p, k):
        nranks = int(np.prod(grid_shape))
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 8, 12, 12))
        w = rng.standard_normal((5, 8, k, k))
        y_ref, dy_ref, dx_ref, dw_ref = reference(x, w, s, p)

        def prog(comm):
            grid = ProcessGrid(comm, grid_shape)
            x_dist = Distribution.make(grid_shape)  # C block-split
            xd = DistTensor.from_global(grid, x_dist, x)
            conv = ChannelParallelConv2d(grid, w, stride=s, pad=p)
            y = conv.forward(xd)
            dy = DistTensor.from_global(grid, y.dist, dy_ref)
            dx, dw_local = conv.backward(dy)
            # dw reduction group: every axis except the channel axis.
            axes = [d for d in (0, 2, 3) if grid.shape[d] > 1]
            if axes:
                dw_local = grid.axes_comm(axes).allreduce(dw_local)
            return y.to_global(), dx.to_global(), dw_local, conv.c_lo, conv.c_hi

        for y, dx, dw_slice, c_lo, c_hi in run_spmd(nranks, prog):
            np.testing.assert_allclose(y, y_ref, rtol=RTOL, atol=1e-12)
            np.testing.assert_allclose(dx, dx_ref, rtol=RTOL, atol=1e-12)
            np.testing.assert_allclose(
                dw_slice, dw_ref[:, c_lo:c_hi], rtol=1e-9, atol=1e-11
            )

    def test_output_replicated_across_channel_group(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 4, 6, 6))
        w = rng.standard_normal((3, 4, 3, 3))

        def prog(comm):
            grid = ProcessGrid(comm, (1, 2, 1, 1))
            xd = DistTensor.from_global(grid, Distribution.make((1, 2, 1, 1)), x)
            y = ChannelParallelConv2d(grid, w, pad=1).forward(xd)
            assert not y.dist.is_split(1)
            return y.local.copy()

        ys = run_spmd(2, prog)
        np.testing.assert_array_equal(ys[0], ys[1])

    def test_pool_recycles_with_stable_numerics(self):
        """Channel-parallel twin of the filter-parallel pooling test."""
        rng = np.random.default_rng(22)
        x = rng.standard_normal((2, 4, 10, 10))
        w = rng.standard_normal((5, 4, 3, 3))

        def prog(comm):
            grid = ProcessGrid(comm, (1, 2, 1, 1))
            xd = DistTensor.from_global(grid, Distribution.make((1, 2, 1, 1)), x)
            conv = ChannelParallelConv2d(grid, w, pad=1)
            outs = []
            for _ in range(3):
                y = conv.forward(xd)
                dyd = DistTensor.from_global(
                    grid, y.dist, np.ones(y.global_shape)
                )
                dx, dw_local = conv.backward(dyd)
                outs.append((y.to_global(), dx.to_global(), dw_local.copy()))
                comm.barrier()
            return outs, conv._pool.stats()

        for outs, (hits, misses) in run_spmd(2, prog):
            first = outs[0]
            for later in outs[1:]:
                for a, b in zip(later, first):
                    np.testing.assert_array_equal(a, b)
            assert hits > 0, (hits, misses)

    def test_rejects_unsplit_input(self):
        def prog(comm):
            grid = ProcessGrid(comm, (1, 2, 1, 1))
            xd = DistTensor.from_global(
                grid, _channel_replicated_dist((1, 2, 1, 1), (1, 4, 6, 6)),
                np.zeros((1, 4, 6, 6)),
            )
            ChannelParallelConv2d(grid, np.zeros((2, 4, 3, 3))).forward(xd)

        with pytest.raises(ValueError, match="channel-partitioned"):
            run_spmd(2, prog, timeout=10)

    def test_rejects_trivial_grid(self):
        def prog(comm):
            grid = ProcessGrid(comm, (1, 1, 1, 1))
            ChannelParallelConv2d(grid, np.zeros((2, 4, 3, 3)))

        with pytest.raises(ValueError, match="axis 1"):
            run_spmd(1, prog, timeout=10)


class TestFilterParallel:
    @pytest.mark.parametrize(
        "grid_shape,s,p,k",
        [
            ((1, 2, 1, 1), 1, 1, 3),
            ((1, 4, 1, 1), 1, 1, 3),
            ((1, 2, 1, 2), 2, 1, 3),  # filter + spatial hybrid
            ((2, 2, 1, 1), 1, 0, 1),  # sample + filter ("model-parallel FC")
        ],
    )
    def test_exactness(self, grid_shape, s, p, k):
        nranks = int(np.prod(grid_shape))
        rng = np.random.default_rng(2)
        x = rng.standard_normal((2, 6, 12, 12))
        w = rng.standard_normal((8, 6, k, k))
        y_ref, dy_ref, dx_ref, dw_ref = reference(x, w, s, p)

        def prog(comm):
            grid = ProcessGrid(comm, grid_shape)
            x_dist = _channel_replicated_dist(grid_shape, x.shape)
            xd = DistTensor.from_global(grid, x_dist, x)
            conv = FilterParallelConv2d(grid, w, stride=s, pad=p)
            y = conv.forward(xd)
            assert y.dist.is_split(1) or grid.shape[1] == 1
            dy = DistTensor.from_global(grid, y.dist, dy_ref)
            dx, dw_local = conv.backward(dy)
            axes = [d for d in (0, 2, 3) if grid.shape[d] > 1]
            if axes:
                dw_local = grid.axes_comm(axes).allreduce(dw_local)
            return y.to_global(), dx.to_global(), dw_local, conv.f_lo, conv.f_hi

        for y, dx, dw_slice, f_lo, f_hi in run_spmd(nranks, prog):
            np.testing.assert_allclose(y, y_ref, rtol=RTOL, atol=1e-12)
            np.testing.assert_allclose(dx, dx_ref, rtol=RTOL, atol=1e-12)
            np.testing.assert_allclose(
                dw_slice, dw_ref[f_lo:f_hi], rtol=1e-9, atol=1e-11
            )

    def test_filter_feeds_channel_without_shuffle(self):
        """Filter-parallel output (F split) is directly the C-split input of
        a channel-parallel successor — the §III-D pairing."""
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1, 4, 8, 8))
        w1 = rng.standard_normal((6, 4, 3, 3))
        w2 = rng.standard_normal((5, 6, 3, 3))
        y1_ref = F.conv2d_forward(x, w1, pad=1)
        y2_ref = F.conv2d_forward(y1_ref, w2, pad=1)

        def prog(comm):
            grid = ProcessGrid(comm, (1, 2, 1, 1))
            xd = DistTensor.from_global(
                grid, _channel_replicated_dist((1, 2, 1, 1), x.shape), x
            )
            conv1 = FilterParallelConv2d(grid, w1, pad=1)
            conv2 = ChannelParallelConv2d(grid, w2, pad=1)
            y1 = conv1.forward(xd)
            y2 = conv2.forward(y1)  # no redistribution in between
            return y2.to_global()

        for y2 in run_spmd(2, prog):
            np.testing.assert_allclose(y2, y2_ref, rtol=RTOL, atol=1e-12)

    def test_rejects_split_input(self):
        def prog(comm):
            grid = ProcessGrid(comm, (1, 2, 1, 1))
            xd = DistTensor.from_global(
                grid, Distribution.make((1, 2, 1, 1)), np.zeros((1, 4, 6, 6))
            )
            FilterParallelConv2d(grid, np.zeros((4, 4, 3, 3))).forward(xd)

        with pytest.raises(ValueError, match="replicated"):
            run_spmd(2, prog, timeout=10)

    def test_pool_recycles_with_stable_numerics(self):
        """The channel/filter convolutions stage their gathered regions and
        alltoall reply payloads through an internal BufferPool; repeated
        steps must recycle buffers without perturbing any value."""
        rng = np.random.default_rng(21)
        x = rng.standard_normal((2, 4, 10, 10))
        w = rng.standard_normal((6, 4, 3, 3))

        def prog(comm):
            grid = ProcessGrid(comm, (1, 2, 1, 1))
            xd = DistTensor.from_global(
                grid, _channel_replicated_dist((1, 2, 1, 1), x.shape), x
            )
            conv = FilterParallelConv2d(grid, w, pad=1)
            outs = []
            for _ in range(3):
                y = conv.forward(xd)
                dyd = DistTensor.from_global(
                    grid, y.dist, np.ones(y.global_shape)
                )
                dx, dw_local = conv.backward(dyd)
                outs.append((y.to_global(), dx.to_global(), dw_local.copy()))
                comm.barrier()
            return outs, conv._pool.stats()

        for outs, (hits, misses) in run_spmd(2, prog):
            first_y, first_dx, first_dw = outs[0]
            for y, dx, dw_local in outs[1:]:
                np.testing.assert_array_equal(y, first_y)
                np.testing.assert_array_equal(dx, first_dx)
                np.testing.assert_array_equal(dw_local, first_dw)
            assert hits > 0, (hits, misses)  # buffers actually recycled

    def test_too_few_filters(self):
        def prog(comm):
            grid = ProcessGrid(comm, (1, 4, 1, 1))
            xd = DistTensor.from_global(
                grid, _channel_replicated_dist((1, 4, 1, 1), (1, 2, 6, 6)),
                np.zeros((1, 2, 6, 6)),
            )
            FilterParallelConv2d(grid, np.zeros((2, 2, 3, 3))).forward(xd)

        with pytest.raises(ValueError, match="fewer filters"):
            run_spmd(4, prog, timeout=10)


class TestNonblockingGatherEquivalence:
    """The plan-cached RegionExchange path (overlap_halo=True, the default)
    must be bitwise identical to the historical blocking ``gather_region``
    path — the kernels stay fused, only the communication discipline (eager
    isend strips + posted irecvs vs. two rendezvous-barrier all-to-alls)
    differs."""

    @pytest.mark.parametrize(
        "cls,grid_shape",
        [
            (ChannelParallelConv2d, (1, 2, 2, 1)),  # channel x spatial
            (ChannelParallelConv2d, (2, 2, 1, 1)),  # sample x channel
            (FilterParallelConv2d, (1, 2, 2, 1)),   # filter x spatial
            (FilterParallelConv2d, (2, 2, 1, 1)),   # sample x filter
        ],
    )
    def test_overlap_equals_blocking(self, cls, grid_shape):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((2, 4, 9, 9))
        w = rng.standard_normal((4, 4, 3, 3))

        def prog(comm, overlap):
            grid = ProcessGrid(comm, grid_shape)
            if cls is ChannelParallelConv2d:
                dist = Distribution.make(grid_shape)
            else:
                dist = _channel_replicated_dist(grid_shape, x.shape)
            xd = DistTensor.from_global(grid, dist, x)
            conv = cls(grid, w, stride=1, pad=1, overlap_halo=overlap)
            outs = []
            for _ in range(2):  # second pass runs on the cached plan
                y = conv.forward(xd)
                dyd = DistTensor.from_global(grid, y.dist, np.ones(y.global_shape))
                dx, dw_local = conv.backward(dyd)
                outs.append((y.local.copy(), dx.local.copy(), dw_local.copy()))
            return outs

        nranks = int(np.prod(grid_shape))
        blocking = run_spmd(nranks, prog, False)
        overlapped = run_spmd(nranks, prog, True)
        for outs_b, outs_o in zip(blocking, overlapped):
            for (y_b, dx_b, dw_b), (y_o, dx_o, dw_o) in zip(outs_b, outs_o):
                np.testing.assert_array_equal(y_o, y_b)
                np.testing.assert_array_equal(dx_o, dx_b)
                np.testing.assert_array_equal(dw_o, dw_b)

    def test_no_rendezvous_barriers_on_overlap_path(self):
        """The nonblocking path must not issue the blocking gather's
        all-to-all collectives (two per gather); traffic volume is still
        recorded under the same region_data stat."""
        rng = np.random.default_rng(6)
        x = rng.standard_normal((2, 4, 8, 8))
        w = rng.standard_normal((4, 4, 3, 3))

        def prog(comm, overlap):
            grid = ProcessGrid(comm, (1, 2, 2, 1))
            xd = DistTensor.from_global(grid, Distribution.make(grid.shape), x)
            conv = ChannelParallelConv2d(grid, w, pad=1, overlap_halo=overlap)
            comm.stats.reset()
            y = conv.forward(xd)
            dyd = DistTensor.from_global(grid, y.dist, np.ones(y.global_shape))
            conv.backward(dyd)
            s = comm.stats
            return (
                s.collectives.get("alltoall", 0),
                s.collective_bytes.get("region_data", 0),
            )

        blocking = run_spmd(4, prog, False)
        overlapped = run_spmd(4, prog, True)
        for (a2a_b, bytes_b), (a2a_o, bytes_o) in zip(blocking, overlapped):
            assert a2a_b > 0       # the historical path is collective-bound
            assert a2a_o == 0      # the nonblocking path is pure pt2pt
            assert bytes_o == bytes_b  # ...but ships exactly the same bytes

    def test_overlap_allreduce_pipelines_filter_blocks(self):
        """The piecewise forward launches one channel iallreduce per filter
        block (block k's reduction travels while block k+1's convolution
        computes) and matches the fused blocking path."""
        rng = np.random.default_rng(7)
        x = rng.standard_normal((2, 4, 8, 8))
        w = rng.standard_normal((8, 4, 3, 3))

        def prog(comm, overlap_ar, nblk):
            grid = ProcessGrid(comm, (1, 2, 1, 1))
            xd = DistTensor.from_global(grid, Distribution.make(grid.shape), x)
            conv = ChannelParallelConv2d(
                grid, w, pad=1,
                overlap_allreduce=overlap_ar, allreduce_blocks=nblk,
            )
            comm.stats.reset()
            y = conv.forward(xd)
            s = comm.stats
            return (
                y.to_global(),
                s.collectives.get("iallreduce", 0),
                s.collectives.get("allreduce", 0),
            )

        blocking = run_spmd(2, prog, False, 4)
        pipelined = run_spmd(2, prog, True, 4)
        single = run_spmd(2, prog, True, 1)  # degenerate: falls back to fused
        for (y_b, nb_b, ar_b), (y_p, nb_p, ar_p), (y_1, nb_1, ar_1) in zip(
            blocking, pipelined, single
        ):
            np.testing.assert_allclose(y_p, y_b, rtol=RTOL, atol=1e-12)
            np.testing.assert_array_equal(y_1, y_b)  # same fused path
            assert (nb_b, ar_b) == (0, 1)
            assert (nb_p, ar_p) == (4, 0)  # one iallreduce per filter block
            assert (nb_1, ar_1) == (0, 1)
