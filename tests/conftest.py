"""Shared fixtures: SPMD backend parameterization.

Suites that exercise communication semantics (nonblocking collectives, the
overlapped halo exchange, the shuffle property sweep) run against every
SPMD backend — thread, process, and socket — so the world implementations
are held to the same contract.  The forked backends (process, socket)
launch one OS process per rank and are an order of magnitude slower to
start, so those suites run them on a reduced rank/size matrix — the
helpers here make that reduction explicit at the test site.

The socket backend sweep runs under whatever ``REPRO_HOSTMAP`` is set
(CI's multi-host job exports a 2-logical-host map), defaulting to
one-rank-per-node — all traffic over TCP — when unset.
"""

import pytest

SPMD_BACKENDS = ("thread", "process", "socket")

#: Backends that fork one OS process per rank (slow launch; parity suites
#: run them on a reduced matrix).
FORKED_BACKENDS = ("process", "socket")


@pytest.fixture(params=SPMD_BACKENDS)
def backend(request):
    """SPMD world backend to run the test under."""
    return request.param


def reduce_for_process(backend: str, heavy: bool, reason: str) -> None:
    """Skip a heavyweight parameterization on the forked backends.

    The process and socket backends run the same suites on a reduced
    matrix (fork + queue/TCP transport make big rank counts slow in CI);
    the thread backend keeps full coverage.
    """
    if backend in FORKED_BACKENDS and heavy:
        pytest.skip(f"{backend} backend runs the reduced matrix: {reason}")
