"""Shared fixtures: SPMD backend parameterization.

Suites that exercise communication semantics (nonblocking collectives, the
overlapped halo exchange, the shuffle property sweep) run against both the
thread backend and the process backend, so the two world implementations
are held to the same contract.  The process backend forks one OS process
per rank and is an order of magnitude slower to launch, so those suites
run it on a reduced rank/size matrix — the helpers here make that
reduction explicit at the test site.
"""

import pytest

SPMD_BACKENDS = ("thread", "process")


@pytest.fixture(params=SPMD_BACKENDS)
def backend(request):
    """SPMD world backend to run the test under."""
    return request.param


def reduce_for_process(backend: str, heavy: bool, reason: str) -> None:
    """Skip a heavyweight parameterization on the process backend.

    The process backend runs the same suites on a reduced matrix (fork +
    queue transport make big rank counts slow in CI); the thread backend
    keeps full coverage.
    """
    if backend == "process" and heavy:
        pytest.skip(f"process backend runs the reduced matrix: {reason}")
