"""Overlapped inter-layer shuffle: bitwise equivalence and accounting.

The engine's overlapped redistribution (nonblocking
:class:`~repro.tensor.shuffle.ShuffleExchange`, launched when an activation
is produced and finished where it is consumed) must be *bitwise* identical
to the blocking all-to-all path — same pieces placed into the same
zero-initialized blocks, only the communication discipline differs.  These
tests assert that over entire training runs with per-layer strategies, that
the wait/overlap split and traffic volumes are recorded under the
``"shuffle"`` op, and that plans are cached across steps.
"""

import os
import sys

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.core import DistNetwork, DistTrainer, LayerParallelism
from repro.core.parallelism import ParallelStrategy
from repro.nn import NetworkSpec, SGD
from repro.tensor.shuffle import SHUFFLE_OP, shuffle_plan_stats


def mixed_model() -> NetworkSpec:
    spec = NetworkSpec("shuffle-eq")
    spec.add("input", "input", channels=2, height=9, width=11)
    spec.add("c1", "conv", ["input"], filters=4, kernel=3, pad=1, bias=True)
    spec.add("r1", "relu", ["c1"])
    spec.add("c2", "conv", ["r1"], filters=4, kernel=3, pad=1)
    spec.add("r2", "relu", ["c2"])
    spec.add("c3", "conv", ["r2"], filters=4, kernel=3, pad=1)
    spec.add("j", "add", ["c3", "c1"])  # skip edge crosses a strategy change
    spec.add("gap", "gap", ["j"])
    spec.add("fc", "fc", ["gap"], units=3)
    spec.add("loss", "softmax_ce", ["fc"])
    return spec


STRATEGIES = {
    "sample->spatial": ParallelStrategy(
        {
            "input": LayerParallelism(sample=4),
            "c1": LayerParallelism(sample=4),
            "r1": LayerParallelism(sample=4),
        },
        default=LayerParallelism(height=2, width=2),
    ),
    "spatial->hybrid": ParallelStrategy(
        {
            "c2": LayerParallelism(sample=2, height=2),
            "r2": LayerParallelism(sample=2, height=2),
            "c3": LayerParallelism(sample=2, height=2),
        },
        default=LayerParallelism(height=2, width=2),
    ),
}


def train(strategy: ParallelStrategy, overlap_shuffle: bool, steps: int = 4):
    spec = mixed_model()
    rng = np.random.default_rng(0)
    x = rng.standard_normal((4, 2, 9, 11))
    t = rng.integers(0, 3, size=4)

    def prog(comm):
        net = DistNetwork(
            spec, comm, strategy, seed=0, overlap_shuffle=overlap_shuffle
        )
        trainer = DistTrainer(net, SGD(lr=0.05))
        for _ in range(steps):
            trainer.step(x, t)
        params = {
            layer: {p: a.copy() for p, a in v.items()}
            for layer, v in net.params.items()
        }
        stats = comm.stats
        return (
            trainer.stats.losses,
            params,
            net.shuffle_count,
            stats.collectives.get(SHUFFLE_OP, 0),
            stats.collective_bytes.get(SHUFFLE_OP, 0),
            shuffle_plan_stats(comm),
        )

    return run_spmd(4, prog)


class TestShuffleOverlapBitwiseEquivalence:
    @pytest.mark.parametrize("label", list(STRATEGIES))
    def test_training_run_bitwise_equal(self, label):
        """Loss trajectories and final parameters of whole training runs
        are bitwise identical with the overlapped shuffle on and off."""
        strategy = STRATEGIES[label]
        overlapped = train(strategy, overlap_shuffle=True)
        blocking = train(strategy, overlap_shuffle=False)
        for ovl, blk in zip(overlapped, blocking):
            assert ovl[0] == blk[0]  # losses
            for layer in blk[1]:
                for pname in blk[1][layer]:
                    np.testing.assert_array_equal(
                        ovl[1][layer][pname], blk[1][layer][pname]
                    )
            assert ovl[2] == blk[2]  # shuffle_count parity
            # Identical traffic volume recorded under the "shuffle" op.
            assert ovl[3] == blk[3] and ovl[4] == blk[4]

    def test_overlap_is_default_and_exchanges_in_flight(self):
        """DistNetwork defaults to the overlapped path, and forward really
        launches exchanges before their consumers run."""
        spec = mixed_model()
        strategy = STRATEGIES["sample->spatial"]
        rng = np.random.default_rng(1)
        x = rng.standard_normal((4, 2, 9, 11))

        def prog(comm):
            net = DistNetwork(spec, comm, strategy, seed=0)
            assert net.overlap_shuffle
            launched = []
            orig = net._start_child_shuffles

            def spy(name):
                orig(name)
                launched.append((name, len(net._pending_fwd)))

            net._start_child_shuffles = spy
            net.forward(x)
            assert max(n for _, n in launched) >= 1  # something was in flight
            return True

        assert all(run_spmd(4, prog))


class TestShuffleAccounting:
    def test_plan_cache_hits_across_training_steps(self):
        """Regression: repeated steps reuse cached plans — the number of
        plan constructions (misses) must not grow with the step count."""
        strategy = STRATEGIES["sample->spatial"]
        after_2 = train(strategy, overlap_shuffle=True, steps=2)
        after_6 = train(strategy, overlap_shuffle=True, steps=6)
        for r2, r6 in zip(after_2, after_6):
            hits2, misses2 = r2[5]
            hits6, misses6 = r6[5]
            assert misses6 == misses2  # no re-planning, ever
            assert hits6 > hits2  # later steps served from the cache

    def test_wait_and_overlap_measured(self):
        """CommStats separates exposed (waited) from hidden (in flight
        behind other work) shuffle time on the overlapped path."""
        spec = mixed_model()
        strategy = STRATEGIES["sample->spatial"]
        rng = np.random.default_rng(2)
        x = rng.standard_normal((4, 2, 9, 11))
        t = rng.integers(0, 3, size=4)

        def prog(comm):
            net = DistNetwork(spec, comm, strategy, seed=0)
            trainer = DistTrainer(net, SGD(lr=0.05))
            comm.stats.reset()
            trainer.step(x, t)
            s = comm.stats
            split = s.wait_seconds.get(SHUFFLE_OP, 0.0) + s.overlap_seconds.get(
                SHUFFLE_OP, 0.0
            )
            return split, trainer.comm_report()

        for split, report in run_spmd(4, prog):
            assert split > 0.0  # the timing split is actually recorded
            assert "shuffle" in report
            assert "hidden behind adjacent compute" in report


def test_shuffle_overlap_benchmark_regression():
    """Tier-1 guard on the shuffle benchmark (benchmarks/bench_*.py is not
    collected by pytest): the benchmark must run end-to-end, measure the
    exposed/hidden shuffle split, and the overlapped path must not be
    *catastrophically* slower (which would indicate a serialization bug,
    not jitter).  Tight speedup floors live in the benchmark's own smoke
    check, not here — on 1-2 core runners the honest engine-level delta
    drowns in scheduler noise, and a tier-1 suite must be deterministic."""
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
    )
    try:
        import bench_shuffle_overlap as bs
    finally:
        sys.path.pop(0)
    text, payload = bs.generate_shuffle_overlap(
        steps=2, repeats=1, json_path=None, backends=("thread",)
    )
    for cfg in payload["configs"]:
        assert cfg["sync_step_s"] > 0 and cfg["overlap_step_s"] > 0
        assert cfg["speedup"] > 0.4, text
        assert cfg["shuffle_hidden_s"] + cfg["shuffle_exposed_s"] > 0, text
    assert payload["collective"]["thread"]["collective_speedup"] > 0.4, text
