"""Aborts during *segmented* and *hierarchical* collective schedules.

PR 9 added segmented pipelining and PR 8 hierarchical (two-tier) allreduce;
this suite crashes a rank mid-schedule for each of them, on both forked
backends, and pins the cleanup contract:

* every survivor raises ``CommAborted`` naming the failed rank (no hangs,
  no wrong answers),
* the job leaks nothing — no ``/dev/shm`` arena segments, no listening
  TCP sockets, no stray file descriptors in the supervising process.
"""

import gc
import os

import numpy as np
import pytest

from repro.comm import CommAborted, run_spmd
from repro.comm.proc_backend import SHM_PREFIX

NRANKS = 4
CRASH_RANK = 2
HOSTMAP = "0,1:A 2,3:B"  # two logical nodes: hierarchical schedules engage
SHM_DIR = "/dev/shm"


def _shm_segments() -> set:
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux hosts
        pytest.skip("no /dev/shm on this platform")
    return {f for f in os.listdir(SHM_DIR) if f.startswith(SHM_PREFIX)}


def _socket_fds() -> set:
    """Inode labels of this process's open socket descriptors."""
    fd_dir = "/proc/self/fd"
    if not os.path.isdir(fd_dir):  # pragma: no cover - non-Linux hosts
        return set()
    out = set()
    for fd in os.listdir(fd_dir):
        try:
            target = os.readlink(os.path.join(fd_dir, fd))
        except OSError:
            continue
        if target.startswith("socket:"):
            out.add(target)
    return out


def _prog_segmented(comm):
    # 4096 doubles with 4 KiB segments: an 8-segment pipelined ring, so
    # the crash lands mid-pipeline with chunks of several segments in
    # flight.
    x = np.arange(4096, dtype=np.float64) * (comm.rank + 1)
    out = comm.allreduce(x, algorithm="ring", segment_bytes=4096)
    comm.barrier()
    return float(out.sum())


def _prog_hierarchical(comm):
    x = np.arange(1024, dtype=np.float64) * (comm.rank + 1)
    out = comm.allreduce(x, algorithm="hierarchical")
    comm.barrier()
    return float(out.sum())


PROGS = {"segmented-ring": _prog_segmented, "hierarchical": _prog_hierarchical}


def _assert_survivors_name_crashed_rank(out):
    for r, res in enumerate(out):
        assert isinstance(res, CommAborted), f"rank {r}: {res!r}"
        if r != CRASH_RANK:
            assert f"rank {CRASH_RANK}" in str(res), f"rank {r}: {res}"


class TestAbortMidSchedule:
    @pytest.mark.parametrize("backend", ["process", "socket"])
    @pytest.mark.parametrize("schedule", sorted(PROGS))
    @pytest.mark.parametrize("phase,after", [("early", 0), ("late", 3)])
    def test_crash_names_failed_rank_and_leaks_nothing(
        self, backend, schedule, phase, after
    ):
        before_shm = _shm_segments()
        before_socks = _socket_fds()
        out = run_spmd(
            NRANKS,
            PROGS[schedule],
            backend=backend,
            hostmap=HOSTMAP,
            faults=f"crash@rank{CRASH_RANK}:tag=#alg:after={after}",
            allow_failures=True,
            timeout=20.0,
            detect_interval=0.2,
        )
        _assert_survivors_name_crashed_rank(out)
        gc.collect()
        assert _shm_segments() == before_shm, "leaked /dev/shm arena segment"
        leaked = _socket_fds() - before_socks
        assert not leaked, f"leaked socket fds in supervisor: {leaked}"

    @pytest.mark.parametrize("backend", ["process", "socket"])
    def test_clean_segmented_hierarchical_answers_stay_correct(self, backend):
        """Control: the same schedules with no fault return exact sums on
        every rank (and still leak nothing)."""
        before_shm = _shm_segments()
        seg, hier = run_spmd(
            NRANKS,
            lambda comm: (_prog_segmented(comm), _prog_hierarchical(comm)),
            backend=backend,
            hostmap=HOSTMAP,
            timeout=20.0,
        )[0]
        scale = sum(range(1, NRANKS + 1))
        assert seg == float(np.arange(4096).sum() * scale)
        assert hier == float(np.arange(1024).sum() * scale)
        gc.collect()
        assert _shm_segments() == before_shm
