"""Overlapped halo exchange: bitwise equivalence and accounting (§IV-A).

The engine's overlapped path (nonblocking strips + interior/boundary kernel
decomposition) must be *bitwise* identical to the synchronous path — same
floating-point operations in the same per-element order, only the
communication discipline differs.  These tests assert that at the layer
level across strategies/kernels/strides, and over entire training runs.

The equivalence tests run on both world backends (the ``backend``
fixture); the process backend covers a reduced rank/geometry matrix.
"""

import os
import sys

import numpy as np
import pytest

from conftest import reduce_for_process
from repro.comm import run_spmd
from repro.core import DistNetwork, DistTrainer, LayerParallelism
from repro.core.dist_conv import DistConv2d
from repro.core.dist_layers import DistPool2d
from repro.core.parallelism import activation_dist
from repro.nn import NetworkSpec, SGD
from repro.tensor import DistTensor, Distribution, ProcessGrid
from repro.tensor.halo import HALO_OP, start_region_exchange


def run_dist_conv(
    nranks, grid_shape, x, w, stride, pad, overlap, bias=None, backend="thread"
):
    """Distributed fwd+bwd; returns per-rank (y_local, dx_local, dw, db)."""

    def prog(comm):
        grid = ProcessGrid(comm, grid_shape)
        xd = DistTensor.from_global(grid, activation_dist(grid_shape, x.shape), x)
        conv = DistConv2d(
            grid, w, stride=stride, pad=pad, bias=bias, overlap_halo=overlap
        )
        y = conv.forward(xd)
        rng = np.random.default_rng(99)
        dy_global = rng.standard_normal(y.global_shape)
        dy = DistTensor.from_global(grid, y.dist, dy_global)
        dx, dw_partial, db_partial = conv.backward(dy)
        return y.local.copy(), dx.local.copy(), dw_partial, db_partial

    return run_spmd(nranks, prog, backend=backend)


GEOMETRIES = [
    # (grid_shape, N, C, H, W, F, K, S, P) — spatial / hybrid / edge cases
    ((1, 1, 2, 2), 2, 3, 8, 8, 5, 3, 1, 1),     # 2x2 spatial
    ((1, 1, 4, 1), 1, 3, 16, 8, 5, 3, 1, 1),    # 4x1 spatial
    ((2, 1, 2, 1), 2, 3, 8, 8, 4, 3, 1, 1),     # hybrid 2 samples x 2-way
    ((2, 1, 2, 2), 2, 2, 8, 8, 4, 3, 1, 1),     # hybrid 2 x 2x2 (8 ranks)
    ((1, 1, 2, 2), 1, 3, 9, 11, 4, 3, 1, 1),    # odd sizes, uneven partitions
    ((1, 1, 2, 2), 1, 2, 12, 12, 4, 5, 2, 2),   # K=5 S=2
    ((1, 1, 2, 2), 2, 3, 8, 8, 5, 1, 1, 0),     # 1x1: no halo at all
    ((1, 1, 2, 2), 1, 2, 11, 13, 3, 3, 2, 1),   # odd sizes + stride 2
    ((1, 1, 2, 2), 1, 2, 9, 9, 3, 5, 1, 2),     # K=5 halo of 2, odd image
    ((4, 1, 1, 1), 4, 3, 8, 8, 5, 3, 1, 1),     # pure sample: local fast path
]


class TestOverlapBitwiseEquivalence:
    @pytest.mark.parametrize("grid_shape,n,c,h,w_,f,k,s,p", GEOMETRIES)
    def test_layer_overlap_equals_sync(self, grid_shape, n, c, h, w_, f, k, s, p, backend):
        nranks = int(np.prod(grid_shape))
        reduce_for_process(backend, nranks > 4, "nranks <= 4")
        rng = np.random.default_rng(42)
        x = rng.standard_normal((n, c, h, w_))
        w = rng.standard_normal((f, c, k, k))
        b = rng.standard_normal(f)

        sync = run_dist_conv(
            nranks, grid_shape, x, w, s, p, overlap=False, bias=b, backend=backend
        )
        ovl = run_dist_conv(
            nranks, grid_shape, x, w, s, p, overlap=True, bias=b, backend=backend
        )
        for (y_s, dx_s, dw_s, db_s), (y_o, dx_o, dw_o, db_o) in zip(sync, ovl):
            np.testing.assert_array_equal(y_o, y_s)
            np.testing.assert_array_equal(dx_o, dx_s)
            np.testing.assert_array_equal(dw_o, dw_s)
            np.testing.assert_array_equal(db_o, db_s)

    @pytest.mark.parametrize(
        "par",
        [
            LayerParallelism(height=2, width=2),
            LayerParallelism(sample=2, height=2),
            LayerParallelism(sample=4),
        ],
        ids=["spatial2x2", "hybrid2x2", "sample4"],
    )
    def test_training_run_bitwise_equal(self, par, backend):
        """Loss trajectories and final parameters of whole training runs are
        bitwise identical with the overlapped exchange on and off."""
        reduce_for_process(
            backend, (par.sample, par.height, par.width) != (1, 2, 2),
            "spatial 2x2 only",
        )
        spec = NetworkSpec("halo-eq")
        spec.add("input", "input", channels=2, height=9, width=11)
        spec.add("c1", "conv", ["input"], filters=4, kernel=3, pad=1, bias=True)
        spec.add("r1", "relu", ["c1"])
        spec.add("c2", "conv", ["r1"], filters=4, kernel=5, pad=2)
        spec.add("r2", "relu", ["c2"])
        spec.add("c3", "conv", ["r2"], filters=4, kernel=3, stride=2, pad=1)
        spec.add("gap", "gap", ["c3"])
        spec.add("fc", "fc", ["gap"], units=3)
        spec.add("loss", "softmax_ce", ["fc"])
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 2, 9, 11))
        t = rng.integers(0, 3, size=4)

        def run(overlap):
            def prog(comm):
                net = DistNetwork(spec, comm, par, seed=0, overlap_halo=overlap)
                trainer = DistTrainer(net, SGD(lr=0.05))
                for _ in range(4):
                    trainer.step(x, t)
                params = {
                    layer: {p: a.copy() for p, a in v.items()}
                    for layer, v in net.params.items()
                }
                return trainer.stats.losses, params

            return run_spmd(par.nranks, prog, backend=backend)

        for (losses_o, params_o), (losses_s, params_s) in zip(run(True), run(False)):
            assert losses_o == losses_s
            for layer in params_s:
                for pname in params_s[layer]:
                    np.testing.assert_array_equal(
                        params_o[layer][pname], params_s[layer][pname]
                    )


class TestPoolOverlapEquivalence:
    """DistPool2d's overlapped forward gather (interior windows behind the
    in-flight halo strips, boundary strips after assembly) must be bitwise
    identical to the synchronous fused kernel — pooling windows are reduced
    per output element, so the decomposition cannot change accumulation
    order."""

    POOL_GEOMS = [
        # (grid_shape, N, C, H, W, K, S, P)
        ((1, 1, 2, 2), 2, 3, 9, 11, 3, 2, 1),   # classic 3x3/2 overlap pool
        ((1, 1, 2, 2), 2, 3, 8, 8, 3, 1, 1),    # K > S on every boundary
        ((2, 1, 2, 1), 2, 2, 8, 8, 2, 2, 0),    # K == S: no halo at all
        ((1, 1, 4, 1), 1, 2, 16, 8, 3, 2, 1),   # deep 1D spatial split
    ]

    @pytest.mark.parametrize("mode", ["max", "avg"])
    @pytest.mark.parametrize("grid_shape,n,c,h,w_,k,s,p", POOL_GEOMS)
    def test_pool_overlap_equals_sync(
        self, grid_shape, n, c, h, w_, k, s, p, mode, backend
    ):
        nranks = int(np.prod(grid_shape))
        reduce_for_process(
            backend, (grid_shape, mode) != ((1, 1, 2, 2), "max"),
            "one representative geometry",
        )
        rng = np.random.default_rng(17)
        x = rng.standard_normal((n, c, h, w_))

        def prog(comm, overlap):
            grid = ProcessGrid(comm, grid_shape)
            xd = DistTensor.from_global(
                grid, activation_dist(grid_shape, x.shape), x
            )
            pool = DistPool2d(grid, mode, k, s, p, overlap_halo=overlap)
            y = pool.forward(xd)
            rng2 = np.random.default_rng(7)
            dy = DistTensor.from_global(
                grid, y.dist, rng2.standard_normal(y.global_shape)
            )
            dx = pool.backward(dy)
            return y.local.copy(), dx.local.copy()

        sync = run_spmd(nranks, prog, False, backend=backend)
        ovl = run_spmd(nranks, prog, True, backend=backend)
        for (y_s, dx_s), (y_o, dx_o) in zip(sync, ovl):
            np.testing.assert_array_equal(y_o, y_s)
            np.testing.assert_array_equal(dx_o, dx_s)

    def test_pool_halo_time_recorded_when_windows_overlap(self):
        """With K > S the overlapped pool forward drives real nonblocking
        strips: the halo_exchange wait/overlap split must be measured."""
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 2, 12, 12))

        def prog(comm):
            grid = ProcessGrid(comm, (1, 1, 2, 2))
            xd = DistTensor.from_global(
                grid, activation_dist(grid.shape, x.shape), x
            )
            pool = DistPool2d(grid, "max", 3, 1, 1, overlap_halo=True)
            comm.stats.reset()
            pool.forward(xd)
            s = comm.stats
            return (
                s.wait_seconds.get(HALO_OP, 0.0)
                + s.overlap_seconds.get(HALO_OP, 0.0),
                s.collectives.get("region_data", 0),
            )

        for halo_time, exchanges in run_spmd(4, prog):
            assert halo_time > 0.0
            assert exchanges == 1  # the forward gather, nonblocking


class TestRegionExchange:
    def test_matches_gather_region(self, backend):
        """The overlapped exchange assembles exactly what gather_region
        fetches — including virtual padding and uneven partitions."""
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 3, 9, 11))
        grid_shape = (1, 1, 2, 2)
        dist = Distribution.make(grid_shape)

        def prog(comm):
            grid = ProcessGrid(comm, grid_shape)
            dt = DistTensor.from_global(grid, dist, x)
            # Every rank gathers its block extended by one halo cell on the
            # split axes (reaching into virtual padding at the edges).
            regions = []
            for r in range(comm.size):
                b = dist.local_bounds(x.shape, grid.coords_of(r))
                regions.append(
                    (
                        (b[0][0], b[1][0], b[2][0] - 1, b[3][0] - 1),
                        (b[0][1], b[1][1], b[2][1] + 1, b[3][1] + 1),
                    )
                )
            lo, hi = regions[comm.rank]
            ex = start_region_exchange(dt, lo, hi, regions)
            got = ex.finish().copy()
            want = dt.gather_region(lo, hi)
            np.testing.assert_array_equal(got, want)
            return True

        assert all(run_spmd(4, prog, backend=backend))

    def test_halo_traffic_volume_matches_sync(self):
        """The overlapped exchange moves exactly the bytes the synchronous
        gather moves (recorded under the same region_data stat)."""
        n, c, h, w_, f, k = 1, 2, 16, 8, 3, 3
        rng = np.random.default_rng(7)
        x = rng.standard_normal((n, c, h, w_))
        w = rng.standard_normal((f, c, k, k))

        def prog_for(overlap):
            def prog(comm):
                grid = ProcessGrid(comm, (1, 1, 4, 1))
                xd = DistTensor.from_global(
                    grid, activation_dist(grid.shape, x.shape), x
                )
                conv = DistConv2d(grid, w, stride=1, pad=1, overlap_halo=overlap)
                comm.stats.reset()
                conv.forward(xd)
                return comm.stats.collective_bytes.get("region_data", 0)

            return prog

        sync_bytes = run_spmd(4, prog_for(False))
        ovl_bytes = run_spmd(4, prog_for(True))
        assert ovl_bytes == sync_bytes
        halo_row = n * c * w_ * 8  # O=1 row of float64
        assert ovl_bytes == [halo_row, 2 * halo_row, 2 * halo_row, halo_row]

    def test_halo_wait_and_overlap_measured(self):
        """CommStats separates exposed (waited) from hidden (in flight
        behind the interior conv) halo time on the overlapped path."""
        rng = np.random.default_rng(5)
        x = rng.standard_normal((2, 2, 12, 12))
        w = rng.standard_normal((3, 2, 3, 3))

        def prog(comm):
            grid = ProcessGrid(comm, (1, 1, 2, 2))
            xd = DistTensor.from_global(grid, activation_dist(grid.shape, x.shape), x)
            conv = DistConv2d(grid, w, pad=1, overlap_halo=True)
            comm.stats.reset()
            y = conv.forward(xd)
            dy = DistTensor.from_global(grid, y.dist, np.ones(y.global_shape))
            conv.backward(dy)
            s = comm.stats
            return (
                s.wait_seconds.get(HALO_OP, 0.0) + s.overlap_seconds.get(HALO_OP, 0.0),
                s.collectives.get("region_data", 0),
            )

        for halo_time, exchanges in run_spmd(4, prog):
            assert halo_time > 0.0  # the timing split is actually recorded
            assert exchanges == 2  # one forward + one backward exchange

    def test_send_strips_recycled_across_steps(self):
        """The conv layer's BufferPool recycles the staged halo send strips
        (deferred reclamation) as well as the assembly buffers."""
        spec = NetworkSpec("pool-halo")
        spec.add("input", "input", channels=2, height=8, width=8)
        spec.add("c1", "conv", ["input"], filters=3, kernel=3, pad=1)
        spec.add("gap", "gap", ["c1"])
        spec.add("fc", "fc", ["gap"], units=2)
        spec.add("loss", "softmax_ce", ["fc"])
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 2, 8, 8))
        t = rng.integers(0, 2, size=2)

        def prog(comm):
            net = DistNetwork(
                spec, comm, LayerParallelism(height=2, width=2), seed=0
            )
            trainer = DistTrainer(net, SGD(lr=0.01))
            for _ in range(4):
                trainer.step(x, t)
                comm.barrier()  # peers drain mailboxes -> strips reclaimable
            return net._layers["c1"]._pool.stats()

        for hits, misses in run_spmd(4, prog):
            # Steps 2-4 should recycle the assembly buffers AND the send
            # strips staged in steps 1-3; far more hits than cold misses.
            assert hits > misses, (hits, misses)


def test_halo_overlap_benchmark_regression():
    """Tier-1 guard on the halo benchmark (benchmarks/bench_*.py is not
    collected by pytest): the overlapped path must never seriously regress
    versus the synchronous path, and the exposed/hidden halo split must be
    measured.  The floor is lenient — on shared CI runners the in-process
    overlap win is synchronization-bound and noisy."""
    sys.path.insert(
        0, os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
    )
    try:
        import bench_halo_overlap as bh
    finally:
        sys.path.pop(0)
    text, payload = bh.generate_halo_overlap(
        steps=2, repeats=1, json_path=None, backends=("thread",)
    )
    for cfg in payload["configs"]:
        assert cfg["sync_step_s"] > 0 and cfg["overlap_step_s"] > 0
        assert cfg["speedup"] > 0.7, text
        assert cfg["halo_hidden_s"] + cfg["halo_exposed_s"] > 0, text
