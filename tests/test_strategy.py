"""Strategy optimizer (§V-C): candidates, shortest path, branchy networks."""

import pytest

from repro.core.parallelism import LayerParallelism as LP
from repro.core.parallelism import ParallelStrategy
from repro.core.strategy import StrategyOptimizer, factorizations
from repro.nn import NetworkSpec
from repro.nn.meshnet import mesh_model_2k
from repro.nn.resnet import build_resnet50, build_resnet_tiny
from repro.perfmodel import LASSEN, NetworkCostModel


class TestFactorizations:
    def test_all_products_correct(self):
        for p in (1, 2, 4, 8, 16, 12):
            for s, h, w in factorizations(p):
                assert s * h * w == p

    def test_near_square_spatial(self):
        d = {s: (h, w) for s, h, w in factorizations(16)}
        assert d[1] == (4, 4)
        assert d[2] == (4, 2)
        assert d[4] == (2, 2)
        assert d[8] == (2, 1)
        assert d[16] == (1, 1)


class TestParallelism:
    def test_spatial_square(self):
        assert LP.spatial_square(2, 4) == LP(sample=2, height=2, width=2)
        assert LP.spatial_square(1, 8) == LP(sample=1, height=4, width=2)
        assert LP.spatial_square(4, 1) == LP(sample=4)

    def test_invalid(self):
        with pytest.raises(ValueError):
            LP(sample=0)
        with pytest.raises(ValueError):
            LP.spatial_square(1, 0)

    def test_strategy_uniform_and_override(self):
        s = ParallelStrategy.uniform(LP(sample=4))
        assert s.for_layer("anything") == LP(sample=4)
        s2 = s.with_layer("conv1", LP(height=2, width=2))
        assert s2.for_layer("conv1") == LP(height=2, width=2)
        assert s2.for_layer("other") == LP(sample=4)

    def test_strategy_rank_consistency(self):
        with pytest.raises(ValueError, match="same total rank count"):
            ParallelStrategy({"a": LP(sample=2), "b": LP(sample=4)})

    def test_strategy_missing_layer(self):
        s = ParallelStrategy({"a": LP(sample=2)})
        with pytest.raises(KeyError):
            s.for_layer("b")


class TestCandidates:
    def test_sample_limited_by_batch(self):
        opt = StrategyOptimizer(build_resnet50(), LASSEN, total_ranks=8, n_global=2)
        cands = opt.candidates("conv1")
        assert all(p.sample <= 2 for p in cands)

    def test_spatial_limited_by_extent(self):
        """Deep ResNet layers (7x7 output) cannot be split 16 ways."""
        opt = StrategyOptimizer(build_resnet50(), LASSEN, total_ranks=64, n_global=64)
        cands = opt.candidates("res5c_branch2c")  # output 7x7
        assert all(p.height <= 7 and p.width <= 7 for p in cands)

    def test_cheapest_first(self):
        opt = StrategyOptimizer(build_resnet50(), LASSEN, total_ranks=8, n_global=256)
        cands = opt.candidates("conv1")
        assert cands[0] == LP(sample=8)  # sample parallelism preferred

    def test_memory_filters_infeasible(self):
        opt = StrategyOptimizer(mesh_model_2k(), LASSEN, total_ranks=4, n_global=1)
        cands = opt.candidates("conv1_1")
        # Pure spatial only: one sample cannot be sample-partitioned and the
        # 2K model cannot fit unsplit.
        assert all(p.spatial_ways >= 2 for p in cands)


class TestOptimizer:
    def test_resnet_picks_sample_when_memory_allows(self):
        opt = StrategyOptimizer(build_resnet50(), LASSEN, total_ranks=8, n_global=256)
        report = opt.optimize()
        convs = [layer.name for layer in build_resnet50().conv_layers()]
        assert all(
            report.strategy.for_layer(n) == LP(sample=8) for n in convs
        )

    def test_mesh2k_forced_spatial(self):
        opt = StrategyOptimizer(mesh_model_2k(), LASSEN, total_ranks=16, n_global=2)
        report = opt.optimize()
        p = report.strategy.for_layer("conv1_1")
        assert p.spatial_ways >= 8  # memory demands deep spatial splits
        assert report.predicted_time > 0

    def test_beats_worst_uniform(self):
        """The optimized strategy must not lose to an adversarial uniform
        choice (full spatial on ResNet, which thrashes small layers)."""
        spec = build_resnet50()
        opt = StrategyOptimizer(spec, LASSEN, total_ranks=4, n_global=128)
        report = opt.optimize()
        model = NetworkCostModel(spec, LASSEN)
        bad = model.minibatch_time(
            128, ParallelStrategy.uniform(LP(height=2, width=2))
        )
        assert report.predicted_time <= bad

    def test_branchy_network_all_layers_assigned(self):
        spec = build_resnet_tiny()
        opt = StrategyOptimizer(spec, LASSEN, total_ranks=4, n_global=16)
        report = opt.optimize()
        for layer in spec:
            assert report.strategy.for_layer(layer.name).nranks == 4
        assert report.paths_optimized >= 1

    def test_mixed_strategy_when_it_pays(self):
        """A network with one huge conv followed by tiny convs: the big one
        wants spatial decomposition, the tiny ones sample parallelism.
        Batch is small so sample parallelism alone cannot use the ranks."""
        spec = NetworkSpec("mixed")
        spec.add("input", "input", channels=8, height=1024, width=1024)
        spec.add("big", "conv", ["input"], filters=32, kernel=5, stride=4, pad=2)
        spec.add("r1", "relu", ["big"])
        spec.add("p", "pool", ["r1"], mode="max", kernel=32, stride=32)
        spec.add("tiny", "conv", ["p"], filters=32, kernel=1)
        spec.add("gap", "gap", ["tiny"])
        spec.add("fc", "fc", ["gap"], units=4)
        spec.add("loss", "softmax_ce", ["fc"])
        opt = StrategyOptimizer(spec, LASSEN, total_ranks=8, n_global=2)
        report = opt.optimize()
        big = report.strategy.for_layer("big")
        assert big.spatial_ways >= 4  # N=2 cannot fill 8 ranks by samples
        # Inherit layers follow their parent.
        assert report.strategy.for_layer("r1") == big

    def test_describe(self):
        opt = StrategyOptimizer(build_resnet_tiny(), LASSEN, total_ranks=2, n_global=8)
        report = opt.optimize()
        assert "mini-batch time" in report.describe()
