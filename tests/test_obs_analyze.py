"""The critical-path analyzer and the cross-rank metrics registry.

A traced training run must analyze into (a) a non-empty critical path
walking flows and same-track gaps, (b) an exposed-vs-hidden wait table,
(c) per-layer forward/backward times, and (d) per-op comm rows that agree
*exactly* with the live ``CommStats`` counters — the rows are built from
the verbatim snapshots each rank annotates into its trace, so a mismatch
means the annotation plumbing dropped or double-counted something.
"""

import json

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.core import DistNetwork, DistTrainer, LayerParallelism, ParallelStrategy
from repro.nn import NetworkSpec, SGD
from repro.obs import analyze
from repro.obs.metrics import MetricsRegistry, comm_stats_snapshot
from repro.perfmodel.machine import MachineSpec


def small_net():
    net = NetworkSpec("obs-analyze")
    net.add("input", "input", channels=3, height=8, width=8)
    net.add("c1", "conv", ["input"], filters=4, kernel=3, stride=1, pad=1)
    net.add("r1", "relu", ["c1"])
    net.add("gap", "gap", ["r1"])
    net.add("fc", "fc", ["gap"], units=3, bias=True)
    net.add("loss", "softmax_ce", ["fc"])
    return net


def _train_prog(comm):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((4, 3, 8, 8))
    t = rng.integers(0, 3, size=4)
    net = DistNetwork(small_net(), comm, LayerParallelism(sample=comm.size), seed=0)
    trainer = DistTrainer(net, SGD(lr=0.1))
    trainer.fit([(x, t)], epochs=2)
    return comm_stats_snapshot(comm.stats)


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("trace") / "train.trace")
    snapshots = run_spmd(2, _train_prog, trace=path)
    return path, analyze.load_trace(path), snapshots


class TestAnalyzer:
    def test_critical_path(self, traced_run):
        _, doc, _ = traced_run
        path = analyze.critical_path(doc)
        assert path, "critical path is empty"
        # causally chained: a "seq" hop follows its predecessor on the same
        # track; a "flow" hop may jump tracks (and backwards in span-start
        # time, when the receiver opened a blocking span early and waited).
        assert all(e["link"] in ("flow", "seq", "start") for e in path)
        for prev, cur in zip(path, path[1:]):
            if cur["link"] == "seq":
                assert cur["pid"] == prev["pid"]
                assert prev["ts_us"] + prev["dur_us"] <= cur["ts_us"] + 2.0
            else:
                # the sender's span must overlap or precede the receiver's end
                assert prev["ts_us"] <= cur["ts_us"] + cur["dur_us"] + 2.0
        summary = analyze.path_summary(path)
        assert summary["hops"] == len(path)
        assert summary["by_name"]

    def test_exposed_hidden(self, traced_run):
        _, doc, _ = traced_run
        waits = analyze.exposed_hidden(doc)
        assert "iallreduce" in waits
        row = waits["iallreduce"]
        assert row["count"] > 0
        assert row["exposed_us"] >= 0.0
        assert row["hidden_us"] >= 0.0

    def test_layer_times(self, traced_run):
        _, doc, _ = traced_run
        layers = analyze.layer_times(doc)
        for name in ("c1", "r1", "gap", "fc", "loss"):
            assert name in layers, f"no span for layer {name}"
            assert layers[name]["fwd_us"] > 0.0

    def test_comm_rows_byte_exact(self, traced_run):
        """Analyzer rows == sum of the live CommStats each rank returned."""
        _, doc, snapshots = traced_run
        rows = analyze.comm_rows(doc)
        live = {}
        for snap in snapshots:
            for op, calls in snap["collectives"].items():
                live.setdefault(op, {"calls": 0, "bytes": 0})["calls"] += int(calls)
            for op, nbytes in snap["collective_bytes"].items():
                live.setdefault(op, {"calls": 0, "bytes": 0})["bytes"] += int(nbytes)
        assert rows == live

    def test_model_predictions_from_simulator(self):
        model = analyze.model_predictions(
            small_net(),
            MachineSpec(),
            4,
            ParallelStrategy.uniform(LayerParallelism(sample=2)),
        )
        assert model["source"] == "TrainingStepSimulator"
        assert model["minibatch_s"] > 0
        assert model["layers"]["c1"]["fwd_s"] > 0
        # allreduce bytes come straight from the cost model's layer_cost
        assert model["layers"]["c1"]["ar_bytes"] > 0
        assert model["layers"]["r1"]["ar_bytes"] == 0

    def test_render_report_and_cli(self, traced_run, tmp_path, capsys):
        path, doc, _ = traced_run
        model = analyze.model_predictions(
            small_net(),
            MachineSpec(),
            4,
            ParallelStrategy.uniform(LayerParallelism(sample=2)),
        )
        text = analyze.render_report(doc, model=model)
        assert "critical path" in text
        assert "exposed" in text
        assert "measured vs modeled" in text
        assert "c1" in text

        model_path = tmp_path / "model.json"
        model_path.write_text(json.dumps(model))
        rc = analyze.main([path, "--model", str(model_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "critical path" in out


class TestMetricsRegistry:
    def test_counters_reduce_across_ranks(self):
        def prog(comm):
            reg = MetricsRegistry()
            reg.inc("steps", comm.rank + 1)  # 1 + 2 = 3
            reg.set("loss", float(comm.rank))  # min 0, mean 0.5, max 1
            if comm.rank == 0:
                reg.inc("rank0_only", 5)  # union must include it
            return reg.reduce(comm)

        reduced = run_spmd(2, prog)
        for r in reduced:  # every rank sees the same folded view
            assert r["nranks"] == 2
            assert r["counters"]["steps"] == 3.0
            assert r["counters"]["rank0_only"] == 5.0
            assert r["gauges"]["loss"] == {"min": 0.0, "mean": 0.5, "max": 1.0}

    def test_ingest_comm_stats_and_render(self):
        def prog(comm):
            comm.allreduce(np.ones(4))
            reg = MetricsRegistry()
            reg.ingest_comm_stats(comm.stats)
            return reg.report(comm)

        table = run_spmd(2, prog)[0]
        assert "comm.allreduce.calls" in table
        assert "metrics over 2 ranks" in table

    def test_ingest_train_transport_faults(self):
        from repro.core.trainer import TrainStats

        stats = TrainStats()
        stats.record(0.7, 0.02)
        reg = MetricsRegistry()
        reg.ingest_train_stats(stats)
        reg.ingest_transport({"shm_bytes": 1024, "queue_msgs": 3})
        reg.ingest_faults([2])
        local = reg.local()
        assert local["counters"]["train.steps"] == 1
        assert local["counters"]["transport.shm_bytes"] == 1024
        assert local["counters"]["faults.failed_ranks"] == 1
        assert local["gauges"]["train.last_loss"] == pytest.approx(0.7)

    def test_snapshot_matches_stats(self):
        def prog(comm):
            comm.allreduce(np.ones(4))
            snap = comm_stats_snapshot(comm.stats)
            assert snap["collectives"]["allreduce"] == 1
            assert snap["collective_bytes"]["allreduce"] == 32
            return True

        assert all(run_spmd(2, prog))
