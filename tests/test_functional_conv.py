"""Convolution kernels vs. naive references and adjoint identities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.functional import (
    conv2d_backward_data,
    conv2d_backward_filter,
    conv2d_forward,
    conv2d_output_shape,
)


def naive_conv2d(x, w, stride, pad):
    """Direct implementation of paper Eq. (1) with explicit loops."""
    sh, sw = stride
    ph, pw = pad
    n, c, h, wd = x.shape
    f, _, kh, kw = w.shape
    oh, ow = conv2d_output_shape((h, wd), (kh, kw), stride, pad)
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    y = np.zeros((n, f, oh, ow))
    for kk in range(n):
        for ff in range(f):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[kk, :, i * sh : i * sh + kh, j * sw : j * sw + kw]
                    y[kk, ff, i, j] = (patch * w[ff]).sum()
    return y


CASES = [
    # (N, C, H, W, F, K, S, P) — includes the paper's layer shapes scaled down
    (1, 1, 5, 5, 1, 3, 1, 1),
    (2, 3, 8, 8, 4, 3, 1, 1),
    (2, 3, 9, 9, 4, 3, 2, 1),   # odd size, stride 2
    (1, 2, 7, 7, 3, 1, 1, 0),   # 1x1 conv (res3b_branch2a shape class)
    (2, 3, 12, 12, 4, 7, 2, 3),  # conv1 shape class (K=7, S=2, P=3)
    (1, 2, 10, 10, 3, 5, 2, 2),  # mesh conv1_1 shape class (K=5, S=2, P=2)
    (1, 1, 6, 8, 2, 3, 3, 0),    # stride > pad, rectangular
    (2, 2, 5, 9, 3, 3, 2, 2),
]


class TestForward:
    @pytest.mark.parametrize("n,c,h,w,f,k,s,p", CASES)
    def test_matches_naive(self, n, c, h, w, f, k, s, p):
        rng = np.random.default_rng(42)
        x = rng.standard_normal((n, c, h, w))
        wt = rng.standard_normal((f, c, k, k))
        got = conv2d_forward(x, wt, stride=s, pad=p)
        want = naive_conv2d(x, wt, (s, s), (p, p))
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    def test_bias(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 5, 5))
        wt = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)
        got = conv2d_forward(x, wt, stride=1, pad=1, bias=b)
        want = conv2d_forward(x, wt, stride=1, pad=1) + b.reshape(1, 4, 1, 1)
        np.testing.assert_allclose(got, want)

    def test_channel_mismatch(self):
        with pytest.raises(ValueError, match="channel mismatch"):
            conv2d_forward(np.zeros((1, 2, 5, 5)), np.zeros((1, 3, 3, 3)))

    def test_empty_output_raises(self):
        with pytest.raises(ValueError, match="empty"):
            conv2d_forward(np.zeros((1, 1, 2, 2)), np.zeros((1, 1, 5, 5)))

    def test_identity_kernel(self):
        x = np.random.default_rng(1).standard_normal((1, 1, 6, 6))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        np.testing.assert_allclose(conv2d_forward(x, w, pad=1), x)

    def test_rectangular_stride_pad(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 2, 9, 7))
        wt = rng.standard_normal((3, 2, 3, 3))
        got = conv2d_forward(x, wt, stride=(2, 1), pad=(0, 1))
        want = naive_conv2d(x, wt, (2, 1), (0, 1))
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)


class TestBackwardAdjoint:
    """The backward kernels must be the exact adjoints of the forward map:
    <dy, conv(x, w)> == <bwd_data(dy, w), x> == <bwd_filter(x, dy), w>."""

    @pytest.mark.parametrize("n,c,h,w,f,k,s,p", CASES)
    def test_data_adjoint(self, n, c, h, w, f, k, s, p):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((n, c, h, w))
        wt = rng.standard_normal((f, c, k, k))
        y = conv2d_forward(x, wt, stride=s, pad=p)
        dy = rng.standard_normal(y.shape)
        dx = conv2d_backward_data(dy, wt, stride=s, pad=p, x_spatial=(h, w))
        assert dx.shape == x.shape
        np.testing.assert_allclose(
            (dy * y).sum(), (dx * x).sum() + (dy * conv2d_forward(np.zeros_like(x), wt, stride=s, pad=p)).sum(),
            rtol=1e-10,
        )
        # Pure bilinearity: <dy, A x> == <A^T dy, x>
        np.testing.assert_allclose((dy * y).sum(), (dx * x).sum(), rtol=1e-10)

    @pytest.mark.parametrize("n,c,h,w,f,k,s,p", CASES)
    def test_filter_adjoint(self, n, c, h, w, f, k, s, p):
        rng = np.random.default_rng(8)
        x = rng.standard_normal((n, c, h, w))
        wt = rng.standard_normal((f, c, k, k))
        y = conv2d_forward(x, wt, stride=s, pad=p)
        dy = rng.standard_normal(y.shape)
        dw = conv2d_backward_filter(x, dy, kernel=k, stride=s, pad=p)
        assert dw.shape == wt.shape
        np.testing.assert_allclose((dy * y).sum(), (dw * wt).sum(), rtol=1e-10)

    def test_finite_difference_data(self):
        rng = np.random.default_rng(9)
        x = rng.standard_normal((1, 2, 6, 6))
        wt = rng.standard_normal((3, 2, 3, 3))
        dy = rng.standard_normal(conv2d_forward(x, wt, stride=2, pad=1).shape)
        dx = conv2d_backward_data(dy, wt, stride=2, pad=1, x_spatial=(6, 6))
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (0, 1, 3, 2), (0, 0, 5, 5)]:
            xp = x.copy()
            xp[idx] += eps
            xm = x.copy()
            xm[idx] -= eps
            num = (
                (conv2d_forward(xp, wt, stride=2, pad=1) * dy).sum()
                - (conv2d_forward(xm, wt, stride=2, pad=1) * dy).sum()
            ) / (2 * eps)
            np.testing.assert_allclose(dx[idx], num, rtol=1e-5, atol=1e-7)

    def test_finite_difference_filter(self):
        rng = np.random.default_rng(10)
        x = rng.standard_normal((2, 2, 5, 5))
        wt = rng.standard_normal((2, 2, 3, 3))
        dy = rng.standard_normal(conv2d_forward(x, wt, pad=1).shape)
        dw = conv2d_backward_filter(x, dy, kernel=3, stride=1, pad=1)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (1, 1, 2, 2), (0, 1, 1, 0)]:
            wp, wm = wt.copy(), wt.copy()
            wp[idx] += eps
            wm[idx] -= eps
            num = (
                (conv2d_forward(x, wp, pad=1) * dy).sum()
                - (conv2d_forward(x, wm, pad=1) * dy).sum()
            ) / (2 * eps)
            np.testing.assert_allclose(dw[idx], num, rtol=1e-5, atol=1e-7)


class TestBackwardDataOffsets:
    """The region formulation used by spatial parallelism: computing dx for a
    sub-block via a gathered dy region and effective padding must equal the
    corresponding slice of the full backward pass."""

    @pytest.mark.parametrize("s,p,k", [(1, 1, 3), (2, 1, 3), (2, 2, 5), (2, 3, 7), (1, 0, 1)])
    def test_region_equivalence(self, s, p, k):
        rng = np.random.default_rng(11)
        h = w = 12
        x = rng.standard_normal((1, 2, h, w))
        wt = rng.standard_normal((3, 2, k, k))
        y = conv2d_forward(x, wt, stride=s, pad=p)
        dy = rng.standard_normal(y.shape)
        full_dx = conv2d_backward_data(dy, wt, stride=s, pad=p, x_spatial=(h, w))

        # Block of x rows [xlo, xhi): gather dy rows [dlo, dhi) and use the
        # effective left padding  p'' = xlo + p - s*dlo  (paper §III-A region
        # algebra; see repro.core.dist_conv).
        for xlo, xhi in [(0, 6), (6, 12), (3, 9)]:
            dlo = (xlo + p - (k - 1)) // s  # floor division handles negatives
            dhi = (xhi - 1 + p) // s + 1
            oh = y.shape[2]
            dy_region = np.zeros((1, 3, dhi - dlo, y.shape[3]))
            src_lo, src_hi = max(dlo, 0), min(dhi, oh)
            if src_lo < src_hi:
                dy_region[:, :, src_lo - dlo : src_hi - dlo, :] = dy[:, :, src_lo:src_hi, :]
            pad_eff = xlo + p - s * dlo
            dx_block = conv2d_backward_data(
                dy_region, wt, stride=s, pad=(pad_eff, p), x_spatial=(xhi - xlo, w)
            )
            np.testing.assert_allclose(
                dx_block, full_dx[:, :, xlo:xhi, :], rtol=1e-10, atol=1e-12
            )


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 2),
    c=st.integers(1, 3),
    f=st.integers(1, 3),
    h=st.integers(3, 10),
    w=st.integers(3, 10),
    k=st.sampled_from([1, 3, 5]),
    s=st.integers(1, 3),
    p=st.integers(0, 3),
)
def test_conv_adjoint_property(n, c, f, h, w, k, s, p):
    """Adjoint identity over random geometries (skipping empty outputs)."""
    if h + 2 * p < k or w + 2 * p < k:
        return
    rng = np.random.default_rng(n * 1000 + h * 100 + w * 10 + k)
    x = rng.standard_normal((n, c, h, w))
    wt = rng.standard_normal((f, c, k, k))
    y = conv2d_forward(x, wt, stride=s, pad=p)
    dy = rng.standard_normal(y.shape)
    dx = conv2d_backward_data(dy, wt, stride=s, pad=p, x_spatial=(h, w))
    dw = conv2d_backward_filter(x, dy, kernel=k, stride=s, pad=p)
    np.testing.assert_allclose((dy * y).sum(), (dx * x).sum(), rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose((dy * y).sum(), (dw * wt).sum(), rtol=1e-9, atol=1e-9)
