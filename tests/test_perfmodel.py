"""Performance and memory models: components and paper-anchor regressions."""

import pytest

from repro.comm.collective_models import (
    AllreduceAlgorithm,
    LinkParameters,
    allreduce_time,
    alltoall_time,
    bucketed_allreduce_time,
    pt2pt_time,
    segment_sizes,
    segmented_allreduce_time,
    select_allreduce_algorithm,
)
from repro.core.parallelism import LayerParallelism as LP
from repro.core.parallelism import ParallelStrategy
from repro.nn.meshnet import mesh_model_1k, mesh_model_2k
from repro.nn.resnet import build_resnet50
from repro.perfmodel import (
    CalibratedConvModel,
    EmpiricalConvModel,
    LASSEN,
    MemoryModel,
    NetworkCostModel,
)
from repro.perfmodel.conv_model import ConvGeometry
from repro.perfmodel.layer_cost import conv_layer_cost

LINK = LinkParameters(alpha=5e-6, beta=1e-9, gamma=1e-10)


class TestCollectiveModels:
    def test_pt2pt_linear(self):
        assert pt2pt_time(0, LINK) == 0.0
        assert pt2pt_time(1000, LINK) == pytest.approx(5e-6 + 1e-6)

    def test_allreduce_zero_cases(self):
        assert allreduce_time(1, 1000, LINK) == 0.0
        assert allreduce_time(8, 0, LINK) == 0.0

    def test_algorithm_selection_thakur(self):
        assert select_allreduce_algorithm(8, 100) is AllreduceAlgorithm.RECURSIVE_DOUBLING
        assert select_allreduce_algorithm(8, 1 << 20) is AllreduceAlgorithm.RABENSEIFNER
        assert select_allreduce_algorithm(6, 1 << 20) is AllreduceAlgorithm.RING

    def test_rabenseifner_beats_recursive_doubling_for_large(self):
        n = 100e6
        rd = allreduce_time(16, n, LINK, AllreduceAlgorithm.RECURSIVE_DOUBLING)
        rab = allreduce_time(16, n, LINK, AllreduceAlgorithm.RABENSEIFNER)
        assert rab < rd

    def test_ring_latency_grows_linearly(self):
        small = allreduce_time(4, 10, LINK, AllreduceAlgorithm.RING)
        big = allreduce_time(64, 10, LINK, AllreduceAlgorithm.RING)
        assert big > small * 10

    def test_monotone_in_size(self):
        ts = [allreduce_time(8, n, LINK) for n in (1e3, 1e5, 1e7)]
        assert ts[0] < ts[1] < ts[2]

    def test_segment_sizes_partition(self):
        assert segment_sizes(0, 100) == []
        assert segment_sizes(100, 0) == [100]
        assert segment_sizes(100, 200) == [100]
        sizes = segment_sizes(1000, 300)
        assert len(sizes) == 4
        assert sum(sizes) == pytest.approx(1000)

    def test_segmented_allreduce_degenerates_to_plain(self):
        n = 1 << 20
        assert segmented_allreduce_time(8, n, LINK) == pytest.approx(
            allreduce_time(8, n, LINK)
        )
        assert segmented_allreduce_time(8, n, LINK, segment_bytes=2 * n) == (
            pytest.approx(allreduce_time(8, n, LINK))
        )

    def test_segmentation_pays_extra_latency(self):
        n = 1 << 22
        whole = segmented_allreduce_time(8, n, LINK)
        quarters = segmented_allreduce_time(8, n, LINK, segment_bytes=n // 4)
        assert quarters > whole  # (nseg-1) extra alpha terms

    def test_bucketing_amortizes_latency_of_small_tensors(self):
        sizes = [512.0] * 32
        separate = sum(allreduce_time(8, s, LINK) for s in sizes)
        coalesced = bucketed_allreduce_time(8, sizes, LINK, bucket_bytes=1 << 20)
        assert coalesced < separate
        # One bucket holding everything == one allreduce of the total.
        assert coalesced == pytest.approx(allreduce_time(8, sum(sizes), LINK))

    def test_bucketing_flushes_at_threshold(self):
        sizes = [1000.0, 1000.0, 1000.0]
        total = bucketed_allreduce_time(8, sizes, LINK, bucket_bytes=1500)
        # [1000+1000 >= 1500 -> flush 2000], then trailing 1000.
        expected = allreduce_time(8, 2000, LINK) + allreduce_time(8, 1000, LINK)
        assert total == pytest.approx(expected)
        assert bucketed_allreduce_time(1, sizes, LINK, 1500) == 0.0

    def test_alltoall(self):
        assert alltoall_time(1, 100, LINK) == 0.0
        assert alltoall_time(4, 100, LINK) == pytest.approx(3 * (5e-6 + 1e-7))


class TestGPUSpec:
    def test_saturation_curve(self):
        gpu = LASSEN.gpu
        lo = gpu.throughput(1e6, gpu.fwd_tflops_max)
        hi = gpu.throughput(1e11, gpu.fwd_tflops_max)
        assert lo < hi <= gpu.fwd_tflops_max

    def test_latency_floor(self):
        gpu = LASSEN.gpu
        assert gpu.conv_time(1.0, 1.0, gpu.fwd_tflops_max) >= gpu.kernel_latency

    def test_memory_bound_floor(self):
        gpu = LASSEN.gpu
        # Tiny flops but huge traffic: memory-bound branch must dominate.
        t = gpu.conv_time(1e3, 8e9, gpu.fwd_tflops_max)
        assert t >= 8e9 / gpu.mem_bandwidth

    def test_zero_work(self):
        assert LASSEN.gpu.conv_time(0, 0, 1e12) == 0.0
        assert LASSEN.gpu.elementwise_time(0) == 0.0


class TestConvModels:
    def test_calibrated_fp_anchor_conv1_1(self):
        """The paper's Fig. 3 shows ~7.5 ms FP for the 2K conv1_1 on one
        GPU; the calibrated model must land within 35%."""
        model = CalibratedConvModel(LASSEN.gpu)
        g = ConvGeometry(n=1, c=18, h=2052, w=2052, f=128, kh=5, kw=5, sh=2, sw=2)
        assert model.fp(g) == pytest.approx(7.5e-3, rel=0.35)

    def test_calibrated_fp_anchor_res3b(self):
        """Fig. 2: res3b_branch2a FP at N=1 is ~40 us on one GPU."""
        model = CalibratedConvModel(LASSEN.gpu)
        g = ConvGeometry(n=1, c=512, h=28, w=28, f=128, kh=1, kw=1)
        assert 10e-6 < model.fp(g) < 80e-6

    def test_bp_slower_than_fp(self):
        model = CalibratedConvModel(LASSEN.gpu)
        g = ConvGeometry(n=4, c=64, h=64, w=64, f=64, kh=3, kw=3)
        assert model.bp_data(g) >= model.fp(g) * 0.9

    def test_empirical_measures_and_caches(self):
        model = EmpiricalConvModel(warmup=1, runs=2)
        g = ConvGeometry(n=1, c=2, h=12, w=12, f=3, kh=3, kw=3)
        t1 = model.fp(g)
        assert t1 > 0
        assert model.fp(g) == t1  # cached
        assert model.bp_data(g) > 0 and model.bp_filter(g) > 0

    def test_empirical_scales_with_work(self):
        model = EmpiricalConvModel(warmup=1, runs=3)
        small = model.fp(ConvGeometry(n=1, c=4, h=16, w=16, f=4, kh=3, kw=3))
        large = model.fp(ConvGeometry(n=1, c=4, h=64, w=64, f=4, kh=3, kw=3))
        assert large > small


class TestConvLayerCost:
    def kwargs(self, **over):
        base = dict(
            n_global=4, c=64, h=128, w=128, f=64, kernel=3, stride=1, pad=1
        )
        base.update(over)
        return base

    def test_no_halo_for_1x1(self):
        cost = conv_layer_cost(
            LASSEN, CalibratedConvModel(LASSEN.gpu),
            **self.kwargs(kernel=1, pad=0), parallelism=LP(height=2, width=2),
        )
        assert cost.fp_halo == 0.0

    def test_no_halo_for_sample_parallel(self):
        cost = conv_layer_cost(
            LASSEN, CalibratedConvModel(LASSEN.gpu),
            **self.kwargs(), parallelism=LP(sample=4),
        )
        assert cost.fp_halo == 0.0 and cost.allreduce > 0

    def test_spatial_has_halo(self):
        cost = conv_layer_cost(
            LASSEN, CalibratedConvModel(LASSEN.gpu),
            **self.kwargs(), parallelism=LP(height=2, width=2),
        )
        assert cost.fp_halo > 0 and cost.bpx_halo > 0

    def test_overlap_never_slower(self):
        cost = conv_layer_cost(
            LASSEN, CalibratedConvModel(LASSEN.gpu),
            **self.kwargs(), parallelism=LP(height=2, width=2),
        )
        assert cost.fp_time(overlap=True) <= cost.fp_time(overlap=False)
        assert cost.bp_time(overlap=True) <= cost.bp_time(overlap=False)

    def test_spatial_reduces_big_layer_compute(self):
        model = CalibratedConvModel(LASSEN.gpu)
        one = conv_layer_cost(
            LASSEN, model, **self.kwargs(h=1024, w=1024, n_global=1),
            parallelism=LP(), total_ranks=1,
        )
        four = conv_layer_cost(
            LASSEN, model, **self.kwargs(h=1024, w=1024, n_global=1),
            parallelism=LP(height=2, width=2), total_ranks=4,
        )
        assert four.fp_compute < one.fp_compute / 2


class TestNetworkCostAnchors:
    """Regression-guard the calibration against the paper's anchor cells.

    The acceptance band is generous (the paper itself says absolute numbers
    need not match) but pins the *shape*: who wins and by roughly how much.
    """

    @pytest.mark.parametrize(
        "par,paper",
        [
            (LP(sample=4), 0.403),
            (LP(sample=4, width=2), 0.200),
            (LP(sample=4, height=2, width=2), 0.121),
            (LP(sample=4, height=4, width=2), 0.0906),
            (LP(sample=4, height=4, width=4), 0.066),
        ],
    )
    def test_mesh1k_anchor(self, par, paper):
        t = NetworkCostModel(mesh_model_1k(), LASSEN).minibatch_time(
            4, ParallelStrategy.uniform(par)
        )
        assert t == pytest.approx(paper, rel=0.35)

    def test_mesh1k_speedup_shape(self):
        """Table I speedups at N=4: ~2.0, 3.3, 4.4, 6.1."""
        model = NetworkCostModel(mesh_model_1k(), LASSEN)
        base = model.minibatch_time(4, ParallelStrategy.uniform(LP(sample=4)))
        speedups = [
            base / model.minibatch_time(4, ParallelStrategy.uniform(p))
            for p in (
                LP(sample=4, width=2),
                LP(sample=4, height=2, width=2),
                LP(sample=4, height=4, width=2),
                LP(sample=4, height=4, width=4),
            )
        ]
        paper = [2.0, 3.3, 4.4, 6.1]
        for got, want in zip(speedups, paper):
            assert got == pytest.approx(want, rel=0.25)
        # Monotone but sub-linear: each doubling of GPUs gains < 2x.
        assert speedups[0] < speedups[1] < speedups[2] < speedups[3]
        assert speedups[3] < 2 * speedups[2]

    def test_mesh2k_speedup_shape(self):
        """Table II speedups over 2 GPUs/sample: ~2.1, 2.9, 3.6."""
        model = NetworkCostModel(mesh_model_2k(), LASSEN)
        base = model.minibatch_time(
            2, ParallelStrategy.uniform(LP(sample=2, width=2))
        )
        speedups = [
            base / model.minibatch_time(2, ParallelStrategy.uniform(p))
            for p in (
                LP(sample=2, height=2, width=2),
                LP(sample=2, height=4, width=2),
                LP(sample=2, height=4, width=4),
            )
        ]
        # Our calibration scales the 2K model somewhat better than the
        # paper measured at the finest decompositions (see EXPERIMENTS.md).
        for got, want in zip(speedups, [2.1, 2.9, 3.6]):
            assert got == pytest.approx(want, rel=0.45)
        assert speedups[0] < speedups[1] < speedups[2]

    def test_resnet_speedup_shape(self):
        """Table III: hybrid 2-way ~1.4x, 4-way ~1.7x at N=128."""
        model = NetworkCostModel(build_resnet50(), LASSEN)
        base = model.minibatch_time(128, ParallelStrategy.uniform(LP(sample=4)))
        s2 = base / model.minibatch_time(
            128, ParallelStrategy.uniform(LP(sample=4, width=2))
        )
        s4 = base / model.minibatch_time(
            128, ParallelStrategy.uniform(LP(sample=4, height=2, width=2))
        )
        assert s2 == pytest.approx(1.4, rel=0.25)
        assert s4 == pytest.approx(1.7, rel=0.25)
        assert 1.0 < s2 < s4 < 4.0  # far from linear: small spatial domains

    def test_weak_scaling_flat(self):
        """Fig. 4: mini-batch time stays ~flat as N grows with GPUs."""
        model = NetworkCostModel(mesh_model_1k(), LASSEN)
        times = [
            model.minibatch_time(n, ParallelStrategy.uniform(LP(sample=n, width=2)))
            for n in (4, 32, 256, 1024)
        ]
        assert max(times) / min(times) < 1.15

    def test_overlap_helps(self):
        on = NetworkCostModel(mesh_model_2k(), LASSEN, overlap=True)
        off = NetworkCostModel(mesh_model_2k(), LASSEN, overlap=False)
        par = ParallelStrategy.uniform(LP(sample=2, height=4, width=4))
        assert on.minibatch_time(2, par) < off.minibatch_time(2, par)

    def test_cheap_layers_free_mode(self):
        free = NetworkCostModel(mesh_model_1k(), LASSEN, cheap_layers="free")
        mem = NetworkCostModel(mesh_model_1k(), LASSEN, cheap_layers="memory")
        par = ParallelStrategy.uniform(LP(sample=4))
        assert free.minibatch_time(4, par) < mem.minibatch_time(4, par)

    def test_invalid_cheap_layers(self):
        with pytest.raises(ValueError):
            NetworkCostModel(mesh_model_1k(), LASSEN, cheap_layers="bogus")


class TestMemoryModel:
    """The paper's three feasibility boundaries on 16 GB V100s."""

    def test_mesh1k_fits_exactly_one_sample(self):
        mm = MemoryModel(mesh_model_1k(), LASSEN)
        assert mm.fits(1, LP(sample=1))
        assert not mm.fits(2, LP(sample=1))
        assert mm.max_samples_per_gpu(LP(sample=1)) == 1

    def test_mesh2k_requires_spatial(self):
        mm = MemoryModel(mesh_model_2k(), LASSEN)
        assert not mm.fits(1, LP(sample=1))  # "exceed GPU memory ... even one sample"
        assert mm.fits(1, LP(width=2))

    def test_resnet_fits_32_per_gpu(self):
        mm = MemoryModel(build_resnet50(), LASSEN)
        assert mm.fits(128, LP(sample=4))  # 32 samples/GPU
        assert mm.max_samples_per_gpu(LP(sample=1)) >= 32

    def test_spatial_reduces_memory(self):
        mm = MemoryModel(mesh_model_2k(), LASSEN)
        one = mm.required_bytes(1, ParallelStrategy.uniform(LP()))
        four = mm.required_bytes(1, ParallelStrategy.uniform(LP(height=2, width=2)))
        assert four < 0.45 * one  # activations dominate and split 4-way

    def test_breakdown_sums(self):
        mm = MemoryModel(mesh_model_1k(), LASSEN)
        bd = mm.breakdown(1, LP(sample=1))
        parts = (
            bd.activations + bd.error_signals + bd.bn_saved + bd.halo_buffers
            + bd.parameters + bd.workspace + bd.comm_buffers + bd.runtime
        )
        assert bd.total == pytest.approx(parts)
        assert "TOTAL" in bd.summary()

    def test_comm_buffers_grow_with_scale(self):
        assert LASSEN.comm_buffer_bytes(2048) > LASSEN.comm_buffer_bytes(4)


class TestPoolBoundaryFraction:
    """Pooling overlaps its forward gather (PR 4) *and* its backward
    scatter-add (PR 8): the cost model gives pool layers a real forward
    boundary fraction and a real — input-grid — backward one."""

    def _cost(self, k, s, par, h=256, w=256, c=64):
        from repro.perfmodel.layer_cost import pool_layer_cost

        return pool_layer_cost(
            LASSEN, n_global=4, c=c, h=h, w=w, kernel=k, stride=s, pad=k // 2,
            parallelism=par,
        )

    def test_overlapping_windows_get_partial_fraction(self):
        c = self._cost(3, 2, LP(height=2, width=2))
        assert c.fp_halo > 0
        assert 0.0 < c.boundary_fraction < 1.0
        # Backward decomposes on the input grid: a real fraction, distinct
        # from the forward output-window split (o=K-S strips are thin
        # relative to the input extent, so it is the smaller of the two).
        assert 0.0 < c.bp_boundary_fraction < 1.0
        assert c.bpx_boundary_fraction == c.bp_boundary_fraction
        assert c.bp_boundary_fraction < c.boundary_fraction
        # The overlap formulas actually use the decompositions.
        interior = c.fp_compute * (1 - c.boundary_fraction)
        expected = max(interior, c.fp_halo) + (
            c.fp_compute - interior
        ) + c.boundary_launch
        assert c.fp_time(overlap=True) == pytest.approx(expected)
        bp_interior = c.bpx_compute * (1 - c.bpx_boundary_fraction)
        bp_expected = max(c.bpw_compute + bp_interior, c.bpx_halo) + (
            c.bpx_compute - bp_interior
        ) + c.bpx_boundary_launch
        assert c.bp_time(overlap=True) == pytest.approx(bp_expected)

    def test_overlap_wins_once_halo_exceeds_launch_overhead(self):
        """For memory-bound pooling the boundary kernel launches are not
        free; the modeled overlap pays off once the hidden halo time
        exceeds them (large spatial extents), exactly as measured — now in
        both directions."""
        c = self._cost(3, 2, LP(height=2, width=2), h=1024, w=1024)
        assert c.fp_halo > c.boundary_launch
        assert c.fp_time(overlap=True) < c.fp_time(overlap=False)
        # Backward is decomposed too (own scatter-add contribution hides
        # the strips in flight), so overlap now wins there as well.
        assert c.bpx_boundary_launch == c.boundary_launch
        assert c.bp_time(overlap=True) < c.bp_time(overlap=False)

    def test_non_overlapping_windows_have_no_halo(self):
        c = self._cost(2, 2, LP(height=2, width=2))
        assert c.fp_halo == 0.0
        assert c.fp_time(overlap=True) == c.fp_time(overlap=False)
        # No neighbor contributions: backward stays pinned synchronous.
        assert c.bp_boundary_fraction == 1.0
        assert c.bpx_boundary_launch == 0.0
        assert c.bp_time(overlap=True) == c.bp_time(overlap=False)

    def test_conv_backward_fraction_unchanged(self):
        """Conv layers still use one fraction for both directions."""
        cost = conv_layer_cost(
            LASSEN, CalibratedConvModel(LASSEN.gpu),
            n_global=4, c=8, h=32, w=32, f=8, kernel=3, stride=1, pad=1,
            parallelism=LP(height=2, width=2),
        )
        assert cost.bp_boundary_fraction is None
        assert cost.bpx_boundary_fraction == cost.boundary_fraction
