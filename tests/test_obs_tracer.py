"""The span tracer's core contract: free when off, lossless when on.

Disabled tracing must be a no-op — no files, no context, and a per-call
cost bounded by a pin — because the instrumentation is compiled into every
hot path of the engine.  Enabled tracing must close every span (also under
exceptions), stamp flow events with deterministic per-(peer, tag)
sequence numbers, and survive a round trip through the rank file.
"""

import io
import json
import logging
import os
from time import perf_counter

import pytest

from repro.obs import tracer
from repro.obs.logging import configure, get_logger


@pytest.fixture(autouse=True)
def clean_tracer_state():
    yield
    # A test that failed mid-span must not leak its context into the next.
    tracer._tls.ctx = None
    tracer._global_ctx = None
    tracer._tracing = 0


class TestDisabled:
    def test_no_context_no_file(self, tmp_path):
        assert not tracer.is_on()
        assert tracer.identity() is None
        with tracer.span("op", cat="x", bytes=4) as sp:
            sp.set(more=1)
        tracer.flow_out(1, 7)
        tracer.flow_in(1, 7)
        tracer.wait_span("op", 0.001, 0.0)
        tracer.annotate("k", {"v": 1})
        assert os.listdir(tmp_path) == []

    def test_untraced_rank_context_tracks_identity_only(self, tmp_path):
        tracer.enter_rank(3, "nodeX", trace=None, thread_scope=True)
        try:
            assert tracer.identity() == (3, "nodeX")
            assert not tracer.is_on()
            with tracer.span("op"):
                pass
        finally:
            tracer.exit_rank(thread_scope=True)
        assert os.listdir(tmp_path) == []

    def test_disabled_span_cost_is_pinned(self):
        """A disabled span() is a flag check + cached null object.

        The pin is deliberately loose (10us/call) — it catches a regression
        to eager-event construction, not scheduler noise.
        """
        n = 50_000
        t0 = perf_counter()
        for _ in range(n):
            with tracer.span("bench", cat="bench", bytes=0):
                pass
        per_call = (perf_counter() - t0) / n
        assert per_call < 10e-6, f"disabled span() costs {per_call * 1e9:.0f} ns"

    def test_null_span_is_cached(self):
        assert tracer.span("a") is tracer.span("b")


def _traced_ctx(tmp_path, rank=0):
    cfg = tracer.TraceConfig(path=str(tmp_path / "t.trace"), epoch=0.0)
    tracer.enter_rank(rank, "nodeA", trace=cfg, thread_scope=True)
    return cfg


def _read_rank_file(cfg, rank=0):
    with open(tracer.rank_file(cfg.path, rank)) as fh:
        return [json.loads(line) for line in fh]


class TestEnabled:
    def test_spans_nest_and_flush(self, tmp_path):
        cfg = _traced_ctx(tmp_path)
        with tracer.span("outer", cat="a", k=1):
            with tracer.span("inner", cat="b") as sp:
                sp.set(bytes=42)
        tracer.exit_rank(thread_scope=True)

        records = _read_rank_file(cfg)
        assert records[0]["k"] == "M" and records[0]["rank"] == 0
        spans = {r["n"]: r for r in records if r.get("k") == "X"}
        assert set(spans) == {"outer", "inner"}
        assert spans["inner"]["a"]["bytes"] == 42
        # inner is contained in outer on the shared clock axis
        o, i = spans["outer"], spans["inner"]
        assert o["ts"] <= i["ts"]
        assert i["ts"] + i["d"] <= o["ts"] + o["d"] + 1.0
        assert records[-1] == {"k": "Z", "open": 0}

    def test_span_closes_under_exception(self, tmp_path):
        cfg = _traced_ctx(tmp_path)
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("failing"):
                    raise ValueError("boom")
        tracer.exit_rank(thread_scope=True)

        records = _read_rank_file(cfg)
        spans = {r["n"]: r for r in records if r.get("k") == "X"}
        assert spans["failing"]["a"]["error"] == "ValueError"
        assert spans["outer"]["a"]["error"] == "ValueError"
        assert records[-1] == {"k": "Z", "open": 0}

    def test_flow_sequence_numbers(self, tmp_path):
        cfg = _traced_ctx(tmp_path)
        tracer.flow_out(1, "tagA")
        tracer.flow_out(1, "tagA")
        tracer.flow_out(2, "tagA")  # other peer: independent counter
        tracer.flow_out(1, "tagB")  # other tag: independent counter
        tracer.flow_in(1, "tagA")
        tracer.flow_in(1, "tagA")
        tracer.exit_rank(thread_scope=True)

        records = _read_rank_file(cfg)
        sends = [r for r in records if r.get("k") == "s"]
        recvs = [r for r in records if r.get("k") == "f"]
        assert [(s["p"], s["t"], s["q"]) for s in sends] == [
            (1, "'tagA'", 0),
            (1, "'tagA'", 1),
            (2, "'tagA'", 0),
            (1, "'tagB'", 0),
        ]
        assert [(r["p"], r["t"], r["q"]) for r in recvs] == [
            (1, "'tagA'", 0),
            (1, "'tagA'", 1),
        ]

    def test_wait_span_is_retroactive(self, tmp_path):
        cfg = _traced_ctx(tmp_path)
        with tracer.span("marker"):
            pass
        tracer.wait_span("iallreduce", waited=0.005, hidden=0.002, nbytes=128)
        tracer.exit_rank(thread_scope=True)

        records = _read_rank_file(cfg)
        wait = next(r for r in records if r.get("c") == "wait")
        assert wait["n"] == "wait:iallreduce"
        assert wait["d"] == pytest.approx(5000, rel=0.01)
        assert wait["a"]["hidden_us"] == pytest.approx(2000, rel=0.01)
        assert wait["a"]["bytes"] == 128

    def test_annotations_round_trip(self, tmp_path):
        cfg = _traced_ctx(tmp_path)
        tracer.annotate("comm_stats", {"collectives": {"allreduce": 3}})
        tracer.exit_rank(thread_scope=True)
        records = _read_rank_file(cfg)
        ann = next(r for r in records if r.get("k") == "A")
        assert ann["n"] == "comm_stats"
        assert ann["a"]["collectives"]["allreduce"] == 3


class TestLogging:
    def test_rank_prefix(self, tmp_path):
        stream = io.StringIO()
        configure(stream=stream, level=logging.INFO, force=True)
        get_logger("test").info("hello")
        tracer.enter_rank(2, "nodeB", trace=None, thread_scope=True)
        try:
            get_logger("test").info("from rank")
        finally:
            tracer.exit_rank(thread_scope=True)
        lines = stream.getvalue().splitlines()
        assert lines[0] == "[driver] hello"
        assert lines[1] == "[rank 2 @ nodeB] from rank"

    def test_configure_is_idempotent(self):
        a = configure(force=True)
        b = configure()
        assert a is b
        assert len(a.handlers) == 1
