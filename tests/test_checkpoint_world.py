"""World-stamped checkpoints and cross-world re-sharding.

Elastic restarts can resume a run with a different rank count than the one
that wrote the checkpoints, so checkpoint files carry the writer's world
size in their name.  These tests pin the naming contract (stamped and
legacy), the stale-file tolerance of :func:`latest_common_step`, the
complete-set scan a differently-sized world resumes from, and the bitwise
replica verification that guards re-sharding.
"""

import os

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.core import checkpoint as ckpt


def _save_world(d, step, world, value=None):
    """One complete stamped checkpoint set: every rank of ``world``."""
    for rank in range(world):
        ckpt.save_state(
            d, step, rank,
            {"x": np.arange(3.0) if value is None else value},
            world=world,
        )


class TestNaming:
    def test_unstamped_save_keeps_legacy_name(self, tmp_path):
        path = ckpt.save_state(str(tmp_path), 1, 0, {"x": np.ones(2)})
        assert os.path.basename(path) == "step00000001.rank0.npz"

    def test_stamped_save_embeds_world(self, tmp_path):
        path = ckpt.save_state(str(tmp_path), 2, 1, {"x": np.ones(2)}, world=3)
        assert os.path.basename(path) == "step00000002.of0003.rank1.npz"

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("step00000004.rank0.npz", (4, None, 0)),
            ("step00000004.of0002.rank1.npz", (4, 2, 1)),
            ("step00000004.of0002.rank12.npz", (4, 2, 12)),
            ("not-a-checkpoint.npz", None),
            (".tmp-step00000004.rank0-abc.npz", None),
        ],
    )
    def test_parse_checkpoint_name(self, name, expected):
        assert ckpt.parse_checkpoint_name(name) == expected

    def test_stamped_roundtrip_is_bitwise(self, tmp_path):
        state = {"w": np.random.default_rng(0).standard_normal(9)}
        ckpt.save_state(str(tmp_path), 5, 0, state, world=2)
        out = ckpt.load_state(str(tmp_path), 5, 0, world=2)
        np.testing.assert_array_equal(out["w"], state["w"])

    def test_load_falls_back_to_legacy_file(self, tmp_path):
        """A run upgraded mid-flight still resumes from unstamped files."""
        ckpt.save_state(str(tmp_path), 3, 0, {"x": np.full(4, 7.0)})
        out = ckpt.load_state(str(tmp_path), 3, 0, world=2)
        np.testing.assert_array_equal(out["x"], np.full(4, 7.0))


class TestLocalStepsWorldFilter:
    def test_world_filter_hides_other_worlds(self, tmp_path):
        d = str(tmp_path)
        ckpt.save_state(d, 1, 0, {"x": np.ones(2)})            # legacy
        ckpt.save_state(d, 2, 0, {"x": np.ones(2)}, world=4)   # stale
        ckpt.save_state(d, 3, 0, {"x": np.ones(2)}, world=2)   # current
        assert ckpt.local_steps(d, 0) == [1, 2, 3]             # permissive
        assert ckpt.local_steps(d, 0, world=2) == [1, 3]
        assert ckpt.local_steps(d, 0, world=4) == [1, 2]

    def test_prune_sweeps_across_stamps(self, tmp_path):
        d = str(tmp_path)
        ckpt.save_state(d, 1, 0, {"x": np.ones(2)}, world=4)
        ckpt.save_state(d, 2, 0, {"x": np.ones(2)}, world=2)
        ckpt.save_state(d, 3, 0, {"x": np.ones(2)})
        removed = ckpt.prune(d, 0, keep=1)
        assert removed == [1, 2]
        assert ckpt.local_steps(d, 0) == [3]


class TestLatestCommonStepElastic:
    def test_ignores_stale_files_from_larger_world(self, tmp_path):
        """A shrunk restart must not resume from a step that was only ever
        completed by the previous, larger world."""
        d = str(tmp_path)
        _save_world(d, 6, world=3)  # previous 3-rank incarnation
        _save_world(d, 4, world=2)  # what the current 2-rank world wrote

        def prog(comm):
            return ckpt.latest_common_step(d, comm)

        assert run_spmd(2, prog) == [4, 4]

    def test_tolerates_mismatched_per_rank_step_sets(self, tmp_path):
        d = str(tmp_path)
        ckpt.save_state(d, 2, 0, {"x": np.ones(2)}, world=2)
        ckpt.save_state(d, 2, 1, {"x": np.ones(2)}, world=2)
        ckpt.save_state(d, 4, 0, {"x": np.ones(2)}, world=2)  # rank 1 died

        def prog(comm):
            return ckpt.latest_common_step(d, comm)

        assert run_spmd(2, prog) == [2, 2]

    def test_legacy_unstamped_files_still_count(self, tmp_path):
        d = str(tmp_path)
        for rank in range(2):
            ckpt.save_state(d, 5, rank, {"x": np.ones(2)})

        def prog(comm):
            return ckpt.latest_common_step(d, comm)

        assert run_spmd(2, prog) == [5, 5]


class TestLatestCompleteStep:
    def test_empty_directory(self, tmp_path):
        assert ckpt.latest_complete_step(str(tmp_path)) is None
        assert ckpt.latest_complete_step(str(tmp_path / "missing")) is None

    def test_incomplete_sets_are_skipped(self, tmp_path):
        d = str(tmp_path)
        _save_world(d, 2, world=3)
        ckpt.save_state(d, 4, 0, {"x": np.ones(2)}, world=3)  # ranks 1,2 missing
        assert ckpt.latest_complete_step(d) == (2, 3)

    def test_newest_complete_set_wins_across_worlds(self, tmp_path):
        d = str(tmp_path)
        _save_world(d, 6, world=3)
        _save_world(d, 8, world=2)
        assert ckpt.latest_complete_step(d) == (8, 2)

    def test_legacy_files_cannot_prove_completeness(self, tmp_path):
        d = str(tmp_path)
        for rank in range(2):
            ckpt.save_state(d, 9, rank, {"x": np.ones(2)})  # unstamped
        assert ckpt.latest_complete_step(d) is None


class TestGatherGlobalState:
    def test_gathers_canonical_replica(self, tmp_path):
        d = str(tmp_path)
        _save_world(d, 3, world=3)
        state = ckpt.gather_global_state(d, 3, 3)
        np.testing.assert_array_equal(state["x"], np.arange(3.0))

    def test_divergent_replica_is_refused(self, tmp_path):
        d = str(tmp_path)
        _save_world(d, 3, world=3)
        ckpt.save_state(
            d, 3, 2, {"x": np.array([0.0, 1.0, 99.0])}, world=3
        )
        with pytest.raises(ValueError, match=r"rank 2 .*state\.x"):
            ckpt.gather_global_state(d, 3, 3)

    def test_divergence_check_is_bitwise(self, tmp_path):
        """Even a sign-of-zero difference (equal under ==) is divergence."""
        d = str(tmp_path)
        ckpt.save_state(d, 1, 0, {"x": np.array([0.0])}, world=2)
        ckpt.save_state(d, 1, 1, {"x": np.array([-0.0])}, world=2)
        with pytest.raises(ValueError, match="diverge"):
            ckpt.gather_global_state(d, 1, 2)

    def test_structural_divergence_detected(self, tmp_path):
        d = str(tmp_path)
        ckpt.save_state(d, 1, 0, {"x": np.ones(2), "n": 3}, world=2)
        ckpt.save_state(d, 1, 1, {"x": np.ones(2), "n": 4}, world=2)
        with pytest.raises(ValueError, match=r"state\.n"):
            ckpt.gather_global_state(d, 1, 2)
