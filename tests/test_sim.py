"""Discrete-event engine and training-step simulation."""

import pytest

from repro.core.parallelism import LayerParallelism as LP
from repro.core.parallelism import ParallelStrategy
from repro.nn import NetworkSpec
from repro.nn.meshnet import mesh_model_1k
from repro.nn.resnet import build_resnet50
from repro.perfmodel import LASSEN, NetworkCostModel
from repro.sim import SimEngine, TrainingStepSimulator


class TestSimEngine:
    def test_chain(self):
        eng = SimEngine()
        eng.add("a", 1.0, "cpu")
        eng.add("b", 2.0, "cpu", deps=("a",))
        assert eng.run() == pytest.approx(3.0)
        assert eng["b"].start == pytest.approx(1.0)

    def test_parallel_resources_overlap(self):
        eng = SimEngine()
        eng.add("compute", 5.0, "compute")
        eng.add("comm", 3.0, "comm")
        eng.add("join", 1.0, "compute", deps=("compute", "comm"))
        assert eng.run() == pytest.approx(6.0)

    def test_resource_exclusivity(self):
        eng = SimEngine()
        eng.add("a", 2.0, "gpu")
        eng.add("b", 2.0, "gpu")
        assert eng.run() == pytest.approx(4.0)

    def test_fifo_order(self):
        eng = SimEngine()
        eng.add("first", 1.0, "gpu")
        eng.add("second", 1.0, "gpu")
        eng.run()
        assert eng["first"].start < eng["second"].start

    def test_duplicate_task(self):
        eng = SimEngine()
        eng.add("a", 1.0, "x")
        with pytest.raises(ValueError, match="duplicate"):
            eng.add("a", 1.0, "x")

    def test_unknown_dep(self):
        eng = SimEngine()
        with pytest.raises(ValueError, match="unknown"):
            eng.add("a", 1.0, "x", deps=("ghost",))

    def test_negative_duration(self):
        eng = SimEngine()
        with pytest.raises(ValueError, match="negative"):
            eng.add("a", -1.0, "x")

    def test_busy_time(self):
        eng = SimEngine()
        eng.add("a", 1.5, "gpu")
        eng.add("b", 0.5, "nic")
        eng.run()
        assert eng.busy_time("gpu") == pytest.approx(1.5)


class TestTrainingSimulator:
    @pytest.mark.parametrize(
        "spec_fn,par,n",
        [
            (mesh_model_1k, LP(sample=4), 4),
            (mesh_model_1k, LP(sample=4, height=2, width=2), 4),
            (build_resnet50, LP(sample=4, width=2), 128),
        ],
    )
    def test_agrees_with_analytic_model(self, spec_fn, par, n):
        """The event-driven schedule and the closed-form §V-B model must
        agree within 20% — they share kernel costs and differ only in
        overlap bookkeeping."""
        spec = spec_fn()
        strategy = ParallelStrategy.uniform(par)
        sim = TrainingStepSimulator(spec, LASSEN)
        analytic = NetworkCostModel(spec, LASSEN)
        t_sim = sim.simulate(n, strategy).minibatch_time
        t_model = analytic.minibatch_time(n, strategy)
        assert t_sim == pytest.approx(t_model, rel=0.20)

    def test_overlap_off_is_slower(self):
        spec = mesh_model_1k()
        strategy = ParallelStrategy.uniform(LP(sample=4, height=4, width=4))
        on = TrainingStepSimulator(spec, LASSEN).simulate(4, strategy)
        off = TrainingStepSimulator(
            spec, LASSEN, overlap_halo=False, overlap_allreduce=False
        ).simulate(4, strategy)
        assert off.minibatch_time > on.minibatch_time

    def test_comm_exposure_nonnegative(self):
        spec = mesh_model_1k()
        res = TrainingStepSimulator(spec, LASSEN).simulate(
            4, ParallelStrategy.uniform(LP(sample=4, width=2))
        )
        assert res.comm_exposed >= 0.0
        assert res.comm_busy > 0.0

    def test_sample_parallel_comm_is_allreduce_only(self):
        spec = mesh_model_1k()
        res = TrainingStepSimulator(spec, LASSEN).simulate(
            4, ParallelStrategy.uniform(LP(sample=4))
        )
        # No halo tasks: comm busy time == total allreduce+BN stats time.
        halo_tasks = [
            n for n in res.engine._tasks if "halo" in n
        ]
        assert halo_tasks == []

    def test_bucketed_allreduce_schedule(self):
        """Bucketing coalesces per-layer allreduces into fewer comm tasks
        and never beats compute alone, but stays close to the per-layer
        overlap schedule."""
        spec = mesh_model_1k()
        strategy = ParallelStrategy.uniform(LP(sample=4, height=2, width=2))
        per_layer = TrainingStepSimulator(spec, LASSEN).simulate(4, strategy)
        bucketed = TrainingStepSimulator(
            spec, LASSEN, allreduce_bucket_bytes=1 << 22
        ).simulate(4, strategy)
        n_ar_per_layer = sum(
            1 for n in per_layer.engine._tasks if n.startswith("ar:")
        )
        n_ar_bucketed = sum(
            1 for n in bucketed.engine._tasks if n.startswith("ar:")
        )
        assert 0 < n_ar_bucketed < n_ar_per_layer
        assert bucketed.minibatch_time >= per_layer.compute_busy - 1e-12
        assert bucketed.minibatch_time == pytest.approx(
            per_layer.minibatch_time, rel=0.05
        )

    def test_overlapped_shuffle_decomposition(self):
        """Engine-vs-sim consistency for the overlapped-shuffle task: on a
        small mesh config with a skip edge crossing a strategy change, the
        simulator's step time follows the analytic
        ``max(compute, shuffle) + exposed`` decomposition, and the sim's
        shuffle task durations equal the cost model's per-edge shuffle cost
        — guarded the same way halo ``boundary_fraction`` is."""
        spec = NetworkSpec("shuffle-branch")
        spec.add("input", "input", channels=4, height=16, width=16)
        spec.add("c0", "conv", ["input"], filters=8, kernel=3, pad=1)
        spec.add("a1", "conv", ["c0"], filters=8, kernel=3, pad=1)
        spec.add("join", "add", ["a1", "c0"])
        strategy = ParallelStrategy(
            {"join": LP(height=2, width=2)}, default=LP(sample=4)
        )
        n = 8
        sim_on = TrainingStepSimulator(spec, LASSEN).simulate(n, strategy)
        sim_off = TrainingStepSimulator(
            spec, LASSEN, overlap_shuffle=False
        ).simulate(n, strategy)
        model = NetworkCostModel(spec, LASSEN)
        eng = sim_on.engine

        # Guard: sim shuffle tasks carry exactly the analytic per-edge cost.
        s_c0 = model.shuffle_edge_cost("c0", n, strategy)
        s_a1 = model.shuffle_edge_cost("a1", n, strategy)
        assert eng["fwd:shuf:c0->join"].duration == pytest.approx(s_c0)
        assert eng["fwd:shuf:a1->join"].duration == pytest.approx(s_a1)
        assert "bwd:shuf:join->c0" in eng._tasks
        assert "bwd:shuf:join->a1" in eng._tasks

        # Decomposition: the skip-edge shuffle (ready when c0 finishes)
        # hides behind the a1 branch; join waits for
        # c0 + max(skip shuffle, branch compute) + the a1 shuffle.
        t0 = eng["fwd:c0"].finish
        branch = eng["fwd:a1"].duration
        assert eng["fwd:join"].start == pytest.approx(
            t0 + max(s_c0, branch) + s_a1
        )

        # Blocking mode serializes at consumption and pays the collective's
        # rendezvous-barrier synchronization on every shuffle.
        sync = model.shuffle_sync_overhead(strategy.nranks)
        assert sync > 0
        assert sim_off.engine["fwd:shuf:c0->join"].duration == pytest.approx(
            s_c0 + sync
        )
        assert sim_off.minibatch_time > sim_on.minibatch_time

        # The analytic breakdown exposes the matching split: overlapped
        # charges payload only; blocking adds two barriers per shuffle
        # (2 edges x fwd+bwd = 4 shuffles here).
        bd_on = model.cost(n, strategy)
        bd_off = NetworkCostModel(
            spec, LASSEN, overlap_shuffle=False
        ).cost(n, strategy)
        assert bd_on.shuffle_total == pytest.approx(2 * (s_c0 + s_a1))
        assert bd_on.shuffle_exposed == pytest.approx(bd_on.shuffle_total)
        assert bd_off.shuffle_exposed == pytest.approx(
            bd_off.shuffle_total + 4 * sync
        )

    def test_bucketing_requires_overlap(self):
        """Bucket bytes are ignored when allreduce overlap is disabled."""
        spec = mesh_model_1k()
        strategy = ParallelStrategy.uniform(LP(sample=4))
        plain = TrainingStepSimulator(
            spec, LASSEN, overlap_allreduce=False
        ).simulate(4, strategy)
        with_bucket = TrainingStepSimulator(
            spec, LASSEN, overlap_allreduce=False, allreduce_bucket_bytes=1 << 22
        ).simulate(4, strategy)
        assert with_bucket.minibatch_time == plain.minibatch_time
