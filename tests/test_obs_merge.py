"""Cross-rank trace merge: one Perfetto-loadable timeline per job.

``run_spmd(..., trace=path)`` leaves one ``{path}.rank{R}`` file per rank;
the post-run merge folds them into a single Chrome-trace JSON whose tracks
are time-ordered on the shared job-epoch axis and whose send->recv pairs
are resolved into flow arrows by (peer, tag, sequence).  The contract must
hold identically on the in-process thread backend and both forked
backends (process, socket) — the clock alignment and the flow matching
are exactly the pieces a forked world could silently break.
"""

import json
import os

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.obs import tracer
from repro.obs.export import merge_traces, validate, validate_file


def _prog(comm):
    """A little of everything: pt2pt, barrier, blocking + nonblocking."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    req = comm.irecv(source=left, tag=7)
    comm.send(np.arange(4.0) + comm.rank, dest=right, tag=7)
    req.wait()
    comm.barrier()
    total = comm.allreduce(np.ones(8) * (comm.rank + 1))
    return float(total[0])


def _load(path):
    with open(path) as fh:
        return json.load(fh)


class TestMergedTrace:
    @pytest.mark.parametrize("nranks", [2, 4])
    def test_thread_backend(self, tmp_path, nranks):
        path = str(tmp_path / "job.trace")
        run_spmd(nranks, _prog, trace=path)
        self._check(path, nranks)

    @pytest.mark.parametrize("backend", ["process", "socket"])
    def test_forked_backends(self, tmp_path, backend):
        path = str(tmp_path / "job.trace")
        run_spmd(4, _prog, backend=backend, trace=path)
        self._check(path, 4)

    def _check(self, path, nranks):
        doc = _load(path)
        assert validate(doc) == [], validate(doc)
        assert doc["otherData"]["nranks"] == nranks
        assert doc["otherData"]["missing_ranks"] == []
        assert doc["otherData"]["unresolved_flows"] == 0
        assert doc["otherData"]["flows"] > 0

        # one named track per rank
        names = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert sorted(names) == list(range(nranks))

        # per-track events time-ordered on the shared axis
        for rank in range(nranks):
            ts = [
                e["ts"]
                for e in doc["traceEvents"]
                if e["ph"] == "X" and e["pid"] == rank
            ]
            assert ts == sorted(ts)
            assert ts, f"rank {rank} track is empty"

        # every flow id appears exactly once as "s" and once as "f"
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(ends) == doc["otherData"]["flows"]
        assert {e["id"] for e in starts} == {e["id"] for e in ends}

        # rank files were consumed by the merge
        for rank in range(nranks):
            assert not os.path.exists(tracer.rank_file(path, rank))

    def test_env_var_enables_tracing(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.trace")
        monkeypatch.setenv(tracer.TRACE_ENV, path)
        run_spmd(2, _prog)
        assert validate_file(path) == []

    def test_untraced_run_writes_nothing(self, tmp_path):
        run_spmd(2, _prog)
        assert os.listdir(tmp_path) == []


class TestMergeEdgeCases:
    def _write_rank(self, path, rank, events):
        with open(tracer.rank_file(path, rank), "w") as fh:
            fh.write(json.dumps({"k": "M", "rank": rank, "host": "h", "pid": 1}) + "\n")
            for ev in events:
                fh.write(json.dumps(ev) + "\n")
            fh.write(json.dumps({"k": "Z", "open": 0}) + "\n")

    def test_missing_rank_tolerated(self, tmp_path):
        path = str(tmp_path / "m.trace")
        self._write_rank(path, 0, [
            {"k": "X", "n": "a", "c": "t", "ts": 1.0, "d": 2.0, "a": {}},
        ])
        merge_traces(path, 3)
        doc = _load(path)
        assert doc["otherData"]["missing_ranks"] == [1, 2]
        assert any("missing" in p for p in validate(doc))

    def test_unmatched_flow_reported(self, tmp_path):
        path = str(tmp_path / "u.trace")
        self._write_rank(path, 0, [
            {"k": "s", "p": 1, "t": "7", "q": 0, "ts": 1.0},
        ])
        self._write_rank(path, 1, [])
        merge_traces(path, 2)
        doc = _load(path)
        assert doc["otherData"]["unresolved_flows"] == 1
        assert any("unresolved" in p for p in validate(doc))

    def test_unclosed_span_reported(self, tmp_path):
        path = str(tmp_path / "o.trace")
        with open(tracer.rank_file(path, 0), "w") as fh:
            fh.write(json.dumps({"k": "M", "rank": 0, "host": "h", "pid": 1}) + "\n")
            fh.write(json.dumps({"k": "Z", "open": 2}) + "\n")
        merge_traces(path, 1)
        doc = _load(path)
        assert doc["otherData"]["unclosed_spans"] == {"0": 2}
        assert any("unclosed" in p for p in validate(doc))
